//! Quickstart: bag-semantics counting and containment checking.
//!
//! Run with `cargo run --example quickstart`.

use bagcq_core::prelude::*;
use std::sync::Arc;

fn main() {
    // ---- 1. A schema and a database -----------------------------------
    let mut sb = Schema::builder();
    let e = sb.relation("E", 2);
    let schema = sb.build();

    // A directed 4-cycle with one chord and a self-loop.
    let mut d = Structure::new(Arc::clone(&schema));
    d.add_vertices(4);
    for (a, b) in [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2), (1, 1)] {
        d.add_atom(e, &[Vertex(a), Vertex(b)]);
    }
    println!("database: 4 vertices, {} edges", d.atom_count(e));

    // ---- 2. Queries and bag-semantics answers -------------------------
    // Under bag semantics a boolean CQ returns |Hom(ψ, D)|. The entry
    // point is the `CountRequest` builder; by default it auto-selects a
    // counting backend (machine-word fast path where safe, arbitrary
    // precision where not — the result is identical either way).
    let edges = path_query(&schema, "E", 1);
    let walks2 = path_query(&schema, "E", 2);
    let tri = cycle_query(&schema, "E", 3);
    println!("edges(D)   = {}", CountRequest::new(&edges, &d).count());
    println!("2-walks(D) = {}", CountRequest::new(&walks2, &d).count());
    println!("3-cycles(D)= {}", CountRequest::new(&tri, &d).count());

    // Backends can be pinned, and they all agree (the naive backtracker
    // and the treewidth DP are independent implementations; the fast
    // variants are the same algorithms on machine-word accumulators).
    let reference = CountRequest::new(&walks2, &d).backend(BackendChoice::Naive).count();
    for choice in BackendChoice::REGISTERED {
        assert_eq!(CountRequest::new(&walks2, &d).backend(choice).count(), reference);
    }

    // ---- 3. The paper's query algebra ----------------------------------
    // Disjoint conjunction multiplies counts (Lemma 1) and powers
    // exponentiate them (Definition 2).
    let n_edges = CountRequest::new(&edges, &d).count();
    let pair = edges.disjoint_conj(&tri);
    assert_eq!(
        CountRequest::new(&pair, &d).count(),
        n_edges.mul_ref(&CountRequest::new(&tri, &d).count())
    );
    let cubed = edges.power(3);
    assert_eq!(CountRequest::new(&cubed, &d).count(), n_edges.pow_u64(3));
    println!("Lemma 1 and Definition 2 verified on this database.");

    // ---- 4. Containment questions --------------------------------------
    // Is edges(D) ≤ 2walks(D) for every D? No — one isolated edge refutes.
    let verdict = CheckRequest::new(&edges, &walks2).check().expect("CQ pairs are supported");
    println!("edges ⊑bag 2-walks?  {verdict}");
    assert!(verdict.is_refuted());

    // Is loops(D) ≤ edges(D) for every D? Yes — Lemma 12 certificate.
    let mut qb = Query::builder(Arc::clone(&schema));
    let x = qb.var("x");
    qb.atom_named("E", &[x, x]);
    let loops = qb.build();
    let verdict = CheckRequest::new(&loops, &edges).check().expect("CQ pairs are supported");
    println!("loops ⊑bag edges?    {verdict}");
    assert!(verdict.is_proved());

    // Set semantics, for contrast (the Chandra–Merlin baseline).
    println!(
        "set semantics: 2walks ⊑ edges: {}, edges ⊑ 2walks: {}",
        set_contained(&walks2, &edges),
        set_contained(&edges, &walks2),
    );
}
