//! Quickstart: bag-semantics counting and containment checking.
//!
//! Run with `cargo run --example quickstart`.

use bagcq_core::prelude::*;
use std::sync::Arc;

fn main() {
    // ---- 1. A schema and a database -----------------------------------
    let mut sb = Schema::builder();
    let e = sb.relation("E", 2);
    let schema = sb.build();

    // A directed 4-cycle with one chord and a self-loop.
    let mut d = Structure::new(Arc::clone(&schema));
    d.add_vertices(4);
    for (a, b) in [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2), (1, 1)] {
        d.add_atom(e, &[Vertex(a), Vertex(b)]);
    }
    println!("database: 4 vertices, {} edges", d.atom_count(e));

    // ---- 2. Queries and bag-semantics answers -------------------------
    // Under bag semantics a boolean CQ returns |Hom(ψ, D)|.
    let edges = path_query(&schema, "E", 1);
    let walks2 = path_query(&schema, "E", 2);
    let tri = cycle_query(&schema, "E", 3);
    println!("edges(D)   = {}", count(&edges, &d));
    println!("2-walks(D) = {}", count(&walks2, &d));
    println!("3-cycles(D)= {}", count(&tri, &d));

    // The two engines agree (they are independent implementations).
    assert_eq!(count_with(Engine::Naive, &walks2, &d), count_with(Engine::Treewidth, &walks2, &d));

    // ---- 3. The paper's query algebra ----------------------------------
    // Disjoint conjunction multiplies counts (Lemma 1) and powers
    // exponentiate them (Definition 2).
    let pair = edges.disjoint_conj(&tri);
    assert_eq!(count(&pair, &d), count(&edges, &d).mul_ref(&count(&tri, &d)));
    let cubed = edges.power(3);
    assert_eq!(count(&cubed, &d), count(&edges, &d).pow_u64(3));
    println!("Lemma 1 and Definition 2 verified on this database.");

    // ---- 4. Containment questions --------------------------------------
    // Is edges(D) ≤ 2walks(D) for every D? No — one isolated edge refutes.
    let verdict = ContainmentChecker::new().check(&edges, &walks2);
    println!("edges ⊑bag 2-walks?  {verdict}");
    assert!(verdict.is_refuted());

    // Is loops(D) ≤ edges(D) for every D? Yes — Lemma 12 certificate.
    let mut qb = Query::builder(Arc::clone(&schema));
    let x = qb.var("x");
    qb.atom_named("E", &[x, x]);
    let loops = qb.build();
    let verdict = ContainmentChecker::new().check(&loops, &edges);
    println!("loops ⊑bag edges?    {verdict}");
    assert!(verdict.is_proved());

    // Set semantics, for contrast (the Chandra–Merlin baseline).
    println!(
        "set semantics: 2walks ⊑ edges: {}, edges ⊑ 2walks: {}",
        set_contained(&walks2, &edges),
        set_contained(&edges, &walks2),
    );
}
