//! The four small steps towards undecidability, end to end.
//!
//! Walks the paper's whole pipeline on concrete Diophantine instances:
//!
//! 1. **Hilbert's 10th problem** — the undecidability source;
//! 2. **Appendix B** — from `Q` to a Lemma 11 instance `(c, P_s, P_b)`;
//! 3. **Theorem 1** — from the instance to queries `φ_s`, `φ_b` and the
//!    constant `ℂ`, with a database witness when `Q` has a root;
//! 4. **Theorem 3** — trading `ℂ` for a single inequality via the
//!    multiplication gadget.
//!
//! Run with `cargo run --example undecidability_tour`.

use bagcq_core::prelude::*;

fn main() {
    println!("=== Step 0: the undecidability source =========================");
    let pell = hilbert_instance("pell").unwrap();
    let parity = hilbert_instance("parity").unwrap();
    println!("solvable instance   : {pell}");
    println!("  root found: {:?}", pell.find_root(5));
    println!("unsolvable instance : {parity}");
    println!("  root in [0,6]^2: {:?}", parity.find_root(6));

    println!();
    println!("=== Step 1: Appendix B — polynomials to Lemma 11 form =========");
    for inst in [&pell, &parity] {
        let chain = reduce(&inst.poly);
        println!(
            "{}: {} monomials, degree {}, c = {}",
            inst.name,
            chain.instance.monomials.len(),
            chain.instance.degree,
            chain.instance.c
        );
    }

    println!();
    println!("=== Step 2: Theorem 1 — queries from polynomials ==============");
    let chain = reduce(&pell.poly);
    let red = Theorem1Reduction::new(chain.instance.clone());
    println!("schema: {}", red.schema);
    println!("π_s: {} atoms, {} vars", red.pi_s.stats().atoms, red.pi_s.stats().variables);
    println!("π_b: {} atoms, {} vars", red.pi_b.stats().atoms, red.pi_b.stats().variables);
    println!("ζ_b exponent k = {}", red.k);
    println!("ℂ₁ = ζ_b(D_Arena) = {} ({} bits)", red.c1, red.c1.bits());
    println!("ℂ = c·ℂ₁ has {} bits", red.big_c.bits());

    let opts = EvalOptions::default();
    println!();
    println!("--- the ℜ ⇒ ☀ witness (pell has a root) ---");
    let w = red.find_phi_witness(3, &opts).expect("pell-derived instance violates in the box");
    println!(
        "violating valuation Ξ = {:?} → correct database with {} vertices",
        w.valuation,
        w.database.vertex_count()
    );
    println!("certified: ℂ·φ_s(D) > φ_b(D) on this D");

    println!();
    println!("--- the ¬ℜ ⇒ ¬☀ sweep (parity has no root) ---");
    let chain2 = reduce(&parity.poly);
    let red2 = Theorem1Reduction::new(chain2.instance.clone());
    let checked = red2.sweep_databases(1, &opts).expect("sweep is clean");
    println!("checked {checked} databases (correct + slightly + seriously incorrect): all satisfy ℂ·φ_s ≤ φ_b");

    println!();
    println!("=== Step 3: Theorem 3 — one inequality instead of ℂ ===========");
    // The true ℂ is astronomic; the gadget construction is exercised with
    // a small stand-in c (the mathematics is the same — see the tests).
    let c = 2u64;
    let alpha = alpha_gadget(c, "Tour");
    println!("α gadget for c = {c}: arity p = {}, ratio = {}", 2 * c - 1, alpha.ratio);
    let (s, b) = alpha.check_witness().expect("gadget witness checks");
    println!("on the gadget witness: α_s = {s}, α_b = {b} (exactly c·α_b)");

    let t3 = compose_theorem3(&alpha, &red.schema, &red.phi_s, &red.phi_b);
    let sizes = theorem3_sizes(&t3);
    println!("ψ_s: pure = {}, inequalities = {}", t3.psi_s.is_pure(), sizes.psi_s_inequalities);
    println!(
        "ψ_b: inequalities = {} (the paper's improvement over 59^10)",
        sizes.psi_b_inequalities
    );

    println!();
    println!("=== Step 4: Theorem 5 — inequalities in the s-query are free ===");
    println!("(see `cargo run --example theorem5_roundtrip`)");
    println!();
    println!("Conclusion: each generalization of QCP^bag_CQ exercised above");
    println!("is undecidable; the base problem remains open, and the");
    println!("containment harness answers Proved / Refuted / Unknown only");
    println!("when it can certify the verdict.");
}
