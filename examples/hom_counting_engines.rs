//! Engine comparison: naive backtracking vs tree-decomposition DP.
//!
//! Counts homomorphisms of the classic query families (paths, cycles,
//! stars, grids) into growing random structures with both engines,
//! reporting counts, decomposition widths and wall-clock times.
//!
//! Run with `cargo run --release --example hom_counting_engines`.

use bagcq_core::prelude::*;
use std::time::Instant;

fn main() {
    let mut sb = Schema::builder();
    sb.relation("E", 2);
    let schema = sb.build();

    let gen = StructureGen {
        extra_vertices: 12,
        density: 0.25,
        max_tuples_per_relation: 80,
        diagonal_density: 0.15,
    };
    let d = gen.sample(&schema, 7);
    println!(
        "database: {} vertices, {} edges",
        d.vertex_count(),
        d.atom_count(schema.relation_by_name("E").unwrap())
    );
    println!();
    println!(
        "{:<14} {:>5} {:>6} {:>22} {:>12} {:>12}",
        "query", "vars", "width", "count", "naive", "treewidth"
    );

    let queries = vec![
        ("path-4", path_query(&schema, "E", 4)),
        ("path-8", path_query(&schema, "E", 8)),
        ("cycle-4", cycle_query(&schema, "E", 4)),
        ("cycle-6", cycle_query(&schema, "E", 6)),
        ("star-6", star_query(&schema, "E", 6)),
        ("grid-3x2", grid_query(&schema, "E", 3, 2)),
        ("grid-3x3", grid_query(&schema, "E", 3, 3)),
    ];

    for (name, q) in queries {
        let width = TreewidthCounter.decomposition_width(&q);

        let t0 = Instant::now();
        let naive = NaiveCounter.count(&q, &d);
        let t_naive = t0.elapsed();

        let t0 = Instant::now();
        let tw = TreewidthCounter.count(&q, &d);
        let t_tw = t0.elapsed();

        assert_eq!(naive, tw, "engines disagree on {name}");
        let shown = naive.to_string();
        let shown = if shown.len() > 22 { format!("~10^{}", shown.len() - 1) } else { shown };
        println!(
            "{:<14} {:>5} {:>6} {:>22} {:>10.2?} {:>10.2?}",
            name,
            q.var_count(),
            width,
            shown,
            t_naive,
            t_tw
        );
    }

    println!();
    println!("Power queries stay cheap through component factorization (Lemma 1):");
    let q = path_query(&schema, "E", 2);
    for k in [1u32, 4, 16, 64] {
        let t0 = Instant::now();
        let c = TreewidthCounter.count(&q.power(k), &d);
        println!("  (2-walks)↑{k:<3} = value with {:>6} bits   in {:.2?}", c.bits(), t0.elapsed());
    }
}
