//! Backend comparison: the four registered counting kernels.
//!
//! Counts homomorphisms of the classic query families (paths, cycles,
//! stars, grids) into a random structure with every registered
//! [`CountBackend`] — naive backtracking and tree-decomposition DP,
//! each in its `Nat` reference form and its machine-word fast-path
//! form — reporting counts, decomposition widths and wall-clock times.
//!
//! Run with `cargo run --release --example hom_counting_engines`.

use bagcq_core::prelude::*;
use std::time::Instant;

fn main() {
    let mut sb = Schema::builder();
    sb.relation("E", 2);
    let schema = sb.build();

    let gen = StructureGen {
        extra_vertices: 12,
        density: 0.25,
        max_tuples_per_relation: 80,
        diagonal_density: 0.15,
    };
    let d = gen.sample(&schema, 7);
    println!(
        "database: {} vertices, {} edges",
        d.vertex_count(),
        d.atom_count(schema.relation_by_name("E").unwrap())
    );
    println!();
    print!("{:<14} {:>5} {:>6} {:>22}", "query", "vars", "width", "count");
    for (kernel, _) in registered_backends() {
        print!(" {:>14}", kernel.name());
    }
    println!();

    let queries = vec![
        ("path-4", path_query(&schema, "E", 4)),
        ("path-8", path_query(&schema, "E", 8)),
        ("cycle-4", cycle_query(&schema, "E", 4)),
        ("cycle-6", cycle_query(&schema, "E", 6)),
        ("star-6", star_query(&schema, "E", 6)),
        ("grid-3x2", grid_query(&schema, "E", 3, 2)),
        ("grid-3x3", grid_query(&schema, "E", 3, 3)),
    ];

    for (name, q) in queries {
        let width = TreewidthCounter.decomposition_width(&q);

        let mut agreed: Option<Nat> = None;
        let mut times = Vec::new();
        for (kernel, choice) in registered_backends() {
            let t0 = Instant::now();
            let n = CountRequest::new(&q, &d).backend(choice).count();
            times.push(t0.elapsed());
            match &agreed {
                None => agreed = Some(n),
                Some(prev) => assert_eq!(prev, &n, "{} disagrees on {name}", kernel.name()),
            }
        }
        let shown = agreed.unwrap().to_string();
        let shown = if shown.len() > 22 { format!("~10^{}", shown.len() - 1) } else { shown };
        print!("{:<14} {:>5} {:>6} {:>22}", name, q.var_count(), width, shown);
        for t in times {
            print!(" {:>12.2?}", t);
        }
        println!();
    }

    println!();
    println!("Power queries stay cheap through component factorization (Lemma 1):");
    let q = path_query(&schema, "E", 2);
    let before = acc_promotions();
    for k in [1u32, 4, 16, 64] {
        let t0 = Instant::now();
        let c = CountRequest::new(&q.power(k), &d).backend(BackendChoice::FastTreewidth).count();
        println!("  (2-walks)↑{k:<3} = value with {:>6} bits   in {:.2?}", c.bits(), t0.elapsed());
    }
    println!(
        "  fast path promoted to Nat {} time(s) — large powers overflow u128 and widen.",
        acc_promotions() - before
    );
}
