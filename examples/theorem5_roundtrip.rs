//! Theorem 5 roundtrip: eliminating s-query inequalities with blow-ups.
//!
//! Demonstrates Lemma 23's construction: a counterexample for the
//! inequality-free `ψ′_s` vs `ψ_b` is amplified (categorical powers,
//! Lemma 22 ii) and blown up (Lemma 22 i + Lemma 24) into a
//! counterexample for the original `ψ_s` — showing why inequalities in
//! the *s*-query cannot be the source of undecidability unless
//! `QCP^bag_CQ` itself is undecidable.
//!
//! Run with `cargo run --example theorem5_roundtrip`.

use bagcq_core::prelude::*;
use std::sync::Arc;

fn main() {
    let mut sb = Schema::builder();
    let e = sb.relation("E", 2);
    let schema = sb.build();

    // ψ_s = E(x,y) ∧ E(y,z) ∧ x ≠ z   (2-walks with distinct endpoints)
    let mut qb = Query::builder(Arc::clone(&schema));
    let x = qb.var("x");
    let y = qb.var("y");
    let z = qb.var("z");
    qb.atom_named("E", &[x, y]).atom_named("E", &[y, z]).neq(x, z);
    let psi_s = qb.build();

    // ψ_b = E(u,u)   (self-loops)
    let mut qb = Query::builder(Arc::clone(&schema));
    let u = qb.var("u");
    qb.atom_named("E", &[u, u]);
    let psi_b = qb.build();

    println!("ψ_s = {psi_s}");
    println!("ψ_b = {psi_b}");
    println!();

    // Seed D₀: a directed path 0→1→2→3 plus a loop at 4.
    let mut d0 = Structure::new(Arc::clone(&schema));
    d0.add_vertices(5);
    for (a, b) in [(0, 1), (1, 2), (2, 3), (4, 4)] {
        d0.add_atom(e, &[Vertex(a), Vertex(b)]);
    }
    let psi_s_pure = psi_s.strip_inequalities();
    let s0 = CountRequest::new(&psi_s_pure, &d0).count();
    let b0 = CountRequest::new(&psi_b, &d0).count();
    println!("seed D₀ ({} vertices): ψ′_s(D₀) = {s0}, ψ_b(D₀) = {b0}", d0.vertex_count());
    assert!(s0 > b0, "the seed must separate the stripped queries");

    // But on D₀ itself the full ψ_s may not separate (the loop walks
    // violate x ≠ z):
    println!(
        "on D₀ directly:    ψ_s(D₀) = {}, ψ_b(D₀) = {}",
        CountRequest::new(&psi_s, &d0).count(),
        CountRequest::new(&psi_b, &d0).count()
    );

    // Lemma 23: power then blow up.
    let elim = eliminate_inequalities(&psi_s, &psi_b, &d0, 8).expect("construction succeeds");
    println!();
    println!(
        "Lemma 23 construction: D = blowup(D₀^×{}, {}) with {} vertices",
        elim.k,
        elim.kappa,
        elim.witness.vertex_count()
    );
    println!("ψ_s(D) = {}", elim.count_s);
    println!("ψ_b(D) = {}", elim.count_b);
    assert!(elim.count_s > elim.count_b);
    println!();
    println!("ψ_s(D) > ψ_b(D): the inequality in ψ_s did not matter — exactly");
    println!("Theorem 5's point. The containment harness runs this construction");
    println!("automatically when it sees inequalities only in the s-query:");

    let verdict = CheckRequest::new(&psi_s, &psi_b).check().expect("CQ pairs are supported");
    println!("  harness verdict: {verdict}");
    assert!(verdict.is_refuted());
}
