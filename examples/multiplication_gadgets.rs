//! The Section 3 multiplication gadgets, numerically.
//!
//! Shows `β` (Lemma 5), `γ` (Lemma 10) and `α` (their composition)
//! multiplying by their exact rationals: the (=) witnesses are evaluated
//! exactly and the (≤) conditions are falsification-tested over random
//! structures.
//!
//! Run with `cargo run --example multiplication_gadgets` (use
//! `--release` — the falsification sweeps count homomorphisms of
//! high-arity cyclique queries).

use bagcq_core::prelude::*;

fn main() {
    println!("β gadget (Lemma 5): multiplies by (p+1)²/2p");
    println!("{:>4} {:>12} {:>14} {:>14}", "p", "ratio", "β_s(witness)", "β_b(witness)");
    for p in [3usize, 4, 5, 7, 9] {
        let g = beta_gadget(p, "Ex");
        let (s, b) = g.check_witness().expect("Lemma 5 (=) holds");
        println!(
            "{:>4} {:>12} {:>14} {:>14}",
            p,
            g.ratio.to_string(),
            s.to_string(),
            b.to_string()
        );
    }

    println!();
    println!("γ gadget (Lemma 10): multiplies by (m−1)/m — no inequalities at all");
    println!("{:>4} {:>12} {:>14} {:>14}", "m", "ratio", "γ_s(witness)", "γ_b(witness)");
    for m in [2usize, 3, 4, 6, 8] {
        let g = gamma_gadget(m, "Ex");
        let (s, b) = g.check_witness().expect("Lemma 10 (=) holds");
        println!(
            "{:>4} {:>12} {:>14} {:>14}",
            m,
            g.ratio.to_string(),
            s.to_string(),
            b.to_string()
        );
    }

    println!();
    println!("α gadget (Lemma 4 composition): multiplies by exactly c");
    println!(
        "{:>4} {:>8} {:>12} {:>14} {:>14} {:>6}",
        "c", "p", "ratio", "α_s(witness)", "α_b(witness)", "ineqs"
    );
    for c in [2u64, 3, 4] {
        let g = alpha_gadget(c, "Ex");
        let (s, b) = g.check_witness().expect("composition (=) holds");
        println!(
            "{:>4} {:>8} {:>12} {:>14} {:>14} {:>6}",
            c,
            2 * c - 1,
            g.ratio.to_string(),
            s.to_string(),
            b.to_string(),
            g.q_b.stats().inequalities
        );
    }

    println!();
    println!("Falsification sweeps of the (≤) conditions (random structures):");
    let gen = StructureGen {
        extra_vertices: 3,
        density: 0.6,
        max_tuples_per_relation: 60,
        diagonal_density: 0.7,
    };
    for (name, g) in [
        ("β(p=3)", beta_gadget(3, "F")),
        ("γ(m=3)", gamma_gadget(3, "F")),
        ("α(c=2)", alpha_gadget(2, "F")),
    ] {
        let result = g.falsify(&gen, 30, 42);
        println!(
            "  {name}: {} (30 random non-trivial structures)",
            if result.is_none() { "no violation" } else { "VIOLATED — bug!" }
        );
        assert!(result.is_none());
    }

    println!();
    println!("Why an inequality is unavoidable for ratios > 1 (Lemma 22 ii):");
    println!("  a pure-CQ pair with ϱ_s(D) = q·ϱ_b(D) > 0 and q > 1 would give");
    println!("  ϱ_s(D^×k)/ϱ_b(D^×k) = q^k → ∞, contradicting (≤) at any fixed q.");
}
