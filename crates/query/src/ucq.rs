//! Unions of conjunctive queries (UCQs) under bag semantics.
//!
//! Section 1.1 of the paper recounts the first known negative result:
//! `QCP^bag_UCQ` is undecidable (Ioannidis–Ramakrishnan [14]), by a
//! "straightforward encoding of Hilbert's 10th problem". Under bag
//! semantics a UCQ's answer is the **bag union** of its disjuncts'
//! answers — for boolean queries, the *sum* of the homomorphism counts:
//!
//! ```text
//!     (φ₁ ∨ … ∨ φ_r)(D) = φ₁(D) + … + φ_r(D).
//! ```
//!
//! This is exactly what makes the encoding easy: a monomial becomes a CQ
//! (Lemma 1 turns products of valuation weights into conjunctions) and a
//! *sum* of monomials becomes a *disjunction* — no anti-cheating needed.
//! The encoding itself lives in `bagcq-reduction::ioannidis`.

use crate::query::Query;
use std::fmt;

/// A union (disjunction) of boolean conjunctive queries.
#[derive(Clone, Debug)]
pub struct UnionQuery {
    disjuncts: Vec<Query>,
}

impl UnionQuery {
    /// The empty union (evaluates to 0 everywhere).
    pub fn empty() -> Self {
        UnionQuery { disjuncts: Vec::new() }
    }

    /// A single-disjunct union.
    pub fn from_query(q: Query) -> Self {
        UnionQuery { disjuncts: vec![q] }
    }

    /// Builds a union from disjuncts.
    pub fn new(disjuncts: Vec<Query>) -> Self {
        UnionQuery { disjuncts }
    }

    /// Appends a disjunct.
    pub fn push(&mut self, q: Query) {
        self.disjuncts.push(q);
    }

    /// Appends `k` copies of a disjunct (how integer coefficients are
    /// encoded: multiplicities add across identical disjuncts).
    pub fn push_copies(&mut self, q: &Query, k: u64) {
        for _ in 0..k {
            self.disjuncts.push(q.clone());
        }
    }

    /// The disjuncts.
    pub fn disjuncts(&self) -> &[Query] {
        &self.disjuncts
    }

    /// Number of disjuncts.
    pub fn len(&self) -> usize {
        self.disjuncts.len()
    }

    /// `true` iff no disjuncts.
    pub fn is_empty(&self) -> bool {
        self.disjuncts.is_empty()
    }

    /// `true` iff every disjunct is a pure CQ.
    pub fn is_pure(&self) -> bool {
        self.disjuncts.iter().all(Query::is_pure)
    }
}

impl fmt::Display for UnionQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.disjuncts.is_empty() {
            return write!(f, "⊥");
        }
        for (i, q) in self.disjuncts.iter().enumerate() {
            if i > 0 {
                write!(f, "  ∨  ")?;
            }
            write!(f, "({q})")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bagcq_structure::SchemaBuilder;
    use std::sync::Arc;

    #[test]
    fn construction() {
        let mut b = SchemaBuilder::default();
        b.relation("E", 2);
        let s = b.build();
        let mut qb = Query::builder(Arc::clone(&s));
        let x = qb.var("x");
        let y = qb.var("y");
        qb.atom_named("E", &[x, y]);
        let q = qb.build();
        let mut u = UnionQuery::from_query(q.clone());
        u.push_copies(&q, 2);
        assert_eq!(u.len(), 3);
        assert!(u.is_pure());
        assert!(!u.is_empty());
        assert!(UnionQuery::empty().is_empty());
        assert_eq!(UnionQuery::empty().to_string(), "⊥");
        assert!(u.to_string().contains('∨'));
    }
}
