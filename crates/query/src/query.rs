//! Boolean conjunctive queries, with and without inequalities.
//!
//! Following Section 2 of the paper: queries are conjunctions of relational
//! atoms over variables and constants, implicitly existentially quantified,
//! possibly extended with inequality atoms `x ≠ x'` (interpreted as the
//! full binary disequality relation on the active domain). The bag
//! semantics of a boolean query is `ψ(D) = |Hom(ψ, D)|`, computed in the
//! `bagcq-homcount` crate.
//!
//! Two conjunction operators are provided, mirroring the paper's `∧` and
//! `∧̄` (Section 2.2):
//!
//! * [`Query::conj`] — *shared* conjunction: variables with equal names are
//!   identified across the conjuncts;
//! * [`Query::disjoint_conj`] — the paper's `∧̄`: variables are kept local
//!   (renamed apart), which gives the multiplicativity law of Lemma 1,
//!   `(ρ ∧̄ ρ')(D) = ρ(D)·ρ'(D)`.
//!
//! [`Query::power`] is Definition 2's `θ↑k`.

use bagcq_structure::{
    ConstId, Fingerprint, FingerprintHasher, RelId, Schema, SchemaEmbedding, Structure, Vertex,
};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// A query variable, local to its [`Query`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct VarId(pub u32);

/// A term: variable or schema constant.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Term {
    /// A (existentially quantified) variable.
    Var(VarId),
    /// A named constant; homomorphisms fix these (`h(a) = a`).
    Const(ConstId),
}

/// A relational atom `R(t₁, …, t_k)`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Atom {
    /// The relation symbol.
    pub rel: RelId,
    /// Argument terms; length equals the relation's arity.
    pub args: Vec<Term>,
}

/// An inequality atom `t ≠ t'`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Inequality {
    /// Left term.
    pub lhs: Term,
    /// Right term.
    pub rhs: Term,
}

/// A boolean conjunctive query, possibly with inequalities.
#[derive(Clone, PartialEq, Eq)]
pub struct Query {
    schema: Arc<Schema>,
    var_names: Vec<String>,
    atoms: Vec<Atom>,
    inequalities: Vec<Inequality>,
}

impl Query {
    /// Starts building a query over the given schema.
    pub fn builder(schema: Arc<Schema>) -> QueryBuilder {
        QueryBuilder {
            q: Query { schema, var_names: Vec::new(), atoms: Vec::new(), inequalities: Vec::new() },
            vars_by_name: HashMap::new(),
        }
    }

    /// The query with no atoms at all (one homomorphism into any database:
    /// the empty mapping), useful as a unit for conjunction.
    pub fn empty(schema: Arc<Schema>) -> Query {
        Query { schema, var_names: Vec::new(), atoms: Vec::new(), inequalities: Vec::new() }
    }

    /// The schema this query is over.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Number of variables (`|Var(ψ)|`).
    pub fn var_count(&self) -> u32 {
        self.var_names.len() as u32
    }

    /// The display name of a variable.
    pub fn var_name(&self, v: VarId) -> &str {
        &self.var_names[v.0 as usize]
    }

    /// The relational atoms.
    pub fn atoms(&self) -> &[Atom] {
        &self.atoms
    }

    /// The inequality atoms.
    pub fn inequalities(&self) -> &[Inequality] {
        &self.inequalities
    }

    /// `true` iff the query has no inequality atoms (a *pure* CQ in the
    /// paper's sense; Theorems 1 and 2 require this of both queries).
    pub fn is_pure(&self) -> bool {
        self.inequalities.is_empty()
    }

    /// Stable 128-bit content fingerprint, respecting the (derived)
    /// structural equality: equal queries fingerprint equally across
    /// processes and runs. Used by the evaluation engine as a memo-cache
    /// key for counting jobs.
    pub fn fingerprint(&self) -> Fingerprint {
        fn write_term(h: &mut FingerprintHasher, t: &Term) {
            match t {
                Term::Var(v) => {
                    h.write_u32(0);
                    h.write_u32(v.0);
                }
                Term::Const(c) => {
                    h.write_u32(1);
                    h.write_u32(c.0);
                }
            }
        }
        let mut h = FingerprintHasher::new(b"bagcq/query");
        let schema_fp = self.schema.fingerprint();
        h.write_u64(schema_fp.hi);
        h.write_u64(schema_fp.lo);
        h.write_usize(self.var_names.len());
        for name in &self.var_names {
            h.write_str(name);
        }
        h.write_usize(self.atoms.len());
        for atom in &self.atoms {
            h.write_u32(atom.rel.0);
            h.write_usize(atom.args.len());
            for t in &atom.args {
                write_term(&mut h, t);
            }
        }
        h.write_usize(self.inequalities.len());
        for ineq in &self.inequalities {
            write_term(&mut h, &ineq.lhs);
            write_term(&mut h, &ineq.rhs);
        }
        h.finish()
    }

    /// The constants occurring in the query.
    pub fn constants_used(&self) -> Vec<ConstId> {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        let mut visit = |t: &Term| {
            if let Term::Const(c) = t {
                if seen.insert(*c) {
                    out.push(*c);
                }
            }
        };
        for a in &self.atoms {
            a.args.iter().for_each(&mut visit);
        }
        for ineq in &self.inequalities {
            visit(&ineq.lhs);
            visit(&ineq.rhs);
        }
        out
    }

    /// Removes all inequality atoms — the paper's `ψ′_s` in Lemma 23.
    pub fn strip_inequalities(&self) -> Query {
        Query {
            schema: Arc::clone(&self.schema),
            var_names: self.var_names.clone(),
            atoms: self.atoms.clone(),
            inequalities: Vec::new(),
        }
    }

    /// Shared conjunction `ρ ∧ ρ'`: variables with the same *name* are
    /// identified (the quantifier-free parts are conjoined first, then
    /// quantified; Section 2.2).
    pub fn conj(&self, other: &Query) -> Query {
        assert!(
            Arc::ptr_eq(&self.schema, &other.schema) || self.schema == other.schema,
            "conjunction requires a common schema"
        );
        let mut out = self.clone();
        let by_name: HashMap<&str, VarId> =
            self.var_names.iter().enumerate().map(|(i, n)| (n.as_str(), VarId(i as u32))).collect();
        // Map other's variables into out.
        let mut var_map: Vec<VarId> = Vec::with_capacity(other.var_names.len());
        let mut new_names: Vec<String> = Vec::new();
        for name in &other.var_names {
            if let Some(&v) = by_name.get(name.as_str()) {
                var_map.push(v);
            } else {
                let v = VarId(out.var_names.len() as u32 + new_names.len() as u32);
                var_map.push(v);
                new_names.push(name.clone());
            }
        }
        // Two-phase to appease the borrow checker over by_name's lifetime.
        drop(by_name);
        out.var_names.extend(new_names);
        let remap = |t: &Term| match t {
            Term::Var(v) => Term::Var(var_map[v.0 as usize]),
            Term::Const(c) => Term::Const(*c),
        };
        for a in &other.atoms {
            out.atoms.push(Atom { rel: a.rel, args: a.args.iter().map(remap).collect() });
        }
        for ineq in &other.inequalities {
            out.inequalities.push(Inequality { lhs: remap(&ineq.lhs), rhs: remap(&ineq.rhs) });
        }
        out
    }

    /// Disjoint conjunction `ρ ∧̄ ρ'` (Section 2.2): the variables of the
    /// right conjunct are renamed apart, so by Lemma 1
    /// `(ρ ∧̄ ρ')(D) = ρ(D)·ρ'(D)` for every `D`.
    pub fn disjoint_conj(&self, other: &Query) -> Query {
        assert!(
            Arc::ptr_eq(&self.schema, &other.schema) || self.schema == other.schema,
            "conjunction requires a common schema"
        );
        let base = self.var_names.len() as u32;
        let mut out = self.clone();
        for (i, name) in other.var_names.iter().enumerate() {
            // Rename apart, keeping names readable and unique.
            out.var_names.push(format!("{name}#{}", base as usize + i));
        }
        let remap = |t: &Term| match t {
            Term::Var(v) => Term::Var(VarId(v.0 + base)),
            Term::Const(c) => Term::Const(*c),
        };
        for a in &other.atoms {
            out.atoms.push(Atom { rel: a.rel, args: a.args.iter().map(remap).collect() });
        }
        for ineq in &other.inequalities {
            out.inequalities.push(Inequality { lhs: remap(&ineq.lhs), rhs: remap(&ineq.rhs) });
        }
        out
    }

    /// Query exponentiation `θ↑k` (Definition 2): the `k`-fold disjoint
    /// conjunction, so `(θ↑k)(D) = θ(D)^k`.
    pub fn power(&self, k: u32) -> Query {
        let mut acc = Query::empty(Arc::clone(&self.schema));
        for _ in 0..k {
            acc = acc.disjoint_conj(self);
        }
        acc
    }

    /// Transports the query across a schema embedding (used after
    /// [`Schema::disjoint_union`] to combine gadget and reduction queries).
    pub fn transport(&self, target: Arc<Schema>, emb: &SchemaEmbedding) -> Query {
        let remap = |t: &Term| match t {
            Term::Var(v) => Term::Var(*v),
            Term::Const(c) => Term::Const(emb.constant(*c)),
        };
        Query {
            schema: target,
            var_names: self.var_names.clone(),
            atoms: self
                .atoms
                .iter()
                .map(|a| Atom { rel: emb.rel(a.rel), args: a.args.iter().map(remap).collect() })
                .collect(),
            inequalities: self
                .inequalities
                .iter()
                .map(|i| Inequality { lhs: remap(&i.lhs), rhs: remap(&i.rhs) })
                .collect(),
        }
    }

    /// The canonical structure of the query's relational part (Section 2.1:
    /// "we tacitly identify queries with their canonical structures").
    ///
    /// Variables become fresh vertices, constants keep their constant
    /// vertices; inequality atoms are *not* represented (they are semantic
    /// constraints, not facts). Returns the structure together with the
    /// vertex of each variable.
    pub fn canonical_structure(&self) -> (Structure, Vec<Vertex>) {
        let mut d = Structure::new(Arc::clone(&self.schema));
        let var_vertices: Vec<Vertex> = (0..self.var_names.len()).map(|_| d.add_vertex()).collect();
        let mut buf: Vec<Vertex> = Vec::new();
        for a in &self.atoms {
            buf.clear();
            buf.extend(a.args.iter().map(|t| match t {
                Term::Var(v) => var_vertices[v.0 as usize],
                Term::Const(c) => d.constant_vertex(*c),
            }));
            d.add_atom(a.rel, &buf);
        }
        (d, var_vertices)
    }

    /// Summary statistics: `(variables, relational atoms, inequalities)`.
    /// The paper's headline comparison against [Jayram–Kolaitis–Vee 2006]
    /// is about the third component.
    pub fn stats(&self) -> QueryStats {
        QueryStats {
            variables: self.var_names.len(),
            atoms: self.atoms.len(),
            inequalities: self.inequalities.len(),
        }
    }
}

/// Size statistics of a query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QueryStats {
    /// Number of distinct variables.
    pub variables: usize,
    /// Number of relational atoms.
    pub atoms: usize,
    /// Number of inequality atoms.
    pub inequalities: usize,
}

/// Incremental construction of a [`Query`].
pub struct QueryBuilder {
    q: Query,
    vars_by_name: HashMap<String, VarId>,
}

impl QueryBuilder {
    /// Fetches or creates the variable with the given name.
    pub fn var(&mut self, name: &str) -> Term {
        if let Some(&v) = self.vars_by_name.get(name) {
            return Term::Var(v);
        }
        let v = VarId(self.q.var_names.len() as u32);
        self.q.var_names.push(name.to_string());
        self.vars_by_name.insert(name.to_string(), v);
        Term::Var(v)
    }

    /// A constant term (must exist in the schema).
    pub fn constant(&mut self, name: &str) -> Term {
        let c = self
            .q
            .schema
            .constant_by_name(name)
            .unwrap_or_else(|| panic!("unknown constant {name}"));
        Term::Const(c)
    }

    /// A constant term by id.
    pub fn constant_id(&mut self, c: ConstId) -> Term {
        assert!((c.0 as usize) < self.q.schema.constant_count());
        Term::Const(c)
    }

    /// Adds a relational atom.
    pub fn atom(&mut self, rel: RelId, args: &[Term]) -> &mut Self {
        assert_eq!(
            args.len(),
            self.q.schema.arity(rel),
            "arity mismatch for {}",
            self.q.schema.relation(rel).name
        );
        self.q.atoms.push(Atom { rel, args: args.to_vec() });
        self
    }

    /// Adds a relational atom by relation name.
    pub fn atom_named(&mut self, rel: &str, args: &[Term]) -> &mut Self {
        let r =
            self.q.schema.relation_by_name(rel).unwrap_or_else(|| panic!("unknown relation {rel}"));
        self.atom(r, args)
    }

    /// Adds an inequality atom `lhs ≠ rhs`.
    pub fn neq(&mut self, lhs: Term, rhs: Term) -> &mut Self {
        self.q.inequalities.push(Inequality { lhs, rhs });
        self
    }

    /// Finalizes the query.
    pub fn build(self) -> Query {
        self.q
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let term = |t: &Term| match t {
            Term::Var(v) => self.var_names[v.0 as usize].clone(),
            Term::Const(c) => format!("'{}'", self.schema.constant_name(*c)),
        };
        let mut first = true;
        for a in &self.atoms {
            if !first {
                write!(f, " ∧ ")?;
            }
            first = false;
            let args: Vec<String> = a.args.iter().map(term).collect();
            write!(f, "{}({})", self.schema.relation(a.rel).name, args.join(","))?;
        }
        for ineq in &self.inequalities {
            if !first {
                write!(f, " ∧ ")?;
            }
            first = false;
            write!(f, "{} ≠ {}", term(&ineq.lhs), term(&ineq.rhs))?;
        }
        if first {
            write!(f, "⊤")?;
        }
        Ok(())
    }
}

impl fmt::Debug for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bagcq_structure::SchemaBuilder;

    fn schema2() -> Arc<Schema> {
        let mut b = SchemaBuilder::default();
        b.relation("E", 2);
        b.relation("F", 2);
        b.constant("a");
        b.build()
    }

    fn path2(schema: &Arc<Schema>) -> Query {
        // E(x, y) ∧ E(y, z)
        let mut qb = Query::builder(Arc::clone(schema));
        let x = qb.var("x");
        let y = qb.var("y");
        let z = qb.var("z");
        qb.atom_named("E", &[x, y]).atom_named("E", &[y, z]);
        qb.build()
    }

    #[test]
    fn build_basics() {
        let s = schema2();
        let q = path2(&s);
        assert_eq!(q.var_count(), 3);
        assert_eq!(q.atoms().len(), 2);
        assert!(q.is_pure());
        assert_eq!(q.stats().variables, 3);
    }

    #[test]
    fn var_identity_by_name() {
        let s = schema2();
        let mut qb = Query::builder(s);
        let x1 = qb.var("x");
        let x2 = qb.var("x");
        assert_eq!(x1, x2);
        assert_eq!(qb.build().var_count(), 1);
    }

    #[test]
    fn conj_shares_by_name() {
        let s = schema2();
        let q1 = path2(&s); // vars x,y,z
        let mut qb = Query::builder(Arc::clone(&s));
        let y = qb.var("y");
        let w = qb.var("w");
        qb.atom_named("F", &[y, w]);
        let q2 = qb.build();
        let c = q1.conj(&q2);
        // y shared; w fresh: 4 variables total, 3 atoms.
        assert_eq!(c.var_count(), 4);
        assert_eq!(c.atoms().len(), 3);
    }

    #[test]
    fn disjoint_conj_renames_apart() {
        let s = schema2();
        let q = path2(&s);
        let d = q.disjoint_conj(&q);
        assert_eq!(d.var_count(), 6);
        assert_eq!(d.atoms().len(), 4);
    }

    #[test]
    fn power_counts() {
        let s = schema2();
        let q = path2(&s);
        let p = q.power(3);
        assert_eq!(p.var_count(), 9);
        assert_eq!(p.atoms().len(), 6);
        let p0 = q.power(0);
        assert_eq!(p0.var_count(), 0);
        assert_eq!(p0.atoms().len(), 0);
    }

    #[test]
    fn strip_inequalities() {
        let s = schema2();
        let mut qb = Query::builder(Arc::clone(&s));
        let x = qb.var("x");
        let y = qb.var("y");
        qb.atom_named("E", &[x, y]).neq(x, y);
        let q = qb.build();
        assert!(!q.is_pure());
        assert_eq!(q.inequalities().len(), 1);
        let stripped = q.strip_inequalities();
        assert!(stripped.is_pure());
        assert_eq!(stripped.atoms().len(), 1);
    }

    #[test]
    fn canonical_structure_roundtrip() {
        let s = schema2();
        let q = path2(&s);
        let (d, vv) = q.canonical_structure();
        // 1 constant vertex + 3 variable vertices.
        assert_eq!(d.vertex_count(), 4);
        let e = s.relation_by_name("E").unwrap();
        assert_eq!(d.atom_count(e), 2);
        assert!(d.contains_atom(e, &[vv[0], vv[1]]));
        assert!(d.contains_atom(e, &[vv[1], vv[2]]));
    }

    #[test]
    fn canonical_structure_with_constants() {
        let s = schema2();
        let mut qb = Query::builder(Arc::clone(&s));
        let a = qb.constant("a");
        let x = qb.var("x");
        qb.atom_named("E", &[a, x]);
        let q = qb.build();
        let (d, vv) = q.canonical_structure();
        let e = s.relation_by_name("E").unwrap();
        let av = d.constant_vertex(s.constant_by_name("a").unwrap());
        assert!(d.contains_atom(e, &[av, vv[0]]));
    }

    #[test]
    fn constants_used() {
        let s = schema2();
        let mut qb = Query::builder(Arc::clone(&s));
        let a = qb.constant("a");
        let x = qb.var("x");
        qb.atom_named("E", &[a, x]);
        let q = qb.build();
        assert_eq!(q.constants_used(), vec![s.constant_by_name("a").unwrap()]);
        assert!(path2(&s).constants_used().is_empty());
    }

    #[test]
    fn transport_across_union() {
        let s1 = schema2();
        let mut b2 = SchemaBuilder::default();
        b2.relation("P", 3);
        b2.constant("a");
        let s2 = b2.build();
        let (merged, e1, _e2) = Schema::disjoint_union(&s1, &s2);
        let q = path2(&s1);
        let t = q.transport(Arc::clone(&merged), &e1);
        assert_eq!(t.schema().relation_count(), 3);
        assert_eq!(t.atoms().len(), 2);
        assert_eq!(merged.relation(t.atoms()[0].rel).name, "E");
    }

    #[test]
    fn display_is_readable() {
        let s = schema2();
        let mut qb = Query::builder(Arc::clone(&s));
        let a = qb.constant("a");
        let x = qb.var("x");
        qb.atom_named("E", &[x, a]).neq(x, a);
        let q = qb.build();
        let shown = q.to_string();
        assert!(shown.contains("E(x,'a')"), "{shown}");
        assert!(shown.contains("≠"), "{shown}");
        assert_eq!(Query::empty(s).to_string(), "⊤");
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_mismatch_panics() {
        let s = schema2();
        let mut qb = Query::builder(s);
        let x = qb.var("x");
        qb.atom_named("E", &[x]);
    }

    #[test]
    fn fingerprint_tracks_equality() {
        let s = schema2();
        let q1 = path2(&s);
        let q2 = path2(&s);
        assert_eq!(q1, q2);
        assert_eq!(q1.fingerprint(), q2.fingerprint());
        // A different atom list gives a different fingerprint…
        let mut qb = Query::builder(Arc::clone(&s));
        let x = qb.var("x");
        let y = qb.var("y");
        qb.atom_named("E", &[x, y]);
        let shorter = qb.build();
        assert_ne!(q1.fingerprint(), shorter.fingerprint());
        // …and so does adding an inequality to an otherwise equal query.
        let mut qb = Query::builder(Arc::clone(&s));
        let x = qb.var("x");
        let y = qb.var("y");
        let z = qb.var("z");
        qb.atom_named("E", &[x, y]).atom_named("E", &[y, z]).neq(x, z);
        assert_ne!(q1.fingerprint(), qb.build().fingerprint());
    }
}
