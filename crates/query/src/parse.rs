//! A small text syntax for conjunctive queries.
//!
//! ```text
//!     E(x, y), E(y, z), S1('a', x), x != z
//! ```
//!
//! * atoms are `Rel(t1, …, tk)` with relation names `[A-Za-z_][A-Za-z0-9_]*`;
//! * terms are variables (bare identifiers) or constants (single-quoted);
//! * `t != t'` adds an inequality atom;
//! * conjuncts are separated by `,` or `&` or `∧`.
//!
//! Two entry points: [`parse_query`] parses against an existing schema
//! (relations and constants must exist, arities must match), and
//! [`parse_query_infer`] additionally *builds* the schema from what it
//! sees — convenient for CLI use and tests.

use crate::query::{Query, QueryBuilder, Term};
use bagcq_structure::{Schema, SchemaBuilder};
use std::fmt;
use std::sync::Arc;

/// Error from the query parser.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseQueryError {
    /// Human-readable message with position information.
    pub message: String,
}

impl fmt::Display for ParseQueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "query parse error: {}", self.message)
    }
}

impl std::error::Error for ParseQueryError {}

fn err<T>(message: impl Into<String>) -> Result<T, ParseQueryError> {
    Err(ParseQueryError { message: message.into() })
}

/// A parsed conjunct before schema resolution.
#[derive(Debug, Clone)]
enum RawConjunct {
    Atom { rel: String, args: Vec<RawTerm> },
    Neq(RawTerm, RawTerm),
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum RawTerm {
    Var(String),
    Const(String),
}

/// Tokenizes and parses the surface syntax into raw conjuncts.
fn parse_raw(src: &str) -> Result<Vec<RawConjunct>, ParseQueryError> {
    let mut out = Vec::new();
    let mut rest = src.trim();
    if rest.is_empty() {
        return Ok(out);
    }
    loop {
        let (conjunct, tail) = parse_conjunct(rest)?;
        out.push(conjunct);
        rest = tail.trim_start();
        if rest.is_empty() {
            return Ok(out);
        }
        // Separator.
        if let Some(t) = rest
            .strip_prefix(',')
            .or_else(|| rest.strip_prefix('&'))
            .or_else(|| rest.strip_prefix('∧'))
        {
            rest = t.trim_start();
            if rest.is_empty() {
                return err("trailing separator");
            }
        } else {
            return err(format!("expected ',' before {rest:?}"));
        }
    }
}

fn ident(src: &str) -> Option<(&str, &str)> {
    let mut end = 0;
    for (i, ch) in src.char_indices() {
        let ok = if i == 0 {
            ch.is_ascii_alphabetic() || ch == '_'
        } else {
            ch.is_ascii_alphanumeric() || ch == '_'
        };
        if !ok {
            break;
        }
        end = i + ch.len_utf8();
    }
    if end == 0 {
        None
    } else {
        Some((&src[..end], &src[end..]))
    }
}

fn parse_term(src: &str) -> Result<(RawTerm, &str), ParseQueryError> {
    let src = src.trim_start();
    if let Some(tail) = src.strip_prefix('\'') {
        let Some(close) = tail.find('\'') else {
            return err("unterminated constant quote");
        };
        let name = &tail[..close];
        if name.is_empty() {
            return err("empty constant name");
        }
        return Ok((RawTerm::Const(name.to_string()), &tail[close + 1..]));
    }
    match ident(src) {
        Some((name, tail)) => Ok((RawTerm::Var(name.to_string()), tail)),
        None => err(format!("expected a term at {src:?}")),
    }
}

fn parse_conjunct(src: &str) -> Result<(RawConjunct, &str), ParseQueryError> {
    let src = src.trim_start();
    // Try an atom first: identifier followed by '('.
    if let Some((name, tail)) = ident(src) {
        let t = tail.trim_start();
        if let Some(mut t) = t.strip_prefix('(') {
            let mut args = Vec::new();
            loop {
                let (term, rest) = parse_term(t)?;
                args.push(term);
                let rest = rest.trim_start();
                if let Some(r) = rest.strip_prefix(',') {
                    t = r;
                    continue;
                }
                if let Some(r) = rest.strip_prefix(')') {
                    return Ok((RawConjunct::Atom { rel: name.to_string(), args }, r));
                }
                return err(format!("expected ',' or ')' in atom {name} at {rest:?}"));
            }
        }
    }
    // Otherwise an inequality `t != t'` (or `t ≠ t'`).
    let (lhs, rest) = parse_term(src)?;
    let rest = rest.trim_start();
    let rest = rest
        .strip_prefix("!=")
        .or_else(|| rest.strip_prefix('≠'))
        .ok_or_else(|| ParseQueryError { message: format!("expected '!=' at {rest:?}") })?;
    let (rhs, rest) = parse_term(rest)?;
    Ok((RawConjunct::Neq(lhs, rhs), rest))
}

fn resolve(raw: Vec<RawConjunct>, schema: Arc<Schema>) -> Result<Query, ParseQueryError> {
    let mut qb = Query::builder(Arc::clone(&schema));
    let term = |qb: &mut QueryBuilder, t: &RawTerm| -> Result<Term, ParseQueryError> {
        match t {
            RawTerm::Var(name) => Ok(qb.var(name)),
            RawTerm::Const(name) => match schema.constant_by_name(name) {
                Some(c) => Ok(Term::Const(c)),
                None => err(format!("unknown constant '{name}'")),
            },
        }
    };
    for c in raw {
        match c {
            RawConjunct::Atom { rel, args } => {
                let Some(r) = schema.relation_by_name(&rel) else {
                    return err(format!("unknown relation {rel}"));
                };
                if schema.arity(r) != args.len() {
                    return err(format!(
                        "relation {rel} has arity {}, got {} arguments",
                        schema.arity(r),
                        args.len()
                    ));
                }
                let mut terms = Vec::with_capacity(args.len());
                for a in &args {
                    terms.push(term(&mut qb, a)?);
                }
                qb.atom(r, &terms);
            }
            RawConjunct::Neq(l, r) => {
                let lt = term(&mut qb, &l)?;
                let rt = term(&mut qb, &r)?;
                qb.neq(lt, rt);
            }
        }
    }
    Ok(qb.build())
}

/// Parses a query against an existing schema.
pub fn parse_query(schema: &Arc<Schema>, src: &str) -> Result<Query, ParseQueryError> {
    resolve(parse_raw(src)?, Arc::clone(schema))
}

/// Parses a query, inferring the schema (relations with their observed
/// arities, constants from quoted names). Inconsistent arities across
/// atoms are an error.
pub fn parse_query_infer(src: &str) -> Result<(Query, Arc<Schema>), ParseQueryError> {
    let raw = parse_raw(src)?;
    let mut sb = SchemaBuilder::default();
    let mut arities: std::collections::HashMap<&str, usize> = Default::default();
    for c in &raw {
        match c {
            RawConjunct::Atom { rel, args } => {
                // SchemaBuilder panics on arity conflicts; pre-check to
                // return a proper error instead.
                if let Some(&prev) = arities.get(rel.as_str()) {
                    if prev != args.len() {
                        return err(format!(
                            "relation {rel} used with arities {prev} and {}",
                            args.len()
                        ));
                    }
                }
                arities.insert(rel, args.len());
                sb.relation(rel, args.len());
                for a in args {
                    if let RawTerm::Const(name) = a {
                        sb.constant(name);
                    }
                }
            }
            RawConjunct::Neq(l, r) => {
                for t in [l, r] {
                    if let RawTerm::Const(name) = t {
                        sb.constant(name);
                    }
                }
            }
        }
    }
    let schema = sb.build();
    let q = resolve(raw, Arc::clone(&schema))?;
    Ok((q, schema))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bagcq_structure::SchemaBuilder;

    fn schema() -> Arc<Schema> {
        let mut b = SchemaBuilder::default();
        b.relation("E", 2);
        b.relation("T", 3);
        b.constant("a");
        b.build()
    }

    #[test]
    fn parses_simple_path() {
        let q = parse_query(&schema(), "E(x,y), E(y,z)").unwrap();
        assert_eq!(q.var_count(), 3);
        assert_eq!(q.atoms().len(), 2);
        assert!(q.is_pure());
    }

    #[test]
    fn parses_constants_and_inequalities() {
        let q = parse_query(&schema(), "E('a', x), x != y, T(x,y,'a')").unwrap();
        assert_eq!(q.atoms().len(), 2);
        assert_eq!(q.inequalities().len(), 1);
        assert_eq!(q.constants_used().len(), 1);
    }

    #[test]
    fn alternative_separators() {
        let q = parse_query(&schema(), "E(x,y) & E(y,z) ∧ E(z,w)").unwrap();
        assert_eq!(q.atoms().len(), 3);
    }

    #[test]
    fn unicode_neq() {
        let q = parse_query(&schema(), "E(x,y), x ≠ y").unwrap();
        assert_eq!(q.inequalities().len(), 1);
    }

    #[test]
    fn error_cases() {
        let s = schema();
        assert!(parse_query(&s, "F(x)").is_err()); // unknown relation
        assert!(parse_query(&s, "E(x)").is_err()); // wrong arity
        assert!(parse_query(&s, "E(x,'zzz')").is_err()); // unknown constant
        assert!(parse_query(&s, "E(x,y),").is_err()); // trailing comma
        assert!(parse_query(&s, "E(x,y) E(y,z)").is_err()); // missing separator
        assert!(parse_query(&s, "x == y").is_err()); // not a conjunct
        assert!(parse_query(&s, "E(x,'unclosed)").is_err());
    }

    #[test]
    fn empty_query_is_top() {
        let q = parse_query(&schema(), "   ").unwrap();
        assert_eq!(q.atoms().len(), 0);
        assert_eq!(q.var_count(), 0);
    }

    #[test]
    fn infer_builds_schema() {
        let (q, s) = parse_query_infer("Edge(x,y), Edge(y,z), Label('red', x)").unwrap();
        assert_eq!(s.relation_count(), 2);
        assert_eq!(s.arity(s.relation_by_name("Edge").unwrap()), 2);
        assert_eq!(s.constant_count(), 1);
        assert_eq!(q.atoms().len(), 3);
    }

    #[test]
    fn roundtrip_display_parse() {
        let s = schema();
        let q = parse_query(&s, "E(x,y), T(x,y,'a'), x != y").unwrap();
        let shown = q.to_string();
        let q2 = parse_query(&s, &shown.replace('∧', ",").replace('≠', "!=")).unwrap();
        assert_eq!(q.atoms(), q2.atoms());
        assert_eq!(q.inequalities().len(), q2.inequalities().len());
    }
}

#[cfg(test)]
mod infer_tests {
    use super::*;

    #[test]
    fn infer_rejects_arity_conflicts() {
        assert!(parse_query_infer("E(x,y), E(x,y,z)").is_err());
    }

    #[test]
    fn infer_collects_constants_from_inequalities() {
        let (_, s) = parse_query_infer("E(x,y), x != 'a'").unwrap();
        assert!(s.constant_by_name("a").is_some());
    }
}
