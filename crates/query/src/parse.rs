//! A small text syntax for conjunctive queries.
//!
//! ```text
//!     E(x, y), E(y, z), S1('a', x), x != z
//! ```
//!
//! * atoms are `Rel(t1, …, tk)` with relation names `[A-Za-z_][A-Za-z0-9_]*`;
//! * terms are variables (bare identifiers) or constants (single-quoted);
//! * `t != t'` adds an inequality atom;
//! * conjuncts are separated by `,` or `&` or `∧`.
//!
//! Two entry points: [`parse_query`] parses against an existing schema
//! (relations and constants must exist, arities must match), and
//! [`parse_query_infer`] additionally *builds* the schema from what it
//! sees — convenient for CLI use and tests.
//!
//! Errors carry the **line/column** of the offending token and can render
//! a caret-style snippet ([`ParseQueryError::render`]) — the serving
//! layer returns these verbatim in `400` responses, so a client sees
//! exactly where its frame went wrong.

use crate::query::{Query, QueryBuilder, Term};
use bagcq_structure::{Schema, SchemaBuilder};
use std::fmt;
use std::sync::Arc;

/// Error from the query parser (also used by the DLGP wire syntax in
/// [`crate::dlgp`]): a message plus the 1-based line/column it points at
/// and the offending source line, so callers can render a caret snippet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseQueryError {
    /// Human-readable description of what went wrong.
    pub message: String,
    /// 1-based line of the offending position.
    pub line: u32,
    /// 1-based column (in characters) of the offending position.
    pub col: u32,
    /// The full source line the error points into (caret rendering).
    pub src_line: String,
}

impl ParseQueryError {
    /// Builds an error pointing at byte `offset` of `src`.
    pub(crate) fn at(src: &str, offset: usize, message: impl Into<String>) -> Self {
        let offset = offset.min(src.len());
        let before = &src[..offset];
        let line_start = before.rfind('\n').map_or(0, |i| i + 1);
        let line = before.matches('\n').count() as u32 + 1;
        let col = src[line_start..offset].chars().count() as u32 + 1;
        let src_line = src[line_start..].lines().next().unwrap_or("").to_string();
        ParseQueryError { message: message.into(), line, col, src_line }
    }

    /// A two-line caret snippet pointing at the error column:
    ///
    /// ```text
    ///   |  E(x y)
    ///   |      ^
    /// ```
    pub fn caret_snippet(&self) -> String {
        let pad: String =
            self.src_line.chars().take(self.col.saturating_sub(1) as usize).map(|_| ' ').collect();
        format!("  |  {}\n  |  {pad}^", self.src_line)
    }

    /// The full multi-line rendering: position, message, caret snippet.
    pub fn render(&self) -> String {
        format!(
            "query parse error at line {}, column {}: {}\n{}",
            self.line,
            self.col,
            self.message,
            self.caret_snippet()
        )
    }
}

impl fmt::Display for ParseQueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "query parse error at line {}, column {}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for ParseQueryError {}

/// A shared scanning cursor over the source text, tracking the byte
/// offset so every error carries an exact position. Used by this module
/// and the DLGP wire syntax ([`crate::dlgp`]).
pub(crate) struct Cursor<'a> {
    pub(crate) src: &'a str,
    pub(crate) pos: usize,
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(src: &'a str) -> Self {
        Cursor { src, pos: 0 }
    }

    pub(crate) fn rest(&self) -> &'a str {
        &self.src[self.pos..]
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.pos >= self.src.len()
    }

    /// Skips whitespace (and, when `comments` is set, `%`/`#` line
    /// comments — the DLGP syntax allows them, the inline query syntax
    /// has no use for them but tolerates them harmlessly).
    pub(crate) fn skip_trivia(&mut self, comments: bool) {
        loop {
            let rest = self.rest();
            let trimmed = rest.trim_start();
            self.pos += rest.len() - trimmed.len();
            if comments && (trimmed.starts_with('%') || trimmed.starts_with('#')) {
                match trimmed.find('\n') {
                    Some(nl) => self.pos += nl + 1,
                    None => self.pos = self.src.len(),
                }
                continue;
            }
            return;
        }
    }

    pub(crate) fn eat(&mut self, ch: char) -> bool {
        if self.rest().starts_with(ch) {
            self.pos += ch.len_utf8();
            true
        } else {
            false
        }
    }

    pub(crate) fn eat_str(&mut self, s: &str) -> bool {
        if self.rest().starts_with(s) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    /// Scans an identifier `[A-Za-z_][A-Za-z0-9_]*`; `None` (without
    /// advancing) when the cursor is not at one.
    pub(crate) fn ident(&mut self) -> Option<&'a str> {
        let rest = self.rest();
        let mut end = 0;
        for (i, ch) in rest.char_indices() {
            let ok = if i == 0 {
                ch.is_ascii_alphabetic() || ch == '_'
            } else {
                ch.is_ascii_alphanumeric() || ch == '_'
            };
            if !ok {
                break;
            }
            end = i + ch.len_utf8();
        }
        if end == 0 {
            None
        } else {
            let name = &rest[..end];
            self.pos += end;
            Some(name)
        }
    }

    pub(crate) fn error<T>(&self, message: impl Into<String>) -> Result<T, ParseQueryError> {
        Err(ParseQueryError::at(self.src, self.pos, message))
    }

    pub(crate) fn error_at<T>(
        &self,
        offset: usize,
        message: impl Into<String>,
    ) -> Result<T, ParseQueryError> {
        Err(ParseQueryError::at(self.src, offset, message))
    }

    /// A short preview of the unparsed input, for error messages.
    pub(crate) fn preview(&self) -> String {
        let rest = self.rest();
        let end = rest
            .char_indices()
            .take_while(|&(i, c)| i < 24 && c != '\n')
            .last()
            .map_or(0, |(i, c)| i + c.len_utf8());
        if end < rest.trim_end().len() {
            format!("{}…", &rest[..end])
        } else {
            rest[..end].to_string()
        }
    }
}

/// A parsed conjunct before schema resolution. Offsets point into the
/// source so resolution errors (unknown relation, arity mismatch) carry
/// positions too.
#[derive(Debug, Clone)]
pub(crate) enum RawConjunct {
    Atom { rel: String, rel_pos: usize, args: Vec<RawTerm> },
    Neq(RawTerm, RawTerm),
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct RawTerm {
    pub(crate) kind: RawTermKind,
    pub(crate) pos: usize,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum RawTermKind {
    Var(String),
    Const(String),
}

/// Tokenizes and parses the surface syntax into raw conjuncts.
fn parse_raw(src: &str) -> Result<Vec<RawConjunct>, ParseQueryError> {
    let mut out = Vec::new();
    let mut cur = Cursor::new(src);
    cur.skip_trivia(false);
    if cur.is_empty() {
        return Ok(out);
    }
    loop {
        out.push(parse_conjunct(&mut cur)?);
        cur.skip_trivia(false);
        if cur.is_empty() {
            return Ok(out);
        }
        // Separator.
        if cur.eat(',') || cur.eat('&') || cur.eat('∧') {
            cur.skip_trivia(false);
            if cur.is_empty() {
                return cur.error("trailing separator");
            }
        } else {
            return cur.error(format!("expected ',' before {:?}", cur.preview()));
        }
    }
}

fn parse_term(cur: &mut Cursor<'_>) -> Result<RawTerm, ParseQueryError> {
    cur.skip_trivia(false);
    let pos = cur.pos;
    if cur.eat('\'') {
        let rest = cur.rest();
        let Some(close) = rest.find('\'') else {
            return cur.error_at(pos, "unterminated constant quote");
        };
        let name = &rest[..close];
        if name.is_empty() {
            return cur.error_at(pos, "empty constant name");
        }
        cur.pos += close + 1;
        return Ok(RawTerm { kind: RawTermKind::Const(name.to_string()), pos });
    }
    match cur.ident() {
        Some(name) => Ok(RawTerm { kind: RawTermKind::Var(name.to_string()), pos }),
        None => cur.error(format!("expected a term at {:?}", cur.preview())),
    }
}

fn parse_conjunct(cur: &mut Cursor<'_>) -> Result<RawConjunct, ParseQueryError> {
    cur.skip_trivia(false);
    // Try an atom first: identifier followed by '('.
    let start = cur.pos;
    if let Some(name) = cur.ident() {
        let rel_pos = start;
        cur.skip_trivia(false);
        if cur.eat('(') {
            let mut args = Vec::new();
            loop {
                args.push(parse_term(cur)?);
                cur.skip_trivia(false);
                if cur.eat(',') {
                    continue;
                }
                if cur.eat(')') {
                    return Ok(RawConjunct::Atom { rel: name.to_string(), rel_pos, args });
                }
                return cur
                    .error(format!("expected ',' or ')' in atom {name} at {:?}", cur.preview()));
            }
        }
        // Not an atom: rewind and fall through to the inequality form.
        cur.pos = start;
    }
    // Otherwise an inequality `t != t'` (or `t ≠ t'`).
    let lhs = parse_term(cur)?;
    cur.skip_trivia(false);
    if !(cur.eat_str("!=") || cur.eat('≠')) {
        return cur.error(format!("expected '!=' at {:?}", cur.preview()));
    }
    let rhs = parse_term(cur)?;
    Ok(RawConjunct::Neq(lhs, rhs))
}

fn resolve(
    src: &str,
    raw: Vec<RawConjunct>,
    schema: Arc<Schema>,
) -> Result<Query, ParseQueryError> {
    let mut qb = Query::builder(Arc::clone(&schema));
    let term = |qb: &mut QueryBuilder, t: &RawTerm| -> Result<Term, ParseQueryError> {
        match &t.kind {
            RawTermKind::Var(name) => Ok(qb.var(name)),
            RawTermKind::Const(name) => match schema.constant_by_name(name) {
                Some(c) => Ok(Term::Const(c)),
                None => Err(ParseQueryError::at(src, t.pos, format!("unknown constant '{name}'"))),
            },
        }
    };
    for c in raw {
        match c {
            RawConjunct::Atom { rel, rel_pos, args } => {
                let Some(r) = schema.relation_by_name(&rel) else {
                    return Err(ParseQueryError::at(
                        src,
                        rel_pos,
                        format!("unknown relation {rel}"),
                    ));
                };
                if schema.arity(r) != args.len() {
                    return Err(ParseQueryError::at(
                        src,
                        rel_pos,
                        format!(
                            "relation {rel} has arity {}, got {} arguments",
                            schema.arity(r),
                            args.len()
                        ),
                    ));
                }
                let mut terms = Vec::with_capacity(args.len());
                for a in &args {
                    terms.push(term(&mut qb, a)?);
                }
                qb.atom(r, &terms);
            }
            RawConjunct::Neq(l, r) => {
                let lt = term(&mut qb, &l)?;
                let rt = term(&mut qb, &r)?;
                qb.neq(lt, rt);
            }
        }
    }
    Ok(qb.build())
}

/// Parses a query against an existing schema.
pub fn parse_query(schema: &Arc<Schema>, src: &str) -> Result<Query, ParseQueryError> {
    resolve(src, parse_raw(src)?, Arc::clone(schema))
}

/// Parses a query, inferring the schema (relations with their observed
/// arities, constants from quoted names). Inconsistent arities across
/// atoms are an error.
pub fn parse_query_infer(src: &str) -> Result<(Query, Arc<Schema>), ParseQueryError> {
    let raw = parse_raw(src)?;
    let mut sb = SchemaBuilder::default();
    let mut arities: std::collections::HashMap<&str, usize> = Default::default();
    for c in &raw {
        match c {
            RawConjunct::Atom { rel, rel_pos, args } => {
                // SchemaBuilder panics on arity conflicts; pre-check to
                // return a proper error instead.
                if let Some(&prev) = arities.get(rel.as_str()) {
                    if prev != args.len() {
                        return Err(ParseQueryError::at(
                            src,
                            *rel_pos,
                            format!("relation {rel} used with arities {prev} and {}", args.len()),
                        ));
                    }
                }
                arities.insert(rel, args.len());
                sb.relation(rel, args.len());
                for a in args {
                    if let RawTermKind::Const(name) = &a.kind {
                        sb.constant(name);
                    }
                }
            }
            RawConjunct::Neq(l, r) => {
                for t in [l, r] {
                    if let RawTermKind::Const(name) = &t.kind {
                        sb.constant(name);
                    }
                }
            }
        }
    }
    let schema = sb.build();
    let q = resolve(src, raw, Arc::clone(&schema))?;
    Ok((q, schema))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bagcq_structure::SchemaBuilder;

    fn schema() -> Arc<Schema> {
        let mut b = SchemaBuilder::default();
        b.relation("E", 2);
        b.relation("T", 3);
        b.constant("a");
        b.build()
    }

    #[test]
    fn parses_simple_path() {
        let q = parse_query(&schema(), "E(x,y), E(y,z)").unwrap();
        assert_eq!(q.var_count(), 3);
        assert_eq!(q.atoms().len(), 2);
        assert!(q.is_pure());
    }

    #[test]
    fn parses_constants_and_inequalities() {
        let q = parse_query(&schema(), "E('a', x), x != y, T(x,y,'a')").unwrap();
        assert_eq!(q.atoms().len(), 2);
        assert_eq!(q.inequalities().len(), 1);
        assert_eq!(q.constants_used().len(), 1);
    }

    #[test]
    fn alternative_separators() {
        let q = parse_query(&schema(), "E(x,y) & E(y,z) ∧ E(z,w)").unwrap();
        assert_eq!(q.atoms().len(), 3);
    }

    #[test]
    fn unicode_neq() {
        let q = parse_query(&schema(), "E(x,y), x ≠ y").unwrap();
        assert_eq!(q.inequalities().len(), 1);
    }

    #[test]
    fn error_cases() {
        let s = schema();
        assert!(parse_query(&s, "F(x)").is_err()); // unknown relation
        assert!(parse_query(&s, "E(x)").is_err()); // wrong arity
        assert!(parse_query(&s, "E(x,'zzz')").is_err()); // unknown constant
        assert!(parse_query(&s, "E(x,y),").is_err()); // trailing comma
        assert!(parse_query(&s, "E(x,y) E(y,z)").is_err()); // missing separator
        assert!(parse_query(&s, "x == y").is_err()); // not a conjunct
        assert!(parse_query(&s, "E(x,'unclosed)").is_err());
    }

    #[test]
    fn errors_carry_line_and_column() {
        let s = schema();
        // The unknown relation starts at line 2, column 9.
        let e = parse_query(&s, "E(x,y),\n        F(y,z)").unwrap_err();
        assert_eq!((e.line, e.col), (2, 9), "{e}");
        assert_eq!(e.src_line, "        F(y,z)");
        assert!(e.to_string().contains("line 2, column 9"), "{e}");

        // The bad arity points at the relation name.
        let e = parse_query(&s, "E(x,y,z)").unwrap_err();
        assert_eq!((e.line, e.col), (1, 1), "{e}");

        // The unknown constant points at the term, not the atom.
        let e = parse_query(&s, "E(x, 'zzz')").unwrap_err();
        assert_eq!((e.line, e.col), (1, 6), "{e}");

        // A missing separator points at the second atom.
        let e = parse_query(&s, "E(x,y) E(y,z)").unwrap_err();
        assert_eq!((e.line, e.col), (1, 8), "{e}");
    }

    #[test]
    fn caret_snippet_points_at_the_column() {
        let e = parse_query(&schema(), "E(x, 'zzz')").unwrap_err();
        let rendered = e.render();
        let lines: Vec<&str> = rendered.lines().collect();
        assert_eq!(lines.len(), 3, "{rendered}");
        assert!(lines[0].starts_with("query parse error at line 1, column 6:"), "{rendered}");
        assert_eq!(lines[1], "  |  E(x, 'zzz')");
        assert_eq!(lines[2], "  |       ^");
        // The caret column in the snippet matches `col` (5 spaces + '^').
        let caret_col = lines[2].trim_start_matches("  |  ").len();
        assert_eq!(caret_col as u32, e.col);
    }

    #[test]
    fn empty_query_is_top() {
        let q = parse_query(&schema(), "   ").unwrap();
        assert_eq!(q.atoms().len(), 0);
        assert_eq!(q.var_count(), 0);
    }

    #[test]
    fn infer_builds_schema() {
        let (q, s) = parse_query_infer("Edge(x,y), Edge(y,z), Label('red', x)").unwrap();
        assert_eq!(s.relation_count(), 2);
        assert_eq!(s.arity(s.relation_by_name("Edge").unwrap()), 2);
        assert_eq!(s.constant_count(), 1);
        assert_eq!(q.atoms().len(), 3);
    }

    #[test]
    fn roundtrip_display_parse() {
        let s = schema();
        let q = parse_query(&s, "E(x,y), T(x,y,'a'), x != y").unwrap();
        let shown = q.to_string();
        let q2 = parse_query(&s, &shown.replace('∧', ",").replace('≠', "!=")).unwrap();
        assert_eq!(q.atoms(), q2.atoms());
        assert_eq!(q.inequalities().len(), q2.inequalities().len());
    }
}

#[cfg(test)]
mod infer_tests {
    use super::*;

    #[test]
    fn infer_rejects_arity_conflicts() {
        assert!(parse_query_infer("E(x,y), E(x,y,z)").is_err());
    }

    #[test]
    fn infer_collects_constants_from_inequalities() {
        let (_, s) = parse_query_infer("E(x,y), x != 'a'").unwrap();
        assert!(s.constant_by_name("a").is_some());
    }
}
