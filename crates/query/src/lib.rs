//! # bagcq-query
//!
//! Boolean conjunctive queries for the `bagcq` reproduction of
//! *Bag Semantics Conjunctive Query Containment* (Marcinkowski & Orda,
//! PODS 2024):
//!
//! * [`Query`]: CQs over runtime schemas, with constants and inequality
//!   atoms; the paper's shared conjunction `∧`, disjoint conjunction `∧̄`
//!   (Lemma 1) and exponentiation `θ↑k` (Definition 2); canonical
//!   structures (Section 2.1);
//! * [`PowerQuery`]: symbolic products `∏ θᵢ↑eᵢ` with arbitrary-precision
//!   exponents, required because the Theorem 1 query `φ_b` contains
//!   `δ_b = (…)↑C` with an astronomically large `C`;
//! * [`QueryGen`] and the structured families ([`path_query`],
//!   [`cycle_query`], [`star_query`], [`grid_query`]) used by the
//!   falsification harness and the engine benchmarks.
//!
//! ```
//! use bagcq_query::{parse_query_infer, PowerQuery};
//! use bagcq_arith::Nat;
//!
//! let (q, _schema) = parse_query_infer("E(x,y), E(y,z), x != z").unwrap();
//! assert_eq!(q.var_count(), 3);
//! assert_eq!(q.inequalities().len(), 1);
//!
//! // θ↑k stays symbolic for huge exponents (how δ_b is represented):
//! let symbolic = PowerQuery::power(q, Nat::pow2(100));
//! assert!(symbolic.expand(1_000_000).is_none());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dlgp;
mod gen;
mod output;
mod parse;
mod power_query;
mod query;
mod ucq;

pub use dlgp::{
    parse_bag_instance, parse_bag_instance_infer, parse_dlgp_query, parse_dlgp_query_infer,
    parse_dlgp_union, parse_dlgp_union_infer, query_to_dlgp, union_to_dlgp, BagFact, BagInstance,
};
pub use gen::{cycle_query, grid_query, path_query, star_query, QueryGen, UnionGen};
pub use output::{free_constants, OutputQuery};
pub use parse::{parse_query, parse_query_infer, ParseQueryError};
pub use power_query::{PowerFactor, PowerQuery};
pub use query::{Atom, Inequality, Query, QueryBuilder, QueryStats, Term, VarId};
pub use ucq::UnionQuery;
