//! DLGP-style concrete syntax for queries and bag databases — the wire
//! format of `bagcq-serve`.
//!
//! The syntax follows the DLGP conventions of homomorphism-based
//! containment tooling: **uppercase**-initial (or `_`-initial)
//! identifiers are variables, **lowercase**- or digit-initial tokens are
//! constants, and `"…"` quotes arbitrary constant names. `%` and `#`
//! start line comments.
//!
//! Queries are comma-separated conjunctions with an optional `?-` prefix
//! and an optional terminating period:
//!
//! ```text
//! ?- p(X, Y), q(Y, a), X != Y.
//! ```
//!
//! Databases are lists of **ground** facts, one period-terminated fact
//! each, with multiplicity sugar `@k`:
//!
//! ```text
//! p(a, b). p(a, b). q(b).      % same as p(a,b)@2. q(b).
//! ```
//!
//! Multiplicities are kept faithfully in the [`BagInstance`] so requests
//! round-trip through [`BagInstance::to_dlgp`], while evaluation runs on
//! the **set support** ([`parse_bag_instance`] also returns the
//! collapsed [`Structure`]): in the paper's setting (Section 2),
//! databases are ordinary finite structures and bag semantics lives in
//! the *answer counts* `ψ(D) = |Hom(ψ, D)|`, not in duplicated facts.
//!
//! All parse errors are [`ParseQueryError`]s with line/column spans and
//! caret snippets, which the server returns verbatim in 400 responses.

use crate::parse::{Cursor, ParseQueryError, RawConjunct, RawTerm, RawTermKind};
use crate::query::{Query, QueryBuilder, Term};
use crate::ucq::UnionQuery;
use bagcq_structure::{Schema, SchemaBuilder, Structure, Vertex};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Terms
// ---------------------------------------------------------------------------

/// Is this a valid bare variable token (`[A-Z_][A-Za-z0-9_]*`)?
fn is_bare_var(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_uppercase() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Is this a valid bare constant token (`[a-z][A-Za-z0-9_]*` or digits)?
fn is_bare_const(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_lowercase() => chars.all(|c| c.is_ascii_alphanumeric() || c == '_'),
        Some(c) if c.is_ascii_digit() => chars.all(|c| c.is_ascii_digit()),
        _ => false,
    }
}

/// Renders a constant name as a DLGP term: bare when possible, quoted
/// otherwise. Names containing `"` or newlines are not representable.
fn render_const(name: &str) -> String {
    if is_bare_const(name) {
        name.to_string()
    } else {
        debug_assert!(
            !name.contains('"') && !name.contains('\n'),
            "constant {name:?} is not representable in DLGP"
        );
        format!("\"{name}\"")
    }
}

/// Scans one DLGP term: quoted constant, number, or identifier
/// (classified by case).
fn dlgp_term(cur: &mut Cursor<'_>) -> Result<RawTerm, ParseQueryError> {
    cur.skip_trivia(true);
    let pos = cur.pos;
    if cur.eat('"') {
        let rest = cur.rest();
        let Some(close) = rest.find('"') else {
            return cur.error_at(pos, "unterminated constant quote");
        };
        let name = &rest[..close];
        if name.is_empty() {
            return cur.error_at(pos, "empty constant name");
        }
        if name.contains('\n') {
            return cur.error_at(pos, "constant name spans multiple lines");
        }
        cur.pos += close + 1;
        return Ok(RawTerm { kind: RawTermKind::Const(name.to_string()), pos });
    }
    // Numbers are constants.
    let digits: String = cur.rest().chars().take_while(|c| c.is_ascii_digit()).collect();
    if !digits.is_empty() {
        cur.pos += digits.len();
        return Ok(RawTerm { kind: RawTermKind::Const(digits), pos });
    }
    match cur.ident() {
        Some(name) if is_bare_var(name) => {
            Ok(RawTerm { kind: RawTermKind::Var(name.to_string()), pos })
        }
        Some(name) => Ok(RawTerm { kind: RawTermKind::Const(name.to_string()), pos }),
        None => cur.error(format!("expected a term at {:?}", cur.preview())),
    }
}

// ---------------------------------------------------------------------------
// Queries
// ---------------------------------------------------------------------------

fn dlgp_query_raw(src: &str) -> Result<Vec<RawConjunct>, ParseQueryError> {
    let mut cur = Cursor::new(src);
    let mut out = Vec::new();
    cur.skip_trivia(true);
    cur.eat_str("?-");
    cur.skip_trivia(true);
    // `?- .` and blank input are the empty (always-true) query.
    if cur.eat('.') {
        cur.skip_trivia(true);
    }
    if cur.is_empty() {
        return Ok(out);
    }
    loop {
        out.push(dlgp_conjunct(&mut cur)?);
        cur.skip_trivia(true);
        if cur.eat('.') {
            cur.skip_trivia(true);
            if cur.is_empty() {
                return Ok(out);
            }
            return cur.error(format!("unexpected input after '.': {:?}", cur.preview()));
        }
        if cur.is_empty() {
            return Ok(out);
        }
        if cur.eat(',') || cur.eat('&') || cur.eat('∧') {
            cur.skip_trivia(true);
            if cur.is_empty() {
                return cur.error("trailing separator");
            }
            continue;
        }
        return cur.error(format!("expected ',' or '.' before {:?}", cur.preview()));
    }
}

fn dlgp_conjunct(cur: &mut Cursor<'_>) -> Result<RawConjunct, ParseQueryError> {
    cur.skip_trivia(true);
    let start = cur.pos;
    if let Some(name) = cur.ident() {
        let rel_pos = start;
        cur.skip_trivia(true);
        if cur.eat('(') {
            let mut args = Vec::new();
            loop {
                args.push(dlgp_term(cur)?);
                cur.skip_trivia(true);
                if cur.eat(',') {
                    continue;
                }
                if cur.eat(')') {
                    return Ok(RawConjunct::Atom { rel: name.to_string(), rel_pos, args });
                }
                return cur
                    .error(format!("expected ',' or ')' in atom {name} at {:?}", cur.preview()));
            }
        }
        cur.pos = start;
    }
    let lhs = dlgp_term(cur)?;
    cur.skip_trivia(true);
    if !(cur.eat_str("!=") || cur.eat('≠')) {
        return cur.error(format!("expected '!=' at {:?}", cur.preview()));
    }
    let rhs = dlgp_term(cur)?;
    Ok(RawConjunct::Neq(lhs, rhs))
}

fn resolve_query(
    src: &str,
    raw: Vec<RawConjunct>,
    schema: Arc<Schema>,
) -> Result<Query, ParseQueryError> {
    let mut qb = Query::builder(Arc::clone(&schema));
    let term = |qb: &mut QueryBuilder, t: &RawTerm| -> Result<Term, ParseQueryError> {
        match &t.kind {
            RawTermKind::Var(name) => Ok(qb.var(name)),
            RawTermKind::Const(name) => match schema.constant_by_name(name) {
                Some(c) => Ok(Term::Const(c)),
                None => Err(ParseQueryError::at(src, t.pos, format!("unknown constant {name}"))),
            },
        }
    };
    for c in raw {
        match c {
            RawConjunct::Atom { rel, rel_pos, args } => {
                let Some(r) = schema.relation_by_name(&rel) else {
                    return Err(ParseQueryError::at(
                        src,
                        rel_pos,
                        format!("unknown relation {rel}"),
                    ));
                };
                if schema.arity(r) != args.len() {
                    return Err(ParseQueryError::at(
                        src,
                        rel_pos,
                        format!(
                            "relation {rel} has arity {}, got {} arguments",
                            schema.arity(r),
                            args.len()
                        ),
                    ));
                }
                let mut terms = Vec::with_capacity(args.len());
                for a in &args {
                    terms.push(term(&mut qb, a)?);
                }
                qb.atom(r, &terms);
            }
            RawConjunct::Neq(l, r) => {
                let lt = term(&mut qb, &l)?;
                let rt = term(&mut qb, &r)?;
                qb.neq(lt, rt);
            }
        }
    }
    Ok(qb.build())
}

/// Parses a DLGP query against an existing schema.
pub fn parse_dlgp_query(schema: &Arc<Schema>, src: &str) -> Result<Query, ParseQueryError> {
    resolve_query(src, dlgp_query_raw(src)?, Arc::clone(schema))
}

/// Parses a DLGP query, inferring the schema from the observed relations
/// (with their arities) and constants.
pub fn parse_dlgp_query_infer(src: &str) -> Result<(Query, Arc<Schema>), ParseQueryError> {
    let raw = dlgp_query_raw(src)?;
    let mut sb = SchemaBuilder::default();
    let mut arities: HashMap<&str, usize> = HashMap::new();
    for c in &raw {
        match c {
            RawConjunct::Atom { rel, rel_pos, args } => {
                if let Some(&prev) = arities.get(rel.as_str()) {
                    if prev != args.len() {
                        return Err(ParseQueryError::at(
                            src,
                            *rel_pos,
                            format!("relation {rel} used with arities {prev} and {}", args.len()),
                        ));
                    }
                }
                arities.insert(rel, args.len());
                sb.relation(rel, args.len());
                for a in args {
                    if let RawTermKind::Const(name) = &a.kind {
                        sb.constant(name);
                    }
                }
            }
            RawConjunct::Neq(l, r) => {
                for t in [l, r] {
                    if let RawTermKind::Const(name) = &t.kind {
                        sb.constant(name);
                    }
                }
            }
        }
    }
    let schema = sb.build();
    let q = resolve_query(src, raw, Arc::clone(&schema))?;
    Ok((q, schema))
}

/// Serializes a query into DLGP syntax, round-trippable through
/// [`parse_dlgp_query`]. Variables whose names are not valid DLGP
/// variable tokens are renamed `V0, V1, …` (by id); queries coming *from*
/// the DLGP parser keep their names verbatim.
pub fn query_to_dlgp(q: &Query) -> String {
    // Use original names when they are valid DLGP variables and the
    // whole set stays injective after substituting fallbacks; otherwise
    // rename everything positionally.
    let n = q.var_count();
    let mut names: Vec<String> = Vec::with_capacity(n as usize);
    for v in 0..n {
        let name = q.var_name(crate::query::VarId(v));
        if is_bare_var(name) {
            names.push(name.to_string());
        } else {
            names.push(format!("V{v}"));
        }
    }
    {
        let mut seen = std::collections::HashSet::new();
        if !names.iter().all(|n| seen.insert(n.as_str())) {
            names = (0..n).map(|v| format!("V{v}")).collect();
        }
    }
    let schema = q.schema();
    let term = |t: &Term| match t {
        Term::Var(v) => names[v.0 as usize].clone(),
        Term::Const(c) => render_const(schema.constant_name(*c)),
    };
    let mut parts: Vec<String> = Vec::new();
    for a in q.atoms() {
        let args: Vec<String> = a.args.iter().map(term).collect();
        parts.push(format!("{}({})", schema.relation(a.rel).name, args.join(", ")));
    }
    for ineq in q.inequalities() {
        parts.push(format!("{} != {}", term(&ineq.lhs), term(&ineq.rhs)));
    }
    if parts.is_empty() {
        "?- .".to_string()
    } else {
        format!("?- {}.", parts.join(", "))
    }
}

// ---------------------------------------------------------------------------
// Unions of queries
// ---------------------------------------------------------------------------

/// Scans a union source into one raw conjunct list per rule. Each rule
/// optionally starts with `?-`; a period ends a rule (the last rule's
/// period is optional at end of input), so a UCQ is simply a sequence of
/// DLGP query rules, one disjunct each.
fn dlgp_union_raw(src: &str) -> Result<Vec<Vec<RawConjunct>>, ParseQueryError> {
    let mut cur = Cursor::new(src);
    let mut rules = Vec::new();
    loop {
        cur.skip_trivia(true);
        if cur.is_empty() {
            return Ok(rules);
        }
        cur.eat_str("?-");
        cur.skip_trivia(true);
        // `?- .` is the empty (always-true) disjunct.
        if cur.eat('.') {
            rules.push(Vec::new());
            continue;
        }
        let mut conjs = Vec::new();
        loop {
            conjs.push(dlgp_conjunct(&mut cur)?);
            cur.skip_trivia(true);
            if cur.eat('.') || cur.is_empty() {
                break;
            }
            if cur.eat(',') || cur.eat('&') || cur.eat('∧') {
                cur.skip_trivia(true);
                if cur.is_empty() {
                    return cur.error("trailing separator");
                }
                continue;
            }
            // `;` (or `∨`) splits disjuncts within one rule:
            // `?- e(X, Y) ; f(X).` is a two-disjunct union. Variables
            // are scoped per disjunct, as in every UCQ formalism.
            if cur.eat(';') || cur.eat('∨') {
                cur.skip_trivia(true);
                if cur.is_empty() {
                    return cur.error("trailing separator");
                }
                rules.push(std::mem::take(&mut conjs));
                continue;
            }
            return cur.error(format!("expected ',', ';' or '.' before {:?}", cur.preview()));
        }
        rules.push(conjs);
    }
}

/// Parses a DLGP union of queries against an existing schema: one
/// period-terminated rule per disjunct. The empty source is the empty
/// union (evaluates to 0 everywhere).
pub fn parse_dlgp_union(schema: &Arc<Schema>, src: &str) -> Result<UnionQuery, ParseQueryError> {
    let rules = dlgp_union_raw(src)?;
    let mut disjuncts = Vec::with_capacity(rules.len());
    for raw in rules {
        disjuncts.push(resolve_query(src, raw, Arc::clone(schema))?);
    }
    Ok(UnionQuery::new(disjuncts))
}

/// Parses a DLGP union of queries, inferring one shared schema across
/// all disjuncts (relations with their arities, constants).
pub fn parse_dlgp_union_infer(src: &str) -> Result<(UnionQuery, Arc<Schema>), ParseQueryError> {
    let rules = dlgp_union_raw(src)?;
    let mut sb = SchemaBuilder::default();
    let mut arities: HashMap<&str, usize> = HashMap::new();
    for c in rules.iter().flatten() {
        match c {
            RawConjunct::Atom { rel, rel_pos, args } => {
                if let Some(&prev) = arities.get(rel.as_str()) {
                    if prev != args.len() {
                        return Err(ParseQueryError::at(
                            src,
                            *rel_pos,
                            format!("relation {rel} used with arities {prev} and {}", args.len()),
                        ));
                    }
                }
                arities.insert(rel, args.len());
                sb.relation(rel, args.len());
                for a in args {
                    if let RawTermKind::Const(name) = &a.kind {
                        sb.constant(name);
                    }
                }
            }
            RawConjunct::Neq(l, r) => {
                for t in [l, r] {
                    if let RawTermKind::Const(name) = &t.kind {
                        sb.constant(name);
                    }
                }
            }
        }
    }
    let schema = sb.build();
    let mut disjuncts = Vec::with_capacity(rules.len());
    for raw in rules {
        disjuncts.push(resolve_query(src, raw, Arc::clone(&schema))?);
    }
    Ok((UnionQuery::new(disjuncts), schema))
}

/// Serializes a union into DLGP syntax, one rule line per disjunct,
/// round-trippable through [`parse_dlgp_union`]. The empty union
/// serializes to the empty string.
pub fn union_to_dlgp(u: &UnionQuery) -> String {
    let mut out = String::new();
    for q in u.disjuncts() {
        out.push_str(&query_to_dlgp(q));
        out.push('\n');
    }
    out
}

// ---------------------------------------------------------------------------
// Bag instances
// ---------------------------------------------------------------------------

/// One ground fact with a multiplicity (`p(a,b)@3`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BagFact {
    /// Relation name.
    pub rel: String,
    /// Constant names, one per argument position.
    pub args: Vec<String>,
    /// Multiplicity (≥ 1; `@k` sugar, default 1).
    pub mult: u64,
}

impl fmt::Display for BagFact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let args: Vec<String> = self.args.iter().map(|a| render_const(a)).collect();
        write!(f, "{}({})", self.rel, args.join(", "))?;
        if self.mult != 1 {
            write!(f, "@{}", self.mult)?;
        }
        write!(f, ".")
    }
}

/// A database under bag semantics: ground facts with multiplicities,
/// kept in input order so serialization round-trips exactly.
///
/// Evaluation runs on the **set support** (see the module docs); the
/// collapsed [`Structure`] is produced by [`parse_bag_instance`] /
/// [`parse_bag_instance_infer`] or [`BagInstance::support`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BagInstance {
    /// The facts, in input order; the same ground atom may repeat.
    pub facts: Vec<BagFact>,
}

impl BagInstance {
    /// Sum of all multiplicities (the bag cardinality).
    pub fn total_multiplicity(&self) -> u64 {
        self.facts.iter().map(|f| f.mult).sum()
    }

    /// Number of *distinct* ground atoms (the support cardinality).
    pub fn distinct_fact_count(&self) -> usize {
        let mut seen = std::collections::HashSet::new();
        self.facts.iter().filter(|f| seen.insert((&f.rel, &f.args))).count()
    }

    /// A canonical form: duplicate facts merged (multiplicities summed)
    /// and sorted. Two instances with the same bag of facts normalize
    /// identically.
    pub fn normalized(&self) -> BagInstance {
        let mut merged: Vec<BagFact> = Vec::new();
        let mut index: HashMap<(String, Vec<String>), usize> = HashMap::new();
        for f in &self.facts {
            let key = (f.rel.clone(), f.args.clone());
            match index.get(&key) {
                Some(&i) => merged[i].mult += f.mult,
                None => {
                    index.insert(key, merged.len());
                    merged.push(f.clone());
                }
            }
        }
        merged.sort();
        BagInstance { facts: merged }
    }

    /// Serializes to DLGP text, one fact per line, round-trippable
    /// through [`parse_bag_instance`].
    pub fn to_dlgp(&self) -> String {
        let mut out = String::new();
        for f in &self.facts {
            out.push_str(&f.to_string());
            out.push('\n');
        }
        out
    }

    /// Builds the set support of the bag over the given schema: one
    /// structure whose domain is the schema's constant vertices, with
    /// each distinct ground atom appearing once. Fails (without a useful
    /// position — prefer the `parse_bag_instance` entry points for
    /// user-facing errors) if a relation/constant is missing or an arity
    /// mismatches.
    pub fn support(&self, schema: &Arc<Schema>) -> Result<Structure, String> {
        let mut d = Structure::new(Arc::clone(schema));
        let mut buf: Vec<Vertex> = Vec::new();
        for f in &self.facts {
            let Some(r) = schema.relation_by_name(&f.rel) else {
                return Err(format!("unknown relation {}", f.rel));
            };
            if schema.arity(r) != f.args.len() {
                return Err(format!(
                    "relation {} has arity {}, got {} arguments",
                    f.rel,
                    schema.arity(r),
                    f.args.len()
                ));
            }
            buf.clear();
            for a in &f.args {
                let Some(c) = schema.constant_by_name(a) else {
                    return Err(format!("unknown constant {a}"));
                };
                buf.push(d.constant_vertex(c));
            }
            d.add_atom(r, &buf);
        }
        Ok(d)
    }
}

/// Parses the raw fact list, without schema resolution. Also records the
/// position of each fact's relation token for later error reporting.
fn bag_raw(src: &str) -> Result<Vec<(BagFact, usize)>, ParseQueryError> {
    let mut cur = Cursor::new(src);
    let mut out = Vec::new();
    loop {
        cur.skip_trivia(true);
        if cur.is_empty() {
            return Ok(out);
        }
        let rel_pos = cur.pos;
        let Some(rel) = cur.ident() else {
            return cur.error(format!("expected a fact at {:?}", cur.preview()));
        };
        cur.skip_trivia(true);
        if !cur.eat('(') {
            return cur.error(format!("expected '(' after relation {rel}"));
        }
        let mut args = Vec::new();
        loop {
            let t = dlgp_term(&mut cur)?;
            match t.kind {
                RawTermKind::Const(name) => args.push(name),
                RawTermKind::Var(name) => {
                    return cur.error_at(
                        t.pos,
                        format!("facts must be ground: {name} is a variable (uppercase)"),
                    );
                }
            }
            cur.skip_trivia(true);
            if cur.eat(',') {
                continue;
            }
            if cur.eat(')') {
                break;
            }
            return cur.error(format!("expected ',' or ')' in fact {rel} at {:?}", cur.preview()));
        }
        cur.skip_trivia(true);
        let mut mult: u64 = 1;
        if cur.eat('@') {
            let mult_pos = cur.pos;
            let digits: String = cur.rest().chars().take_while(|c| c.is_ascii_digit()).collect();
            if digits.is_empty() {
                return cur.error("expected a multiplicity after '@'");
            }
            cur.pos += digits.len();
            mult = match digits.parse::<u64>() {
                Ok(0) => return cur.error_at(mult_pos, "multiplicity must be ≥ 1"),
                Ok(k) => k,
                Err(_) => return cur.error_at(mult_pos, "multiplicity does not fit in u64"),
            };
        }
        cur.skip_trivia(true);
        if !cur.eat('.') {
            return cur.error(format!("expected '.' after fact at {:?}", cur.preview()));
        }
        out.push((BagFact { rel: rel.to_string(), args, mult }, rel_pos));
    }
}

/// Parses a DLGP bag database against an existing schema, returning both
/// the faithful bag view and its set support for evaluation.
pub fn parse_bag_instance(
    schema: &Arc<Schema>,
    src: &str,
) -> Result<(BagInstance, Structure), ParseQueryError> {
    let raw = bag_raw(src)?;
    let mut d = Structure::new(Arc::clone(schema));
    let mut buf: Vec<Vertex> = Vec::new();
    let mut facts = Vec::with_capacity(raw.len());
    for (f, rel_pos) in raw {
        let Some(r) = schema.relation_by_name(&f.rel) else {
            return Err(ParseQueryError::at(src, rel_pos, format!("unknown relation {}", f.rel)));
        };
        if schema.arity(r) != f.args.len() {
            return Err(ParseQueryError::at(
                src,
                rel_pos,
                format!(
                    "relation {} has arity {}, got {} arguments",
                    f.rel,
                    schema.arity(r),
                    f.args.len()
                ),
            ));
        }
        buf.clear();
        for a in &f.args {
            let Some(c) = schema.constant_by_name(a) else {
                return Err(ParseQueryError::at(src, rel_pos, format!("unknown constant {a}")));
            };
            buf.push(d.constant_vertex(c));
        }
        d.add_atom(r, &buf);
        facts.push(f);
    }
    Ok((BagInstance { facts }, d))
}

/// Parses a DLGP bag database, inferring the schema (relations with
/// their arities, constants from the fact arguments).
pub fn parse_bag_instance_infer(
    src: &str,
) -> Result<(BagInstance, Structure, Arc<Schema>), ParseQueryError> {
    let raw = bag_raw(src)?;
    let mut sb = SchemaBuilder::default();
    let mut arities: HashMap<&str, usize> = HashMap::new();
    for (f, rel_pos) in &raw {
        if let Some(&prev) = arities.get(f.rel.as_str()) {
            if prev != f.args.len() {
                return Err(ParseQueryError::at(
                    src,
                    *rel_pos,
                    format!("relation {} used with arities {prev} and {}", f.rel, f.args.len()),
                ));
            }
        }
        arities.insert(&f.rel, f.args.len());
        sb.relation(&f.rel, f.args.len());
        for a in &f.args {
            sb.constant(a);
        }
    }
    let schema = sb.build();
    let (bag, support) = parse_bag_instance(&schema, src)?;
    Ok((bag, support, schema))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_query_with_case_convention() {
        let (q, s) = parse_dlgp_query_infer("?- p(X, Y), q(Y, a), X != Y.").unwrap();
        assert_eq!(q.var_count(), 2);
        assert_eq!(q.atoms().len(), 2);
        assert_eq!(q.inequalities().len(), 1);
        assert_eq!(s.constant_count(), 1);
        assert!(s.constant_by_name("a").is_some());
    }

    #[test]
    fn prefix_and_period_are_optional() {
        let (a, _) = parse_dlgp_query_infer("?- p(X, Y).").unwrap();
        let (b, _) = parse_dlgp_query_infer("p(X, Y)").unwrap();
        assert_eq!(a.atoms().len(), b.atoms().len());
        assert_eq!(a.var_count(), b.var_count());
    }

    #[test]
    fn comments_are_skipped() {
        let (q, _) = parse_dlgp_query_infer(
            "% a path query\n?- e(X, Y), # inline tail comment\n   e(Y, Z).",
        )
        .unwrap();
        assert_eq!(q.atoms().len(), 2);
        assert_eq!(q.var_count(), 3);
    }

    #[test]
    fn quoted_and_numeric_constants() {
        let (q, s) = parse_dlgp_query_infer("?- p(\"Hello World\", 42, x1).").unwrap();
        assert_eq!(q.var_count(), 0);
        assert_eq!(s.constant_count(), 3);
        assert!(s.constant_by_name("Hello World").is_some());
        assert!(s.constant_by_name("42").is_some());
        assert!(s.constant_by_name("x1").is_some());
    }

    #[test]
    fn underscore_initial_is_a_variable() {
        let (q, _) = parse_dlgp_query_infer("?- p(_x, Y).").unwrap();
        assert_eq!(q.var_count(), 2);
    }

    #[test]
    fn empty_query_forms() {
        for src in ["", "  ", "?- .", "% only a comment\n"] {
            let (q, _) = parse_dlgp_query_infer(src).unwrap();
            assert_eq!(q.atoms().len(), 0, "src {src:?}");
        }
    }

    #[test]
    fn query_round_trips() {
        let src = "?- p(X, Y), q(Y, a), r(\"Weird Name\", 7), X != Y.";
        let (q, s) = parse_dlgp_query_infer(src).unwrap();
        let text = query_to_dlgp(&q);
        let back = parse_dlgp_query(&s, &text).unwrap();
        assert_eq!(q, back, "text: {text}");
        assert_eq!(text, src);
    }

    #[test]
    fn query_serializer_mangles_invalid_names() {
        // Internal names like `x` (from the classic syntax) are not valid
        // DLGP variables; the serializer renames them but preserves
        // structure.
        let (q, s) = crate::parse::parse_query_infer("E(x,y), E(y,z), x != z").unwrap();
        let text = query_to_dlgp(&q);
        let back = parse_dlgp_query(&s, &text).unwrap();
        assert_eq!(q.atoms(), back.atoms());
        assert_eq!(q.inequalities().len(), back.inequalities().len());
        assert_eq!(q.var_count(), back.var_count());
    }

    #[test]
    fn union_round_trips_preserving_disjunct_count() {
        let src = "?- p(X, Y), q(Y, a).\n?- p(X, X).\n?- q(X, Y), X != Y.\n";
        let (u, s) = parse_dlgp_union_infer(src).unwrap();
        assert_eq!(u.len(), 3);
        let text = union_to_dlgp(&u);
        let back = parse_dlgp_union(&s, &text).unwrap();
        assert_eq!(back.len(), u.len());
        for (a, b) in u.disjuncts().iter().zip(back.disjuncts()) {
            assert_eq!(a, b, "text:\n{text}");
        }
        assert_eq!(text, src);
    }

    #[test]
    fn semicolon_splits_disjuncts_within_a_rule() {
        // `;` inside one rule is the inline union syntax; equivalent to
        // one rule per disjunct. Variables are scoped per disjunct.
        let (u, s) = parse_dlgp_union_infer("?- e(X, Y) ; f(X).").unwrap();
        assert_eq!(u.len(), 2);
        assert_eq!(u.disjuncts()[0].atoms().len(), 1);
        assert_eq!(u.disjuncts()[1].atoms().len(), 1);
        let (v, _) = parse_dlgp_union_infer("?- e(X, Y).\n?- f(X).").unwrap();
        assert_eq!(u.disjuncts(), v.disjuncts());
        // Mixed forms and multi-atom disjuncts compose.
        let (w, _) = parse_dlgp_union_infer("?- e(X, Y), e(Y, Z) ; f(X).\n?- e(A, A).").unwrap();
        assert_eq!(w.len(), 3);
        assert_eq!(w.disjuncts()[0].atoms().len(), 2);
        // The serializer's one-rule-per-line output still round-trips.
        let back = parse_dlgp_union(&s, &union_to_dlgp(&u)).unwrap();
        assert_eq!(back.disjuncts(), u.disjuncts());
        // A trailing `;` is an error, as with every other separator.
        assert!(parse_dlgp_union_infer("?- e(X, Y) ;").is_err());
    }

    #[test]
    fn union_empty_and_single_forms() {
        // Empty source ↔ empty union.
        let (u, _) = parse_dlgp_union_infer("").unwrap();
        assert!(u.is_empty());
        assert_eq!(union_to_dlgp(&u), "");
        // An empty disjunct is preserved.
        let (u, _) = parse_dlgp_union_infer("?- .\n?- p(X).").unwrap();
        assert_eq!(u.len(), 2);
        assert_eq!(u.disjuncts()[0].atoms().len(), 0);
        // A single rule parses as a one-disjunct union, final period
        // optional.
        let (u, _) = parse_dlgp_union_infer("?- p(X, Y)").unwrap();
        assert_eq!(u.len(), 1);
    }

    #[test]
    fn union_shares_one_schema_and_rejects_arity_conflicts() {
        let (u, s) = parse_dlgp_union_infer("?- p(X, b).\n?- p(Y, c).").unwrap();
        assert_eq!(s.constant_count(), 2);
        for q in u.disjuncts() {
            assert!(Arc::ptr_eq(q.schema(), &s));
        }
        assert!(parse_dlgp_union_infer("?- p(X).\n?- p(X, Y).").is_err());
    }

    #[test]
    fn parses_bag_instance_with_multiplicities() {
        let (bag, d, s) = parse_bag_instance_infer("p(a, b). p(a, b). q(b)@3.").unwrap();
        assert_eq!(bag.facts.len(), 3);
        assert_eq!(bag.total_multiplicity(), 5);
        assert_eq!(bag.distinct_fact_count(), 2);
        // The support collapses the duplicate p(a,b).
        let p = s.relation_by_name("p").unwrap();
        let q = s.relation_by_name("q").unwrap();
        assert_eq!(d.atom_count(p), 1);
        assert_eq!(d.atom_count(q), 1);
        assert_eq!(s.constant_count(), 2);
    }

    #[test]
    fn bag_round_trips() {
        let src = "p(a, b).\np(a, b).\nq(b)@3.\nr(\"Weird Name\", 42).\n";
        let (bag, _, s) = parse_bag_instance_infer(src).unwrap();
        assert_eq!(bag.to_dlgp(), src);
        let (back, _) = parse_bag_instance(&s, &bag.to_dlgp()).unwrap();
        assert_eq!(bag, back);
    }

    #[test]
    fn normalized_merges_and_sorts() {
        let (bag, _, _) = parse_bag_instance_infer("q(b). p(a, b)@2. p(a, b).").unwrap();
        let n = bag.normalized();
        assert_eq!(n.facts.len(), 2);
        assert_eq!(n.facts[0].rel, "p");
        assert_eq!(n.facts[0].mult, 3);
        assert_eq!(n.total_multiplicity(), bag.total_multiplicity());
        // Normalization is canonical: permuted input normalizes equally.
        let (bag2, _, _) = parse_bag_instance_infer("p(a, b)@3. q(b).").unwrap();
        assert_eq!(bag2.normalized(), n);
    }

    #[test]
    fn support_matches_parse_support() {
        let (bag, d, s) = parse_bag_instance_infer("e(a, b)@2. e(b, c).").unwrap();
        let d2 = bag.support(&s).unwrap();
        assert_eq!(d, d2);
    }

    #[test]
    fn bag_errors_have_positions() {
        // Variables in facts are rejected, pointing at the variable.
        let e = parse_bag_instance_infer("p(a, X).").unwrap_err();
        assert_eq!((e.line, e.col), (1, 6), "{e}");
        assert!(e.message.contains("ground"), "{e}");

        // Missing period.
        let e = parse_bag_instance_infer("p(a, b)").unwrap_err();
        assert!(e.message.contains("'.'"), "{e}");

        // Bad multiplicities.
        assert!(parse_bag_instance_infer("p(a)@0.").is_err());
        assert!(parse_bag_instance_infer("p(a)@.").is_err());
        assert!(parse_bag_instance_infer("p(a)@99999999999999999999999.").is_err());

        // Arity conflicts across facts point at the offending fact (line 2).
        let e = parse_bag_instance_infer("p(a, b).\np(a).").unwrap_err();
        assert_eq!(e.line, 2, "{e}");
    }

    #[test]
    fn query_against_schema_rejects_unknowns() {
        let (_, _, s) = parse_bag_instance_infer("e(a, b).").unwrap();
        assert!(parse_dlgp_query(&s, "?- e(X, Y).").is_ok());
        assert!(parse_dlgp_query(&s, "?- f(X, Y).").is_err());
        assert!(parse_dlgp_query(&s, "?- e(X).").is_err());
        assert!(parse_dlgp_query(&s, "?- e(X, zz).").is_err());
    }

    #[test]
    fn counts_run_on_the_support() {
        // Bag multiplicities do not change |Hom(ψ, D)| — the paper's
        // databases are set structures; answer counts carry the bag.
        let (q, _) = parse_dlgp_query_infer("?- e(X, Y).").unwrap();
        let (_, d1, s1) = parse_bag_instance_infer("e(a, b).").unwrap();
        let (_, d5, s5) = parse_bag_instance_infer("e(a, b)@5.").unwrap();
        assert_eq!(s1, s5);
        assert_eq!(d1, d5);
        assert_eq!(q.atoms().len(), 1);
    }
}
