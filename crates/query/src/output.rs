//! Non-boolean conjunctive queries (queries with output variables).
//!
//! The paper works with boolean queries throughout, but its Section 2.3
//! explains how constants relate to free variables: for boolean queries
//! `φ_s`, `φ_b` with a tuple of constants `a⃗`, and the *non-boolean*
//! queries `φ′_s`, `φ′_b` obtained by reading `a⃗` as free variables,
//!
//! > `φ_b` contains `φ_s` **iff** `φ′_b` contains `φ′_s` —
//! > for any semantics (set or multiset).
//!
//! An [`OutputQuery`] is a CQ together with an ordered tuple of output
//! (free) variables; under bag semantics its answer on `D` is the
//! *multirelation* mapping each output tuple to the number of
//! homomorphisms producing it (evaluated in `bagcq-homcount`).
//! [`free_constants`] performs the §2.3 transformation.

use crate::query::{Atom, Inequality, Query, Term, VarId};
use bagcq_structure::ConstId;
use std::sync::Arc;

/// A conjunctive query with ordered output variables.
#[derive(Clone)]
pub struct OutputQuery {
    /// The underlying (implicitly existentially quantified) CQ.
    pub query: Query,
    /// The output (free) variables, in answer-tuple order.
    pub outputs: Vec<VarId>,
}

impl OutputQuery {
    /// Wraps a boolean query (no outputs).
    pub fn boolean(query: Query) -> Self {
        OutputQuery { query, outputs: Vec::new() }
    }

    /// Builds an output query, validating that each output variable
    /// exists in the query.
    pub fn new(query: Query, outputs: Vec<VarId>) -> Self {
        for &v in &outputs {
            assert!(v.0 < query.var_count(), "output variable out of range");
        }
        OutputQuery { query, outputs }
    }

    /// Arity of the answer relation.
    pub fn output_arity(&self) -> usize {
        self.outputs.len()
    }

    /// `true` iff boolean.
    pub fn is_boolean(&self) -> bool {
        self.outputs.is_empty()
    }
}

/// The §2.3 transformation: replaces every occurrence of the given
/// constants by fresh *free* variables, returning the resulting
/// [`OutputQuery`] (outputs ordered like `constants`).
///
/// Occurrences of the same constant all become the same variable, which
/// is exactly the reading "the tuple `a⃗`, now understood as a tuple of
/// free variables".
pub fn free_constants(q: &Query, constants: &[ConstId]) -> OutputQuery {
    let schema = Arc::clone(q.schema());
    let mut qb = Query::builder(Arc::clone(&schema));
    // Re-create the original variables under their names.
    let old_vars: Vec<Term> = (0..q.var_count()).map(|v| qb.var(q.var_name(VarId(v)))).collect();
    // One fresh variable per freed constant.
    let freed: Vec<Term> =
        constants.iter().map(|c| qb.var(&format!("freed_{}", schema.constant_name(*c)))).collect();
    let remap = |t: &Term| -> Term {
        match t {
            Term::Var(v) => old_vars[v.0 as usize],
            Term::Const(c) => match constants.iter().position(|cc| cc == c) {
                Some(i) => freed[i],
                None => Term::Const(*c),
            },
        }
    };
    for Atom { rel, args } in q.atoms() {
        let new_args: Vec<Term> = args.iter().map(remap).collect();
        qb.atom(*rel, &new_args);
    }
    for Inequality { lhs, rhs } in q.inequalities() {
        let l = remap(lhs);
        let r = remap(rhs);
        qb.neq(l, r);
    }
    let query = qb.build();
    let outputs: Vec<VarId> = freed
        .iter()
        .map(|t| match t {
            Term::Var(v) => *v,
            Term::Const(_) => unreachable!("freed terms are variables"),
        })
        .collect();
    OutputQuery::new(query, outputs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bagcq_structure::SchemaBuilder;

    fn schema() -> Arc<bagcq_structure::Schema> {
        let mut b = SchemaBuilder::default();
        b.relation("E", 2);
        b.constant("a");
        b.constant("b");
        b.build()
    }

    #[test]
    fn boolean_wrapper() {
        let s = schema();
        let mut qb = Query::builder(Arc::clone(&s));
        let x = qb.var("x");
        qb.atom_named("E", &[x, x]);
        let oq = OutputQuery::boolean(qb.build());
        assert!(oq.is_boolean());
        assert_eq!(oq.output_arity(), 0);
    }

    #[test]
    fn free_constants_replaces_all_occurrences() {
        let s = schema();
        let mut qb = Query::builder(Arc::clone(&s));
        let a = qb.constant("a");
        let b = qb.constant("b");
        let x = qb.var("x");
        qb.atom_named("E", &[a, x]).atom_named("E", &[x, a]).atom_named("E", &[a, b]);
        let q = qb.build();

        let ca = s.constant_by_name("a").unwrap();
        let oq = free_constants(&q, &[ca]);
        // 'a' gone, 'b' stays; one new output variable.
        assert_eq!(oq.output_arity(), 1);
        assert_eq!(oq.query.constants_used(), vec![s.constant_by_name("b").unwrap()]);
        assert_eq!(oq.query.var_count(), 2); // x + freed_a
                                             // All three atoms survive with the freed variable in a's slots.
        assert_eq!(oq.query.atoms().len(), 3);
    }

    #[test]
    fn freeing_no_constants_is_identity_shape() {
        let s = schema();
        let mut qb = Query::builder(Arc::clone(&s));
        let x = qb.var("x");
        let y = qb.var("y");
        qb.atom_named("E", &[x, y]).neq(x, y);
        let q = qb.build();
        let oq = free_constants(&q, &[]);
        assert!(oq.is_boolean());
        assert_eq!(oq.query.atoms(), q.atoms());
        assert_eq!(oq.query.inequalities().len(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn new_validates_outputs() {
        let s = schema();
        let q = Query::empty(s);
        let _ = OutputQuery::new(q, vec![VarId(0)]);
    }
}
