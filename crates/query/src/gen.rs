//! Random conjunctive-query generation for property tests, the
//! adversarial falsification corpus, and benchmark workloads, plus the
//! classic structured query families (paths, cycles, stars, grids) used
//! by the engine-comparison experiments (E-PERF1).

use crate::query::{Query, Term};
use crate::ucq::UnionQuery;
use bagcq_structure::Schema;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Parameters for random CQ sampling.
#[derive(Clone, Debug)]
pub struct QueryGen {
    /// Number of variables.
    pub variables: u32,
    /// Number of relational atoms.
    pub atoms: usize,
    /// Probability that an argument position is a constant (when the
    /// schema has constants).
    pub constant_prob: f64,
    /// Number of inequality atoms to add between random variable pairs.
    pub inequalities: usize,
}

impl Default for QueryGen {
    fn default() -> Self {
        QueryGen { variables: 4, atoms: 5, constant_prob: 0.1, inequalities: 0 }
    }
}

impl QueryGen {
    /// Samples a query over `schema` with a deterministic seed.
    pub fn sample(&self, schema: &Arc<Schema>, seed: u64) -> Query {
        let mut rng = StdRng::seed_from_u64(seed);
        self.sample_with(schema, &mut rng)
    }

    /// Samples a query using a caller-provided RNG.
    pub fn sample_with(&self, schema: &Arc<Schema>, rng: &mut StdRng) -> Query {
        assert!(self.variables >= 1, "need at least one variable");
        let mut qb = Query::builder(Arc::clone(schema));
        let vars: Vec<Term> = (0..self.variables).map(|i| qb.var(&format!("v{i}"))).collect();
        let n_consts = schema.constant_count();
        let rels: Vec<_> = schema.relations().collect();
        assert!(!rels.is_empty(), "schema has no relations");
        let mut atom_args: Vec<Term> = Vec::new();
        for _ in 0..self.atoms {
            let rel = rels[rng.gen_range(0..rels.len())];
            let arity = schema.arity(rel);
            let args: Vec<Term> = (0..arity)
                .map(|_| {
                    if n_consts > 0 && rng.gen::<f64>() < self.constant_prob {
                        Term::Const(bagcq_structure::ConstId(rng.gen_range(0..n_consts) as u32))
                    } else {
                        vars[rng.gen_range(0..vars.len())]
                    }
                })
                .collect();
            atom_args.extend(args.iter().copied().filter(|t| matches!(t, Term::Var(_))));
            qb.atom(rel, &args);
        }
        // Inequality atoms go between *distinct* variables that occur in
        // some relational atom — `x ≠ x` is trivially false and a variable
        // never bound by an atom would make the query ill-formed for the
        // counting kernels' purposes. With fewer than two bound variables
        // no inequality can be placed and the knob degrades to zero.
        if self.inequalities > 0 {
            let bound: Vec<Term> = vars.iter().copied().filter(|v| atom_args.contains(v)).collect();
            if bound.len() >= 2 {
                for _ in 0..self.inequalities {
                    let i = rng.gen_range(0..bound.len());
                    let mut j = rng.gen_range(0..bound.len() - 1);
                    if j >= i {
                        j += 1;
                    }
                    qb.neq(bound[i], bound[j]);
                }
            }
        }
        qb.build()
    }
}

/// Parameters for random UCQ sampling: a number of disjuncts, each drawn
/// independently from the inner [`QueryGen`]. Used by the falsification
/// corpus (`bagcq-falsify`) to exercise the bag-union law
/// `(φ₁ ∨ … ∨ φ_r)(D) = φ₁(D) + … + φ_r(D)`.
#[derive(Clone, Debug)]
pub struct UnionGen {
    /// Minimum number of disjuncts (≥ 1).
    pub disjuncts_min: usize,
    /// Maximum number of disjuncts (inclusive).
    pub disjuncts_max: usize,
    /// Per-disjunct CQ parameters.
    pub query: QueryGen,
}

impl Default for UnionGen {
    fn default() -> Self {
        UnionGen { disjuncts_min: 1, disjuncts_max: 3, query: QueryGen::default() }
    }
}

impl UnionGen {
    /// Samples a UCQ over `schema` with a deterministic seed.
    pub fn sample(&self, schema: &Arc<Schema>, seed: u64) -> UnionQuery {
        let mut rng = StdRng::seed_from_u64(seed);
        self.sample_with(schema, &mut rng)
    }

    /// Samples a UCQ using a caller-provided RNG.
    pub fn sample_with(&self, schema: &Arc<Schema>, rng: &mut StdRng) -> UnionQuery {
        assert!(self.disjuncts_min >= 1, "a UCQ needs at least one disjunct");
        assert!(self.disjuncts_min <= self.disjuncts_max, "empty disjunct range");
        let r = rng.gen_range(self.disjuncts_min..=self.disjuncts_max);
        UnionQuery::new((0..r).map(|_| self.query.sample_with(schema, rng)).collect())
    }
}

/// A directed path query `E(x₀,x₁) ∧ … ∧ E(x_{n−1},x_n)` over a binary
/// relation.
pub fn path_query(schema: &Arc<Schema>, rel: &str, edges: u32) -> Query {
    let mut qb = Query::builder(Arc::clone(schema));
    let vars: Vec<Term> = (0..=edges).map(|i| qb.var(&format!("p{i}"))).collect();
    for i in 0..edges as usize {
        qb.atom_named(rel, &[vars[i], vars[i + 1]]);
    }
    qb.build()
}

/// A directed cycle query of length `n` over a binary relation.
pub fn cycle_query(schema: &Arc<Schema>, rel: &str, n: u32) -> Query {
    assert!(n >= 1);
    let mut qb = Query::builder(Arc::clone(schema));
    let vars: Vec<Term> = (0..n).map(|i| qb.var(&format!("c{i}"))).collect();
    for i in 0..n as usize {
        qb.atom_named(rel, &[vars[i], vars[(i + 1) % n as usize]]);
    }
    qb.build()
}

/// A star query `E(c, l₁) ∧ … ∧ E(c, l_n)` (center → leaves).
pub fn star_query(schema: &Arc<Schema>, rel: &str, leaves: u32) -> Query {
    let mut qb = Query::builder(Arc::clone(schema));
    let c = qb.var("center");
    for i in 0..leaves {
        let l = qb.var(&format!("leaf{i}"));
        qb.atom_named(rel, &[c, l]);
    }
    qb.build()
}

/// A `w×h` grid query with right- and down-edges; treewidth `min(w,h)`,
/// the standard stress test separating the tree-decomposition counter from
/// naive enumeration.
pub fn grid_query(schema: &Arc<Schema>, rel: &str, w: u32, h: u32) -> Query {
    let mut qb = Query::builder(Arc::clone(schema));
    let var = |qb: &mut crate::query::QueryBuilder, x: u32, y: u32| qb.var(&format!("g{x}_{y}"));
    for y in 0..h {
        for x in 0..w {
            let v = var(&mut qb, x, y);
            if x + 1 < w {
                let r = var(&mut qb, x + 1, y);
                qb.atom_named(rel, &[v, r]);
            }
            if y + 1 < h {
                let d = var(&mut qb, x, y + 1);
                qb.atom_named(rel, &[v, d]);
            }
        }
    }
    qb.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bagcq_structure::SchemaBuilder;

    fn digraph() -> Arc<Schema> {
        let mut b = SchemaBuilder::default();
        b.relation("E", 2);
        b.build()
    }

    #[test]
    fn random_is_deterministic() {
        let s = digraph();
        let g = QueryGen::default();
        let q1 = g.sample(&s, 9);
        let q2 = g.sample(&s, 9);
        assert_eq!(q1.atoms(), q2.atoms());
    }

    #[test]
    fn families_have_expected_shapes() {
        let s = digraph();
        let p = path_query(&s, "E", 4);
        assert_eq!(p.var_count(), 5);
        assert_eq!(p.atoms().len(), 4);
        let c = cycle_query(&s, "E", 4);
        assert_eq!(c.var_count(), 4);
        assert_eq!(c.atoms().len(), 4);
        let st = star_query(&s, "E", 6);
        assert_eq!(st.var_count(), 7);
        assert_eq!(st.atoms().len(), 6);
        let g = grid_query(&s, "E", 3, 2);
        assert_eq!(g.var_count(), 6);
        assert_eq!(g.atoms().len(), 7); // 2*2 right + 3*1 down... (w-1)*h + w*(h-1) = 4 + 3
    }

    #[test]
    fn inequalities_generated() {
        let s = digraph();
        let g = QueryGen { inequalities: 3, ..Default::default() };
        let q = g.sample(&s, 1);
        assert_eq!(q.inequalities().len(), 3);
        for ineq in q.inequalities() {
            assert_ne!(ineq.lhs, ineq.rhs, "inequality between identical terms");
        }
    }

    #[test]
    fn single_variable_queries_get_no_inequalities() {
        // With one variable there is no distinct pair to separate; the
        // knob degrades to zero instead of emitting the trivially false
        // `x ≠ x`.
        let s = digraph();
        let g = QueryGen { variables: 1, atoms: 2, inequalities: 4, ..Default::default() };
        let q = g.sample(&s, 3);
        assert_eq!(q.inequalities().len(), 0);
    }

    #[test]
    fn union_gen_is_deterministic_and_in_range() {
        let s = digraph();
        let ug = UnionGen { disjuncts_min: 2, disjuncts_max: 4, ..Default::default() };
        for seed in 0..8 {
            let u1 = ug.sample(&s, seed);
            let u2 = ug.sample(&s, seed);
            assert!((2..=4).contains(&u1.len()), "seed {seed}");
            assert_eq!(u1.to_string(), u2.to_string(), "seed {seed}");
        }
    }

    #[test]
    fn cycle_of_length_one_is_loop() {
        let s = digraph();
        let c = cycle_query(&s, "E", 1);
        assert_eq!(c.var_count(), 1);
        assert_eq!(c.atoms().len(), 1);
        assert_eq!(c.atoms()[0].args[0], c.atoms()[0].args[1]);
    }
}
