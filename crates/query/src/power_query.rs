//! Symbolic products of query powers.
//!
//! The Theorem 1 output query `φ_b = π_b ∧̄ ζ_b ∧̄ δ_b` contains the factor
//! `δ_b = (∧̄_{l∈L} δ_{b,l}) ↑ C` whose exponent `C = c·ζ_b(D_Arena)` is
//! astronomically large — materializing `δ_b` as a flat conjunction is
//! impossible (it would have `C·Σl` variables). A [`PowerQuery`] keeps such
//! queries in the factored form
//!
//! ```text
//!     Φ  =  θ₁↑e₁  ∧̄  θ₂↑e₂  ∧̄  …  ∧̄  θ_r↑e_r
//! ```
//!
//! with arbitrary-precision exponents. By Lemma 1 and Definition 2,
//! `Φ(D) = ∏ᵢ θᵢ(D)^{eᵢ}`, so the factored form is evaluation-equivalent
//! to the flat query while staying polynomial-sized. The `bagcq-homcount`
//! crate evaluates each base once and assembles the product as a certified
//! [`bagcq_arith::Magnitude`].

use crate::query::{Query, QueryStats};
use bagcq_arith::Nat;
use std::fmt;

/// A factor `θ↑e` of a [`PowerQuery`].
#[derive(Clone)]
pub struct PowerFactor {
    /// The base query `θ`.
    pub base: Query,
    /// The exponent `e` (an arbitrary-precision natural).
    pub exponent: Nat,
}

/// A symbolic disjoint conjunction of query powers.
#[derive(Clone)]
pub struct PowerQuery {
    factors: Vec<PowerFactor>,
}

impl PowerQuery {
    /// The empty product (the trivially true query; evaluates to 1).
    pub fn unit() -> Self {
        PowerQuery { factors: Vec::new() }
    }

    /// A single query with exponent 1.
    pub fn from_query(q: Query) -> Self {
        PowerQuery { factors: vec![PowerFactor { base: q, exponent: Nat::one() }] }
    }

    /// `θ↑e` for an arbitrary-precision exponent.
    pub fn power(q: Query, e: Nat) -> Self {
        if e.is_zero() {
            return PowerQuery::unit();
        }
        PowerQuery { factors: vec![PowerFactor { base: q, exponent: e }] }
    }

    /// Symbolic disjoint conjunction: concatenates the factor lists.
    pub fn disjoint_conj(mut self, other: PowerQuery) -> PowerQuery {
        self.factors.extend(other.factors);
        self
    }

    /// Raises the whole product to the power `e`:
    /// `(∏ θᵢ^{eᵢ})↑e = ∏ θᵢ^{eᵢ·e}`.
    pub fn pow(mut self, e: &Nat) -> PowerQuery {
        if e.is_zero() {
            return PowerQuery::unit();
        }
        for f in &mut self.factors {
            f.exponent = f.exponent.mul_ref(e);
        }
        self
    }

    /// The factors.
    pub fn factors(&self) -> &[PowerFactor] {
        &self.factors
    }

    /// `true` iff no factor carries an inequality.
    pub fn is_pure(&self) -> bool {
        self.factors.iter().all(|f| f.base.is_pure())
    }

    /// Expands to a flat [`Query`], when the total exponent mass is small
    /// enough to materialize (used by tests to cross-validate the symbolic
    /// evaluation against a direct count). Returns `None` when any exponent
    /// exceeds `max_copies` in total.
    pub fn expand(&self, max_copies: u64) -> Option<Query> {
        let mut total: u64 = 0;
        for f in &self.factors {
            let e = f.exponent.to_u64()?;
            total = total.checked_add(e)?;
            if total > max_copies {
                return None;
            }
        }
        let schema = self.factors.first().map(|f| f.base.schema().clone())?;
        let mut acc = Query::empty(schema);
        for f in &self.factors {
            let e = f.exponent.to_u64().unwrap() as u32;
            acc = acc.disjoint_conj(&f.base.power(e));
        }
        Some(acc)
    }

    /// Aggregate statistics of the *symbolic* representation: the size of
    /// the object we actually construct (polynomial in the input), as
    /// opposed to the size of the expanded query (exponential).
    pub fn symbolic_stats(&self) -> QueryStats {
        let mut s = QueryStats { variables: 0, atoms: 0, inequalities: 0 };
        for f in &self.factors {
            let fs = f.base.stats();
            s.variables += fs.variables;
            s.atoms += fs.atoms;
            s.inequalities += fs.inequalities;
        }
        s
    }

    /// Total inequality count of the *expanded* query: `Σ eᵢ·ineq(θᵢ)`.
    pub fn expanded_inequalities(&self) -> Nat {
        let mut total = Nat::zero();
        for f in &self.factors {
            let per = Nat::from_u64(f.base.stats().inequalities as u64);
            total.add_assign_ref(&per.mul_ref(&f.exponent));
        }
        total
    }
}

impl fmt::Display for PowerQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.factors.is_empty() {
            return write!(f, "⊤");
        }
        for (i, fac) in self.factors.iter().enumerate() {
            if i > 0 {
                write!(f, " ∧̄ ")?;
            }
            if fac.exponent.is_one() {
                write!(f, "({})", fac.base)?;
            } else {
                write!(f, "({})↑{}", fac.base, fac.exponent)?;
            }
        }
        Ok(())
    }
}

impl fmt::Debug for PowerQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bagcq_structure::SchemaBuilder;

    fn edge_query() -> Query {
        let mut b = SchemaBuilder::default();
        b.relation("E", 2);
        let schema = b.build();
        let mut qb = Query::builder(schema);
        let x = qb.var("x");
        let y = qb.var("y");
        qb.atom_named("E", &[x, y]);
        qb.build()
    }

    #[test]
    fn unit_and_single() {
        assert!(PowerQuery::unit().factors().is_empty());
        let p = PowerQuery::from_query(edge_query());
        assert_eq!(p.factors().len(), 1);
        assert!(p.factors()[0].exponent.is_one());
    }

    #[test]
    fn power_zero_collapses() {
        let p = PowerQuery::power(edge_query(), Nat::zero());
        assert!(p.factors().is_empty());
    }

    #[test]
    fn pow_multiplies_exponents() {
        let p = PowerQuery::power(edge_query(), Nat::from_u64(3)).pow(&Nat::from_u64(5));
        assert_eq!(p.factors()[0].exponent, Nat::from_u64(15));
    }

    #[test]
    fn expand_small() {
        let p = PowerQuery::power(edge_query(), Nat::from_u64(3));
        let flat = p.expand(10).unwrap();
        assert_eq!(flat.atoms().len(), 3);
        assert_eq!(flat.var_count(), 6);
    }

    #[test]
    fn expand_refuses_huge() {
        let p = PowerQuery::power(edge_query(), Nat::pow2(80));
        assert!(p.expand(1_000_000).is_none());
    }

    #[test]
    fn expanded_inequality_accounting() {
        let q = edge_query();
        let mut qb = Query::builder(q.schema().clone());
        let x = qb.var("x");
        let y = qb.var("y");
        qb.atom_named("E", &[x, y]).neq(x, y);
        let with_ineq = qb.build();
        let p =
            PowerQuery::power(with_ineq, Nat::from_u64(7)).disjoint_conj(PowerQuery::from_query(q));
        assert_eq!(p.expanded_inequalities(), Nat::from_u64(7));
        assert!(!p.is_pure());
    }

    #[test]
    fn display() {
        let p = PowerQuery::power(edge_query(), Nat::from_u64(4));
        let s = p.to_string();
        assert!(s.contains("↑4"), "{s}");
        assert_eq!(PowerQuery::unit().to_string(), "⊤");
    }
}
