//! Property tests for the random query generator, focused on the
//! `inequalities` knob — the one `QueryGen` path the unit tests did not
//! pin down. Generated queries must be well-formed (atoms respect the
//! schema, all terms resolve), inequality atoms must connect *distinct*
//! variables that are bound by some relational atom, and sampling must
//! be a pure function of the seed.

use bagcq_query::{QueryGen, Term, UnionGen};
use bagcq_structure::{Schema, SchemaBuilder};
use proptest::prelude::*;
use std::collections::HashSet;
use std::sync::Arc;

fn schema() -> Arc<Schema> {
    let mut b = SchemaBuilder::default();
    b.relation("E", 2);
    b.relation("T", 3);
    b.constant("a");
    b.constant("b");
    b.build()
}

/// Variable ids occurring in relational atoms.
fn bound_vars(q: &bagcq_query::Query) -> HashSet<u32> {
    q.atoms()
        .iter()
        .flat_map(|a| a.args.iter())
        .filter_map(|t| match t {
            Term::Var(v) => Some(v.0),
            Term::Const(_) => None,
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Every sampled query is well-formed: the requested number of
    /// relational atoms, schema-correct arities, and every term either a
    /// declared variable or a schema constant.
    #[test]
    fn generated_queries_are_well_formed(
        seed in 0u64..1_000_000,
        vars in 1u32..6,
        atoms in 1usize..7,
        ineqs in 0usize..4,
        constant_prob in 0.0f64..0.5,
    ) {
        let s = schema();
        let qg = QueryGen { variables: vars, atoms, constant_prob, inequalities: ineqs };
        let q = qg.sample(&s, seed);
        prop_assert_eq!(q.atoms().len(), atoms);
        prop_assert!(q.var_count() <= vars);
        for a in q.atoms() {
            prop_assert_eq!(a.args.len(), s.arity(a.rel));
            for t in &a.args {
                match t {
                    Term::Var(v) => prop_assert!(v.0 < q.var_count()),
                    Term::Const(c) => prop_assert!((c.0 as usize) < s.constant_count()),
                }
            }
        }
    }

    /// Inequality atoms reference *bound* variables only — variables that
    /// occur in some relational atom — and never relate a variable to
    /// itself. When fewer than two bound variables exist the knob
    /// degrades to zero instead of emitting `x ≠ x`.
    #[test]
    fn inequalities_reference_distinct_bound_variables(
        seed in 0u64..1_000_000,
        vars in 1u32..6,
        atoms in 1usize..7,
        ineqs in 1usize..5,
    ) {
        let s = schema();
        let qg = QueryGen { variables: vars, atoms, constant_prob: 0.2, inequalities: ineqs };
        let q = qg.sample(&s, seed);
        let bound = bound_vars(&q);
        if bound.len() >= 2 {
            prop_assert_eq!(q.inequalities().len(), ineqs);
        } else {
            prop_assert_eq!(q.inequalities().len(), 0);
        }
        for ineq in q.inequalities() {
            let (Term::Var(l), Term::Var(r)) = (&ineq.lhs, &ineq.rhs) else {
                panic!("inequality over a constant: {ineq:?}");
            };
            prop_assert_ne!(l.0, r.0, "x != x generated");
            prop_assert!(bound.contains(&l.0), "lhs unbound");
            prop_assert!(bound.contains(&r.0), "rhs unbound");
        }
    }

    /// Same seed, same query — byte for byte; and distinct seeds are not
    /// all glued to one output (sanity against a constant generator).
    #[test]
    fn sampling_is_a_pure_function_of_the_seed(
        seed in 0u64..1_000_000,
        vars in 2u32..6,
        atoms in 1usize..7,
        ineqs in 0usize..4,
    ) {
        let s = schema();
        let qg = QueryGen { variables: vars, atoms, constant_prob: 0.15, inequalities: ineqs };
        let q1 = qg.sample(&s, seed);
        let q2 = qg.sample(&s, seed);
        prop_assert_eq!(q1.to_string(), q2.to_string());
        prop_assert_eq!(q1.atoms(), q2.atoms());
        prop_assert_eq!(q1.inequalities().len(), q2.inequalities().len());
    }

    /// UCQ sampling: disjunct count in range, deterministic per seed.
    #[test]
    fn union_sampling_is_deterministic(seed in 0u64..1_000_000) {
        let s = schema();
        let ug = UnionGen {
            disjuncts_min: 1,
            disjuncts_max: 4,
            query: QueryGen { variables: 3, atoms: 3, constant_prob: 0.1, inequalities: 1 },
        };
        let u1 = ug.sample(&s, seed);
        let u2 = ug.sample(&s, seed);
        prop_assert!((1..=4).contains(&u1.len()));
        prop_assert_eq!(u1.to_string(), u2.to_string());
    }
}

/// Distinct seeds must produce distinct queries somewhere in a small
/// window (a frozen RNG would pass every per-seed property above).
#[test]
fn seeds_actually_vary_the_output() {
    let s = schema();
    let qg = QueryGen { variables: 4, atoms: 5, constant_prob: 0.2, inequalities: 2 };
    let outputs: HashSet<String> = (0..16).map(|seed| qg.sample(&s, seed).to_string()).collect();
    assert!(outputs.len() > 1, "16 seeds produced one query");
}
