//! End-to-end acceptance tests for the falsification fleet.
//!
//! The headline scenario is the one the issue demands: deliberately
//! break the Lemma 10 oracle (ratio off by one, via the hidden test
//! hook), run the fleet, and verify the planted bug is caught, shrunk
//! to a tiny core, archived as a DLGP fixture, and that the fixture
//! replays.

use bagcq_falsify::{oracle_set, run_fleet, FleetConfig};
use std::path::PathBuf;

fn temp_fixture_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bagcq-falsify-{tag}-{}", std::process::id()));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).expect("stale fixture dir removed");
    }
    dir
}

#[test]
fn broken_lemma10_is_caught_shrunk_and_archived() {
    let dir = temp_fixture_dir("broken-l10");
    let config = FleetConfig {
        seed: 1,
        budget: 9,
        serve: false,
        fixtures_dir: Some(dir.clone()),
        break_lemma: Some("lemma10".to_string()),
        ..FleetConfig::default()
    };
    let report = run_fleet(&config);
    assert!(!report.clean(), "the planted Lemma 10 bug went undetected:\n{}", report.render());
    let l10: Vec<_> = report.violations.iter().filter(|v| v.lemma.starts_with("lemma10")).collect();
    assert!(!l10.is_empty(), "violations found, but none blamed lemma10:\n{}", report.render());

    // Every minimized lemma10 core must fit the ≤ 8 atom budget.
    for v in &l10 {
        assert!(
            v.shrunk_atoms <= 8,
            "violation at item {} shrunk to {} atoms, want ≤ 8",
            v.item,
            v.shrunk_atoms
        );
        let path = v.fixture_path.as_ref().expect("violation archived");
        let text = std::fs::read_to_string(path).expect("fixture readable");

        // The archived fixture replays: still fires under the broken
        // oracle, passes under the healthy battery.
        let fixture = bagcq_falsify::fixture::parse(&text).expect("fixture parses");
        let broken = oracle_set(Some("lemma10"));
        let verdict = bagcq_falsify::fixture::replay(&fixture, &broken).expect("replays");
        assert!(verdict.is_violation(), "fixture no longer reproduces: {path:?}");
        let healthy = oracle_set(None);
        let verdict = bagcq_falsify::fixture::replay(&fixture, &healthy).expect("replays");
        assert!(!verdict.is_violation(), "healthy oracle fires on archived fixture: {path:?}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn healthy_fleet_is_clean_and_seed_deterministic() {
    let config = FleetConfig { seed: 7, budget: 9, serve: false, ..FleetConfig::default() };
    let a = run_fleet(&config);
    assert!(a.clean(), "healthy fleet found a violation:\n{}", a.render());
    assert_eq!(a.items, 9);
    // Same seed, same report — the fleet is a pure function of its config.
    let b = run_fleet(&config);
    assert_eq!(a.render(), b.render());
    // Different seed, different corpus (render includes only stable
    // tallies, so compare the header line).
    let c = run_fleet(&FleetConfig { seed: 8, budget: 9, serve: false, ..FleetConfig::default() });
    assert!(c.clean());
    assert_eq!(c.items, 9);
}
