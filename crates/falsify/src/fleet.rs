//! The always-on falsification fleet.
//!
//! One fleet run is a pure function of its [`FleetConfig`]: it generates
//! the seeded corpus, runs the full oracle battery over every (context,
//! database) pair, and simultaneously streams a representative query of
//! each item through two production paths —
//!
//! * the [`EvalEngine`] worker pool (admission, cache, breakers), whose
//!   answers must equal the synchronous `CountRequest` oracle; and
//! * the `bagcq-serve` HTTP front door, whose wire frames must carry the
//!   same count the in-process parse of the *identical frame text*
//!   produces.
//!
//! Any oracle violation is minimized by the [`crate::shrink`] pass and,
//! when a fixtures directory is configured, archived as a DLGP
//! regression fixture that `paper_claims.rs` replays forever after.
//! Reports exclude wall-clock so `same seed ⇒ byte-identical render`.

use crate::corpus::{generate_corpus, materialize, Context, CorpusConfig};
use crate::fixture;
use crate::oracle::{oracle_set, Verdict};
use crate::shrink::shrink;
use bagcq_containment::{CheckRequest, ContainmentChoice, Semantics, Verdict as CheckVerdict};
use bagcq_engine::{EvalEngine, Job};
use bagcq_homcount::{BackendChoice, CountRequest};
use bagcq_query::{
    parse_bag_instance_infer, parse_dlgp_query, query_to_dlgp, union_to_dlgp, Query, UnionQuery,
};
use bagcq_serve::http::{crc32, read_response, write_request_with_headers};
use bagcq_serve::{
    parse_response, HttpLimits, NetFaultPlan, Server, ServerConfig, TenantQuota, TenantSpec,
    WireResponse,
};
use std::io::BufReader;
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Fleet parameters. Everything the run does is derived from these.
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// Corpus seed.
    pub seed: u64,
    /// Corpus size (items).
    pub budget: u64,
    /// Engine worker threads.
    pub workers: usize,
    /// Also stream frames through a loopback `bagcq-serve` instance.
    pub serve: bool,
    /// Where to archive minimized violation fixtures (`None` = don't).
    pub fixtures_dir: Option<PathBuf>,
    /// Test hook: deliberately break the named oracle
    /// (see [`oracle_set`]).
    pub break_lemma: Option<String>,
    /// Run the serve-parity leg under seeded wire-level chaos: the
    /// loopback server wraps every accepted socket in the
    /// [`bagcq_serve::chaos`] transport with this seed, and the wire
    /// client retries transient faults — parity must still hold
    /// bit-for-bit.
    pub chaos_net: Option<u64>,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            seed: 42,
            budget: 24,
            workers: 2,
            serve: true,
            fixtures_dir: None,
            break_lemma: None,
            chaos_net: None,
        }
    }
}

/// One falsified property, minimized and (optionally) archived.
#[derive(Clone, Debug)]
pub struct FleetViolation {
    /// Corpus item id.
    pub item: u64,
    /// Oracle (or parity check) that fired.
    pub lemma: String,
    /// Context spec *after* shrinking.
    pub context: String,
    /// What failed.
    pub detail: String,
    /// Atoms in the minimized database.
    pub shrunk_atoms: usize,
    /// Accepted shrink steps.
    pub shrink_steps: u32,
    /// Fixture file, when a fixtures directory was configured.
    pub fixture_path: Option<PathBuf>,
}

/// The merged outcome of a fleet run.
#[derive(Clone, Debug, Default)]
pub struct FleetReport {
    /// Seed the corpus was generated from.
    pub seed: u64,
    /// Corpus items generated.
    pub items: u64,
    /// Databases checked.
    pub databases: u64,
    /// Oracle invocations.
    pub oracle_checks: u64,
    /// Checks that passed.
    pub passes: u64,
    /// Checks whose side conditions did not apply.
    pub not_applicable: u64,
    /// Engine-parity jobs submitted.
    pub engine_jobs: u64,
    /// Engine answers diverging from the synchronous oracle.
    pub engine_mismatches: u64,
    /// Wire requests streamed through `bagcq-serve`.
    pub serve_requests: u64,
    /// Frames skipped (not expressible as a DLGP count frame).
    pub serve_skipped: u64,
    /// Wire answers diverging from the in-process oracle.
    pub serve_mismatches: u64,
    /// Set-semantics containment frames streamed through `/v1/check`.
    pub check_requests: u64,
    /// Traffic items whose CQ/UCQ pair was not expressible as a pure
    /// set-semantics check frame (inequalities present).
    pub check_skipped: u64,
    /// Wire check verdicts diverging from the in-process
    /// [`CheckRequest`] verdict.
    pub check_mismatches: u64,
    /// Minimized violations, in corpus order.
    pub violations: Vec<FleetViolation>,
    /// Wall-clock (excluded from [`FleetReport::render`]).
    pub elapsed: Duration,
}

impl FleetReport {
    /// `true` when nothing fired: no lemma violations, no parity
    /// divergence on either production path.
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
            && self.engine_mismatches == 0
            && self.serve_mismatches == 0
            && self.check_mismatches == 0
    }

    /// Deterministic report: a pure function of the seed and config, so
    /// two runs can be compared byte for byte. Timing lives in
    /// [`FleetReport::perf_line`] instead.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("falsify fleet report\n");
        out.push_str(&format!("  seed               {}\n", self.seed));
        out.push_str(&format!("  corpus items       {}\n", self.items));
        out.push_str(&format!("  databases checked  {}\n", self.databases));
        out.push_str(&format!("  oracle checks      {}\n", self.oracle_checks));
        out.push_str(&format!("    passes           {}\n", self.passes));
        out.push_str(&format!("    not applicable   {}\n", self.not_applicable));
        out.push_str(&format!(
            "  engine parity      {} jobs, {} mismatches\n",
            self.engine_jobs, self.engine_mismatches
        ));
        if self.serve_requests > 0 || self.serve_skipped > 0 {
            out.push_str(&format!(
                "  serve parity       {} requests, {} skipped, {} mismatches\n",
                self.serve_requests, self.serve_skipped, self.serve_mismatches
            ));
            out.push_str(&format!(
                "  check parity       {} requests, {} skipped, {} mismatches\n",
                self.check_requests, self.check_skipped, self.check_mismatches
            ));
        } else {
            out.push_str("  serve parity       disabled\n");
        }
        out.push_str(&format!("  violations         {}\n", self.violations.len()));
        for v in &self.violations {
            out.push_str(&format!("  violation {} @ item {}\n", v.lemma, v.item));
            out.push_str(&format!("    context  {}\n", v.context));
            out.push_str(&format!("    detail   {}\n", v.detail));
            let archived = match &v.fixture_path {
                Some(p) => format!(" -> {}", p.display()),
                None => String::new(),
            };
            out.push_str(&format!(
                "    shrunk   {} atoms in {} steps{archived}\n",
                v.shrunk_atoms, v.shrink_steps
            ));
        }
        out
    }

    /// One-line timing summary (kept out of [`FleetReport::render`] so
    /// the report stays deterministic).
    pub fn perf_line(&self) -> String {
        let secs = self.elapsed.as_secs_f64();
        let rate = if secs > 0.0 { self.databases as f64 / secs } else { 0.0 };
        format!("elapsed {secs:.2}s, {rate:.1} instances/sec")
    }
}

/// A minimal keep-alive HTTP client for the loopback server, hardened
/// for the chaos leg: bounded socket timeouts (no hangs), an
/// `X-Body-Crc` on every request, CRC verification of every response,
/// and bounded retries of transient faults — transport errors,
/// corrupted frames, 408 slow-client evictions, and corruption-induced
/// 400s (the fleet only posts frames it knows are well-formed).
struct WireClient {
    addr: String,
    key: String,
    limits: HttpLimits,
    conn: Option<(BufReader<TcpStream>, TcpStream)>,
}

/// Retry budget per request; chaos faults are capped per plan, so a
/// handful of re-deliveries always reaches a clean exchange.
const WIRE_CLIENT_ATTEMPTS: usize = 8;
/// Socket timeout — generous against trickle faults, but finite.
const WIRE_CLIENT_IO_TIMEOUT: Duration = Duration::from_secs(10);

impl WireClient {
    fn new(addr: String, key: String) -> Self {
        WireClient { addr, key, limits: HttpLimits::default(), conn: None }
    }

    fn post(&mut self, path: &str, body: &str) -> Option<(u16, String)> {
        let body_crc = crc32(body.as_bytes());
        for _attempt in 0..WIRE_CLIENT_ATTEMPTS {
            if self.conn.is_none() {
                let stream = TcpStream::connect(&self.addr).ok()?;
                stream.set_nodelay(true).ok();
                stream.set_read_timeout(Some(WIRE_CLIENT_IO_TIMEOUT)).ok();
                stream.set_write_timeout(Some(WIRE_CLIENT_IO_TIMEOUT)).ok();
                let writer = stream.try_clone().ok()?;
                self.conn = Some((BufReader::new(stream), writer));
            }
            let (reader, writer) = self.conn.as_mut().expect("connection is live");
            let extra = [
                ("X-Body-Crc", format!("{body_crc:08x}")),
                ("Idempotency-Key", format!("falsify-{body_crc:08x}-{len}", len = body.len())),
            ];
            let sent = write_request_with_headers(
                writer,
                "POST",
                path,
                &self.key,
                body.as_bytes(),
                &extra,
            )
            .is_ok();
            let response =
                if sent { read_response(reader, &self.limits).ok().flatten() } else { None };
            match response {
                Some(http) => {
                    // Wire integrity: a response failing its own CRC was
                    // corrupted in transit; drop the connection & retry.
                    if let Some(declared) = http.header("x-body-crc") {
                        if u32::from_str_radix(declared.trim(), 16) != Ok(crc32(&http.body)) {
                            self.conn = None;
                            continue;
                        }
                    }
                    if !http.keep_alive() {
                        self.conn = None;
                    }
                    let text = http.utf8_body().ok()?.to_string();
                    // Transient server-side verdicts: the server evicted
                    // us (408) or caught corrupted request bytes (typed
                    // `corrupt` 400, or any 400 — this client only posts
                    // well-formed frames). Re-deliver.
                    if http.status == 408 || http.status == 400 {
                        self.conn = None;
                        continue;
                    }
                    return Some((http.status, text));
                }
                None => {
                    // Dead, half-closed, or corrupted-beyond-framing
                    // connection: reconnect and retry.
                    self.conn = None;
                }
            }
        }
        None
    }
}

/// A representative query for each item family — what gets streamed
/// through the engine and the wire.
fn representative_query(ctx: &Context) -> Query {
    match ctx {
        Context::Gadget { gadget, .. } => gadget.q_b.clone(),
        Context::Arena { red, .. } => red.pi_s.clone(),
        Context::Traffic { cq, .. } => cq.clone(),
    }
}

/// The count a correct server must answer for a frame, computed by
/// parsing the *frame text itself* back in-process — the same
/// self-consistency contract the load generator uses.
fn frame_oracle(query_src: &str, data_src: &str) -> Option<bagcq_arith::Nat> {
    let (_bag, support, schema) = parse_bag_instance_infer(data_src).ok()?;
    let query = parse_dlgp_query(&schema, query_src).ok()?;
    CountRequest::new(&query, &support).backend(BackendChoice::Auto).run().ok()
}

/// A set-semantics containment frame pinning the `set-ucq` backend.
/// The Sagiv–Yannakakis reduction is deterministic (no random search),
/// so the wire verdict must match the in-process verdict bit-for-bit
/// even when chaos forces re-delivery.
fn check_frame_body(small: &UnionQuery, big: &UnionQuery) -> String {
    let mut body = String::from("semantics: set\ncontainment: set-ucq\nsmall:\n");
    for line in union_to_dlgp(small).lines() {
        body.push_str("  ");
        body.push_str(line);
        body.push('\n');
    }
    body.push_str("big:\n");
    for line in union_to_dlgp(big).lines() {
        body.push_str("  ");
        body.push_str(line);
        body.push('\n');
    }
    body
}

fn count_frame_body(query_src: &str, data_src: &str) -> String {
    let mut body = String::from("backend: auto\nquery:\n  ");
    body.push_str(query_src);
    body.push_str("\ndata:\n");
    for line in data_src.lines() {
        body.push_str("  ");
        body.push_str(line);
        body.push('\n');
    }
    body
}

/// Runs the fleet.
pub fn run_fleet(config: &FleetConfig) -> FleetReport {
    let started = Instant::now();
    let corpus = generate_corpus(&CorpusConfig { seed: config.seed, budget: config.budget });
    let oracles = oracle_set(config.break_lemma.as_deref());
    let engine = EvalEngine::with_workers(config.workers.max(1));

    let server = if config.serve {
        Server::start(ServerConfig {
            tenants: vec![TenantSpec::new("falsify", "falsify-key").with_quota(TenantQuota {
                rate_per_sec: 0,
                burst: 0,
                max_in_flight: 0,
                max_connections: 0,
            })],
            chaos: config.chaos_net.map(NetFaultPlan::seeded),
            ..Default::default()
        })
        .ok()
    } else {
        None
    };
    let mut wire = server
        .as_ref()
        .map(|s| WireClient::new(s.local_addr().to_string(), "falsify-key".to_string()));

    let mut report =
        FleetReport { seed: config.seed, items: corpus.len() as u64, ..FleetReport::default() };

    for item in &corpus {
        let (ctx, dbs) = materialize(item);
        for (db_idx, db) in dbs.iter().enumerate() {
            report.databases += 1;

            // The oracle battery.
            for oracle in &oracles {
                report.oracle_checks += 1;
                match oracle.check(&ctx, db) {
                    Verdict::Pass => report.passes += 1,
                    Verdict::NotApplicable => report.not_applicable += 1,
                    Verdict::Violation(v) => {
                        let shrunk = shrink(oracle.as_ref(), &ctx, db);
                        let fixture_path = config.fixtures_dir.as_ref().map(|dir| {
                            let name = oracle.name().replace('/', "-");
                            let path = dir.join(format!("{name}-{:04}-{db_idx}.dlgp", item.id));
                            let text = fixture::render(oracle.name(), &shrunk.context, &shrunk.db);
                            std::fs::create_dir_all(dir).ok();
                            std::fs::write(&path, text).ok();
                            path
                        });
                        report.violations.push(FleetViolation {
                            item: item.id,
                            lemma: v.lemma,
                            context: shrunk.context.spec(),
                            detail: v.detail,
                            shrunk_atoms: shrunk.db.total_atoms(),
                            shrink_steps: shrunk.steps,
                            fixture_path,
                        });
                    }
                }
            }

            // Engine parity: the async pool must agree with the
            // synchronous oracle on the representative query.
            let query = representative_query(&ctx);
            let expected = CountRequest::new(&query, db).backend(BackendChoice::Auto).count();
            let handle = engine.submit(Job::count(query.clone(), Arc::new(db.clone())));
            report.engine_jobs += 1;
            match handle.wait().as_count() {
                Some(n) if *n == expected => {}
                outcome => {
                    report.engine_mismatches += 1;
                    report.violations.push(FleetViolation {
                        item: item.id,
                        lemma: "engine-parity".into(),
                        context: ctx.spec(),
                        detail: format!("engine answered {outcome:?}, oracle says {expected}"),
                        shrunk_atoms: db.total_atoms(),
                        shrink_steps: 0,
                        fixture_path: None,
                    });
                }
            }

            // Wire parity: the identical frame text, parsed in-process,
            // must agree with what the server answers.
            if let Some(client) = wire.as_mut() {
                let query_src = query_to_dlgp(&query);
                let data_src = fixture::structure_to_dlgp(db);
                match frame_oracle(&query_src, &data_src) {
                    None => report.serve_skipped += 1,
                    Some(expected) => {
                        report.serve_requests += 1;
                        let body = count_frame_body(&query_src, &data_src);
                        let answer = client.post("/v1/count", &body).and_then(|(status, text)| {
                            match parse_response(&text).ok()? {
                                WireResponse::Count { count, .. } if status == 200 => Some(count),
                                _ => None,
                            }
                        });
                        if answer.as_ref() != Some(&expected) {
                            report.serve_mismatches += 1;
                            report.violations.push(FleetViolation {
                                item: item.id,
                                lemma: "serve-parity".into(),
                                context: ctx.spec(),
                                detail: format!(
                                    "wire answered {answer:?}, in-process frame oracle says {expected}"
                                ),
                                shrunk_atoms: db.total_atoms(),
                                shrink_steps: 0,
                                fixture_path: None,
                            });
                        }
                    }
                }
            }

            // Check parity: each traffic item's pure CQ ⊑set UCQ pair
            // is posted as a `/v1/check` frame; the wire verdict must
            // equal the in-process `CheckRequest` verdict. Checks are
            // database-free, so one frame per item suffices.
            if db_idx == 0 {
                if let (Some(client), Context::Traffic { cq, union, .. }) = (wire.as_mut(), &ctx) {
                    if !cq.is_pure() || !union.is_pure() {
                        report.check_skipped += 1;
                    } else {
                        report.check_requests += 1;
                        let single = UnionQuery::from_query(cq.clone());
                        let expected = CheckRequest::union(single.clone(), union.clone())
                            .semantics(Semantics::Set)
                            .containment(ContainmentChoice::SetUcq)
                            .check()
                            .map(|v| match v {
                                CheckVerdict::Proved(_) => "proved",
                                CheckVerdict::Refuted(_) => "refuted",
                                CheckVerdict::Unknown { .. } => "unknown",
                            });
                        let body = check_frame_body(&single, union);
                        let answer = client.post("/v1/check", &body).and_then(|(status, text)| {
                            match parse_response(&text).ok()? {
                                WireResponse::Check { verdict, .. } if status == 200 => {
                                    Some(verdict)
                                }
                                _ => None,
                            }
                        });
                        if answer.as_deref() != expected.as_deref().ok() {
                            report.check_mismatches += 1;
                            report.violations.push(FleetViolation {
                                item: item.id,
                                lemma: "check-parity".into(),
                                context: ctx.spec(),
                                detail: format!(
                                    "wire check verdict {answer:?}, in-process says {expected:?}"
                                ),
                                shrunk_atoms: db.total_atoms(),
                                shrink_steps: 0,
                                fixture_path: None,
                            });
                        }
                    }
                }
            }
        }
    }

    if let Some(s) = server {
        drop(wire);
        s.shutdown();
    }
    report.elapsed = started.elapsed();
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_fleet_run_is_clean_and_deterministic() {
        let config = FleetConfig { seed: 5, budget: 6, serve: false, ..FleetConfig::default() };
        let a = run_fleet(&config);
        assert!(a.clean(), "healthy fleet found violations:\n{}", a.render());
        assert_eq!(a.items, 6);
        assert!(a.oracle_checks > 0 && a.passes > 0);
        assert_eq!(a.engine_jobs, a.databases);
        let b = run_fleet(&config);
        assert_eq!(a.render(), b.render(), "same seed must render identically");
    }

    #[test]
    fn fleet_streams_the_corpus_through_the_wire() {
        let config = FleetConfig { seed: 9, budget: 3, ..FleetConfig::default() };
        let report = run_fleet(&config);
        assert!(report.clean(), "{}", report.render());
        assert!(report.serve_requests > 0, "no frames reached the server:\n{}", report.render());
        assert_eq!(report.serve_mismatches, 0);
    }

    /// The check-parity leg: pure traffic CQ/UCQ pairs must get the same
    /// set-semantics verdict through `/v1/check` as in-process.
    #[test]
    fn fleet_streams_set_containment_through_the_wire() {
        let config = FleetConfig { seed: 11, budget: 12, ..FleetConfig::default() };
        let report = run_fleet(&config);
        assert!(report.clean(), "{}", report.render());
        assert!(
            report.check_requests >= 2,
            "no pure pairs reached /v1/check:\n{}",
            report.render()
        );
        assert_eq!(report.check_mismatches, 0);
    }

    /// The wire-parity leg under seeded network chaos: every accepted
    /// connection may draw a fault, the client retries transient
    /// failures, and parity must still hold bit-for-bit.
    #[test]
    fn fleet_wire_parity_survives_network_chaos() {
        let config =
            FleetConfig { seed: 9, budget: 3, chaos_net: Some(7), ..FleetConfig::default() };
        let report = run_fleet(&config);
        assert!(report.clean(), "chaos broke wire parity:\n{}", report.render());
        assert!(report.serve_requests > 0, "no frames reached the server:\n{}", report.render());
        assert_eq!(report.serve_mismatches, 0);
    }
}
