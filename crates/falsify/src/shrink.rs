//! Delta-debugging shrinker for oracle violations.
//!
//! Given a (context, database) pair on which an oracle fires, greedily
//! minimize in three phases, re-checking the oracle after every step so
//! the result still violates:
//!
//! 1. **Parameters**: try strictly smaller gadget/arena/traffic
//!    parameterizations (each with its canonical database) until none
//!    still violates;
//! 2. **Atoms and merges**: drop database tuples one at a time to a
//!    fixpoint, then try quotienting vertex pairs (merges can join
//!    components that atom dropping alone cannot), looping until
//!    neither makes progress;
//! 3. **Vertices**: discard non-constant vertices no surviving atom
//!    mentions.
//!
//! Every phase strictly decreases a finite measure, so termination is
//! structural, and each accepted step re-ran the oracle, so the final
//! pair is a genuine minimized counterexample ready for fixture
//! archival.

use crate::corpus::Context;
use crate::oracle::LemmaOracle;
use bagcq_structure::{RelId, Structure, Vertex};
use std::sync::Arc;

/// A minimized counterexample.
pub struct ShrinkResult {
    /// The (possibly smaller) context the violation survives under.
    pub context: Context,
    /// The minimized database.
    pub db: Structure,
    /// Accepted shrink steps.
    pub steps: u32,
}

fn violates(oracle: &dyn LemmaOracle, ctx: &Context, db: &Structure) -> bool {
    oracle.check(ctx, db).is_violation()
}

/// Candidate strictly-smaller contexts, each with its canonical database.
fn context_candidates(ctx: &Context) -> Vec<(Context, Structure)> {
    match ctx {
        Context::Gadget { kind, .. } => kind
            .shrink_candidates()
            .into_iter()
            .map(|k| {
                let gadget = Arc::new(k.build());
                let witness = gadget.witness.clone();
                (Context::Gadget { kind: k, gadget }, witness)
            })
            .collect(),
        Context::Arena { params, .. } => params
            .shrink_candidates()
            .into_iter()
            .map(|p| {
                let red = Arc::new(p.reduction());
                let db = p.database(&red);
                (Context::Arena { params: p, red }, db)
            })
            .collect(),
        Context::Traffic { params, .. } => params
            .shrink_candidates()
            .into_iter()
            .map(|p| {
                let db = p.database();
                let ctx = Context::Traffic { cq: p.query(), union: p.union(), params: p };
                (ctx, db)
            })
            .collect(),
    }
}

/// Rebuilds `db` without the `skip_idx`-th tuple of `rel`.
fn without_tuple(db: &Structure, rel: RelId, skip_idx: usize) -> Structure {
    let schema = Arc::clone(db.schema());
    let interp: Vec<Vertex> = schema.constants().map(|c| db.constant_vertex(c)).collect();
    let mut out = Structure::with_interpretation(Arc::clone(&schema), db.vertex_count(), interp);
    for r in schema.relations() {
        for (i, t) in db.tuples(r).enumerate() {
            if r == rel && i == skip_idx {
                continue;
            }
            let args: Vec<Vertex> = t.iter().map(|&v| Vertex(v)).collect();
            out.add_atom(r, &args);
        }
    }
    out
}

/// Drops vertices that are neither a constant interpretation nor
/// mentioned by any atom; `None` when nothing can go.
fn without_isolated_vertices(db: &Structure) -> Option<Structure> {
    let schema = Arc::clone(db.schema());
    let mut used = vec![false; db.vertex_count() as usize];
    for c in schema.constants() {
        used[db.constant_vertex(c).0 as usize] = true;
    }
    for r in schema.relations() {
        for t in db.tuples(r) {
            for &v in t {
                used[v as usize] = true;
            }
        }
    }
    if used.iter().all(|&u| u) {
        return None;
    }
    let mut remap = vec![0u32; db.vertex_count() as usize];
    let mut next = 0u32;
    for (v, &u) in used.iter().enumerate() {
        if u {
            remap[v] = next;
            next += 1;
        }
    }
    let interp: Vec<Vertex> =
        schema.constants().map(|c| Vertex(remap[db.constant_vertex(c).0 as usize])).collect();
    let mut out = Structure::with_interpretation(Arc::clone(&schema), next, interp);
    for r in schema.relations() {
        for t in db.tuples(r) {
            let args: Vec<Vertex> = t.iter().map(|&v| Vertex(remap[v as usize])).collect();
            out.add_atom(r, &args);
        }
    }
    Some(out)
}

/// Minimizes a violating (context, database) pair. The caller guarantees
/// `oracle.check(ctx, db)` is a violation; the result still is.
pub fn shrink(oracle: &dyn LemmaOracle, ctx: &Context, db: &Structure) -> ShrinkResult {
    let mut cur_ctx = ctx.clone();
    let mut cur_db = db.clone();
    let mut steps = 0u32;

    // Phase 1: parameter shrinking. Each acceptance strictly reduces the
    // parameter vector, so this terminates.
    loop {
        let mut progressed = false;
        for (cand_ctx, cand_db) in context_candidates(&cur_ctx) {
            if violates(oracle, &cand_ctx, &cand_db) {
                cur_ctx = cand_ctx;
                cur_db = cand_db;
                steps += 1;
                progressed = true;
                break;
            }
        }
        if !progressed {
            break;
        }
    }

    // Phase 2: atom dropping to a fixpoint, interleaved with vertex
    // merging. Dropping alone cannot join disconnected components (each
    // needs its own copy of the query's atoms), so once drops dry up we
    // try quotienting a vertex pair; an accepted merge re-opens
    // dropping. The measure (vertex count, atom count) decreases
    // lexicographically at every accepted step, so this terminates.
    loop {
        loop {
            let mut progressed = false;
            let schema = Arc::clone(cur_db.schema());
            'rels: for rel in schema.relations() {
                for idx in 0..cur_db.atom_count(rel) {
                    let cand = without_tuple(&cur_db, rel, idx);
                    if violates(oracle, &cur_ctx, &cand) {
                        cur_db = cand;
                        steps += 1;
                        progressed = true;
                        break 'rels;
                    }
                }
            }
            if !progressed {
                break;
            }
        }
        let mut merged = false;
        let n = cur_db.vertex_count();
        'merge: for keep in 0..n {
            for drop in 0..n {
                if keep == drop {
                    continue;
                }
                let cand = cur_db.identify(Vertex(keep), Vertex(drop));
                if violates(oracle, &cur_ctx, &cand) {
                    cur_db = cand;
                    steps += 1;
                    merged = true;
                    break 'merge;
                }
            }
        }
        if !merged {
            break;
        }
    }

    // Phase 3: prune unused vertices (a single renumbering pass).
    if let Some(cand) = without_isolated_vertices(&cur_db) {
        if violates(oracle, &cur_ctx, &cand) {
            cur_db = cand;
            steps += 1;
        }
    }

    ShrinkResult { context: cur_ctx, db: cur_db, steps }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::GadgetKind;
    use crate::oracle::oracle_set;

    /// The acceptance-criteria scenario: the deliberately broken Lemma 10
    /// oracle (ratio off by one) fires on γ(4)'s witness and must shrink
    /// to a fixture of at most 8 atoms.
    #[test]
    fn broken_lemma10_shrinks_to_a_tiny_core() {
        let oracles = oracle_set(Some("lemma10"));
        let lemma10 = oracles.iter().find(|o| o.name() == "lemma10").unwrap();
        let kind = GadgetKind::Gamma { m: 4 };
        let ctx = Context::Gadget { kind, gadget: Arc::new(kind.build()) };
        let witness = match &ctx {
            Context::Gadget { gadget, .. } => gadget.witness.clone(),
            _ => unreachable!(),
        };
        assert!(violates(lemma10.as_ref(), &ctx, &witness), "broken oracle must fire");
        let shrunk = shrink(lemma10.as_ref(), &ctx, &witness);
        assert!(violates(lemma10.as_ref(), &shrunk.context, &shrunk.db));
        assert!(shrunk.steps > 0, "no shrinking happened");
        // Parameter phase must reach the minimal width m = 2.
        match &shrunk.context {
            Context::Gadget { kind: GadgetKind::Gamma { m }, .. } => assert_eq!(*m, 2),
            other => panic!("family changed: {}", other.spec()),
        }
        assert!(
            shrunk.db.total_atoms() <= 8,
            "shrunk fixture has {} atoms, want ≤ 8",
            shrunk.db.total_atoms()
        );
    }

    #[test]
    fn vertex_pruning_renumbers_consistently() {
        let kind = GadgetKind::Gamma { m: 2 };
        let gadget = kind.build();
        let mut db = gadget.witness.clone();
        db.add_vertex(); // isolated — must be pruned
        let pruned = without_isolated_vertices(&db).expect("has an isolated vertex");
        assert_eq!(pruned.vertex_count(), db.vertex_count() - 1);
        assert_eq!(pruned.total_atoms(), db.total_atoms());
        assert_eq!(pruned.fingerprint(), gadget.witness.fingerprint());
    }
}
