//! # bagcq-falsify — adversarial workloads and the lemma-falsification fleet
//!
//! Every quantitative claim this repository's reduction rests on —
//! gadget ratio lemmas, the arena taxonomy, the detector thresholds, the
//! counting laws — is stated once in `crates/reduction` and proved once
//! in the paper. This crate tries, continuously and adversarially, to
//! make those claims fail:
//!
//! * [`corpus`] — a seeded generator of falsification cases: random
//!   β/γ/α gadget compositions at randomized parameters, toy-instance
//!   arena databases (correct, slightly-incorrect and
//!   seriously-incorrect), and free-form query/database traffic;
//! * [`oracle`] — one machine-checked [`oracle::LemmaOracle`] per
//!   quantitative lemma (5, 10, 12, 15, 17–21, 22, 23–24, plus
//!   Definition 3 and the Definition 13 taxonomy and UCQ bag-union
//!   semantics), each recomputing its counts on **two independent
//!   kernels** and demanding bit-identical answers;
//! * [`shrink`] — a delta-debugging minimizer that shrinks a violating
//!   (context, database) pair by parameters, then atoms, then vertices,
//!   re-checking the oracle at every step;
//! * [`fixture`] — DLGP serialization for minimized counterexamples,
//!   replayed forever by `paper_claims.rs`;
//! * [`fleet`] — the driver: corpus → oracles, with every instance also
//!   streamed through the [`bagcq_engine::EvalEngine`] pool and the
//!   `bagcq-serve` wire path, whose answers must match the synchronous
//!   oracle exactly.
//!
//! The deliberate-breakage hook ([`oracle::oracle_set`] with
//! `Some("lemma10")`) exists so the *fleet itself* stays honest: a
//! pipeline that cannot catch a planted off-by-one in Lemma 10's ratio
//! would be silently worthless as a falsifier.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corpus;
pub mod fixture;
pub mod fleet;
pub mod oracle;
pub mod shrink;

pub use corpus::{
    generate_corpus, materialize, ArenaParams, CaseParams, Context, CorpusConfig, CorpusItem,
    GadgetKind, Tamper, TrafficParams,
};
pub use fixture::{structure_to_dlgp, Fixture};
pub use fleet::{run_fleet, FleetConfig, FleetReport, FleetViolation};
pub use oracle::{oracle_set, LemmaOracle, Verdict, Violation};
pub use shrink::{shrink, ShrinkResult};
