//! Machine-checked property oracles, one per quantitative lemma.
//!
//! Each oracle receives a materialized [`Context`] plus one database and
//! answers [`Verdict::Pass`], [`Verdict::NotApplicable`] (the lemma's
//! side conditions do not hold for this pair) or a [`Verdict::Violation`]
//! carrying enough detail to reproduce the failure. Every count feeding a
//! verdict is recomputed on **two** registered [`BackendChoice`] kernels
//! and compared bit-identically; a kernel disagreement is reported as its
//! own violation (`<lemma>/backend-divergence`) — the fleet is a
//! falsifier for the counting stack as much as for the paper's algebra.
//!
//! The `break_lemma` hook (CLI: `BAGCQ_FALSIFY_BREAK`) swaps the
//! Lemma 10 oracle's ratio `(m−1)/m` for the off-by-one `(m−2)/m` so the
//! end-to-end tests can prove the detect→shrink→archive pipeline fires.

use crate::corpus::{Context, GadgetKind, Tamper};
use bagcq_arith::{CertOrd, Magnitude, Nat, Rat};
use bagcq_containment::{
    set_contained, CheckRequest, ContainmentChoice, Semantics, Verdict as CheckVerdict,
};
use bagcq_homcount::{eval_power_query, verify_onto_hom, BackendChoice, CountRequest, EvalOptions};
use bagcq_query::{path_query, Query, UnionQuery};
use bagcq_reduction::{eval_union, Correctness, MultiplyGadget};
use bagcq_structure::Structure;

/// A falsified lemma: everything needed to reproduce and file the case.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Which oracle fired (possibly with a `/backend-divergence` suffix).
    pub lemma: String,
    /// The context spec line the database was checked under.
    pub context: String,
    /// Human-readable account of the failed identity/inequality.
    pub detail: String,
}

/// An oracle's answer for one (context, database) pair.
#[derive(Clone, Debug)]
pub enum Verdict {
    /// The lemma's claim held.
    Pass,
    /// The lemma does not speak about this pair.
    NotApplicable,
    /// The lemma's claim failed.
    Violation(Violation),
}

impl Verdict {
    /// `true` for [`Verdict::Violation`].
    pub fn is_violation(&self) -> bool {
        matches!(self, Verdict::Violation(_))
    }
}

/// A quantitative lemma turned into an executable property.
pub trait LemmaOracle: Sync {
    /// Stable oracle name (doubles as the fixture `lemma:` key).
    fn name(&self) -> &'static str;
    /// Checks the lemma on one (context, database) pair.
    fn check(&self, ctx: &Context, db: &Structure) -> Verdict;
}

/// The full oracle battery. `break_lemma: Some("lemma10")` arms the
/// deliberate off-by-one defect used by the pipeline's self-test.
pub fn oracle_set(break_lemma: Option<&str>) -> Vec<Box<dyn LemmaOracle>> {
    vec![
        Box::new(Lemma5Oracle),
        Box::new(Lemma10Oracle { broken: break_lemma == Some("lemma10") }),
        Box::new(Definition3Oracle),
        Box::new(TaxonomyOracle),
        Box::new(Lemma12Oracle),
        Box::new(Lemma15Oracle),
        Box::new(Lemma17Oracle),
        Box::new(Lemma18Oracle),
        Box::new(Lemma19And20Oracle),
        Box::new(Lemma21Oracle),
        Box::new(Lemma22Oracle),
        Box::new(Lemma23And24Oracle),
        Box::new(BagUnionOracle),
        Box::new(SetUcqAllAnyOracle),
    ]
}

fn violation(lemma: &str, ctx: &Context, detail: String) -> Verdict {
    Verdict::Violation(Violation { lemma: lemma.to_string(), context: ctx.spec(), detail })
}

/// Counts `|Hom(q, d)|` on the reference kernel and one fast kernel,
/// demanding bit-identical answers. Small databases additionally cross
/// the algorithm family (tree-decomposition DP vs backtracking).
fn count2(lemma: &str, ctx: &Context, q: &Query, d: &Structure) -> Result<Nat, Verdict> {
    let second = if d.vertex_count() <= 12 && d.total_atoms() <= 64 {
        BackendChoice::FastTreewidth
    } else {
        BackendChoice::FastNaive
    };
    let run = |backend: BackendChoice| {
        CountRequest::new(q, d).backend(backend).run().map_err(|e| {
            violation(
                &format!("{lemma}/backend-divergence"),
                ctx,
                format!("{} failed: {e:?}", backend.label()),
            )
        })
    };
    let a = run(BackendChoice::Naive)?;
    let b = run(second)?;
    if a != b {
        return Err(violation(
            &format!("{lemma}/backend-divergence"),
            ctx,
            format!("naive={a} vs {}={b} on {q}", second.label()),
        ));
    }
    Ok(a)
}

/// Shared Definition 3 check for a gadget against one database:
/// equality (with the lemma's closed-form counts) on the named witness,
/// `ϱ_s(D) ≤ q·ϱ_b(D)` everywhere else. `ratio` is passed explicitly so
/// the broken-oracle hook can inject a wrong one.
fn check_gadget(
    lemma: &str,
    ctx: &Context,
    gadget: &MultiplyGadget,
    ratio: &Rat,
    db: &Structure,
    witness_counts: Option<(Nat, Nat)>,
) -> Verdict {
    if !db.is_nontrivial(gadget.mars, gadget.venus) {
        return Verdict::NotApplicable;
    }
    let s = match count2(lemma, ctx, &gadget.q_s, db) {
        Ok(n) => n,
        Err(v) => return v,
    };
    let b = match count2(lemma, ctx, &gadget.q_b, db) {
        Ok(n) => n,
        Err(v) => return v,
    };
    if db.fingerprint() == gadget.witness.fingerprint() {
        if s.is_zero() {
            return violation(lemma, ctx, "witness gives ϱ_s = 0".into());
        }
        if let Some((es, eb)) = witness_counts {
            if s != es || b != eb {
                return violation(
                    lemma,
                    ctx,
                    format!("witness counts s={s} b={b}, lemma says s={es} b={eb}"),
                );
            }
        }
        if !ratio.eq_scaled(&s, &b) {
            return violation(
                lemma,
                ctx,
                format!("witness ratio s/b = {s}/{b} ≠ claimed {ratio:?}"),
            );
        }
    } else if !ratio.le_scaled(&s, &b) {
        return violation(
            lemma,
            ctx,
            format!("Definition 3 (≤) fails: s={s} b={b} ratio={ratio:?}"),
        );
    }
    Verdict::Pass
}

/// Lemma 5: `β(p)` multiplies by `(p+1)²/2p`, witnessed by
/// `s = (p+1)²`, `b = 2p` on the named structure.
struct Lemma5Oracle;

impl LemmaOracle for Lemma5Oracle {
    fn name(&self) -> &'static str {
        "lemma5"
    }

    fn check(&self, ctx: &Context, db: &Structure) -> Verdict {
        let Context::Gadget { kind: GadgetKind::Beta { p }, gadget } = ctx else {
            return Verdict::NotApplicable;
        };
        let p = *p as u64;
        let witness = (Nat::from_u64((p + 1) * (p + 1)), Nat::from_u64(2 * p));
        check_gadget(self.name(), ctx, gadget, &gadget.ratio, db, Some(witness))
    }
}

/// Lemma 10: `γ(m)` multiplies by `(m−1)/m`, witnessed by `s = m−1`,
/// `b = m`. In broken mode the claimed ratio is off by one: `(m−2)/m`.
struct Lemma10Oracle {
    broken: bool,
}

impl LemmaOracle for Lemma10Oracle {
    fn name(&self) -> &'static str {
        "lemma10"
    }

    fn check(&self, ctx: &Context, db: &Structure) -> Verdict {
        let Context::Gadget { kind: GadgetKind::Gamma { m }, gadget } = ctx else {
            return Verdict::NotApplicable;
        };
        let m = *m as u64;
        let ratio = if self.broken { Rat::from_u64s(m - 2, m) } else { gadget.ratio.clone() };
        let witness = (Nat::from_u64(m - 1), Nat::from_u64(m));
        check_gadget(self.name(), ctx, gadget, &ratio, db, Some(witness))
    }
}

/// Definition 3 for the *composed* gadgets: `α(c)` must multiply by
/// exactly the integer `c` (Lemma 4 composition of `β(2c−1)` and
/// `γ(2c)`), and a free-form chain by the product of its factors.
struct Definition3Oracle;

impl LemmaOracle for Definition3Oracle {
    fn name(&self) -> &'static str {
        "definition3"
    }

    fn check(&self, ctx: &Context, db: &Structure) -> Verdict {
        let Context::Gadget { kind, gadget } = ctx else {
            return Verdict::NotApplicable;
        };
        let expected = match *kind {
            GadgetKind::Alpha { c } => (Nat::from_u64(c), Nat::one()),
            GadgetKind::Chain { p, m } => {
                let (p, m) = (p as u64, m as u64);
                (Nat::from_u64((p + 1) * (p + 1) * (m - 1)), Nat::from_u64(2 * p * m))
            }
            // β and γ are covered by their own lemma oracles.
            _ => return Verdict::NotApplicable,
        };
        if !gadget.ratio.eq_scaled(&expected.0, &expected.1) {
            return violation(
                self.name(),
                ctx,
                format!(
                    "composed ratio {:?} ≠ expected {}/{}",
                    gadget.ratio, expected.0, expected.1
                ),
            );
        }
        check_gadget(self.name(), ctx, gadget, &gadget.ratio, db, None)
    }
}

/// Definition 13 taxonomy: the generator's tamper mode must land in the
/// classification it was designed to produce, and the untampered
/// database must classify as correct.
struct TaxonomyOracle;

impl LemmaOracle for TaxonomyOracle {
    fn name(&self) -> &'static str {
        "definition13"
    }

    fn check(&self, ctx: &Context, db: &Structure) -> Verdict {
        let Context::Arena { params, red } = ctx else {
            return Verdict::NotApplicable;
        };
        let correct = red.correct_database(&params.valuation);
        if red.classify(&correct) != Correctness::Correct {
            return violation(
                self.name(),
                ctx,
                format!("untampered database classifies as {:?}", red.classify(&correct)),
            );
        }
        let got = red.classify(db);
        let expected = match params.tamper {
            Tamper::None => Some(Correctness::Correct),
            // Only binding when the tamper actually changed the database
            // (the shrinker may have stripped it back down).
            Tamper::ExtraSAtom if db.total_atoms() > correct.total_atoms() => {
                Some(Correctness::SlightlyIncorrect)
            }
            Tamper::IdentifyA
                if db.vertex_count() < correct.vertex_count()
                    && db.is_nontrivial(red.mars, red.venus) =>
            {
                Some(Correctness::SeriouslyIncorrect)
            }
            _ => None,
        };
        match expected {
            Some(want) if got != want => violation(
                self.name(),
                ctx,
                format!("tamper {:?} produced {got:?}, expected {want:?}", params.tamper),
            ),
            Some(_) => Verdict::Pass,
            None => Verdict::NotApplicable,
        }
    }
}

/// Lemma 12: the explicit onto homomorphism `π_b ↠ π_s` verifies, hence
/// `π_s(D) ≤ π_b(D)` on every database.
struct Lemma12Oracle;

impl LemmaOracle for Lemma12Oracle {
    fn name(&self) -> &'static str {
        "lemma12"
    }

    fn check(&self, ctx: &Context, db: &Structure) -> Verdict {
        let Context::Arena { red, .. } = ctx else {
            return Verdict::NotApplicable;
        };
        if !verify_onto_hom(&red.pi_b, &red.pi_s, &red.lemma12_onto_hom()) {
            return violation(self.name(), ctx, "Lemma 12 onto witness fails".into());
        }
        let s = match count2(self.name(), ctx, &red.pi_s, db) {
            Ok(n) => n,
            Err(v) => return v,
        };
        let b = match count2(self.name(), ctx, &red.pi_b, db) {
            Ok(n) => n,
            Err(v) => return v,
        };
        if s > b {
            return violation(self.name(), ctx, format!("π_s(D)={s} > π_b(D)={b}"));
        }
        Verdict::Pass
    }
}

/// Lemma 15: on correct databases `π_s(D) = P_s(Ξ_D)` and
/// `π_b(D) = Ξ_D(x₁)^𝕕 · P_b(Ξ_D)`.
struct Lemma15Oracle;

impl LemmaOracle for Lemma15Oracle {
    fn name(&self) -> &'static str {
        "lemma15"
    }

    fn check(&self, ctx: &Context, db: &Structure) -> Verdict {
        let Context::Arena { red, .. } = ctx else {
            return Verdict::NotApplicable;
        };
        if red.classify(db) != Correctness::Correct {
            return Verdict::NotApplicable;
        }
        let val = red.extract_valuation(db);
        let s = match count2(self.name(), ctx, &red.pi_s, db) {
            Ok(n) => n,
            Err(v) => return v,
        };
        let expect_s = red.instance.p_s().eval_nat(&val);
        if s != expect_s {
            return violation(self.name(), ctx, format!("π_s(D)={s} ≠ P_s(Ξ)={expect_s}"));
        }
        let b = match count2(self.name(), ctx, &red.pi_b, db) {
            Ok(n) => n,
            Err(v) => return v,
        };
        let x1d = val[0].pow_u64(red.instance.degree as u64);
        let expect_b = x1d.mul_ref(&red.instance.p_b().eval_nat(&val));
        if b != expect_b {
            return violation(self.name(), ctx, format!("π_b(D)={b} ≠ Ξ(x₁)^𝕕·P_b(Ξ)={expect_b}"));
        }
        Verdict::Pass
    }
}

/// Evaluates a power query under two explicit backends, demanding
/// identical exact values (the ζ/δ evaluations of the toy instances stay
/// exact at the default bit budget).
fn eval_power2(
    lemma: &str,
    ctx: &Context,
    pq: &bagcq_query::PowerQuery,
    db: &Structure,
) -> Result<Magnitude, Verdict> {
    let eval = |backend: BackendChoice| {
        let opts = EvalOptions { backend, ..EvalOptions::default() };
        eval_power_query(pq, db, &opts)
    };
    let a = eval(BackendChoice::Naive);
    let b = eval(BackendChoice::FastNaive);
    match (a.as_exact(), b.as_exact()) {
        (Some(x), Some(y)) if x != y => Err(violation(
            &format!("{lemma}/backend-divergence"),
            ctx,
            format!("power query: naive={x} vs fast-naive={y}"),
        )),
        _ => Ok(a),
    }
}

/// Lemma 17: `ζ_b(D) = ℂ₁` on correct databases.
struct Lemma17Oracle;

impl LemmaOracle for Lemma17Oracle {
    fn name(&self) -> &'static str {
        "lemma17"
    }

    fn check(&self, ctx: &Context, db: &Structure) -> Verdict {
        let Context::Arena { red, .. } = ctx else {
            return Verdict::NotApplicable;
        };
        if red.classify(db) != Correctness::Correct {
            return Verdict::NotApplicable;
        }
        let zeta = match eval_power2(self.name(), ctx, &red.zeta_b, db) {
            Ok(m) => m,
            Err(v) => return v,
        };
        if zeta.as_exact() != Some(&red.c1) {
            return violation(self.name(), ctx, format!("ζ_b(D)={zeta:?} ≠ ℂ₁={}", red.c1));
        }
        Verdict::Pass
    }
}

/// Lemma 18: slightly incorrect ⇒ `ζ_b(D) ≥ c·ℂ₁`.
struct Lemma18Oracle;

impl LemmaOracle for Lemma18Oracle {
    fn name(&self) -> &'static str {
        "lemma18"
    }

    fn check(&self, ctx: &Context, db: &Structure) -> Verdict {
        let Context::Arena { red, .. } = ctx else {
            return Verdict::NotApplicable;
        };
        if red.classify(db) != Correctness::SlightlyIncorrect {
            return Verdict::NotApplicable;
        }
        let zeta = match eval_power2(self.name(), ctx, &red.zeta_b, db) {
            Ok(m) => m,
            Err(v) => return v,
        };
        let threshold = Magnitude::exact(red.instance.c.mul_ref(&red.c1));
        match zeta.cmp_cert(&threshold) {
            CertOrd::Greater | CertOrd::Equal => Verdict::Pass,
            ord => violation(
                self.name(),
                ctx,
                format!("ζ_b(D)={zeta:?} {ord:?} c·ℂ₁={threshold:?}, expected ≥"),
            ),
        }
    }
}

/// Lemmas 19–20: `δ_b(D) ≥ 1` whenever `D ⊨ Arena`, with equality on
/// correct databases.
struct Lemma19And20Oracle;

impl LemmaOracle for Lemma19And20Oracle {
    fn name(&self) -> &'static str {
        "lemma19-20"
    }

    fn check(&self, ctx: &Context, db: &Structure) -> Verdict {
        let Context::Arena { red, .. } = ctx else {
            return Verdict::NotApplicable;
        };
        let class = red.classify(db);
        if class == Correctness::NotArena {
            return Verdict::NotApplicable;
        }
        let delta = match eval_power2(self.name(), ctx, &red.delta_b, db) {
            Ok(m) => m,
            Err(v) => return v,
        };
        let one = Magnitude::exact(Nat::one());
        match (class, delta.cmp_cert(&one)) {
            (Correctness::Correct, CertOrd::Equal) => Verdict::Pass,
            (Correctness::Correct, ord) => violation(
                self.name(),
                ctx,
                format!("δ_b on correct D: {delta:?} {ord:?} 1, expected = 1"),
            ),
            (_, CertOrd::Less) => {
                violation(self.name(), ctx, format!("δ_b(D)={delta:?} < 1 on an arena model"))
            }
            _ => Verdict::Pass,
        }
    }
}

/// Lemma 21: seriously incorrect non-trivial ⇒ `δ_b(D) > ℂ`.
struct Lemma21Oracle;

impl LemmaOracle for Lemma21Oracle {
    fn name(&self) -> &'static str {
        "lemma21"
    }

    fn check(&self, ctx: &Context, db: &Structure) -> Verdict {
        let Context::Arena { red, .. } = ctx else {
            return Verdict::NotApplicable;
        };
        if red.classify(db) != Correctness::SeriouslyIncorrect
            || !db.is_nontrivial(red.mars, red.venus)
        {
            return Verdict::NotApplicable;
        }
        let delta = match eval_power2(self.name(), ctx, &red.delta_b, db) {
            Ok(m) => m,
            Err(v) => return v,
        };
        let threshold = Magnitude::exact(red.big_c.clone());
        match delta.cmp_cert(&threshold) {
            CertOrd::Greater => Verdict::Pass,
            ord => violation(
                self.name(),
                ctx,
                format!("δ_b(D)={delta:?} {ord:?} ℂ, Lemma 21 requires >"),
            ),
        }
    }
}

/// Lemma 22: for pure constant-free CQs,
/// `φ(blowup(D,k)) = k^j·φ(D)` (j = variable count) and
/// `φ(D^×k) = φ(D)^k`, checked at `k = 2`.
struct Lemma22Oracle;

impl LemmaOracle for Lemma22Oracle {
    fn name(&self) -> &'static str {
        "lemma22"
    }

    fn check(&self, ctx: &Context, db: &Structure) -> Verdict {
        let Context::Traffic { cq, .. } = ctx else {
            return Verdict::NotApplicable;
        };
        let pure = cq.strip_inequalities();
        let base = match count2(self.name(), ctx, &pure, db) {
            Ok(n) => n,
            Err(v) => return v,
        };
        let blown = match count2(self.name(), ctx, &pure, &db.blowup(2)) {
            Ok(n) => n,
            Err(v) => return v,
        };
        let factor = Nat::from_u64(2).pow_u64(pure.var_count() as u64);
        if blown != factor.mul_ref(&base) {
            return violation(
                self.name(),
                ctx,
                format!("blowup law: φ(blowup(D,2))={blown} ≠ 2^j·φ(D)={}", factor.mul_ref(&base)),
            );
        }
        let powered = match count2(self.name(), ctx, &pure, &db.power(2)) {
            Ok(n) => n,
            Err(v) => return v,
        };
        if powered != base.mul_ref(&base) {
            return violation(
                self.name(),
                ctx,
                format!("power law: φ(D^×2)={powered} ≠ φ(D)²={}", base.mul_ref(&base)),
            );
        }
        Verdict::Pass
    }
}

/// Lemmas 23–24 (Theorem 5 machinery): when the inequality query
/// `ψ_s = e(x,y) ∧ x≠y` strictly beats `ψ_b = e(x,y) ∧ e(y,z)` on the
/// seed, the constructed witness `D = blowup(D₀^×k, 2p)` keeps the
/// strict gap with pure queries only.
struct Lemma23And24Oracle;

impl LemmaOracle for Lemma23And24Oracle {
    fn name(&self) -> &'static str {
        "lemma23-24"
    }

    fn check(&self, ctx: &Context, db: &Structure) -> Verdict {
        let Context::Traffic { .. } = ctx else {
            return Verdict::NotApplicable;
        };
        // The witness is (|D₀|·κ)^k-sized; keep the seeds tiny.
        if db.vertex_count() > 6 || db.total_atoms() > 14 {
            return Verdict::NotApplicable;
        }
        let schema = db.schema();
        let psi_s = {
            let mut qb = Query::builder(std::sync::Arc::clone(schema));
            let x = qb.var("x");
            let y = qb.var("y");
            qb.atom_named("e", &[x, y]);
            qb.neq(x, y);
            qb.build()
        };
        let psi_b = path_query(schema, "e", 2);
        match bagcq_reduction::eliminate_inequalities(&psi_s, &psi_b, db, 2) {
            Err(_) => Verdict::NotApplicable,
            Ok(elim) => {
                if elim.kappa != 2 {
                    return violation(
                        self.name(),
                        ctx,
                        format!("κ={} for a single inequality, expected 2p=2", elim.kappa),
                    );
                }
                if elim.count_s <= elim.count_b {
                    return violation(
                        self.name(),
                        ctx,
                        format!(
                            "witness not strict: ψ_s(D)={} ≤ ψ_b(D)={}",
                            elim.count_s, elim.count_b
                        ),
                    );
                }
                // Recount both sides dual-backend on the witness.
                if elim.witness.vertex_count() <= 64 {
                    let s = match count2(self.name(), ctx, &psi_s, &elim.witness) {
                        Ok(n) => n,
                        Err(v) => return v,
                    };
                    let b = match count2(self.name(), ctx, &psi_b, &elim.witness) {
                        Ok(n) => n,
                        Err(v) => return v,
                    };
                    if s != elim.count_s || b != elim.count_b {
                        return violation(
                            self.name(),
                            ctx,
                            format!(
                                "witness recount s={s} b={b} ≠ construction counts {}/{}",
                                elim.count_s, elim.count_b
                            ),
                        );
                    }
                }
                Verdict::Pass
            }
        }
    }
}

/// Bag-union semantics: `(φ₁ ∨ … ∨ φ_r)(D) = Σᵢ φᵢ(D)`.
struct BagUnionOracle;

impl LemmaOracle for BagUnionOracle {
    fn name(&self) -> &'static str {
        "bag-union"
    }

    fn check(&self, ctx: &Context, db: &Structure) -> Verdict {
        let Context::Traffic { union, .. } = ctx else {
            return Verdict::NotApplicable;
        };
        let total = eval_union(union, db);
        let mut sum = Nat::zero();
        for q in union.disjuncts() {
            match count2(self.name(), ctx, q, db) {
                Ok(n) => sum.add_assign_ref(&n),
                Err(v) => return v,
            }
        }
        if total != sum {
            return violation(
                self.name(),
                ctx,
                format!("UCQ answer {total} ≠ sum of disjunct answers {sum}"),
            );
        }
        Verdict::Pass
    }
}

/// The Sagiv–Yannakakis all/any reduction behind the `set-ucq` backend:
/// `U₁ ⊑set U₂` iff every disjunct of `U₁` is Chandra–Merlin contained
/// in some disjunct of `U₂`. On every pure traffic CQ/UCQ pair (both
/// orientations) the first-class [`CheckRequest`] backend is run against
/// an independent brute-force all/any recount via [`set_contained`];
/// the verdict is then cross-checked against positivity transfer on the
/// concrete corpus database, and a refuted verdict's witness database is
/// recounted on two kernels (small side holds, big side does not).
struct SetUcqAllAnyOracle;

impl SetUcqAllAnyOracle {
    /// `true` iff the union holds on `db` under set semantics (some
    /// disjunct has a homomorphism), with every count cross-validated
    /// on two kernels.
    fn holds(
        &self,
        ctx: &Context,
        u: &UnionQuery,
        db: &bagcq_structure::Structure,
    ) -> Result<bool, Verdict> {
        for q in u.disjuncts() {
            if count2(self.name(), ctx, q, db)? > Nat::zero() {
                return Ok(true);
            }
        }
        Ok(false)
    }
}

impl LemmaOracle for SetUcqAllAnyOracle {
    fn name(&self) -> &'static str {
        "set-ucq-all-any"
    }

    fn check(&self, ctx: &Context, db: &Structure) -> Verdict {
        let Context::Traffic { cq, union, .. } = ctx else {
            return Verdict::NotApplicable;
        };
        if !cq.is_pure() || !union.is_pure() {
            return Verdict::NotApplicable;
        }
        let single = UnionQuery::from_query(cq.clone());
        for (u_s, u_b) in [(&single, union), (union, &single)] {
            let verdict = match CheckRequest::union((*u_s).clone(), (*u_b).clone())
                .semantics(Semantics::Set)
                .containment(ContainmentChoice::SetUcq)
                .check()
            {
                Ok(v) => v,
                Err(u) => {
                    return violation(
                        self.name(),
                        ctx,
                        format!("set-ucq rejected a pure union pair: {u}"),
                    )
                }
            };
            let brute =
                u_s.disjuncts().iter().all(|p| u_b.disjuncts().iter().any(|q| set_contained(p, q)));
            let proved = match &verdict {
                CheckVerdict::Proved(_) => true,
                CheckVerdict::Refuted(_) => false,
                CheckVerdict::Unknown { .. } => {
                    return violation(
                        self.name(),
                        ctx,
                        "set-ucq answered Unknown; the all/any reduction is exact".into(),
                    )
                }
            };
            if proved != brute {
                return violation(
                    self.name(),
                    ctx,
                    format!(
                        "backend verdict {verdict} disagrees with brute-force all/any ({})",
                        if brute { "contained" } else { "not contained" }
                    ),
                );
            }
            // Positivity transfer on the corpus database: if `U₁ ⊑set U₂`
            // then `U₁` holding on `db` forces `U₂` to hold on `db`.
            let s_holds = match self.holds(ctx, u_s, db) {
                Ok(b) => b,
                Err(v) => return v,
            };
            let b_holds = match self.holds(ctx, u_b, db) {
                Ok(b) => b,
                Err(v) => return v,
            };
            if proved && s_holds && !b_holds {
                return violation(
                    self.name(),
                    ctx,
                    format!("proved containment but {u_s} holds on db while {u_b} does not"),
                );
            }
            // A refuted verdict names its witness: the small side must
            // hold there and the big side must not.
            if let CheckVerdict::Refuted(ce) = &verdict {
                let s_w = match self.holds(ctx, u_s, &ce.database) {
                    Ok(b) => b,
                    Err(v) => return v,
                };
                let b_w = match self.holds(ctx, u_b, &ce.database) {
                    Ok(b) => b,
                    Err(v) => return v,
                };
                if !s_w || b_w {
                    return violation(
                        self.name(),
                        ctx,
                        format!(
                            "refutation witness does not separate: small holds={s_w}, big holds={b_w}"
                        ),
                    );
                }
            }
        }
        Verdict::Pass
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{generate_corpus, materialize, CorpusConfig};

    #[test]
    fn healthy_oracles_never_fire_on_a_seeded_corpus() {
        let oracles = oracle_set(None);
        for item in generate_corpus(&CorpusConfig { seed: 11, budget: 9 }) {
            let (ctx, dbs) = materialize(&item);
            for db in &dbs {
                for oracle in &oracles {
                    let verdict = oracle.check(&ctx, db);
                    assert!(
                        !verdict.is_violation(),
                        "item {} oracle {}: {verdict:?}",
                        item.id,
                        oracle.name()
                    );
                }
            }
        }
    }

    #[test]
    fn broken_lemma10_fires_on_its_witness() {
        let oracles = oracle_set(Some("lemma10"));
        let lemma10 = oracles.iter().find(|o| o.name() == "lemma10").unwrap();
        let kind = GadgetKind::Gamma { m: 2 };
        let ctx = Context::Gadget { kind, gadget: std::sync::Arc::new(kind.build()) };
        let Context::Gadget { gadget, .. } = &ctx else { unreachable!() };
        let verdict = lemma10.check(&ctx, &gadget.witness.clone());
        assert!(verdict.is_violation(), "{verdict:?}");
        // The healthy oracle passes the same pair.
        let healthy = oracle_set(None);
        let ok = healthy.iter().find(|o| o.name() == "lemma10").unwrap();
        assert!(!ok.check(&ctx, &gadget.witness.clone()).is_violation());
    }

    #[test]
    fn every_lemma_oracle_is_present() {
        let names: Vec<&str> = oracle_set(None).iter().map(|o| o.name()).collect();
        for required in [
            "lemma5",
            "lemma10",
            "definition3",
            "definition13",
            "lemma12",
            "lemma15",
            "lemma17",
            "lemma18",
            "lemma19-20",
            "lemma21",
            "lemma22",
            "lemma23-24",
            "bag-union",
        ] {
            assert!(names.contains(&required), "missing oracle {required}");
        }
    }
}
