//! DLGP regression fixtures for minimized counterexamples.
//!
//! A fixture is a small text file under `tests/fixtures/falsify/`:
//!
//! ```text
//! # bagcq-falsify regression fixture
//! lemma: lemma10
//! context: gadget gamma m=2
//! identify: a1 = a2
//! database:
//! FP(mars, venus).
//! FA(mars).
//! ```
//!
//! `lemma:` names the oracle to replay, `context:` is a
//! [`Context::parse_spec`] line, optional `identify:` lines record
//! constants the database interprets as the same element (how
//! "seriously incorrect" arena databases survive serialization), and
//! the `database:` section lists the ground atoms in DLGP fact syntax.
//! Constant vertices print under their schema names; anonymous vertices
//! print as `v0, v1, …` and are re-created fresh on parse.
//!
//! `paper_claims.rs` replays every committed fixture against the healthy
//! oracle battery forever after — a counterexample, once found, never
//! regresses silently.

use crate::corpus::Context;
use crate::oracle::{LemmaOracle, Verdict};
use bagcq_structure::{Schema, Structure, Vertex};
use std::collections::HashMap;
use std::sync::Arc;

/// A parsed (or about-to-be-rendered) fixture file.
#[derive(Clone, Debug)]
pub struct Fixture {
    /// Oracle name to replay.
    pub lemma: String,
    /// Context spec line.
    pub context_spec: String,
    /// Pairs of constant names interpreted as one element.
    pub identify: Vec<(String, String)>,
    /// Ground atoms: relation name + argument names.
    pub facts: Vec<(String, Vec<String>)>,
}

/// Names every vertex of `db`: schema-constant names where available,
/// `v{n}` otherwise.
fn vertex_names(db: &Structure) -> Vec<String> {
    let schema = db.schema();
    let mut names: Vec<Option<String>> = vec![None; db.vertex_count() as usize];
    for c in schema.constants() {
        let v = db.constant_vertex(c).0 as usize;
        if names[v].is_none() {
            names[v] = Some(schema.constant_name(c).to_string());
        }
    }
    names.into_iter().enumerate().map(|(i, n)| n.unwrap_or_else(|| format!("v{i}"))).collect()
}

/// Renders a minimized counterexample as fixture text.
pub fn render(lemma: &str, ctx: &Context, db: &Structure) -> String {
    let schema = db.schema();
    let names = vertex_names(db);
    let mut out = String::new();
    out.push_str("# bagcq-falsify regression fixture (minimized counterexample)\n");
    out.push_str(&format!("lemma: {lemma}\n"));
    out.push_str(&format!("context: {}\n", ctx.spec()));
    // Record identified constants: every later constant sharing a vertex
    // with an earlier one gets one identify line against the name owner.
    for c in schema.constants() {
        let name = schema.constant_name(c);
        let owner = &names[db.constant_vertex(c).0 as usize];
        if owner != name {
            out.push_str(&format!("identify: {owner} = {name}\n"));
        }
    }
    out.push_str("database:\n");
    out.push_str(&structure_to_dlgp(db));
    out
}

/// Renders a structure's atoms as DLGP facts, one per line — the
/// database section of a fixture, and the `data:` payload of the wire
/// frames the fleet streams through `bagcq-serve`.
pub fn structure_to_dlgp(db: &Structure) -> String {
    let schema = db.schema();
    let names = vertex_names(db);
    let mut out = String::new();
    for r in schema.relations() {
        let rel_name = &schema.relation(r).name;
        for t in db.tuples(r) {
            let args: Vec<&str> = t.iter().map(|&v| names[v as usize].as_str()).collect();
            out.push_str(&format!("{rel_name}({}).\n", args.join(", ")));
        }
    }
    out
}

/// Parses fixture text.
pub fn parse(text: &str) -> Result<Fixture, String> {
    let mut lemma = None;
    let mut context_spec = None;
    let mut identify = Vec::new();
    let mut facts = Vec::new();
    let mut in_database = false;
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |msg: &str| format!("fixture line {}: {msg}: {line}", lineno + 1);
        if in_database {
            let fact = line.strip_suffix('.').ok_or_else(|| err("fact must end with '.'"))?;
            let (rel, rest) =
                fact.split_once('(').ok_or_else(|| err("fact needs an argument list"))?;
            let args_src = rest.trim_end().strip_suffix(')').ok_or_else(|| err("missing ')'"))?;
            if args_src.contains('@') {
                return Err(err("fixtures are set-structures; no @multiplicity"));
            }
            let args: Vec<String> = args_src.split(',').map(|a| a.trim().to_string()).collect();
            if args.iter().any(String::is_empty) {
                return Err(err("empty argument"));
            }
            facts.push((rel.trim().to_string(), args));
        } else if let Some(v) = line.strip_prefix("lemma:") {
            lemma = Some(v.trim().to_string());
        } else if let Some(v) = line.strip_prefix("context:") {
            context_spec = Some(v.trim().to_string());
        } else if let Some(v) = line.strip_prefix("identify:") {
            let (a, b) = v.split_once('=').ok_or_else(|| err("identify needs 'a = b'"))?;
            identify.push((a.trim().to_string(), b.trim().to_string()));
        } else if line == "database:" {
            in_database = true;
        } else {
            return Err(err("unrecognized line"));
        }
    }
    Ok(Fixture {
        lemma: lemma.ok_or("fixture has no lemma: line")?,
        context_spec: context_spec.ok_or("fixture has no context: line")?,
        identify,
        facts,
    })
}

/// Rebuilds the database a fixture describes over `schema`.
pub fn database_from(
    schema: &Arc<Schema>,
    identify: &[(String, String)],
    facts: &[(String, Vec<String>)],
) -> Result<Structure, String> {
    // Union-find over constant names (identify lines merge classes).
    let const_ids: HashMap<&str, usize> =
        schema.constants().map(|c| (schema.constant_name(c), c.0 as usize)).collect();
    let n_consts = schema.constant_count();
    let mut parent: Vec<usize> = (0..n_consts).collect();
    fn find(parent: &mut Vec<usize>, x: usize) -> usize {
        if parent[x] != x {
            let root = find(parent, parent[x]);
            parent[x] = root;
        }
        parent[x]
    }
    for (a, b) in identify {
        let &ia = const_ids.get(a.as_str()).ok_or(format!("unknown constant {a}"))?;
        let &ib = const_ids.get(b.as_str()).ok_or(format!("unknown constant {b}"))?;
        let (ra, rb) = (find(&mut parent, ia), find(&mut parent, ib));
        parent[rb.max(ra)] = rb.min(ra);
    }
    // Representative constants get the first vertex ids, then every fresh
    // name in order of appearance.
    let mut vertex_of_class: Vec<Option<u32>> = vec![None; n_consts];
    let mut next = 0u32;
    let mut interp = Vec::with_capacity(n_consts);
    for c in 0..n_consts {
        let root = find(&mut parent, c);
        let v = *vertex_of_class[root].get_or_insert_with(|| {
            let v = next;
            next += 1;
            v
        });
        interp.push(Vertex(v));
    }
    let mut fresh: HashMap<&str, u32> = HashMap::new();
    let mut resolved: Vec<(bagcq_structure::RelId, Vec<Vertex>)> = Vec::new();
    for (rel_name, args) in facts {
        let rel =
            schema.relation_by_name(rel_name).ok_or(format!("unknown relation {rel_name}"))?;
        if schema.arity(rel) != args.len() {
            return Err(format!("arity mismatch for {rel_name}"));
        }
        let mut vs = Vec::with_capacity(args.len());
        for a in args {
            let v = if let Some(&c) = const_ids.get(a.as_str()) {
                interp[c].0
            } else {
                *fresh.entry(a.as_str()).or_insert_with(|| {
                    let v = next;
                    next += 1;
                    v
                })
            };
            vs.push(Vertex(v));
        }
        resolved.push((rel, vs));
    }
    let mut db = Structure::with_interpretation(Arc::clone(schema), next, interp);
    for (rel, vs) in resolved {
        db.add_atom(rel, &vs);
    }
    Ok(db)
}

/// Replays a fixture: rebuilds the context and database and runs the
/// named oracle. Errors on malformed specs or unknown oracles.
pub fn replay(fixture: &Fixture, oracles: &[Box<dyn LemmaOracle>]) -> Result<Verdict, String> {
    let ctx = Context::parse_spec(&fixture.context_spec)
        .ok_or(format!("bad context spec: {}", fixture.context_spec))?;
    let schema = ctx.schema();
    let db = database_from(&schema, &fixture.identify, &fixture.facts)?;
    let oracle = oracles
        .iter()
        .find(|o| o.name() == fixture.lemma)
        .ok_or(format!("unknown oracle {}", fixture.lemma))?;
    Ok(oracle.check(&ctx, &db))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{ArenaParams, Context, GadgetKind, Tamper};
    use crate::oracle::oracle_set;

    #[test]
    fn render_parse_round_trip_preserves_the_database() {
        let kind = GadgetKind::Gamma { m: 3 };
        let ctx = Context::from_case(&crate::corpus::CaseParams::Gadget { kind, db_seeds: [0, 0] });
        let witness = match &ctx {
            Context::Gadget { gadget, .. } => gadget.witness.clone(),
            _ => unreachable!(),
        };
        let text = render("lemma10", &ctx, &witness);
        let fixture = parse(&text).expect("fixture parses");
        assert_eq!(fixture.lemma, "lemma10");
        let schema = ctx.schema();
        let rebuilt = database_from(&schema, &fixture.identify, &fixture.facts).unwrap();
        assert!(
            bagcq_structure::isomorphic(&rebuilt, &witness),
            "round-trip changed the db:\n{text}"
        );
    }

    #[test]
    fn identify_lines_survive_serialization() {
        let params = ArenaParams {
            c: 2,
            coeff_s: [1, 1],
            coeff_b: [1, 1],
            valuation: [1, 1],
            tamper: Tamper::IdentifyA,
        };
        let red = params.reduction();
        let db = params.database(&red);
        let ctx = Context::Arena { params: params.clone(), red: Arc::new(red) };
        let text = render("lemma21", &ctx, &db);
        assert!(text.contains("identify: "), "tampered db must record the merge:\n{text}");
        let fixture = parse(&text).expect("parses");
        let rebuilt = database_from(&ctx.schema(), &fixture.identify, &fixture.facts).unwrap();
        assert!(bagcq_structure::isomorphic(&rebuilt, &db));
    }

    #[test]
    fn replay_runs_the_named_oracle() {
        let kind = GadgetKind::Gamma { m: 2 };
        let ctx = Context::from_case(&crate::corpus::CaseParams::Gadget { kind, db_seeds: [0, 0] });
        let witness = match &ctx {
            Context::Gadget { gadget, .. } => gadget.witness.clone(),
            _ => unreachable!(),
        };
        let text = render("lemma10", &ctx, &witness);
        let fixture = parse(&text).expect("parses");
        let healthy = oracle_set(None);
        let verdict = replay(&fixture, &healthy).expect("replays");
        assert!(!verdict.is_violation(), "healthy oracle on the named witness: {verdict:?}");
        let broken = oracle_set(Some("lemma10"));
        let verdict = replay(&fixture, &broken).expect("replays");
        assert!(verdict.is_violation(), "broken oracle must keep firing on the fixture");
    }

    #[test]
    fn malformed_fixtures_are_rejected() {
        assert!(parse("database:\nFP(a).\n").is_err(), "missing lemma/context");
        assert!(parse("lemma: x\ncontext: gadget gamma m=2\ndatabase:\nFP(a\n").is_err());
        assert!(
            parse("lemma: x\ncontext: gadget gamma m=2\ndatabase:\nFP(a)@2.\n").is_err(),
            "multiplicities are not part of fixture structures"
        );
    }
}
