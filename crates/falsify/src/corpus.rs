//! The seeded adversarial corpus.
//!
//! A corpus is a pure function of `(seed, budget)`: a stream of *items*,
//! each a small parameter record from one of three families —
//!
//! * **Gadget**: a β/γ/α/chain multiplication gadget (Definition 3) with
//!   randomized parameters `p ≥ 3`, `m ≥ 2`, `c ≥ 2`, checked on its
//!   named witness plus seeded random databases over its schema;
//! * **Arena**: a Theorem 1 reduction over a toy Lemma 11 instance, with
//!   a correct, slightly-incorrect (extra `S`-atom) or
//!   seriously-incorrect (identified constants) database (Definition 13);
//! * **Traffic**: random CQ/UCQ pairs over a fixed relational schema with
//!   seeded random databases — the flipping-lemma (22–24) and bag-union
//!   regime, and the profile streamed through the engine and the wire.
//!
//! Items are deliberately *parameters*, not materialized objects, so a
//! shrunk counterexample can be described by a one-line spec (see
//! [`Context::spec`]) and rebuilt bit-identically during fixture replay.

use bagcq_query::{Query, QueryGen, UnionGen, UnionQuery};
use bagcq_reduction::{
    alpha_gadget, beta_gadget, gamma_gadget, toy_instance, MultiplyGadget, Theorem1Reduction,
};
use bagcq_structure::{Schema, SchemaBuilder, Structure, StructureGen};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// The fixed schema traffic items live over: one binary and one ternary
/// relation, no constants (Lemma 22 applies to constant-free pure CQs).
pub fn traffic_schema() -> Arc<Schema> {
    let mut b = SchemaBuilder::default();
    b.relation("e", 2);
    b.relation("t", 3);
    b.build()
}

/// Which multiplication gadget an item exercises.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GadgetKind {
    /// `β(p)` — Lemma 5, ratio `(p+1)²/2p`.
    Beta {
        /// Relation arity `p ≥ 3`.
        p: usize,
    },
    /// `γ(m)` — Lemma 10, ratio `(m−1)/m`.
    Gamma {
        /// Cyclique width `m ≥ 2`.
        m: usize,
    },
    /// `α(c) = β(2c−1) ∘ γ(2c)` — ratio exactly `c`.
    Alpha {
        /// The integer ratio `c ≥ 2`.
        c: u64,
    },
    /// A free-form `β(p) ∘ γ(m)` chain (Lemma 4 composition).
    Chain {
        /// β arity.
        p: usize,
        /// γ width.
        m: usize,
    },
}

impl GadgetKind {
    /// Materializes the gadget.
    pub fn build(&self) -> MultiplyGadget {
        match *self {
            GadgetKind::Beta { p } => beta_gadget(p, "F"),
            GadgetKind::Gamma { m } => gamma_gadget(m, "F"),
            GadgetKind::Alpha { c } => alpha_gadget(c, "F"),
            GadgetKind::Chain { p, m } => beta_gadget(p, "Fb").compose(&gamma_gadget(m, "Fg")),
        }
    }

    /// One-line parseable description, e.g. `gadget gamma m=2`.
    pub fn spec(&self) -> String {
        match *self {
            GadgetKind::Beta { p } => format!("gadget beta p={p}"),
            GadgetKind::Gamma { m } => format!("gadget gamma m={m}"),
            GadgetKind::Alpha { c } => format!("gadget alpha c={c}"),
            GadgetKind::Chain { p, m } => format!("gadget chain p={p} m={m}"),
        }
    }

    /// Strictly smaller parameterizations to try while shrinking. A
    /// composed gadget may also degrade to one of its components.
    pub fn shrink_candidates(&self) -> Vec<GadgetKind> {
        match *self {
            GadgetKind::Beta { p } if p > 3 => vec![GadgetKind::Beta { p: p - 1 }],
            GadgetKind::Beta { .. } => vec![],
            GadgetKind::Gamma { m } if m > 2 => vec![GadgetKind::Gamma { m: m - 1 }],
            GadgetKind::Gamma { .. } => vec![],
            GadgetKind::Alpha { c } => {
                let mut out = Vec::new();
                if c > 2 {
                    out.push(GadgetKind::Alpha { c: c - 1 });
                }
                out.push(GadgetKind::Beta { p: (2 * c - 1) as usize });
                out.push(GadgetKind::Gamma { m: (2 * c) as usize });
                out
            }
            GadgetKind::Chain { p, m } => {
                let mut out = Vec::new();
                if p > 3 {
                    out.push(GadgetKind::Chain { p: p - 1, m });
                }
                if m > 2 {
                    out.push(GadgetKind::Chain { p, m: m - 1 });
                }
                out.push(GadgetKind::Beta { p });
                out.push(GadgetKind::Gamma { m });
                out
            }
        }
    }
}

/// How an arena database is corrupted, if at all (Definition 13's
/// taxonomy, driven from the generator side).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Tamper {
    /// Leave the database correct.
    None,
    /// Add one extra `S₁(a₁, b₁)` atom ⇒ slightly incorrect.
    ExtraSAtom,
    /// Identify the constants `a₁` and `a₂` ⇒ seriously incorrect.
    IdentifyA,
}

impl Tamper {
    fn spec(&self) -> &'static str {
        match self {
            Tamper::None => "none",
            Tamper::ExtraSAtom => "extra-s",
            Tamper::IdentifyA => "identify-a",
        }
    }
}

/// Parameters of one arena item: a toy Lemma 11 instance (two monomials
/// in two variables), a valuation, and a tamper mode.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArenaParams {
    /// The target ratio `c ≥ 2`.
    pub c: u64,
    /// `P_s` coefficients, one per monomial (≥ 1).
    pub coeff_s: [u64; 2],
    /// `P_b` coefficients; kept `≥ coeff_s` pointwise so `P_s ≤ P_b`.
    pub coeff_b: [u64; 2],
    /// The valuation `Ξ` the database encodes.
    pub valuation: [u64; 2],
    /// Corruption mode.
    pub tamper: Tamper,
}

impl ArenaParams {
    /// Builds the Theorem 1 reduction for this instance.
    pub fn reduction(&self) -> Theorem1Reduction {
        Theorem1Reduction::new(toy_instance(self.c, self.coeff_s.to_vec(), self.coeff_b.to_vec()))
    }

    /// Builds the (possibly tampered) database.
    pub fn database(&self, red: &Theorem1Reduction) -> Structure {
        let d = red.correct_database(&self.valuation);
        match self.tamper {
            Tamper::None => d,
            Tamper::ExtraSAtom => {
                let mut slight = d;
                let a1 = slight.constant_vertex(red.a_m[0]);
                let b1 = slight.constant_vertex(red.b_n[0]);
                slight.add_atom(red.s_rels[0], &[a1, b1]);
                slight
            }
            Tamper::IdentifyA => {
                let a1v = d.constant_vertex(red.a_m[0]);
                let a2v = d.constant_vertex(red.a_m[1]);
                d.identify(a1v, a2v)
            }
        }
    }

    /// One-line parseable description.
    pub fn spec(&self) -> String {
        format!(
            "arena c={} s={},{} b={},{} val={},{} tamper={}",
            self.c,
            self.coeff_s[0],
            self.coeff_s[1],
            self.coeff_b[0],
            self.coeff_b[1],
            self.valuation[0],
            self.valuation[1],
            self.tamper.spec()
        )
    }

    /// Strictly smaller parameterizations to try while shrinking. The
    /// tamper mode is preserved — it is part of what the oracle tests.
    pub fn shrink_candidates(&self) -> Vec<ArenaParams> {
        let mut out = Vec::new();
        if self.c > 2 {
            out.push(ArenaParams { c: self.c - 1, ..self.clone() });
        }
        for i in 0..2 {
            if self.valuation[i] > 0 {
                let mut p = self.clone();
                p.valuation[i] -= 1;
                out.push(p);
            }
            if self.coeff_b[i] > self.coeff_s[i] {
                let mut p = self.clone();
                p.coeff_b[i] -= 1;
                out.push(p);
            }
            if self.coeff_s[i] > 1 {
                // Keep coeff_b ≥ coeff_s by lowering both.
                let mut p = self.clone();
                p.coeff_s[i] -= 1;
                p.coeff_b[i] -= 1;
                out.push(p);
            }
        }
        out
    }
}

/// Parameters of one traffic item: a random CQ (possibly with
/// inequalities), a random UCQ, and a random database, all derived from
/// recorded seeds so the item is reproducible from its spec line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TrafficParams {
    /// CQ sampling seed.
    pub query_seed: u64,
    /// Variables per CQ.
    pub vars: u32,
    /// Relational atoms per CQ.
    pub atoms: usize,
    /// Inequality atoms per CQ.
    pub ineqs: usize,
    /// UCQ sampling seed.
    pub union_seed: u64,
    /// Maximum UCQ disjuncts.
    pub disjuncts_max: usize,
    /// Database sampling seed.
    pub db_seed: u64,
    /// Non-constant vertices in the database.
    pub db_vertices: u32,
    /// Tuple density in percent.
    pub db_density_pct: u8,
}

impl TrafficParams {
    /// The sampled CQ.
    pub fn query(&self) -> Query {
        let qg = QueryGen {
            variables: self.vars,
            atoms: self.atoms,
            constant_prob: 0.0,
            inequalities: self.ineqs,
        };
        qg.sample(&traffic_schema(), self.query_seed)
    }

    /// The sampled UCQ.
    pub fn union(&self) -> UnionQuery {
        let ug = UnionGen {
            disjuncts_min: 1,
            disjuncts_max: self.disjuncts_max.max(1),
            query: QueryGen {
                variables: self.vars,
                atoms: self.atoms.min(3),
                constant_prob: 0.0,
                inequalities: self.ineqs.min(1),
            },
        };
        ug.sample(&traffic_schema(), self.union_seed)
    }

    /// The sampled database.
    pub fn database(&self) -> Structure {
        let gen = StructureGen {
            extra_vertices: self.db_vertices,
            density: f64::from(self.db_density_pct) / 100.0,
            max_tuples_per_relation: 24,
            diagonal_density: 0.2,
        };
        gen.sample(&traffic_schema(), self.db_seed)
    }

    /// One-line parseable description.
    pub fn spec(&self) -> String {
        format!(
            "traffic q={} vars={} atoms={} ineqs={} u={} dmax={} db={} verts={} dens={}",
            self.query_seed,
            self.vars,
            self.atoms,
            self.ineqs,
            self.union_seed,
            self.disjuncts_max,
            self.db_seed,
            self.db_vertices,
            self.db_density_pct
        )
    }

    /// Strictly smaller parameterizations to try while shrinking.
    pub fn shrink_candidates(&self) -> Vec<TrafficParams> {
        let mut out = Vec::new();
        if self.vars > 2 {
            out.push(TrafficParams { vars: self.vars - 1, ..self.clone() });
        }
        if self.atoms > 1 {
            out.push(TrafficParams { atoms: self.atoms - 1, ..self.clone() });
        }
        if self.ineqs > 0 {
            out.push(TrafficParams { ineqs: self.ineqs - 1, ..self.clone() });
        }
        if self.disjuncts_max > 1 {
            out.push(TrafficParams { disjuncts_max: self.disjuncts_max - 1, ..self.clone() });
        }
        if self.db_vertices > 2 {
            out.push(TrafficParams { db_vertices: self.db_vertices - 1, ..self.clone() });
        }
        if self.db_density_pct > 15 {
            out.push(TrafficParams { db_density_pct: self.db_density_pct - 10, ..self.clone() });
        }
        out
    }
}

/// One corpus item: an id plus the family parameters.
#[derive(Clone, Debug)]
pub enum CaseParams {
    /// A gadget with two random-database seeds (the witness is implied).
    Gadget {
        /// Which gadget.
        kind: GadgetKind,
        /// Seeds for the two sampled databases over the gadget schema.
        db_seeds: [u64; 2],
    },
    /// An arena database.
    Arena(ArenaParams),
    /// A random CQ/UCQ/database triple.
    Traffic(TrafficParams),
}

/// A corpus entry.
#[derive(Clone, Debug)]
pub struct CorpusItem {
    /// Position in the corpus (also the round-robin family selector).
    pub id: u64,
    /// The item parameters.
    pub case: CaseParams,
}

/// Corpus shape: everything downstream is a pure function of this.
#[derive(Clone, Debug)]
pub struct CorpusConfig {
    /// Master RNG seed.
    pub seed: u64,
    /// Number of items.
    pub budget: u64,
}

/// Generates the corpus: families rotate per item, parameters stream
/// from a single `StdRng` so the whole corpus is one deterministic
/// function of the seed.
pub fn generate_corpus(config: &CorpusConfig) -> Vec<CorpusItem> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    (0..config.budget)
        .map(|id| {
            let case = match id % 3 {
                0 => {
                    let kind = match rng.gen_range(0..4) {
                        0 => GadgetKind::Beta { p: rng.gen_range(3usize..=5) },
                        1 => GadgetKind::Gamma { m: rng.gen_range(2usize..=4) },
                        2 => GadgetKind::Alpha { c: 2 },
                        _ => GadgetKind::Chain {
                            p: rng.gen_range(3usize..=4),
                            m: rng.gen_range(2usize..=3),
                        },
                    };
                    CaseParams::Gadget { kind, db_seeds: [rng.gen(), rng.gen()] }
                }
                1 => {
                    let coeff_s = [rng.gen_range(1u64..=3), rng.gen_range(1u64..=3)];
                    let coeff_b = [
                        coeff_s[0] + rng.gen_range(0u64..=2),
                        coeff_s[1] + rng.gen_range(0u64..=2),
                    ];
                    let tamper = match (id / 3) % 3 {
                        0 => Tamper::None,
                        1 => Tamper::ExtraSAtom,
                        _ => Tamper::IdentifyA,
                    };
                    CaseParams::Arena(ArenaParams {
                        c: rng.gen_range(2u64..=3),
                        coeff_s,
                        coeff_b,
                        valuation: [rng.gen_range(0u64..=3), rng.gen_range(0u64..=3)],
                        tamper,
                    })
                }
                _ => CaseParams::Traffic(TrafficParams {
                    query_seed: rng.gen(),
                    vars: rng.gen_range(2u32..=4),
                    atoms: rng.gen_range(1usize..=4),
                    ineqs: rng.gen_range(0usize..=2),
                    union_seed: rng.gen(),
                    disjuncts_max: rng.gen_range(1usize..=3),
                    db_seed: rng.gen(),
                    db_vertices: rng.gen_range(2u32..=4),
                    db_density_pct: rng.gen_range(25u8..=45),
                }),
            };
            CorpusItem { id, case }
        })
        .collect()
}

/// A materialized item context: everything an oracle needs besides the
/// database under test. Reference-counted so shrinking can clone freely.
#[derive(Clone)]
pub enum Context {
    /// A multiplication gadget.
    Gadget {
        /// The parameterization.
        kind: GadgetKind,
        /// The built gadget.
        gadget: Arc<MultiplyGadget>,
    },
    /// A Theorem 1 reduction.
    Arena {
        /// The parameterization.
        params: ArenaParams,
        /// The built reduction.
        red: Arc<Theorem1Reduction>,
    },
    /// A random CQ/UCQ pair.
    Traffic {
        /// The parameterization.
        params: TrafficParams,
        /// The sampled CQ.
        cq: Query,
        /// The sampled UCQ.
        union: UnionQuery,
    },
}

impl Context {
    /// Builds the context for an item's parameters.
    pub fn from_case(case: &CaseParams) -> Context {
        match case {
            CaseParams::Gadget { kind, .. } => {
                Context::Gadget { kind: *kind, gadget: Arc::new(kind.build()) }
            }
            CaseParams::Arena(params) => {
                Context::Arena { params: params.clone(), red: Arc::new(params.reduction()) }
            }
            CaseParams::Traffic(params) => Context::Traffic {
                params: params.clone(),
                cq: params.query(),
                union: params.union(),
            },
        }
    }

    /// The schema databases for this context live over.
    pub fn schema(&self) -> Arc<Schema> {
        match self {
            Context::Gadget { gadget, .. } => Arc::clone(gadget.q_s.schema()),
            Context::Arena { red, .. } => Arc::clone(&red.schema),
            Context::Traffic { .. } => traffic_schema(),
        }
    }

    /// The one-line parseable spec (round-trips via [`Context::parse_spec`]).
    pub fn spec(&self) -> String {
        match self {
            Context::Gadget { kind, .. } => kind.spec(),
            Context::Arena { params, .. } => params.spec(),
            Context::Traffic { params, .. } => params.spec(),
        }
    }

    /// Parses a spec line back into a context.
    pub fn parse_spec(spec: &str) -> Option<Context> {
        let mut words = spec.split_whitespace();
        let family = words.next()?;
        let fields: std::collections::HashMap<&str, &str> =
            words.filter_map(|w| w.split_once('=')).collect();
        let num = |k: &str| fields.get(k)?.parse::<u64>().ok();
        let pair = |k: &str| {
            let (a, b) = fields.get(k)?.split_once(',')?;
            Some([a.parse::<u64>().ok()?, b.parse::<u64>().ok()?])
        };
        let case = match family {
            "gadget" => {
                let kind = if let Some(p) = num("p") {
                    if let Some(m) = num("m") {
                        GadgetKind::Chain { p: p as usize, m: m as usize }
                    } else {
                        GadgetKind::Beta { p: p as usize }
                    }
                } else if let Some(m) = num("m") {
                    GadgetKind::Gamma { m: m as usize }
                } else {
                    GadgetKind::Alpha { c: num("c")? }
                };
                CaseParams::Gadget { kind, db_seeds: [0, 0] }
            }
            "arena" => {
                let tamper = match *fields.get("tamper")? {
                    "none" => Tamper::None,
                    "extra-s" => Tamper::ExtraSAtom,
                    "identify-a" => Tamper::IdentifyA,
                    _ => return None,
                };
                CaseParams::Arena(ArenaParams {
                    c: num("c")?,
                    coeff_s: pair("s")?,
                    coeff_b: pair("b")?,
                    valuation: pair("val")?,
                    tamper,
                })
            }
            "traffic" => CaseParams::Traffic(TrafficParams {
                query_seed: num("q")?,
                vars: num("vars")? as u32,
                atoms: num("atoms")? as usize,
                ineqs: num("ineqs")? as usize,
                union_seed: num("u")?,
                disjuncts_max: num("dmax")? as usize,
                db_seed: num("db")?,
                db_vertices: num("verts")? as u32,
                db_density_pct: num("dens")? as u8,
            }),
            _ => return None,
        };
        Some(Context::from_case(&case))
    }
}

/// Materializes an item: the context plus the databases to check. The
/// first gadget database is always the named witness.
pub fn materialize(item: &CorpusItem) -> (Context, Vec<Structure>) {
    let ctx = Context::from_case(&item.case);
    let dbs = match (&item.case, &ctx) {
        (CaseParams::Gadget { kind, db_seeds }, Context::Gadget { gadget, .. }) => {
            let max_tuples = match kind {
                GadgetKind::Beta { .. } | GadgetKind::Gamma { .. } => 48,
                _ => 32,
            };
            let gen = StructureGen {
                extra_vertices: 2,
                density: 0.35,
                max_tuples_per_relation: max_tuples,
                diagonal_density: 0.5,
            };
            let schema = gadget.q_s.schema();
            let mut dbs = vec![gadget.witness.clone()];
            dbs.extend(db_seeds.iter().map(|&s| gen.sample(schema, s)));
            dbs
        }
        (CaseParams::Arena(params), Context::Arena { red, .. }) => vec![params.database(red)],
        (CaseParams::Traffic(params), Context::Traffic { .. }) => vec![params.database()],
        _ => unreachable!("Context::from_case preserves the family"),
    };
    (ctx, dbs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_deterministic_and_covers_all_families() {
        let config = CorpusConfig { seed: 7, budget: 12 };
        let a = generate_corpus(&config);
        let b = generate_corpus(&config);
        assert_eq!(a.len(), 12);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(format!("{:?}", x.case), format!("{:?}", y.case));
        }
        assert!(a.iter().any(|i| matches!(i.case, CaseParams::Gadget { .. })));
        assert!(a.iter().any(|i| matches!(i.case, CaseParams::Arena(_))));
        assert!(a.iter().any(|i| matches!(i.case, CaseParams::Traffic(_))));
        // All three tamper modes appear across arena items.
        let tampers: std::collections::HashSet<_> = a
            .iter()
            .filter_map(|i| match &i.case {
                CaseParams::Arena(p) => Some(p.tamper),
                _ => None,
            })
            .collect();
        assert_eq!(tampers.len(), 3, "{tampers:?}");
    }

    #[test]
    fn specs_round_trip() {
        for item in generate_corpus(&CorpusConfig { seed: 3, budget: 9 }) {
            let (ctx, _) = materialize(&item);
            let spec = ctx.spec();
            let back = Context::parse_spec(&spec).expect("spec parses");
            assert_eq!(back.spec(), spec, "spec round-trip");
        }
        assert!(Context::parse_spec("nonsense x=1").is_none());
    }

    #[test]
    fn tampered_arena_databases_classify_as_designed() {
        use bagcq_reduction::Correctness;
        let base = ArenaParams {
            c: 2,
            coeff_s: [1, 2],
            coeff_b: [2, 3],
            valuation: [1, 2],
            tamper: Tamper::None,
        };
        let red = base.reduction();
        assert_eq!(red.classify(&base.database(&red)), Correctness::Correct);
        let slight = ArenaParams { tamper: Tamper::ExtraSAtom, ..base.clone() };
        assert_eq!(red.classify(&slight.database(&red)), Correctness::SlightlyIncorrect);
        let serious = ArenaParams { tamper: Tamper::IdentifyA, ..base };
        assert_eq!(red.classify(&serious.database(&red)), Correctness::SeriouslyIncorrect);
    }

    #[test]
    fn gadget_shrink_candidates_stay_legal() {
        let kinds = [
            GadgetKind::Beta { p: 5 },
            GadgetKind::Gamma { m: 4 },
            GadgetKind::Alpha { c: 3 },
            GadgetKind::Chain { p: 4, m: 3 },
        ];
        for kind in kinds {
            for cand in kind.shrink_candidates() {
                // Must build without panicking (p ≥ 3, m ≥ 2, c ≥ 2).
                let g = cand.build();
                assert!(g.check_witness().is_ok(), "{cand:?}");
            }
        }
    }
}
