//! # bagcq-core
//!
//! One-stop facade for the `bagcq` workspace — a Rust reproduction of
//! *Bag Semantics Conjunctive Query Containment. Four Small Steps Towards
//! Undecidability* (Jerzy Marcinkowski & Mateusz Orda, PODS 2024).
//!
//! The workspace mechanizes every construction in the paper:
//!
//! * bag-semantics query evaluation `ψ(D) = |Hom(ψ, D)|` with two
//!   independent engines ([`homcount`]);
//! * the Section 3 multiplication gadgets `β`, `γ`, `α` and the Section 4
//!   Theorem 1 reduction from Hilbert's 10th problem ([`reduction`],
//!   [`hilbert`], [`polynomial`]);
//! * the Theorem 3 single-inequality assembly and the Theorem 5
//!   inequality-elimination construction ([`reduction`]);
//! * a sound-certificate / verified-counterexample containment harness
//!   ([`containment`]);
//! * a concurrent batched evaluation service with a single-flight memo
//!   cache, deadlines, continuous dual-engine cross-validation, and a
//!   resilience layer (deterministic fault injection, retry/backoff,
//!   engine fallback, circuit breakers, crash-safe sweep journals), and
//!   an overload-safe serving layer (bounded admission, typed load
//!   shedding, worker supervision, memory budgeting, graceful drain)
//!   ([`engine`]).
//!
//! ## Quickstart
//!
//! ```
//! use bagcq_core::prelude::*;
//! use std::sync::Arc;
//!
//! // Schema with one binary relation.
//! let mut sb = Schema::builder();
//! sb.relation("E", 2);
//! let schema = sb.build();
//!
//! // ϱ_s = E(x,y) (edges), ϱ_b = E(u,v) ∧ E(v,w) (2-walks).
//! let mut qb = Query::builder(Arc::clone(&schema));
//! let x = qb.var("x"); let y = qb.var("y");
//! qb.atom_named("E", &[x, y]);
//! let edges = qb.build();
//!
//! let mut qb = Query::builder(Arc::clone(&schema));
//! let u = qb.var("u"); let v = qb.var("v"); let w = qb.var("w");
//! qb.atom_named("E", &[u, v]).atom_named("E", &[v, w]);
//! let walks = qb.build();
//!
//! // Is every database's edge count at most its 2-walk count? No:
//! let verdict = ContainmentChecker::new().check(&edges, &walks);
//! assert!(verdict.is_refuted());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use bagcq_arith as arith;
pub use bagcq_containment as containment;
pub use bagcq_engine as engine;
pub use bagcq_hilbert as hilbert;
pub use bagcq_homcount as homcount;
pub use bagcq_obs as obs;
pub use bagcq_polynomial as polynomial;
pub use bagcq_query as query;
pub use bagcq_reduction as reduction;
pub use bagcq_structure as structure;

/// The most commonly used items, re-exported flat.
pub mod prelude {
    pub use bagcq_arith::{acc_promotions, CertOrd, Int, Magnitude, Nat, Rat};
    pub use bagcq_containment::{
        containment_backend, registered_containment_backends, set_contained, Certificate,
        CheckRequest, CheckSpec, ContainmentBackend, ContainmentChecker, ContainmentChoice,
        Counterexample, SearchBudget, Semantics, TryCountFn, Unsupported, Verdict,
    };
    pub use bagcq_engine::{
        AdmissionConfig, AdmissionPolicy, BreakerConfig, CachedCounter, CountError, DrainReport,
        EngineConfig, EngineHealth, EvalEngine, FailFast, FaultInjector, FaultKind, FaultPlan, Job,
        JobHandle, JobSpec, MemoStore, MetricsSnapshot, Outcome, RecoveryReport, RetryPolicy,
        ShedReason, StoreError, StoreOptions, StoreStats, SupervisorConfig, SweepJournal,
        TraceReport, TraceSession,
    };
    pub use bagcq_hilbert::{by_name as hilbert_instance, library as hilbert_library, reduce};
    pub use bagcq_homcount::{
        answer_bag, answer_bag_contained, backend_for, eval_power_query, find_onto_hom,
        output_contained_on, registered_backends, verify_onto_hom, AnswerBag, BackendChoice,
        CountBackend, CountRequest, Engine, EvalOptions, FastNaiveCounter, FastTreewidthCounter,
        NaiveCounter, TreewidthCounter,
    };
    pub use bagcq_obs::StageStats;
    pub use bagcq_polynomial::{Lemma11Instance, Monomial, Polynomial};
    pub use bagcq_query::{
        cycle_query, free_constants, grid_query, parse_query, parse_query_infer, path_query,
        star_query, OutputQuery, PowerQuery, Query, QueryGen, Term, UnionQuery,
    };
    pub use bagcq_reduction::{
        alpha_gadget, beta_gadget, compose_theorem3, eliminate_inequalities, eval_union,
        gamma_gadget, ioannidis_encode, theorem3_sizes, toy_instance, Correctness,
        IoannidisEncoding, MultiplyGadget, Theorem1Reduction, Theorem2Statement, Theorem4Statement,
    };
    pub use bagcq_structure::{
        isomorphic, parse_structure, parse_structure_infer, structure_to_text, ConstId, RelId,
        Schema, SchemaBuilder, Structure, StructureGen, Vertex, MARS, VENUS,
    };
}
