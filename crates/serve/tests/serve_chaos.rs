//! Wire-level chaos end-to-end suite: a real `Server` wrapped in the
//! seeded fault transport, driven by the self-healing load generator.
//!
//! The contract under test, for any fault schedule the plan can draw:
//!
//! * every answer the client accepts is **bit-identical** to the
//!   in-process oracle (and to every other delivery of the same frame);
//! * no request hangs past its deadlines — slow clients are evicted
//!   with a typed 408, slow servers are abandoned by client timeouts;
//! * retries and hedges never double-charge admission: per tenant,
//!   `admitted` counts each `Idempotency-Key` at most once and
//!   `idempotent_replays` accounts for every replayed delivery;
//! * the planted `corrupt-pass` bug (a server that corrupts count
//!   frames *before* checksumming them) is caught by the client's
//!   end-to-end oracle — proof the oracle is not vacuous.

use bagcq_serve::http::{crc32, read_response, write_request_with_headers, HttpLimits};
use bagcq_serve::{
    parse_response, LoadgenConfig, NetFaultPlan, RetryPolicy, Server, ServerConfig, TenantQuota,
    TenantSpec, WireResponse, WorkloadMix,
};
use std::io::{BufReader, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

fn open_tenant() -> TenantSpec {
    TenantSpec::new("default", "dev-key").with_quota(TenantQuota {
        rate_per_sec: 0,
        burst: 0,
        max_in_flight: 0,
        max_connections: 0,
    })
}

/// POST with extra headers over a fresh connection; returns the full
/// response.
fn post_with_headers(
    addr: &str,
    path: &str,
    key: &str,
    body: &str,
    extra: &[(&str, String)],
) -> bagcq_serve::HttpResponse {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(10))).expect("timeout");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    write_request_with_headers(&mut writer, "POST", path, key, body.as_bytes(), extra)
        .expect("write");
    read_response(&mut reader, &HttpLimits::default())
        .expect("read")
        .expect("server closed without answering")
}

/// Plain GET over a fresh connection; returns `(status, body)`.
fn get(addr: &str, path: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(10))).expect("timeout");
    write!(stream, "GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n").expect("write");
    let mut reader = BufReader::new(stream);
    let resp = read_response(&mut reader, &HttpLimits::default())
        .expect("read")
        .expect("server closed without answering");
    (resp.status, resp.utf8_body().expect("utf-8").to_string())
}

/// The tentpole property: a chaos-wrapped server (faults on every
/// accepted connection per the seeded plan) driven by a retrying,
/// chaos-wrapped client still produces a **clean** run — zero protocol
/// errors, zero mismatches — and admission is never double-charged.
#[test]
fn chaos_loadgen_with_retries_is_clean_and_never_double_charges() {
    let server = Server::start(ServerConfig {
        tenants: vec![open_tenant()],
        chaos: Some(NetFaultPlan::seeded(7)),
        ..Default::default()
    })
    .expect("server starts");

    let config = LoadgenConfig {
        addr: server.local_addr().to_string(),
        requests: 400,
        connections: 4,
        seed: 7,
        retry: Some(RetryPolicy { max_retries: 8, ..RetryPolicy::default() }),
        chaos_net: Some(99), // faults on the client's own sockets too
        io_timeout: Duration::from_secs(5),
        ..Default::default()
    };
    let started = Instant::now();
    let report = bagcq_serve::loadgen::run(&config);
    // No-hang bound: deadlines and capped faults, not wall-clock
    // patience, decide every exchange.
    assert!(
        started.elapsed() < Duration::from_secs(120),
        "chaos run exceeded its completion bound: {:?}",
        started.elapsed()
    );
    assert_eq!(report.protocol_errors, 0, "chaos must be healed:\n{}", report.render());
    assert_eq!(report.mismatches, 0, "answers diverged under chaos:\n{}", report.render());
    assert!(report.clean());
    assert!(report.ok > 0, "no successful requests:\n{}", report.render());

    // Exactly-once accounting: each planned well-formed request carries
    // one Idempotency-Key and is charged admission at most once, no
    // matter how many times chaos forced a re-delivery.
    let wellformed = bagcq_serve::plan_requests(&config).iter().filter(|p| !p.malformed).count();
    let snap = server.metrics();
    let tenant = snap.tenants.iter().find(|t| t.name == "default").expect("tenant counters");
    assert!(
        tenant.admitted <= wellformed as u64,
        "admission double-charged: {} admitted for {wellformed} well-formed requests (retries {}, \
         replays {})",
        tenant.admitted,
        report.retries,
        tenant.idempotent_replays
    );
    // Every client-accepted 200 was either a charged first delivery or
    // an uncharged idempotent replay.
    assert!(
        tenant.admitted + tenant.idempotent_replays >= report.ok,
        "unaccounted 200s: admitted {} + replays {} < ok {}",
        tenant.admitted,
        tenant.idempotent_replays,
        report.ok
    );
    server.shutdown();
}

/// Hedged requests are speculative duplicates by design; the run must
/// still be clean (the idempotency memo absorbs the duplicates).
#[test]
fn hedged_chaos_run_stays_clean() {
    let server = Server::start(ServerConfig {
        tenants: vec![open_tenant()],
        chaos: Some(NetFaultPlan::seeded(42).with_stall(Duration::from_millis(40))),
        ..Default::default()
    })
    .expect("server starts");
    let report = bagcq_serve::loadgen::run(&LoadgenConfig {
        addr: server.local_addr().to_string(),
        requests: 200,
        connections: 2,
        seed: 42,
        retry: Some(RetryPolicy { max_retries: 8, ..RetryPolicy::default() }),
        hedge_after: Some(Duration::from_millis(250)),
        io_timeout: Duration::from_secs(5),
        // No malformed frames: isolate the hedge/retry path.
        mix: WorkloadMix { hot_count_per_1024: 924, check_per_1024: 100, malformed_per_1024: 0 },
        ..Default::default()
    });
    assert!(report.clean(), "hedged chaos run was not clean:\n{}", report.render());
    assert!(report.ok > 0);
    server.shutdown();
}

/// An explicit exactly-once probe: the same frame delivered twice under
/// one `Idempotency-Key` answers bit-identically, charges admission
/// once, and counts one replay.
#[test]
fn idempotent_retry_is_replayed_bit_identically_and_charged_once() {
    let server = Server::start(ServerConfig { tenants: vec![open_tenant()], ..Default::default() })
        .expect("server starts");
    let addr = server.local_addr().to_string();
    let body = "query: ?- e(X, Y).\ndata: e(a, b)@2.\n";
    let headers = [
        ("Idempotency-Key", "probe-1".to_string()),
        ("X-Body-Crc", format!("{:08x}", crc32(body.as_bytes()))),
    ];

    let first = post_with_headers(&addr, "/v1/count", "dev-key", body, &headers);
    assert_eq!(first.status, 200, "first delivery failed");
    let second = post_with_headers(&addr, "/v1/count", "dev-key", body, &headers);
    assert_eq!(second.status, 200, "replayed delivery failed");
    assert_eq!(first.body, second.body, "replay must be bit-identical to the first delivery");

    let snap = server.metrics();
    let tenant = snap.tenants.iter().find(|t| t.name == "default").expect("tenant counters");
    assert_eq!(tenant.admitted, 1, "the retry must not be charged a second admission");
    assert_eq!(tenant.idempotent_replays, 1, "the second delivery must count as a replay");
    server.shutdown();
}

/// A client that starts a request and then trickles nothing is evicted
/// with a typed, `Retry-After`-carrying 408 — within the read deadline,
/// not the (longer) idle timeout.
#[test]
fn slow_loris_clients_are_evicted_with_a_typed_408() {
    let server = Server::start(ServerConfig {
        tenants: vec![open_tenant()],
        read_deadline: Duration::from_millis(300),
        idle_timeout: Duration::from_secs(30),
        ..Default::default()
    })
    .expect("server starts");
    let addr = server.local_addr().to_string();

    let mut stream = TcpStream::connect(&addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(10))).expect("timeout");
    // Head + a declared-but-never-sent body: the request has started,
    // so the read deadline (not the idle timeout) governs.
    write!(
        stream,
        "POST /v1/count HTTP/1.1\r\nHost: t\r\nX-Api-Key: dev-key\r\nContent-Length: 400\r\n\r\nquery:"
    )
    .expect("write");
    let started = Instant::now();
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let resp = read_response(&mut reader, &HttpLimits::default())
        .expect("read")
        .expect("server closed without answering the slow client");
    let waited = started.elapsed();
    assert_eq!(resp.status, 408, "slow clients must get a typed 408");
    assert_eq!(resp.header("retry-after"), Some("1"), "408s must carry Retry-After");
    match parse_response(resp.utf8_body().expect("utf-8")).expect("typed frame") {
        WireResponse::Error { kind, reason, .. } => {
            assert_eq!(kind, "slow_client");
            assert_eq!(reason, "read_deadline");
        }
        other => panic!("expected a typed slow_client error, got {other:?}"),
    }
    assert!(
        waited < Duration::from_secs(10),
        "eviction took {waited:?}; the idle timeout leaked into the request phase"
    );
    // The connection is closed after eviction.
    let mut rest = Vec::new();
    stream.set_read_timeout(Some(Duration::from_secs(5))).expect("timeout");
    let mut tail = reader;
    let _ = tail.read_to_end(&mut rest);
    assert!(rest.is_empty(), "server kept talking after evicting: {rest:?}");
    server.shutdown();
}

/// The per-tenant connection cap: a second concurrent socket for the
/// same tenant sheds with a typed `connection_limit` 429 and closes;
/// releasing the first slot readmits.
#[test]
fn per_tenant_connection_cap_sheds_and_releases() {
    let capped = TenantSpec::new("default", "dev-key").with_quota(TenantQuota {
        rate_per_sec: 0,
        burst: 0,
        max_in_flight: 0,
        max_connections: 1,
    });
    let server = Server::start(ServerConfig { tenants: vec![capped], ..Default::default() })
        .expect("server starts");
    let addr = server.local_addr().to_string();
    let body = "query: ?- e(X, Y).\ndata: e(a, b).\n";

    // Connection A takes the tenant's one slot and keeps it alive.
    let a = TcpStream::connect(&addr).expect("connect");
    a.set_read_timeout(Some(Duration::from_secs(10))).expect("timeout");
    let mut a_writer = a.try_clone().expect("clone");
    let mut a_reader = BufReader::new(a);
    write_request_with_headers(&mut a_writer, "POST", "/v1/count", "dev-key", body.as_bytes(), &[])
        .expect("write");
    let first =
        read_response(&mut a_reader, &HttpLimits::default()).expect("read").expect("server closed");
    assert_eq!(first.status, 200, "the first connection must get the slot");

    // Connection B must shed with the typed connection-limit 429.
    let shed = post_with_headers(&addr, "/v1/count", "dev-key", body, &[]);
    assert_eq!(shed.status, 429, "second concurrent connection must shed");
    assert_eq!(shed.header("retry-after"), Some("1"));
    match parse_response(shed.utf8_body().expect("utf-8")).expect("typed frame") {
        WireResponse::Error { kind, reason, .. } => {
            assert_eq!(kind, "shed");
            assert_eq!(reason, "connection_limit");
        }
        other => panic!("expected a typed connection_limit shed, got {other:?}"),
    }

    // Releasing A's socket frees the slot (the server notices on its
    // side asynchronously — poll briefly).
    drop(a_reader);
    drop(a_writer);
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let retry = post_with_headers(&addr, "/v1/count", "dev-key", body, &[]);
        if retry.status == 200 {
            break;
        }
        assert_eq!(retry.status, 429, "unexpected status while waiting for slot release");
        assert!(Instant::now() < deadline, "connection slot never released");
        std::thread::sleep(Duration::from_millis(50));
    }
    let snap = server.metrics();
    let tenant = snap.tenants.iter().find(|t| t.name == "default").expect("tenant counters");
    assert!(tenant.connection_rejections >= 1, "the shed must be counted");
    server.shutdown();
}

/// `/healthz` surfaces the live engine health and flips to `draining`.
#[test]
fn healthz_surfaces_live_health_and_draining() {
    let server = Server::start(ServerConfig { tenants: vec![open_tenant()], ..Default::default() })
        .expect("server starts");
    let addr = server.local_addr().to_string();

    let (status, body) = get(&addr, "/healthz");
    assert_eq!(status, 200);
    assert_eq!(body, "ok: healthy\n", "fresh server must report healthy");

    server.drain(Duration::from_secs(5));
    let (status, body) = get(&addr, "/healthz");
    assert_eq!(status, 200);
    assert_eq!(body, "ok: draining\n", "drained server must report draining");
    server.shutdown();
}

/// The oracle self-test: a server that corrupts every 200 count frame
/// *before* checksumming it defeats every transport-level integrity
/// check — and the load generator's end-to-end count oracle must still
/// catch it. (CI runs the binary equivalent via
/// `BAGCQ_CHAOS_NET_BREAK=corrupt-pass` and asserts a non-zero exit.)
#[test]
fn corrupt_pass_break_is_caught_by_the_count_oracle_not_the_crc() {
    let server = Server::start(ServerConfig {
        tenants: vec![open_tenant()],
        chaos_break_corrupt_pass: true,
        ..Default::default()
    })
    .expect("server starts");
    let report = bagcq_serve::loadgen::run(&LoadgenConfig {
        addr: server.local_addr().to_string(),
        requests: 120,
        connections: 2,
        seed: 7,
        retry: Some(RetryPolicy { max_retries: 2, ..RetryPolicy::default() }),
        io_timeout: Duration::from_secs(5),
        ..Default::default()
    });
    assert!(
        report.mismatches > 0,
        "the planted corruption must be caught by the count oracle:\n{}",
        report.render()
    );
    assert!(!report.clean(), "a corrupting server must fail the run");
    assert_eq!(
        report.protocol_errors,
        0,
        "corrupt-pass is invisible to transport checks by construction:\n{}",
        report.render()
    );
    server.shutdown();
}
