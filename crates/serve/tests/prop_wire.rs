//! Property tests for the wire layer: serialization round-trips
//! (`parse ∘ serialize = id` for queries, bag instances, and response
//! frames) and malformed-frame fuzzing (arbitrary bodies and raw bytes
//! never panic a parser — every rejection is a typed error).

use bagcq_containment::{ContainmentChoice, Semantics};
use bagcq_homcount::{BackendChoice, CountRequest};
use bagcq_query::{
    parse_bag_instance_infer, parse_dlgp_query, parse_dlgp_query_infer, query_to_dlgp, BagFact,
    BagInstance, QueryGen,
};
use bagcq_serve::{
    parse_check_request, parse_count_request, parse_response, HttpLimits, WireResponse,
};
use bagcq_structure::{Schema, SchemaBuilder, StructureGen};
use proptest::prelude::*;
use std::io::Cursor;
use std::sync::Arc;

fn schema() -> Arc<Schema> {
    let mut b = SchemaBuilder::default();
    b.relation("e", 2);
    b.relation("r", 3);
    b.constant("a");
    b.constant("b");
    b.build()
}

fn sample_query(seed: u64, vars: u32, atoms: usize, ineqs: usize) -> bagcq_query::Query {
    let qg = QueryGen { variables: vars, atoms, constant_prob: 0.2, inequalities: ineqs };
    qg.sample(&schema(), seed)
}

fn sample_bag(seed: u64, facts: usize) -> BagInstance {
    // Deterministic fact soup over a tiny vocabulary; duplicates are
    // deliberate so `normalized()` has real merging to do.
    let rels: [(&str, usize); 2] = [("e", 2), ("r", 3)];
    let consts = ["a", "b", "c", "n0", "n1"];
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut out = Vec::with_capacity(facts);
    for _ in 0..facts {
        let (rel, arity) = rels[(next() % 2) as usize];
        let args =
            (0..arity).map(|_| consts[(next() as usize) % consts.len()].to_string()).collect();
        out.push(BagFact { rel: rel.to_string(), args, mult: 1 + next() % 5 });
    }
    BagInstance { facts: out }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `parse_dlgp_query ∘ query_to_dlgp = id` up to the serializer's
    /// variable renaming: the reparse serializes back to the identical
    /// string and counts bit-identically on a shared database.
    #[test]
    fn query_dlgp_round_trips(
        seed in 0u64..10_000,
        vars in 1u32..6,
        atoms in 1usize..6,
        ineqs in 0usize..3,
        dseed in 0u64..10_000,
    ) {
        let q = sample_query(seed, vars, atoms, ineqs);
        let src = query_to_dlgp(&q);
        let back = parse_dlgp_query(q.schema(), &src)
            .unwrap_or_else(|e| panic!("serialized query failed to reparse:\n{}", e.render()));
        prop_assert_eq!(&query_to_dlgp(&back), &src, "serializer is not a fixed point");
        let sg = StructureGen {
            extra_vertices: 3,
            density: 0.4,
            max_tuples_per_relation: 200,
            diagonal_density: 0.4,
        };
        let d = sg.sample(q.schema(), dseed);
        // DLGP has no way to write a variable that appears in no atom and
        // no inequality; the serializer drops them, and each dropped
        // variable is exactly one free `|V_D|` factor of the count.
        let dropped = q.var_count() - back.var_count();
        let free_factor = bagcq_arith::Nat::from_u64(u64::from(d.vertex_count()))
            .pow_u64(u64::from(dropped));
        prop_assert_eq!(
            CountRequest::new(&q, &d).count(),
            CountRequest::new(&back, &d).count() * free_factor,
            "reparsed query counts differently"
        );
    }

    /// `parse_bag_instance_infer ∘ BagInstance::to_dlgp = id` on the
    /// faithful bag view — multiplicities, fact order, and the support's
    /// distinct-atom count all survive.
    #[test]
    fn bag_instance_round_trips(seed in 0u64..10_000, facts in 1usize..12) {
        let bag = sample_bag(seed, facts);
        let src = bag.to_dlgp();
        let (back, support, _) = parse_bag_instance_infer(&src)
            .unwrap_or_else(|e| panic!("serialized bag failed to reparse:\n{}", e.render()));
        prop_assert_eq!(&back, &bag, "bag view changed across the round-trip");
        prop_assert_eq!(back.total_multiplicity(), bag.total_multiplicity());
        let support_atoms: usize =
            support.schema().relations().map(|r| support.atom_count(r)).sum();
        prop_assert_eq!(support_atoms, bag.distinct_fact_count());
        prop_assert_eq!(&back.to_dlgp(), &src);
    }

    /// `parse_response ∘ WireResponse::render = id` for count frames over
    /// every backend name and arbitrary numeric payloads.
    #[test]
    fn count_response_round_trips(
        which in 0usize..5,
        bag_total in 0u64..u64::MAX,
        support_atoms in 0u64..100_000,
        count in 0u64..u64::MAX,
    ) {
        let resp = WireResponse::Count {
            backend: BackendChoice::ALL[which],
            bag_total,
            support_atoms,
            count: bagcq_arith::Nat::from_u64(count),
        };
        prop_assert_eq!(parse_response(&resp.render()).unwrap(), resp);
    }

    /// `parse_response ∘ render = id` for check frames, including
    /// multi-line details (the `detail:` field is last on the wire),
    /// over every semantics and every registered backend label.
    #[test]
    fn check_response_round_trips(
        sem in 0usize..2,
        backend in 0usize..4,
        verdict in "[a-z\\-]{1,12}",
        detail in "[a-zA-Z0-9 _.<=\\-]{0,40}(\\n[a-zA-Z0-9 _.<=^~\\-]{0,40}){0,3}",
    ) {
        let resp = WireResponse::Check {
            semantics: [Semantics::Bag, Semantics::Set][sem],
            containment: ContainmentChoice::REGISTERED[backend],
            verdict,
            detail,
        };
        prop_assert_eq!(parse_response(&resp.render()).unwrap(), resp);
    }

    /// A check frame with `semantics`/`containment` headers and union
    /// payloads (`;`-inline and one-rule-per-line) survives serialize →
    /// parse: the spec carries the headers and the exact disjunct lists.
    #[test]
    fn union_check_frame_round_trips(
        seeds in proptest::collection::vec(0u64..10_000, 1..4),
        bseeds in proptest::collection::vec(0u64..10_000, 1..4),
        sem in 0usize..2,
        inline in any::<bool>(),
    ) {
        let semantics = [Semantics::Bag, Semantics::Set][sem];
        let small: Vec<_> = seeds.iter().map(|&s| sample_query(s, 3, 2, 0)).collect();
        let big: Vec<_> = bseeds.iter().map(|&s| sample_query(s, 3, 2, 0)).collect();
        let render_union = |qs: &[bagcq_query::Query]| -> String {
            if inline {
                // One rule, `;`-separated: strip each `?- ` prefix and
                // trailing period past the first disjunct.
                let parts: Vec<String> = qs
                    .iter()
                    .map(|q| {
                        let t = query_to_dlgp(q);
                        t.trim_start_matches("?- ").trim_end_matches('.').trim().to_string()
                    })
                    .collect();
                format!("?- {}.", parts.join(" ; "))
            } else {
                qs.iter().map(query_to_dlgp).collect::<Vec<_>>().join("\n")
            }
        };
        let body = format!(
            "semantics: {semantics}\nsmall:\n{}\nbig:\n{}",
            render_union(&small),
            render_union(&big),
        );
        let job = parse_check_request(&body)
            .unwrap_or_else(|e| panic!("serialized union frame failed to parse: {e}\n{body}"));
        prop_assert_eq!(job.spec.semantics, semantics);
        prop_assert_eq!(job.spec.choice, ContainmentChoice::Auto);
        prop_assert_eq!(job.spec.q_s.len(), small.len());
        prop_assert_eq!(job.spec.q_b.len(), big.len());
        for (parsed, orig) in job.spec.q_s.disjuncts().iter().zip(&small) {
            prop_assert_eq!(&query_to_dlgp(parsed), &query_to_dlgp(orig));
        }
        for (parsed, orig) in job.spec.q_b.disjuncts().iter().zip(&big) {
            prop_assert_eq!(&query_to_dlgp(parsed), &query_to_dlgp(orig));
        }
    }

    /// `parse_response ∘ render = id` for typed errors, with and without
    /// a machine `reason`, including caret-snippet style details.
    #[test]
    fn error_response_round_trips(
        kind in "[a-z_]{1,12}",
        reason in "([a-z_]{1,16})?",
        detail in "[a-zA-Z0-9 _.<=\\-]{0,40}(\\n[a-zA-Z0-9 _.<=^~\\-]{0,40}){0,3}",
    ) {
        let resp = if reason.is_empty() {
            WireResponse::error(kind, detail)
        } else {
            WireResponse::error_with_reason(kind, reason, detail)
        };
        prop_assert_eq!(parse_response(&resp.render()).unwrap(), resp);
    }

    /// A full count frame round-trips end to end: serialize a random
    /// query + bag into a request body, parse it, and the parsed job
    /// carries the same bag and a query that counts identically.
    #[test]
    fn count_frame_round_trips(
        qseed in 0u64..10_000,
        bseed in 0u64..10_000,
        atoms in 1usize..5,
        facts in 1usize..10,
    ) {
        let q = sample_query(qseed, 3, atoms, 0);
        let bag = sample_bag(bseed, facts);
        let body = format!("backend: naive\nquery:\n{}\ndata:\n{}", query_to_dlgp(&q), bag.to_dlgp());
        let job = parse_count_request(&body)
            .unwrap_or_else(|e| panic!("serialized frame failed to parse: {e}"));
        prop_assert_eq!(&job.bag, &bag);
        prop_assert_eq!(job.backend, BackendChoice::Naive);
        // The job's schema is the merged vocabulary; the query must still
        // serialize to the same DLGP text modulo that re-resolution.
        prop_assert_eq!(&query_to_dlgp(&job.query), &query_to_dlgp(&q));
    }

    // -- fuzzing: nothing panics, every rejection is typed -----------------

    /// Arbitrary near-miss bodies (section soup, stray punctuation,
    /// truncations) never panic either request parser.
    #[test]
    fn fuzzed_bodies_never_panic(
        body in "((backend|query|data|small|big|semantics|containment|qurey|x)(:)?( )?[a-zA-Z0-9 ?(),.;@!=_\\-]{0,30}\\n?){0,6}",
    ) {
        let _ = parse_count_request(&body);
        let _ = parse_check_request(&body);
        let _ = parse_response(&body);
    }

    /// Mutations of a *valid* frame — a byte flipped, a slice deleted —
    /// either still parse or fail with a typed error, never a panic.
    #[test]
    fn mutated_valid_frames_never_panic(
        cut_at in 0usize..120,
        cut_len in 0usize..20,
        insert in "[ -~\\n\\t]{0,4}",
    ) {
        let valid = "backend: auto\nquery:\n  ?- e(X, Y), e(Y, Z).\ndata:\n  e(a, b)@2.\n  e(b, c).\n";
        let mut s = valid.to_string();
        let start = cut_at.min(s.len());
        let end = (start + cut_len).min(s.len());
        // Cut on char boundaries (the frame is ASCII so this is exact).
        s.replace_range(start..end, &insert);
        let _ = parse_count_request(&s);
        let _ = parse_check_request(&s);
    }

    /// Raw bytes thrown at the HTTP head parser (including non-UTF-8 and
    /// embedded NULs) never panic; they produce `Ok` or a typed
    /// `HttpError`.
    #[test]
    fn fuzzed_http_heads_never_panic(seed in any::<u64>(), len in 0usize..200) {
        let mut state = seed | 1;
        let bytes: Vec<u8> = (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state as u8
            })
            .collect();
        let limits = HttpLimits::default();
        let _ = bagcq_serve::http::read_request(&mut Cursor::new(bytes.clone()), &limits);
        let _ = bagcq_serve::http::read_response(&mut Cursor::new(bytes), &limits);
    }

    /// Structured-but-wrong HTTP heads (real verbs, broken framing) are
    /// rejected with typed errors, never panics.
    #[test]
    fn fuzzed_request_lines_never_panic(
        verb in "(GET|POST|PUT|G E T|)",
        path in "(/v1/count|/v1/check|/metrics|/|//|[a-z]{0,5})",
        version in "(HTTP/1.1|HTTP/1.0|HTTP/2|http/1.1|)",
        clen in "(-1|0|3|18446744073709551616|abc|)",
    ) {
        let head = format!("{verb} {path} {version}\r\nContent-Length: {clen}\r\n\r\nbody");
        let limits = HttpLimits::default();
        let _ = bagcq_serve::http::read_request(&mut Cursor::new(head.into_bytes()), &limits);
    }
}

/// Deterministic spot checks that the fuzz families above actually hit
/// the typed-error paths (so the properties are not vacuous).
#[test]
fn malformed_frames_yield_typed_errors() {
    for body in [
        "",
        "query:",
        "query: ?- e(X, Y).",
        "data: e(a).",
        "query: ?- e(X Y).\ndata: e(a, a).",
        "query: ?- e(X, Y).\ndata: e(a, b)@0.",
        "query: ?- e(X, Y).\ndata: e(a, X).",
        "small: ?- e(X).\nbig: ?- e(X, Y).\ndata: e(a).",
    ] {
        let err = parse_count_request(body).expect_err(body);
        assert!(!err.to_response().render().is_empty());
    }
    for body in ["", "small: ?- e(X).", "big: ?- e(X).", "query: ?- e(X).\ndata: e(a)."] {
        let err = parse_check_request(body).expect_err(body);
        assert!(err.to_response().is_error());
    }
}

/// The check-frame side also survives a serialize → parse loop.
#[test]
fn check_frame_round_trips() {
    let q_small = sample_query(7, 3, 2, 0);
    let q_big = sample_query(11, 4, 3, 1);
    let body = format!("small: {}\nbig: {}", query_to_dlgp(&q_small), query_to_dlgp(&q_big));
    let job = parse_check_request(&body).expect("serialized check frame parses");
    assert_eq!(query_to_dlgp(&job.spec.q_s.disjuncts()[0]), query_to_dlgp(&q_small));
    assert_eq!(query_to_dlgp(&job.spec.q_b.disjuncts()[0]), query_to_dlgp(&q_big));
    // The merged schema resolves both sides.
    let (_, s_small) = parse_dlgp_query_infer(&query_to_dlgp(&q_small)).unwrap();
    assert!(job.schema.relation_count() >= s_small.relation_count());
}

/// An unsupported semantics × backend combination is the typed
/// `unsupported_semantics` 400, and its response frame round-trips.
#[test]
fn unsupported_semantics_response_round_trips() {
    let err = parse_check_request(
        "semantics: set\ncontainment: bag-search\nsmall: ?- e(X, Y).\nbig: ?- e(X, Y).",
    )
    .expect_err("bag-search cannot serve set semantics");
    let resp = err.to_response();
    let rendered = resp.render();
    assert!(rendered.starts_with("error: unsupported_semantics\n"), "{rendered}");
    assert_eq!(parse_response(&rendered).unwrap(), resp);
}
