//! End-to-end tests: a real `Server` on a loopback port driven by the
//! real load generator — the same pairing the CI `serve` job runs, here
//! at a smaller request count. Covers the clean path (zero protocol
//! errors, bit-identical counts), overload (only *typed* sheds), and
//! drain (post-drain requests answer `503 shed/draining`).

use bagcq_serve::http::{read_response, write_request};
use bagcq_serve::{
    parse_response, HttpLimits, LoadgenConfig, Server, ServerConfig, TenantQuota, TenantSpec,
    WireResponse, WorkloadMix,
};
use std::io::BufReader;
use std::net::TcpStream;
use std::time::Duration;

/// An effectively-unlimited tenant so the smoke run measures the
/// protocol, not the quota.
fn open_tenant() -> TenantSpec {
    TenantSpec::new("default", "dev-key").with_quota(TenantQuota {
        rate_per_sec: 0,
        burst: 0,
        max_in_flight: 0,
        max_connections: 0,
    })
}

/// Like [`post`] but returns the whole parsed response, headers
/// included — for the `Retry-After` / `X-Body-Crc` contract assertions.
fn post_full(addr: &str, path: &str, key: &str, body: &str) -> bagcq_serve::HttpResponse {
    let stream = TcpStream::connect(addr).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    write_request(&mut writer, "POST", path, key, body.as_bytes()).expect("write");
    read_response(&mut reader, &HttpLimits::default())
        .expect("read")
        .expect("server closed without answering")
}

fn post(addr: &str, path: &str, key: &str, body: &str) -> (u16, String) {
    let stream = TcpStream::connect(addr).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    write_request(&mut writer, "POST", path, key, body.as_bytes()).expect("write");
    let resp = read_response(&mut reader, &HttpLimits::default())
        .expect("read")
        .expect("server closed without answering");
    (resp.status, resp.utf8_body().expect("utf-8 body").to_string())
}

#[test]
fn loadgen_smoke_is_clean_and_bit_identical() {
    let server = Server::start(ServerConfig { tenants: vec![open_tenant()], ..Default::default() })
        .expect("server starts");
    let report = bagcq_serve::loadgen::run(&LoadgenConfig {
        addr: server.local_addr().to_string(),
        requests: 1500,
        connections: 2,
        seed: 42,
        ..Default::default()
    });
    assert_eq!(report.requests, 1500);
    assert_eq!(report.protocol_errors, 0, "protocol errors:\n{}", report.render());
    assert_eq!(report.mismatches, 0, "server counts diverged from CountRequest oracle");
    assert!(report.clean());
    assert!(report.ok > 0, "no successful requests:\n{}", report.render());
    assert!(
        report.rejected_malformed > 0,
        "mix includes malformed frames; all must 400 with typed errors"
    );
    assert_eq!(report.sheds, 0, "unlimited tenant must never shed:\n{}", report.render());

    // The per-tenant counters saw the traffic.
    let snap = server.metrics();
    let tenant = snap.tenants.iter().find(|t| t.name == "default").expect("tenant counters");
    assert!(tenant.admitted > 0);
    server.shutdown();
}

#[test]
fn overload_sheds_are_typed_and_nothing_else_breaks() {
    // A starvation-tier quota: 5 req/s sustained against a loadgen
    // firing hundreds — most requests must shed, every shed typed.
    let tight = TenantSpec::new("default", "dev-key").with_quota(TenantQuota {
        rate_per_sec: 5,
        burst: 5,
        max_in_flight: 2,
        max_connections: 0,
    });
    let server = Server::start(ServerConfig { tenants: vec![tight], ..Default::default() })
        .expect("server starts");
    let report = bagcq_serve::loadgen::run(&LoadgenConfig {
        addr: server.local_addr().to_string(),
        requests: 600,
        connections: 2,
        seed: 7,
        // No malformed traffic: isolate the quota path.
        mix: WorkloadMix { hot_count_per_1024: 924, check_per_1024: 100, malformed_per_1024: 0 },
        ..Default::default()
    });
    assert_eq!(report.protocol_errors, 0, "overload must degrade via typed sheds, not breakage");
    assert_eq!(report.mismatches, 0);
    assert!(report.sheds > 0, "tight quota produced no sheds:\n{}", report.render());
    assert!(
        report.shed_reasons.keys().all(|r| r == "quota_exceeded" || r == "in_flight_limit"),
        "unexpected shed reasons: {:?}",
        report.shed_reasons
    );
    server.shutdown();
}

#[test]
fn drain_refuses_new_work_with_typed_sheds() {
    let server = Server::start(ServerConfig { tenants: vec![open_tenant()], ..Default::default() })
        .expect("server starts");
    let addr = server.local_addr().to_string();
    let body = "query: ?- e(X, Y).\ndata: e(a, b)@2.\n";

    let (status, text) = post(&addr, "/v1/count", "dev-key", body);
    assert_eq!(status, 200, "pre-drain count failed: {text}");
    match parse_response(&text).expect("well-formed response") {
        WireResponse::Count { count, .. } => assert_eq!(count.to_string(), "1"),
        other => panic!("expected a count frame, got {other:?}"),
    }

    let report = server.drain(Duration::from_secs(5));
    assert!(server.is_draining());
    assert!(report.met_deadline, "drain missed its deadline: {report:?}");

    let (status, text) = post(&addr, "/v1/count", "dev-key", body);
    assert_eq!(status, 503, "post-drain requests must shed: {text}");
    match parse_response(&text).expect("well-formed shed frame") {
        WireResponse::Error { kind, reason, .. } => {
            assert_eq!(kind, "shed");
            assert_eq!(reason, "draining");
        }
        other => panic!("expected a typed shed, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn admin_drain_over_http_requires_the_admin_key() {
    let server = Server::start(ServerConfig {
        tenants: vec![open_tenant()],
        admin_key: Some("secret".into()),
        ..Default::default()
    })
    .expect("server starts");
    let addr = server.local_addr().to_string();

    let (status, _) = post(&addr, "/admin/drain", "wrong-key", "");
    assert_eq!(status, 401);
    assert!(!server.is_draining(), "unauthorized drain must not drain");

    let (status, text) = post(&addr, "/admin/drain", "secret", "");
    assert_eq!(status, 200, "authorized drain failed: {text}");
    assert!(text.starts_with("ok: drained\n"), "unexpected drain body: {text}");
    assert!(server.is_draining());
    assert!(
        server.wait_shutdown_requested(Duration::from_secs(5)),
        "HTTP drain must request process shutdown"
    );
    server.shutdown();
}

/// Retry contract: every shed (429 quota, 503 draining) carries a
/// `Retry-After` header, and every response body carries a verifiable
/// `X-Body-Crc` checksum.
#[test]
fn sheds_carry_retry_after_and_every_response_carries_a_crc() {
    use bagcq_serve::http::crc32;

    let tight = TenantSpec::new("default", "dev-key").with_quota(TenantQuota {
        rate_per_sec: 1,
        burst: 1,
        max_in_flight: 0,
        max_connections: 0,
    });
    // A second, unlimited tenant so the draining 503 is observable
    // without the quota 429 masking it.
    let open = TenantSpec::new("open", "open-key").with_quota(TenantQuota {
        rate_per_sec: 0,
        burst: 0,
        max_in_flight: 0,
        max_connections: 0,
    });
    let server = Server::start(ServerConfig { tenants: vec![tight, open], ..Default::default() })
        .expect("server starts");
    let addr = server.local_addr().to_string();
    let body = "query: ?- e(X, Y).\ndata: e(a, b).\n";

    // The one burst token: a clean 200, checksummed.
    let ok = post_full(&addr, "/v1/count", "dev-key", body);
    assert_eq!(ok.status, 200, "first request must use the burst token");
    let declared = ok.header("x-body-crc").expect("200s carry X-Body-Crc");
    assert_eq!(
        u32::from_str_radix(declared, 16).expect("hex crc"),
        crc32(&ok.body),
        "declared response checksum must match the body"
    );

    // Quota exhausted: typed 429 with Retry-After.
    let shed = post_full(&addr, "/v1/count", "dev-key", body);
    assert_eq!(shed.status, 429, "second request must shed on quota");
    assert_eq!(shed.header("retry-after"), Some("1"), "429 sheds must carry Retry-After");
    assert!(shed.header("x-body-crc").is_some(), "sheds are checksummed too");

    // Draining: typed 503 with Retry-After.
    server.drain(Duration::from_secs(5));
    let shed = post_full(&addr, "/v1/count", "open-key", body);
    assert_eq!(shed.status, 503, "post-drain requests must shed");
    assert_eq!(shed.header("retry-after"), Some("1"), "503 sheds must carry Retry-After");
    server.shutdown();
}

/// The redesigned check endpoint end-to-end: `semantics`/`containment`
/// headers select a [`bagcq_containment::ContainmentBackend`], union
/// payloads (`;` disjuncts) parse, the response echoes the *resolved*
/// backend, and a combination no backend supports answers the typed 400
/// `unsupported_semantics`.
#[test]
fn check_endpoint_serves_both_semantics_and_types_unsupported_combos() {
    use bagcq_containment::{ContainmentChoice, Semantics};

    let server = Server::start(ServerConfig { tenants: vec![open_tenant()], ..Default::default() })
        .expect("server starts");
    let addr = server.local_addr().to_string();

    let expect_check = |body: &str, sem: Semantics, backend: ContainmentChoice, verdict: &str| {
        let (status, text) = post(&addr, "/v1/check", "dev-key", body);
        assert_eq!(status, 200, "check failed for {body:?}: {text}");
        match parse_response(&text).expect("well-formed check frame") {
            WireResponse::Check { semantics, containment, verdict: v, .. } => {
                assert_eq!(semantics, sem, "{body:?}");
                assert_eq!(containment, backend, "response must echo the resolved backend");
                assert_eq!(v, verdict, "{body:?} → {text}");
            }
            other => panic!("expected a check frame, got {other:?}"),
        }
    };

    // Auto-routed CQ pairs: the response must echo whatever this
    // process's resolution picks — normally the natural backend
    // (bag-search / set-chandra-merlin), but a BAGCQ_CONTAINMENT matrix
    // run may legitimately redirect to a same-fragment UCQ backend, and
    // the server shares our environment.
    let resolved = |body: &str| {
        bagcq_serve::parse_check_request(body).expect("valid frame").spec.resolved_choice()
    };
    // Bag default: the 2-path/3-path pair is refuted by the canonical
    // database of the big side.
    let body = "small: ?- e(X, Y), e(Y, Z).\nbig: ?- e(X, Y), e(Y, Z), e(Z, W).\n";
    expect_check(body, Semantics::Bag, resolved(body), "refuted");
    // Set semantics: the 2-path folds into the 3-path's canonical
    // database, so the reverse pair is proved.
    let body = "semantics: set\nsmall: ?- e(X, Y), e(Y, Z), e(Z, W).\nbig: ?- e(X, Y), e(Y, Z).\n";
    expect_check(body, Semantics::Set, resolved(body), "proved");
    // Union payload with `;` under set semantics (auto → set-ucq):
    // every small disjunct maps into some big disjunct.
    expect_check(
        "semantics: set\nsmall: ?- e(X, Y).\nbig: ?- e(X, Y) ; f(Z).\n",
        Semantics::Set,
        ContainmentChoice::SetUcq,
        "proved",
    );
    // The same union under bag semantics (auto → bag-ucq): the disjunct
    // matching certificate proves it.
    expect_check(
        "small: ?- e(X, Y).\nbig: ?- e(X, Y) ; f(Z).\n",
        Semantics::Bag,
        ContainmentChoice::BagUcq,
        "proved",
    );
    // A pinned backend is honored when it supports the payload.
    expect_check(
        "containment: bag-ucq\nsmall: ?- e(X, Y).\nbig: ?- e(X, Y).\n",
        Semantics::Bag,
        ContainmentChoice::BagUcq,
        "proved",
    );

    // Unsupported combination: typed 400, rejected before admission.
    let (status, text) = post(
        &addr,
        "/v1/check",
        "dev-key",
        "semantics: set\ncontainment: bag-search\nsmall: ?- e(X, Y).\nbig: ?- e(X, Y).\n",
    );
    assert_eq!(status, 400, "unsupported combination must 400: {text}");
    match parse_response(&text).expect("well-formed error frame") {
        WireResponse::Error { kind, reason, .. } => {
            assert_eq!(kind, "unsupported_semantics");
            assert_eq!(reason, "bag-search");
        }
        other => panic!("expected a typed error, got {other:?}"),
    }
    server.shutdown();
}

/// Satellite differential check: one seeded loadgen corpus, replayed
/// once per registered counting backend, must produce **byte-identical**
/// response frames (modulo the `backend:` echo line) — the wire path may
/// never leak which kernel answered.
#[test]
fn every_backend_answers_the_same_corpus_byte_identically() {
    use bagcq_homcount::BackendChoice;
    use bagcq_serve::plan_requests;

    let server = Server::start(ServerConfig { tenants: vec![open_tenant()], ..Default::default() })
        .expect("server starts");
    let addr = server.local_addr().to_string();

    // The same deterministic corpus the loadgen smoke run replays, at a
    // differential-friendly size; keep only well-formed count frames
    // (those carry the `backend: auto` header we re-pin per kernel).
    let plan = plan_requests(&LoadgenConfig {
        addr: addr.clone(),
        requests: 60,
        seed: 42,
        mix: WorkloadMix::default(),
        ..Default::default()
    });
    let counts: Vec<_> = plan
        .iter()
        .filter(|p| {
            !p.malformed && p.expected_count.is_some() && p.body.starts_with("backend: auto\n")
        })
        .collect();
    assert!(counts.len() >= 8, "corpus too small to be a differential test: {}", counts.len());

    // Response frames with the backend echo normalized out; one vector
    // per registered kernel, compared pairwise afterwards.
    let mut per_backend: Vec<(String, Vec<String>)> = Vec::new();
    for choice in BackendChoice::REGISTERED {
        let label = choice.label();
        let mut frames = Vec::with_capacity(counts.len());
        for planned in &counts {
            let body = planned.body.replacen("backend: auto\n", &format!("backend: {label}\n"), 1);
            let (status, text) = post(&addr, planned.path, "dev-key", &body);
            assert_eq!(status, 200, "[{label}] request failed: {text}");
            match parse_response(&text).expect("well-formed count frame") {
                WireResponse::Count { count, .. } => {
                    assert_eq!(
                        Some(&count),
                        planned.expected_count.as_ref(),
                        "[{label}] wire count diverged from the in-process oracle"
                    );
                }
                other => panic!("[{label}] expected a count frame, got {other:?}"),
            }
            let normalized: String = text
                .lines()
                .filter(|l| !l.starts_with("backend: "))
                .map(|l| format!("{l}\n"))
                .collect();
            assert_ne!(normalized, text, "response did not echo its backend: {text}");
            frames.push(normalized);
        }
        per_backend.push((label.to_string(), frames));
    }
    let (base_label, base) = &per_backend[0];
    for (label, frames) in &per_backend[1..] {
        assert_eq!(
            base, frames,
            "backends {base_label} and {label} answered the same corpus differently"
        );
    }
    server.shutdown();
}
