//! The request/response frames of the serve protocol.
//!
//! Request bodies are newline-delimited text with section headers; the
//! payload sections are DLGP (see [`bagcq_query::parse_dlgp_query`] and
//! [`bagcq_query::parse_bag_instance`]):
//!
//! ```text
//! backend: auto
//! query:
//! ?- e(X, Y).
//! data:
//! e(a, b)@2.
//! e(b, c).
//! ```
//!
//! A containment check frame uses `small:` / `big:` sections instead,
//! each holding a DLGP **union** payload (`?- e(X, Y) ; f(X).` — `;`
//! separates disjuncts; a plain CQ is the one-disjunct union), plus
//! optional `semantics: set|bag` and `containment: <choice>` headers
//! selecting the [`bagcq_containment::ContainmentBackend`]. A
//! combination no backend can serve answers a typed 400 whose kind is
//! `unsupported_semantics`. Responses are newline-delimited
//! `key: value` text whose first line is `ok: <kind>` or
//! `error: <kind>`:
//!
//! ```text
//! ok: count
//! backend: auto
//! bag-total: 3
//! support-atoms: 2
//! count: 4
//! ```
//!
//! Every frame type round-trips: [`WireResponse::render`] ∘
//! [`parse_response`] is the identity (the proptest suite pins this),
//! and the DLGP payload sections round-trip through
//! [`bagcq_query::query_to_dlgp`] / [`BagInstance::to_dlgp`].

use bagcq_arith::Nat;
use bagcq_containment::{CheckSpec, ContainmentChoice, Semantics, Unsupported};
use bagcq_homcount::BackendChoice;
use bagcq_query::{
    parse_bag_instance, parse_bag_instance_infer, parse_dlgp_query, parse_dlgp_query_infer,
    parse_dlgp_union, parse_dlgp_union_infer, BagInstance, ParseQueryError, Query,
};
use bagcq_structure::{Schema, Structure};
use std::fmt;
use std::sync::Arc;

/// Why a request frame was rejected (all map to HTTP 400).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The frame structure is wrong: missing/duplicate/unknown section,
    /// bad backend name.
    Frame(String),
    /// A DLGP payload failed to parse; carries the positioned error,
    /// rendered **verbatim** (caret snippet included) into the 400 body.
    Parse(ParseQueryError),
    /// The requested `semantics`/`containment` combination cannot serve
    /// this payload (e.g. a pinned CQ-pair backend on a real union, or a
    /// set-semantics backend asked for a non-trivial multiplier). Maps
    /// to the typed `unsupported_semantics` 400.
    Unsupported(Unsupported),
}

impl WireError {
    /// The response body for this error.
    pub fn to_response(&self) -> WireResponse {
        match self {
            WireError::Frame(m) => WireResponse::error("frame", m.clone()),
            WireError::Parse(e) => WireResponse::error("parse", e.render()),
            WireError::Unsupported(u) => WireResponse::error_with_reason(
                "unsupported_semantics",
                u.backend.label(),
                u.to_string(),
            ),
        }
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Frame(m) => write!(f, "frame error: {m}"),
            WireError::Parse(e) => write!(f, "{e}"),
            WireError::Unsupported(u) => write!(f, "{u}"),
        }
    }
}

impl From<ParseQueryError> for WireError {
    fn from(e: ParseQueryError) -> Self {
        WireError::Parse(e)
    }
}

// ---------------------------------------------------------------------------
// Request frames
// ---------------------------------------------------------------------------

const SECTIONS: &[&str] = &["backend", "query", "data", "small", "big", "semantics", "containment"];

/// One extracted section, with enough positioning to map payload parse
/// errors back to the **request body's** lines and columns.
struct Section {
    name: String,
    content: String,
    /// Whether any content line has been appended yet.
    started: bool,
    /// 1-based body line holding content line 1.
    start_line: u32,
    /// Character-column offset of content line 1 within its body line
    /// (nonzero only for inline `name: content` sections).
    inline_col: u32,
    /// The full body line holding content line 1 (caret re-alignment
    /// for inline sections).
    first_line: String,
}

/// Splits a request body into its sections. A section starts at a line
/// `name:` (optionally with inline content after the colon) where `name`
/// is one of the known section keywords; its content runs to the next
/// section header.
fn split_sections(body: &str) -> Result<Vec<Section>, WireError> {
    let mut out: Vec<Section> = Vec::new();
    for (idx, line) in body.lines().enumerate() {
        let lineno = (idx + 1) as u32;
        let header = line.split_once(':').and_then(|(name, rest)| {
            let name = name.trim();
            SECTIONS.contains(&name).then_some((name.to_string(), rest))
        });
        match header {
            Some((name, rest)) => {
                if out.iter().any(|s| s.name == name) {
                    return Err(WireError::Frame(format!("duplicate section {name:?}")));
                }
                let inline = rest.trim();
                if inline.is_empty() {
                    out.push(Section {
                        name,
                        content: String::new(),
                        started: false,
                        start_line: lineno + 1,
                        inline_col: 0,
                        first_line: String::new(),
                    });
                } else {
                    let byte_off = line.len() - rest.len() + (rest.len() - rest.trim_start().len());
                    out.push(Section {
                        name,
                        content: inline.to_string(),
                        started: true,
                        start_line: lineno,
                        inline_col: line[..byte_off].chars().count() as u32,
                        first_line: line.to_string(),
                    });
                }
            }
            None => match out.last_mut() {
                Some(section) => {
                    if section.started {
                        section.content.push('\n');
                        section.content.push_str(line);
                    } else {
                        section.started = true;
                        section.start_line = lineno;
                        section.content.push_str(line);
                    }
                }
                None => {
                    if !line.trim().is_empty() {
                        return Err(WireError::Frame(format!(
                            "expected a section header ({}), got {line:?}",
                            SECTIONS.join("/")
                        )));
                    }
                }
            },
        }
    }
    Ok(out)
}

fn take_section<'a>(sections: &'a [Section], name: &str) -> Option<&'a Section> {
    sections.iter().find(|s| s.name == name)
}

/// Maps a section-relative parse error to body coordinates, so the 400
/// body's `line N, column C` (and caret) point into the request the
/// client actually sent.
fn reposition(mut e: ParseQueryError, section: &Section) -> WireError {
    if e.line == 1 && section.inline_col > 0 {
        e.col += section.inline_col;
        e.src_line = section.first_line.clone();
    }
    e.line += section.start_line.saturating_sub(1);
    WireError::Parse(e)
}

/// A parsed, schema-resolved count request, ready to submit.
#[derive(Debug)]
pub struct CountJob {
    /// The query, resolved against [`CountJob::schema`].
    pub query: Query,
    /// The bag view of the database (faithful multiplicities).
    pub bag: BagInstance,
    /// The set support the count runs on.
    pub support: Arc<Structure>,
    /// Requested backend.
    pub backend: BackendChoice,
    /// The schema merged from the query's and the instance's vocabulary.
    pub schema: Arc<Schema>,
}

/// A parsed, schema-resolved containment-check request. Both sides are
/// unions (a plain CQ is the one-disjunct union); the spec carries the
/// requested semantics and backend choice and has already passed
/// [`CheckSpec::validate`], so submitting it cannot hit an unsupported
/// combination.
#[derive(Debug)]
pub struct CheckJob {
    /// The validated check spec (`q_s`, `q_b`, semantics, choice).
    pub spec: CheckSpec,
    /// The merged schema both sides are resolved against.
    pub schema: Arc<Schema>,
}

/// Merges inferred schemas: relations (first arity wins — a conflicting
/// re-parse then yields a *positioned* arity error) and constants.
fn merge_into(
    sb: &mut bagcq_structure::SchemaBuilder,
    seen: &mut Vec<(String, usize)>,
    s: &Schema,
) {
    for r in s.relations() {
        let name = &s.relation(r).name;
        match seen.iter().find(|(n, _)| n == name) {
            Some(_) => {} // first arity wins; re-parse reports the conflict
            None => {
                seen.push((name.clone(), s.arity(r)));
                sb.relation(name, s.arity(r));
            }
        }
    }
    for c in s.constants() {
        sb.constant(s.constant_name(c));
    }
}

/// Parses a `/v1/count` body: `backend:` (optional), `query:`, `data:`.
pub fn parse_count_request(body: &str) -> Result<CountJob, WireError> {
    let sections = split_sections(body)?;
    for s in &sections {
        if s.name == "small" || s.name == "big" {
            return Err(WireError::Frame(format!(
                "section {:?} is not valid in a count frame",
                s.name
            )));
        }
    }
    let backend = match take_section(&sections, "backend") {
        None => BackendChoice::Auto,
        Some(s) => s.content.trim().parse::<BackendChoice>().map_err(WireError::Frame)?,
    };
    let query_sec = take_section(&sections, "query")
        .ok_or(WireError::Frame("missing section query:".into()))?;
    let data_sec =
        take_section(&sections, "data").ok_or(WireError::Frame("missing section data:".into()))?;
    // Infer both vocabularies (this surfaces payload syntax errors with
    // their positions), merge, then re-resolve both against the merged
    // schema so query variables can range over the instance's constants.
    let (_, query_schema) =
        parse_dlgp_query_infer(&query_sec.content).map_err(|e| reposition(e, query_sec))?;
    let (_, _, data_schema) =
        parse_bag_instance_infer(&data_sec.content).map_err(|e| reposition(e, data_sec))?;
    let mut sb = Schema::builder();
    let mut seen = Vec::new();
    merge_into(&mut sb, &mut seen, &data_schema);
    merge_into(&mut sb, &mut seen, &query_schema);
    let schema = sb.build();
    let query =
        parse_dlgp_query(&schema, &query_sec.content).map_err(|e| reposition(e, query_sec))?;
    let (bag, support) =
        parse_bag_instance(&schema, &data_sec.content).map_err(|e| reposition(e, data_sec))?;
    Ok(CountJob { query, bag, support: Arc::new(support), backend, schema })
}

/// Parses a `/v1/check` body: `small:` and `big:` DLGP union payloads
/// (disjuncts separated by `;` within a rule, or one rule per line),
/// plus optional `semantics: set|bag` (default `bag`) and
/// `containment: <choice>` (default `auto`) headers. The returned job's
/// spec has passed [`CheckSpec::validate`]; a combination no backend
/// can serve is the typed [`WireError::Unsupported`] 400.
pub fn parse_check_request(body: &str) -> Result<CheckJob, WireError> {
    let sections = split_sections(body)?;
    for s in &sections {
        if s.name == "query" || s.name == "data" || s.name == "backend" {
            return Err(WireError::Frame(format!(
                "section {:?} is not valid in a check frame",
                s.name
            )));
        }
    }
    let semantics = match take_section(&sections, "semantics") {
        None => Semantics::default(),
        Some(s) => s.content.trim().parse::<Semantics>().map_err(WireError::Frame)?,
    };
    let choice = match take_section(&sections, "containment") {
        None => ContainmentChoice::Auto,
        Some(s) => s.content.trim().parse::<ContainmentChoice>().map_err(WireError::Frame)?,
    };
    let small_sec = take_section(&sections, "small")
        .ok_or(WireError::Frame("missing section small:".into()))?;
    let big_sec =
        take_section(&sections, "big").ok_or(WireError::Frame("missing section big:".into()))?;
    let (_, s_small) =
        parse_dlgp_union_infer(&small_sec.content).map_err(|e| reposition(e, small_sec))?;
    let (_, s_big) =
        parse_dlgp_union_infer(&big_sec.content).map_err(|e| reposition(e, big_sec))?;
    let mut sb = Schema::builder();
    let mut seen = Vec::new();
    merge_into(&mut sb, &mut seen, &s_small);
    merge_into(&mut sb, &mut seen, &s_big);
    let schema = sb.build();
    let q_small =
        parse_dlgp_union(&schema, &small_sec.content).map_err(|e| reposition(e, small_sec))?;
    let q_big = parse_dlgp_union(&schema, &big_sec.content).map_err(|e| reposition(e, big_sec))?;
    let mut spec = CheckSpec::union(q_small, q_big);
    spec.semantics = semantics;
    spec.choice = choice;
    spec.validate().map_err(WireError::Unsupported)?;
    Ok(CheckJob { spec, schema })
}

// ---------------------------------------------------------------------------
// Response frames
// ---------------------------------------------------------------------------

/// A serve response frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireResponse {
    /// A successful count: `ψ(D) = |Hom(ψ, supp(D))|`.
    Count {
        /// Backend the request asked for.
        backend: BackendChoice,
        /// Bag cardinality of the submitted instance (Σ multiplicities).
        bag_total: u64,
        /// Distinct atoms in the evaluated support.
        support_atoms: u64,
        /// The count.
        count: Nat,
    },
    /// A containment verdict.
    Check {
        /// Semantics the request asked for (`set` or `bag`).
        semantics: Semantics,
        /// The backend that produced the verdict (the *resolved*
        /// choice — never `auto`).
        containment: ContainmentChoice,
        /// Machine label: `proved`, `refuted`, or `unknown`.
        verdict: String,
        /// The full human-readable verdict line(s).
        detail: String,
    },
    /// A typed error. `kind` is a stable machine label; `detail` is the
    /// human-readable payload (for `parse` errors: the caret-snippet
    /// rendering, verbatim).
    Error {
        /// Stable machine label (`parse`, `frame`, `auth`, `shed`,
        /// `timeout`, `panic`, `failed_fast`, `not_found`, `corrupt` —
        /// a request body failed its `X-Body-Crc` integrity check;
        /// retryable, since the retry re-sends intact bytes —
        /// `slow_client` — the connection was evicted for trickling
        /// past the read deadline — …).
        kind: String,
        /// Optional machine detail (e.g. the [`ShedReason`] label for
        /// `shed`). Empty when unused.
        ///
        /// [`ShedReason`]: bagcq_engine::ShedReason
        reason: String,
        /// Human-readable detail, possibly multi-line.
        detail: String,
    },
}

impl WireResponse {
    /// A typed error with no machine reason.
    pub fn error(kind: impl Into<String>, detail: impl Into<String>) -> Self {
        WireResponse::Error { kind: kind.into(), reason: String::new(), detail: detail.into() }
    }

    /// A typed error with a machine reason (e.g. a shed label).
    pub fn error_with_reason(
        kind: impl Into<String>,
        reason: impl Into<String>,
        detail: impl Into<String>,
    ) -> Self {
        WireResponse::Error { kind: kind.into(), reason: reason.into(), detail: detail.into() }
    }

    /// Serializes the frame ([`parse_response`] inverts this exactly).
    pub fn render(&self) -> String {
        match self {
            WireResponse::Count { backend, bag_total, support_atoms, count } => format!(
                "ok: count\nbackend: {backend}\nbag-total: {bag_total}\nsupport-atoms: {support_atoms}\ncount: {count}\n"
            ),
            WireResponse::Check { semantics, containment, verdict, detail } => format!(
                "ok: check\nsemantics: {semantics}\ncontainment: {containment}\nverdict: {verdict}\ndetail: {detail}\n"
            ),
            WireResponse::Error { kind, reason, detail } => {
                let mut out = format!("error: {kind}\n");
                if !reason.is_empty() {
                    out.push_str(&format!("reason: {reason}\n"));
                }
                out.push_str(&format!("detail: {detail}\n"));
                out
            }
        }
    }

    /// `true` for [`WireResponse::Error`].
    pub fn is_error(&self) -> bool {
        matches!(self, WireResponse::Error { .. })
    }
}

fn field<'a>(text: &'a str, key: &str) -> Result<&'a str, String> {
    let prefix = format!("{key}: ");
    text.lines()
        .find_map(|l| l.strip_prefix(&prefix))
        .ok_or_else(|| format!("response is missing field {key:?}"))
}

/// Everything after the first `detail: ` marker, minus the trailing
/// newline — `detail` is always the last field, so multi-line payloads
/// (caret snippets, verdict counterexamples) survive.
fn detail_field(text: &str) -> Result<String, String> {
    let marker = "\ndetail: ";
    let start = match text.find(marker) {
        Some(i) => i + marker.len(),
        None => return Err("response is missing field \"detail\"".into()),
    };
    let mut detail = &text[start..];
    if let Some(stripped) = detail.strip_suffix('\n') {
        detail = stripped;
    }
    Ok(detail.to_string())
}

/// Parses a response frame (the load generator's validation path).
pub fn parse_response(text: &str) -> Result<WireResponse, String> {
    let first = text.lines().next().unwrap_or("");
    match first.split_once(": ") {
        Some(("ok", "count")) => {
            let backend = field(text, "backend")?.parse::<BackendChoice>()?;
            let bag_total =
                field(text, "bag-total")?.parse::<u64>().map_err(|e| format!("bag-total: {e}"))?;
            let support_atoms = field(text, "support-atoms")?
                .parse::<u64>()
                .map_err(|e| format!("support-atoms: {e}"))?;
            let count = field(text, "count")?
                .parse::<Nat>()
                .map_err(|_| "count is not a decimal natural".to_string())?;
            Ok(WireResponse::Count { backend, bag_total, support_atoms, count })
        }
        Some(("ok", "check")) => Ok(WireResponse::Check {
            semantics: field(text, "semantics")?.parse::<Semantics>()?,
            containment: field(text, "containment")?.parse::<ContainmentChoice>()?,
            verdict: field(text, "verdict")?.to_string(),
            detail: detail_field(text)?,
        }),
        Some(("error", kind)) => Ok(WireResponse::Error {
            kind: kind.to_string(),
            reason: field(text, "reason").map(str::to_string).unwrap_or_default(),
            detail: detail_field(text)?,
        }),
        _ => Err(format!("bad response first line {first:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bagcq_homcount::CountRequest;

    const COUNT_BODY: &str = "backend: naive\nquery:\n?- e(X, Y).\ndata:\ne(a, b)@2.\ne(b, c).\n";

    #[test]
    fn count_frame_parses_and_counts() {
        let job = parse_count_request(COUNT_BODY).unwrap();
        assert_eq!(job.backend, BackendChoice::Naive);
        assert_eq!(job.bag.total_multiplicity(), 3);
        assert_eq!(job.query.var_count(), 2);
        let n = CountRequest::new(&job.query, &job.support).backend(job.backend).count();
        assert_eq!(n, Nat::from_u64(2), "two distinct e-edges in the support");
    }

    #[test]
    fn inline_sections_work() {
        let job = parse_count_request("query: ?- e(X, Y).\ndata: e(a, b).").unwrap();
        assert_eq!(job.bag.facts.len(), 1);
        assert_eq!(job.backend, BackendChoice::Auto, "backend defaults to auto");
    }

    #[test]
    fn query_constants_join_the_instance_vocabulary() {
        // `b` appears only in the query; `a` only in the data. The merged
        // schema resolves both.
        let job = parse_count_request("query: ?- e(X, b).\ndata: e(a, b).").unwrap();
        assert_eq!(job.schema.constant_count(), 2);
        let n = CountRequest::new(&job.query, &job.support).count();
        assert_eq!(n, Nat::one());
    }

    #[test]
    fn frame_errors_are_typed() {
        for (body, needle) in [
            ("data: e(a).", "missing section query:"),
            ("query: ?- e(X, Y).", "missing section data:"),
            ("query: a\nquery: b\ndata: c", "duplicate section"),
            ("hello world", "expected a section header"),
            ("backend: warp\nquery: ?- .\ndata: e(a).", "unknown backend"),
            ("small: ?- .\nquery: ?- .\ndata: e(a).", "not valid in a count frame"),
        ] {
            match parse_count_request(body) {
                Err(WireError::Frame(m)) => assert!(m.contains(needle), "{m:?} vs {needle:?}"),
                other => {
                    panic!("expected frame error {needle:?}, got {other:?}", other = other.err())
                }
            }
        }
    }

    #[test]
    fn payload_errors_carry_carets() {
        let e = parse_count_request("query:\n?- e(X Y).\ndata:\ne(a, b).\n").unwrap_err();
        let WireError::Parse(pe) = e else { panic!("expected a parse error, got {e:?}") };
        let rendered = pe.render();
        assert!(rendered.contains('^'), "{rendered}");
        assert!(rendered.contains("line 2"), "{rendered}");
    }

    #[test]
    fn arity_conflict_between_query_and_data_is_positioned() {
        let e = parse_count_request("query:\n?- e(X).\ndata:\ne(a, b).\n").unwrap_err();
        let WireError::Parse(pe) = e else { panic!("expected a parse error, got {e:?}") };
        assert!(pe.message.contains("arity"), "{pe}");
    }

    #[test]
    fn check_frame_parses() {
        let job = parse_check_request("small:\n?- e(X, Y).\nbig:\n?- e(X, Y), e(Y, Z).\n").unwrap();
        assert_eq!(job.spec.q_s.disjuncts()[0].atoms().len(), 1);
        assert_eq!(job.spec.q_b.disjuncts()[0].atoms().len(), 2);
        assert_eq!(job.spec.semantics, Semantics::Bag, "semantics defaults to bag");
        assert_eq!(job.spec.choice, ContainmentChoice::Auto, "containment defaults to auto");
        assert!(Arc::ptr_eq(
            job.spec.q_s.disjuncts()[0].schema(),
            job.spec.q_b.disjuncts()[0].schema()
        ));
        assert!(parse_check_request("small: ?- .").is_err());
        assert!(parse_check_request("small: ?- .\nbig: ?- .\ndata: e(a).").is_err());
    }

    #[test]
    fn check_frame_headers_and_unions() {
        let body = "semantics: set\ncontainment: set-ucq\nsmall:\n?- e(X, Y) ; f(X).\nbig:\n?- e(X, Y).\n?- f(Z).\n";
        let job = parse_check_request(body).unwrap();
        assert_eq!(job.spec.semantics, Semantics::Set);
        assert_eq!(job.spec.choice, ContainmentChoice::SetUcq);
        assert_eq!(job.spec.q_s.len(), 2, "`;` splits disjuncts");
        assert_eq!(job.spec.q_b.len(), 2, "one rule per line splits disjuncts");
        assert_eq!(job.spec.resolved_choice(), ContainmentChoice::SetUcq);
    }

    #[test]
    fn unsupported_semantics_is_typed() {
        // A CQ-pair-only backend pinned onto a real union.
        let body = "containment: bag-search\nsmall:\n?- e(X, Y) ; f(X).\nbig:\n?- e(X, Y).\n";
        let e = parse_check_request(body).unwrap_err();
        let WireError::Unsupported(u) = &e else { panic!("expected unsupported, got {e:?}") };
        assert_eq!(u.backend, ContainmentChoice::BagSearch);
        let rendered = e.to_response().render();
        assert!(rendered.starts_with("error: unsupported_semantics\n"), "{rendered}");
        assert!(rendered.contains("reason: bag-search"), "{rendered}");
        // Semantics × choice mismatch is the same typed error.
        let e2 = parse_check_request(
            "semantics: bag\ncontainment: set-chandra-merlin\nsmall: ?- e(X, Y).\nbig: ?- e(X, Y).",
        )
        .unwrap_err();
        assert!(matches!(e2, WireError::Unsupported(_)), "{e2:?}");
        // An unknown semantics label is a frame error, not a parse crash.
        let e3 = parse_check_request("semantics: tri-valued\nsmall: ?- e(X, Y).\nbig: ?- e(X, Y).")
            .unwrap_err();
        assert!(matches!(e3, WireError::Frame(_)), "{e3:?}");
    }

    #[test]
    fn responses_round_trip() {
        let frames = [
            WireResponse::Count {
                backend: BackendChoice::FastTreewidth,
                bag_total: 7,
                support_atoms: 3,
                count: "340282366920938463463374607431768211456".parse().unwrap(),
            },
            WireResponse::Check {
                semantics: Semantics::Set,
                containment: ContainmentChoice::SetUcq,
                verdict: "refuted".into(),
                detail: "REFUTED (…)\nwith a second line".into(),
            },
            WireResponse::error("parse", "query parse error …\n  |  e(\n  |    ^"),
            WireResponse::error_with_reason("shed", "quota_exceeded", "tenant over quota"),
        ];
        for frame in frames {
            let text = frame.render();
            let back = parse_response(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
            assert_eq!(frame, back, "text:\n{text}");
        }
    }

    #[test]
    fn malformed_responses_are_errors() {
        for text in ["", "ok: nope\n", "ok: count\nbackend: auto\n", "hello"] {
            assert!(parse_response(text).is_err(), "{text:?}");
        }
    }
}
