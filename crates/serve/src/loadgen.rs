//! Seeded closed-loop load generator for the serve front door.
//!
//! Replays a deterministic mixed workload — count and containment
//! requests, valid and deliberately malformed frames, hot (repeated)
//! and cold (fresh) cache keys — over `connections` keep-alive HTTP
//! connections, then reports throughput, a log₂ latency histogram, and
//! exact shed/error tallies.
//!
//! Every valid count request's expected answer is precomputed
//! **in-process** through the same counting path the server uses, so a
//! run verifies bit-identical results end to end: any divergence between
//! the wire answer and the in-process answer is counted as a
//! `mismatch` and fails the run. Malformed frames must come back as
//! typed 400s; overload sheds must come back as typed 429/503 frames —
//! anything else (connection reset, unparsable response, wrong status)
//! is a `protocol_error`.
//!
//! Randomness is a seeded [splitmix64](https://prng.di.unimi.it/splitmix64.c)
//! stream — same seed, same workload, byte for byte. No system clock or
//! OS entropy is consulted for workload decisions.
//!
//! ## Self-healing client
//!
//! With a [`RetryPolicy`] configured ([`LoadgenConfig::retry`]), the
//! client retries *transient* failures — transport errors, truncated
//! responses, `X-Body-Crc` mismatches, 408 slow-client evictions, and
//! corruption-induced 400s on frames known to be well-formed — under
//! bounded, deterministically-jittered backoff. Every request carries a
//! deterministic `Idempotency-Key`, so a retried delivery is replayed
//! bit-identically by the server *without* a second admission charge;
//! the report's `retries`/`hedges` tallies plus the server's per-tenant
//! `idempotent_replays` counter let a test assert exactly-once count
//! semantics end to end. Typed overload sheds (429/503/504) are **not**
//! retried — shedding is the server's contract, not a fault.
//!
//! [`LoadgenConfig::chaos_net`] additionally wraps the client's own
//! sockets in the seeded [`crate::chaos`] transport, so a single
//! process can rehearse faults on both sides of the wire.

use crate::chaos::{Conn, NetFaultInjector, NetFaultPlan};
use crate::http::{
    crc32, read_response, write_request_with_headers, HttpError, HttpLimits, HttpResponse,
};
use crate::wire::{parse_response, WireResponse};
use bagcq_arith::Nat;
use bagcq_engine::RetryPolicy;
use bagcq_homcount::{BackendChoice, CountRequest};
use bagcq_query::{parse_bag_instance_infer, parse_dlgp_query};
use std::collections::HashMap;
use std::io::BufReader;
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// What fraction of a mixed workload each request class gets, in
/// per-1024 weights (the remainder after the listed classes is cold
/// count requests).
#[derive(Clone, Copy, Debug)]
pub struct WorkloadMix {
    /// Hot count requests (drawn from a small pool → cache hits).
    pub hot_count_per_1024: u32,
    /// Containment checks.
    pub check_per_1024: u32,
    /// Deliberately malformed frames (must answer typed 400s).
    pub malformed_per_1024: u32,
}

impl Default for WorkloadMix {
    fn default() -> Self {
        // ~82% hot counts, ~10% checks, ~4% malformed, ~4% cold counts.
        // Cold counts are full engine evaluations (no cache on either
        // side), so they are deliberately the rare class: they pin
        // correctness off the hot path without dominating wall-clock.
        WorkloadMix { hot_count_per_1024: 840, check_per_1024: 100, malformed_per_1024: 44 }
    }
}

/// Configuration for [`run`].
#[derive(Clone, Debug)]
pub struct LoadgenConfig {
    /// Server address, e.g. `127.0.0.1:4017`.
    pub addr: String,
    /// Tenant API key sent with every request.
    pub api_key: String,
    /// RNG seed; the workload is a pure function of it.
    pub seed: u64,
    /// Total requests across all connections.
    pub requests: u64,
    /// Concurrent keep-alive connections (closed-loop workers).
    pub connections: usize,
    /// Request class weights.
    pub mix: WorkloadMix,
    /// Transient-failure retry policy. `None` (the default) fails fast:
    /// any transport hiccup is a `protocol_error`, exactly as before.
    pub retry: Option<RetryPolicy>,
    /// Hedged requests: when set, the *first* delivery of each request
    /// gets this much time to answer; if it times out, the client
    /// immediately re-issues under the same `Idempotency-Key` (counted
    /// as a `hedge`, not a retry). The server's idempotency memo makes
    /// the speculative duplicate safe.
    pub hedge_after: Option<Duration>,
    /// Wrap the client's own sockets in the seeded chaos transport
    /// (connect side) — faults on the way *to* the server and on the
    /// way back.
    pub chaos_net: Option<u64>,
    /// Per-socket read/write timeout; no client thread ever hangs on a
    /// dead server longer than this.
    pub io_timeout: Duration,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            addr: "127.0.0.1:4017".into(),
            api_key: "dev-key".into(),
            seed: 42,
            requests: 20_000,
            connections: 8,
            mix: WorkloadMix::default(),
            retry: None,
            hedge_after: None,
            chaos_net: None,
            io_timeout: Duration::from_secs(10),
        }
    }
}

/// What a load run observed. `protocol_errors` and `mismatches` must be
/// zero for a healthy run; sheds are expected (and typed) under
/// overload.
#[derive(Clone, Debug, Default)]
pub struct LoadgenReport {
    /// Requests attempted.
    pub requests: u64,
    /// 200s with the expected payload.
    pub ok: u64,
    /// Typed 429/503/504 shed frames.
    pub sheds: u64,
    /// Malformed frames that came back as typed 400s (expected).
    pub rejected_malformed: u64,
    /// Anything off-protocol: resets, unparsable frames, wrong status
    /// for the payload, untyped errors.
    pub protocol_errors: u64,
    /// Wire answers that disagreed with the in-process count, or 200
    /// bodies that were not bit-identical across deliveries of the same
    /// frame.
    pub mismatches: u64,
    /// Transient failures that were retried (transport errors, CRC
    /// mismatches, 408s, corruption-induced 400s).
    pub retries: u64,
    /// Speculative re-issues after a first delivery outlived
    /// [`LoadgenConfig::hedge_after`].
    pub hedges: u64,
    /// Wall-clock for the whole run.
    pub elapsed: Duration,
    /// log₂ latency histogram: bucket `i` counts requests that took
    /// `[2^i, 2^{i+1})` microseconds.
    pub latency_log2_us: [u64; 32],
    /// Shed tallies by `reason:` label.
    pub shed_reasons: HashMap<String, u64>,
}

impl LoadgenReport {
    /// Requests per second over the run.
    pub fn req_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.requests as f64 / secs
    }

    /// `true` when the run saw no protocol errors and no mismatches.
    pub fn clean(&self) -> bool {
        self.protocol_errors == 0 && self.mismatches == 0
    }

    /// Approximate latency percentile (microseconds) from the log₂
    /// histogram — bucket upper bounds, so an overestimate.
    pub fn latency_percentile_us(&self, pct: f64) -> u64 {
        let total: u64 = self.latency_log2_us.iter().sum();
        if total == 0 {
            return 0;
        }
        let target = ((total as f64) * pct.clamp(0.0, 1.0)).ceil() as u64;
        let mut seen = 0u64;
        for (i, &n) in self.latency_log2_us.iter().enumerate() {
            seen += n;
            if seen >= target {
                return 1u64 << (i + 1);
            }
        }
        u64::MAX
    }

    /// Human-readable run report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("loadgen report\n");
        out.push_str(&format!("  requests        {}\n", self.requests));
        out.push_str(&format!("  elapsed         {:.3}s\n", self.elapsed.as_secs_f64()));
        out.push_str(&format!("  throughput      {:.0} req/s\n", self.req_per_sec()));
        out.push_str(&format!("  ok              {}\n", self.ok));
        out.push_str(&format!("  sheds           {}\n", self.sheds));
        let mut reasons: Vec<_> = self.shed_reasons.iter().collect();
        reasons.sort();
        for (reason, n) in reasons {
            out.push_str(&format!("    {reason:<22} {n}\n"));
        }
        out.push_str(&format!("  rejected 400s   {}\n", self.rejected_malformed));
        out.push_str(&format!("  retries         {}\n", self.retries));
        out.push_str(&format!("  hedges          {}\n", self.hedges));
        out.push_str(&format!("  protocol errors {}\n", self.protocol_errors));
        out.push_str(&format!("  mismatches      {}\n", self.mismatches));
        out.push_str(&format!(
            "  latency p50/p99 ≤{}µs / ≤{}µs\n",
            self.latency_percentile_us(0.50),
            self.latency_percentile_us(0.99)
        ));
        out
    }
}

/// Deterministic splitmix64 stream (std-only; no `rand` dependency so
/// the serve crate stays dependency-free for release builds).
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeds the stream.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// One precomputed request: the frame to send and what a correct server
/// must answer.
#[derive(Clone, Debug)]
struct Plan {
    path: &'static str,
    body: String,
    expect: Expect,
}

#[derive(Clone, Debug)]
enum Expect {
    /// 200 count frame with exactly this value.
    Count(Nat),
    /// 200 check frame (any verdict — the checker's budget decides).
    Check,
    /// 400 with a typed parse/frame error.
    Malformed,
}

/// DLGP source of a length-`len` path query over relation `e`.
fn path_query_source(len: usize) -> String {
    let mut src = String::from("?- ");
    for i in 0..len {
        if i > 0 {
            src.push_str(", ");
        }
        src.push_str(&format!("e(X{i}, X{})", i + 1));
    }
    src.push('.');
    src
}

/// DLGP source of a seeded edge instance: `u -> v` pairs become
/// `e(nu, nv).` facts.
fn edges_source(edges: &[(u64, u64)]) -> String {
    let mut src = String::new();
    for &(u, v) in edges {
        src.push_str(&format!("e(n{u}, n{v}).\n"));
    }
    src
}

/// Assembles a `/v1/count` frame from the two sources.
fn count_frame(query_src: &str, data_src: &str) -> String {
    let mut body = String::from("backend: auto\nquery:\n  ");
    body.push_str(query_src);
    body.push_str("\ndata:\n");
    for line in data_src.lines() {
        body.push_str("  ");
        body.push_str(line);
        body.push('\n');
    }
    body
}

fn check_frame(small_len: usize, big_len: usize, semantics: &str) -> String {
    let mut body = format!("semantics: {semantics}\nsmall:\n  ?- ");
    for i in 0..small_len {
        if i > 0 {
            body.push_str(", ");
        }
        body.push_str(&format!("e(X{i}, X{})", i + 1));
    }
    body.push_str(".\nbig:\n  ?- ");
    for i in 0..big_len {
        if i > 0 {
            body.push_str(", ");
        }
        body.push_str(&format!("e(Y{i}, Y{})", i + 1));
    }
    body.push_str(".\n");
    body
}

/// A union check frame (`;`-separated disjuncts on the small side, one
/// rule per line on the big side) — exercises the UCQ backends through
/// the wire path under both semantics.
fn ucq_check_frame(small_len: usize, big_len: usize, semantics: &str) -> String {
    let mut rule = String::from("?- ");
    for i in 0..big_len.max(small_len).max(1) {
        if i > 0 {
            rule.push_str(", ");
        }
        rule.push_str(&format!("e(W{i}, W{})", i + 1));
    }
    rule.push('.');
    format!(
        "semantics: {semantics}\nsmall:\n  ?- e(X0, X1) ; f(Y0).\nbig:\n  {rule}\n  ?- f(Z0).\n"
    )
}

const MALFORMED_BODIES: &[&str] = &[
    // Unterminated atom.
    "query:\n  ?- e(X, Y\ndata:\n  e(a, b).\n",
    // Unknown section header.
    "qurey:\n  ?- e(X, Y).\n",
    // Zero multiplicity.
    "query:\n  ?- e(X, Y).\ndata:\n  e(a, b)@0.\n",
    // Non-ground fact.
    "query:\n  ?- e(X, Y).\ndata:\n  e(a, Z).\n",
    // Arity conflict between query and data.
    "query:\n  ?- e(X, Y, Z).\ndata:\n  e(a, b).\n",
    // Missing query section entirely.
    "data:\n  e(a, b).\n",
];

/// Seeded random edge list over `nodes` vertices.
fn random_edges(rng: &mut SplitMix64, nodes: u64, count: usize) -> Vec<(u64, u64)> {
    (0..count).map(|_| (rng.below(nodes), rng.below(nodes))).collect()
}

/// Computes the expected count for a (query, data) pair **in-process**,
/// through the same `CountRequest` path the engine uses — the oracle
/// for the bit-identity check.
fn expected_count(query_src: &str, data_src: &str) -> Nat {
    let (_bag, support, schema) =
        parse_bag_instance_infer(data_src).expect("planner data is valid");
    let query = parse_dlgp_query(&schema, query_src).expect("planner queries are valid");
    CountRequest::new(&query, &support)
        .backend(BackendChoice::Auto)
        .run()
        .expect("planner workload counts succeed")
}

/// Builds the deterministic request plan for a seed: a hot pool of
/// repeated frames plus cold one-off frames, interleaved per the mix.
fn build_plan(config: &LoadgenConfig) -> Vec<Plan> {
    let mut rng = SplitMix64::new(config.seed);
    // A small hot pool: identical frames → engine cache hits.
    let hot_pool: Vec<Plan> = (0..8)
        .map(|i| {
            let query_src = path_query_source(2 + (i % 3));
            let data_src = edges_source(&random_edges(&mut rng, 6, 12));
            let expect = Expect::Count(expected_count(&query_src, &data_src));
            Plan { path: "/v1/count", body: count_frame(&query_src, &data_src), expect }
        })
        .collect();
    let mix = config.mix;
    let mut plan = Vec::with_capacity(config.requests as usize);
    for _ in 0..config.requests {
        let roll = rng.below(1024) as u32;
        if roll < mix.hot_count_per_1024 {
            let pick = rng.below(hot_pool.len() as u64) as usize;
            plan.push(hot_pool[pick].clone());
        } else if roll < mix.hot_count_per_1024 + mix.check_per_1024 {
            let small = 2 + rng.below(2) as usize;
            let big = 2 + rng.below(3) as usize;
            // Rotate through semantics × query-class so every registered
            // containment backend serves wire traffic under load.
            let body = match rng.below(4) {
                0 => check_frame(small, big, "bag"),
                1 => check_frame(small, big, "set"),
                2 => ucq_check_frame(small, big, "bag"),
                _ => ucq_check_frame(small, big, "set"),
            };
            plan.push(Plan { path: "/v1/check", body, expect: Expect::Check });
        } else if roll < mix.hot_count_per_1024 + mix.check_per_1024 + mix.malformed_per_1024 {
            let pick = rng.below(MALFORMED_BODIES.len() as u64) as usize;
            plan.push(Plan {
                path: "/v1/count",
                body: MALFORMED_BODIES[pick].to_string(),
                expect: Expect::Malformed,
            });
        } else {
            // Cold: a fresh random instance each time (cache misses).
            let query_src = path_query_source(2 + rng.below(2) as usize);
            let edge_count = 10 + rng.below(6) as usize;
            let data_src = edges_source(&random_edges(&mut rng, 8, edge_count));
            let expect = Expect::Count(expected_count(&query_src, &data_src));
            plan.push(Plan { path: "/v1/count", body: count_frame(&query_src, &data_src), expect });
        }
    }
    plan
}

/// One planned request, exposed for differential replay: the HTTP path,
/// the frame body, and what a correct server must answer. Used by the
/// cross-backend differential test in `serve_e2e.rs` and by the
/// falsification fleet (`bagcq-falsify`) to drive the wire path with a
/// known-good oracle.
#[derive(Clone, Debug)]
pub struct PlannedRequest {
    /// Request path (`/v1/count` or `/v1/check`).
    pub path: &'static str,
    /// Frame body, exactly as sent.
    pub body: String,
    /// Expected count for valid count frames; `None` for checks and
    /// malformed frames.
    pub expected_count: Option<Nat>,
    /// `true` when the frame is deliberately malformed (must 400).
    pub malformed: bool,
}

/// Builds the seeded request plan without running it, so tests can
/// replay the identical corpus through arbitrary transports or backends.
pub fn plan_requests(config: &LoadgenConfig) -> Vec<PlannedRequest> {
    build_plan(config)
        .into_iter()
        .map(|p| PlannedRequest {
            path: p.path,
            expected_count: match &p.expect {
                Expect::Count(n) => Some(n.clone()),
                _ => None,
            },
            malformed: matches!(p.expect, Expect::Malformed),
            body: p.body,
        })
        .collect()
}

struct Tally {
    ok: AtomicU64,
    sheds: AtomicU64,
    rejected_malformed: AtomicU64,
    protocol_errors: AtomicU64,
    mismatches: AtomicU64,
    retries: AtomicU64,
    hedges: AtomicU64,
    latency_log2_us: [AtomicU64; 32],
    shed_reasons: std::sync::Mutex<HashMap<String, u64>>,
}

impl Tally {
    fn new() -> Self {
        Tally {
            ok: AtomicU64::new(0),
            sheds: AtomicU64::new(0),
            rejected_malformed: AtomicU64::new(0),
            protocol_errors: AtomicU64::new(0),
            mismatches: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            hedges: AtomicU64::new(0),
            latency_log2_us: std::array::from_fn(|_| AtomicU64::new(0)),
            shed_reasons: std::sync::Mutex::new(HashMap::new()),
        }
    }

    fn record_latency(&self, took: Duration) {
        let us = took.as_micros().max(1) as u64;
        let bucket = (63 - us.leading_zeros() as usize).min(31);
        self.latency_log2_us[bucket].fetch_add(1, Ordering::Relaxed);
    }

    fn record_shed(&self, reason: &str) {
        self.sheds.fetch_add(1, Ordering::Relaxed);
        let mut map = self.shed_reasons.lock().unwrap_or_else(|p| p.into_inner());
        *map.entry(reason.to_string()).or_insert(0) += 1;
    }
}

/// Scores one response against its plan.
fn score(plan: &Plan, status: u16, response: &WireResponse, tally: &Tally) {
    match response {
        WireResponse::Count { count, .. } => {
            if status != 200 {
                tally.protocol_errors.fetch_add(1, Ordering::Relaxed);
                return;
            }
            match &plan.expect {
                Expect::Count(expected) if expected == count => {
                    tally.ok.fetch_add(1, Ordering::Relaxed);
                }
                Expect::Count(_) => {
                    tally.mismatches.fetch_add(1, Ordering::Relaxed);
                }
                _ => {
                    tally.protocol_errors.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        WireResponse::Check { .. } => {
            if status == 200 && matches!(plan.expect, Expect::Check) {
                tally.ok.fetch_add(1, Ordering::Relaxed);
            } else {
                tally.protocol_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
        WireResponse::Error { kind, reason, .. } => match kind.as_str() {
            "parse" | "frame" if status == 400 && matches!(plan.expect, Expect::Malformed) => {
                tally.rejected_malformed.fetch_add(1, Ordering::Relaxed);
            }
            "shed" if matches!(status, 429 | 503 | 504) => {
                tally.record_shed(if reason.is_empty() { "unlabelled" } else { reason });
            }
            "timeout" if status == 504 => {
                tally.record_shed("timeout");
            }
            // A slow-client eviction that survived the retry budget: the
            // server held its deadline contract, so count it as a typed
            // shed rather than breakage.
            "slow_client" if status == 408 => {
                tally.record_shed("slow_client");
            }
            "failed_fast" if status == 503 => {
                tally.record_shed(if reason.is_empty() { "failed_fast" } else { reason });
            }
            _ => {
                tally.protocol_errors.fetch_add(1, Ordering::Relaxed);
            }
        },
    }
}

/// Shared, immutable client-side context for the closed-loop workers.
struct ClientCtx {
    addr: String,
    api_key: String,
    limits: HttpLimits,
    injector: Option<Arc<NetFaultInjector>>,
    retry: Option<RetryPolicy>,
    hedge_after: Option<Duration>,
    io_timeout: Duration,
    seed: u64,
}

type ClientConn = (BufReader<Conn>, Conn);

fn connect(ctx: &ClientCtx) -> Result<ClientConn, std::io::Error> {
    let s = TcpStream::connect(&ctx.addr)?;
    s.set_nodelay(true).ok();
    let conn = Conn::from_stream(s, ctx.injector.as_deref(), "connect");
    conn.set_write_timeout(Some(ctx.io_timeout))?;
    let writer = conn.try_clone()?;
    Ok((BufReader::new(conn), writer))
}

/// One wire exchange.
enum Attempt {
    /// A parseable HTTP response whose `X-Body-Crc` (if present)
    /// verified.
    Response(HttpResponse),
    /// Transport-level failure — connect/write/read error, truncation,
    /// or a response that failed its own integrity checksum.
    /// `timed_out` marks read timeouts (the hedge trigger).
    Transport { timed_out: bool },
}

fn attempt(
    slot: &mut Option<ClientConn>,
    ctx: &ClientCtx,
    item: &Plan,
    idem_key: &str,
    read_timeout: Duration,
) -> Attempt {
    if slot.is_none() {
        match connect(ctx) {
            Ok(c) => *slot = Some(c),
            Err(_) => return Attempt::Transport { timed_out: false },
        }
    }
    let (reader, writer) = slot.as_mut().expect("connection is live");
    let _ = reader.get_ref().set_read_timeout(Some(read_timeout));
    let extra = [
        ("Idempotency-Key", idem_key.to_string()),
        ("X-Body-Crc", format!("{:08x}", crc32(item.body.as_bytes()))),
    ];
    if write_request_with_headers(
        writer,
        "POST",
        item.path,
        &ctx.api_key,
        item.body.as_bytes(),
        &extra,
    )
    .is_err()
    {
        *slot = None;
        return Attempt::Transport { timed_out: false };
    }
    match read_response(reader, &ctx.limits) {
        Ok(Some(http)) => {
            // Transport integrity: a response failing its own checksum
            // was corrupted on the wire — drop the connection (its byte
            // stream is untrustworthy) and treat it as transport loss.
            if let Some(declared) = http.header("x-body-crc") {
                if u32::from_str_radix(declared.trim(), 16) != Ok(crc32(&http.body)) {
                    *slot = None;
                    return Attempt::Transport { timed_out: false };
                }
            }
            if !http.keep_alive() {
                *slot = None;
            }
            Attempt::Response(http)
        }
        Ok(None) => {
            *slot = None;
            Attempt::Transport { timed_out: false }
        }
        Err(e) => {
            let timed_out = matches!(
                &e,
                HttpError::Io(io)
                    if matches!(io.kind(), std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock)
            );
            *slot = None;
            Attempt::Transport { timed_out }
        }
    }
}

/// `true` when a *parsed* response is a transient failure worth
/// retrying: a 408 slow-client eviction, a typed `corrupt` rejection
/// (the server caught mangled bytes via `X-Body-Crc`), or any 400 on a
/// frame the plan knows is well-formed (corruption the checksum did not
/// cover, e.g. mangled request headers). Typed sheds (429/503/504) are
/// deliberately *not* transient — backoff contracts, not faults.
fn transient_response(item: &Plan, status: u16, wire: &WireResponse) -> bool {
    match wire {
        WireResponse::Error { kind, .. } => {
            status == 408
                || kind == "corrupt"
                || (status == 400 && !matches!(item.expect, Expect::Malformed))
        }
        _ => false,
    }
}

/// Cap on the per-worker first-delivery body map (bit-identity oracle);
/// the hot pool lands in it immediately, cold one-shot frames past the
/// cap are simply not cross-checked.
const FIRST_BODY_CAP: usize = 1024;

fn worker(ctx: &ClientCtx, plan: &[Plan], base_index: u64, tally: &Tally) {
    let mut slot: Option<ClientConn> = None;
    // First 200 body observed per request frame: every later delivery
    // of the same frame must be bit-identical (the server's answers are
    // pure functions of the body).
    let mut first_bodies: HashMap<&str, String> = HashMap::new();
    let max_retries = ctx.retry.as_ref().map_or(0, |r| r.max_retries);
    for (i, item) in plan.iter().enumerate() {
        let global = base_index + i as u64;
        // Deterministic per-request identity: retries and hedges of this
        // request all carry the same key, distinct from every other
        // request in the run.
        let idem_key = format!("lg-{:016x}-{global}", ctx.seed);
        let salt = ctx.seed ^ global.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut retries_used = 0u32;
        let mut hedge_armed = ctx.hedge_after.is_some();
        let started = Instant::now();
        let outcome: Option<HttpResponse> = loop {
            let read_timeout = match (hedge_armed, ctx.hedge_after) {
                (true, Some(h)) => h.min(ctx.io_timeout),
                _ => ctx.io_timeout,
            };
            let mut transient = |tally: &Tally| -> bool {
                if retries_used < max_retries {
                    retries_used += 1;
                    tally.retries.fetch_add(1, Ordering::Relaxed);
                    if let Some(policy) = &ctx.retry {
                        thread::sleep(policy.backoff(retries_used - 1, salt));
                    }
                    true
                } else {
                    false
                }
            };
            match attempt(&mut slot, ctx, item, &idem_key, read_timeout) {
                Attempt::Response(http) => {
                    let parsed = http.utf8_body().ok().and_then(|t| parse_response(t).ok());
                    match parsed {
                        Some(wire) => {
                            if transient_response(item, http.status, &wire) && transient(tally) {
                                continue;
                            }
                            break Some(http);
                        }
                        None => {
                            // Unparsable body that still passed framing:
                            // transport-grade garbage.
                            slot = None;
                            if transient(tally) {
                                continue;
                            }
                            break None;
                        }
                    }
                }
                Attempt::Transport { timed_out } => {
                    if timed_out && hedge_armed {
                        // Hedge: the first delivery outlived its budget;
                        // re-issue immediately under the same key (the
                        // idempotency memo absorbs the duplicate).
                        hedge_armed = false;
                        tally.hedges.fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                    hedge_armed = false;
                    if transient(tally) {
                        continue;
                    }
                    break None;
                }
            }
        };
        tally.record_latency(started.elapsed());
        match outcome {
            Some(http) => {
                // Delivery bit-identity: two 200s for the same frame
                // must match byte for byte.
                if http.status == 200 {
                    if let Ok(body) = http.utf8_body() {
                        match first_bodies.get(item.body.as_str()) {
                            Some(first) if first != body => {
                                tally.mismatches.fetch_add(1, Ordering::Relaxed);
                            }
                            Some(_) => {}
                            None if first_bodies.len() < FIRST_BODY_CAP => {
                                first_bodies.insert(item.body.as_str(), body.to_string());
                            }
                            None => {}
                        }
                    }
                }
                match http.utf8_body().ok().and_then(|t| parse_response(t).ok()) {
                    Some(wire) => score(item, http.status, &wire, tally),
                    None => {
                        tally.protocol_errors.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            None => {
                // Transport failure that survived the retry budget (or
                // fail-fast mode without one): off-protocol.
                tally.protocol_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// Runs the load: builds the seeded plan, fans it out over
/// `config.connections` closed-loop workers, and returns the merged
/// report.
pub fn run(config: &LoadgenConfig) -> LoadgenReport {
    let plan = build_plan(config);
    let tally = Arc::new(Tally::new());
    let connections = config.connections.max(1);
    let chunk = plan.len().div_ceil(connections).max(1);
    let ctx = Arc::new(ClientCtx {
        addr: config.addr.clone(),
        api_key: config.api_key.clone(),
        limits: HttpLimits::default(),
        injector: config.chaos_net.map(|seed| NetFaultInjector::new(NetFaultPlan::seeded(seed))),
        retry: config.retry.clone(),
        hedge_after: config.hedge_after,
        io_timeout: config.io_timeout,
        seed: config.seed,
    });
    let started = Instant::now();
    thread::scope(|scope| {
        for (shard_idx, shard) in plan.chunks(chunk).enumerate() {
            let tally = Arc::clone(&tally);
            let ctx = Arc::clone(&ctx);
            let base_index = (shard_idx * chunk) as u64;
            scope.spawn(move || worker(&ctx, shard, base_index, &tally));
        }
    });
    let elapsed = started.elapsed();
    let mut report = LoadgenReport {
        requests: plan.len() as u64,
        ok: tally.ok.load(Ordering::Relaxed),
        sheds: tally.sheds.load(Ordering::Relaxed),
        rejected_malformed: tally.rejected_malformed.load(Ordering::Relaxed),
        protocol_errors: tally.protocol_errors.load(Ordering::Relaxed),
        mismatches: tally.mismatches.load(Ordering::Relaxed),
        retries: tally.retries.load(Ordering::Relaxed),
        hedges: tally.hedges.load(Ordering::Relaxed),
        elapsed,
        latency_log2_us: [0; 32],
        shed_reasons: tally.shed_reasons.lock().unwrap_or_else(|p| p.into_inner()).clone(),
    };
    for (i, bucket) in tally.latency_log2_us.iter().enumerate() {
        report.latency_log2_us[i] = bucket.load(Ordering::Relaxed);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::new(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn plans_are_seed_deterministic() {
        let config = LoadgenConfig { requests: 64, ..LoadgenConfig::default() };
        let p1 = build_plan(&config);
        let p2 = build_plan(&config);
        assert_eq!(p1.len(), 64);
        for (a, b) in p1.iter().zip(&p2) {
            assert_eq!(a.body, b.body);
            assert_eq!(a.path, b.path);
        }
    }

    #[test]
    fn plans_mix_all_request_classes() {
        let config = LoadgenConfig { requests: 512, seed: 1, ..LoadgenConfig::default() };
        let plan = build_plan(&config);
        let counts = plan.iter().filter(|p| matches!(p.expect, Expect::Count(_))).count();
        let checks = plan.iter().filter(|p| matches!(p.expect, Expect::Check)).count();
        let bad = plan.iter().filter(|p| matches!(p.expect, Expect::Malformed)).count();
        assert!(counts > 0 && checks > 0 && bad > 0, "{counts}/{checks}/{bad}");
    }

    #[test]
    fn latency_percentiles_come_from_the_histogram() {
        let mut report = LoadgenReport::default();
        report.latency_log2_us[3] = 50; // [8, 16) µs
        report.latency_log2_us[10] = 50; // [1024, 2048) µs
        assert_eq!(report.latency_percentile_us(0.5), 16);
        assert_eq!(report.latency_percentile_us(0.99), 2048);
    }
}
