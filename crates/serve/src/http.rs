//! A deliberately minimal HTTP/1.1 codec — just enough for the serve
//! protocol: request line + headers + `Content-Length` body, keep-alive
//! connections, and typed errors for every malformed frame.
//!
//! Restrictions (all answered with a typed error, never a panic or a
//! hang):
//!
//! * header block capped at [`HttpLimits::max_head_bytes`];
//! * bodies capped at [`HttpLimits::max_body_bytes`] (→ 413);
//! * `Transfer-Encoding` is not supported (→ 400); bodies require an
//!   explicit `Content-Length`;
//! * request bodies for the text endpoints must be UTF-8 (checked by the
//!   caller via [`HttpRequest::utf8_body`]).

use std::io::{self, BufRead, Write};

/// Hard limits applied while reading one request.
#[derive(Clone, Copy, Debug)]
pub struct HttpLimits {
    /// Longest accepted request line + header block, in bytes.
    pub max_head_bytes: usize,
    /// Largest accepted `Content-Length`.
    pub max_body_bytes: usize,
}

impl Default for HttpLimits {
    fn default() -> Self {
        HttpLimits { max_head_bytes: 16 * 1024, max_body_bytes: 1024 * 1024 }
    }
}

/// One parsed request.
#[derive(Debug, Clone)]
pub struct HttpRequest {
    /// Request method, uppercased as received (`GET`, `POST`, …).
    pub method: String,
    /// Request target (path only; no scheme/host form support).
    pub path: String,
    /// Header name/value pairs, names lowercased.
    pub headers: Vec<(String, String)>,
    /// Raw body bytes (empty without a `Content-Length`).
    pub body: Vec<u8>,
    /// Whether the client asked to keep the connection open.
    pub keep_alive: bool,
}

impl HttpRequest {
    /// First value of a header, by lowercase name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8, or a 400-mapped error.
    pub fn utf8_body(&self) -> Result<&str, HttpError> {
        std::str::from_utf8(&self.body)
            .map_err(|_| HttpError::Malformed("request body is not valid UTF-8".into()))
    }
}

/// Why a request could not be read. [`HttpError::status`] gives the
/// response code the server answers with before closing the connection.
#[derive(Debug)]
pub enum HttpError {
    /// Syntactically broken request (bad request line, bad header, bad
    /// `Content-Length`, unsupported `Transfer-Encoding`, non-UTF-8 text
    /// body) → 400.
    Malformed(String),
    /// Head or body over the configured limit → 413.
    TooLarge(String),
    /// The peer closed (or the stream was cut) after a complete head but
    /// before `Content-Length` bytes of body arrived. The frame is dead
    /// but the *failure mode* is known-transient: a retrying client may
    /// safely reissue the request on a fresh connection.
    Truncated(String),
    /// The socket died mid-request (timeout, reset, truncated frame).
    /// Nothing can be answered; the connection just closes.
    Io(io::Error),
}

impl HttpError {
    /// The HTTP status this error maps to (`None`: connection is dead,
    /// nothing to send).
    pub fn status(&self) -> Option<(u16, &'static str)> {
        match self {
            HttpError::Malformed(_) => Some((400, "Bad Request")),
            HttpError::TooLarge(_) => Some((413, "Payload Too Large")),
            HttpError::Truncated(_) | HttpError::Io(_) => None,
        }
    }

    /// Whether a client that hit this error may safely retry the request
    /// on a fresh connection: the frame never completed, so the peer
    /// cannot have acted on it more than once (and with an
    /// `Idempotency-Key`, not more than once *in total*). `Malformed` /
    /// `TooLarge` responses are deterministic verdicts, not faults.
    pub fn is_transient(&self) -> bool {
        matches!(self, HttpError::Truncated(_) | HttpError::Io(_))
    }

    /// Human-readable detail for the error body.
    pub fn detail(&self) -> String {
        match self {
            HttpError::Malformed(m) | HttpError::TooLarge(m) | HttpError::Truncated(m) => m.clone(),
            HttpError::Io(e) => e.to_string(),
        }
    }
}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// Reads one line terminated by `\n` (tolerating `\r\n`), bounded by the
/// remaining head budget. Returns `None` on clean EOF at a line start.
fn read_line(reader: &mut impl BufRead, budget: &mut usize) -> Result<Option<String>, HttpError> {
    let mut line = Vec::new();
    // `take` bounds the read so an endless unterminated line cannot blow
    // the budget by more than one byte; `read_until` runs off the
    // BufReader's internal buffer (memchr), not byte-at-a-time reads.
    let limit = *budget as u64 + 1;
    let n =
        io::Read::take(&mut *reader, limit).read_until(b'\n', &mut line).map_err(HttpError::Io)?;
    if n == 0 {
        return Ok(None);
    }
    if line.last() != Some(&b'\n') {
        if n > *budget {
            return Err(HttpError::TooLarge("request head exceeds the limit".into()));
        }
        return Err(HttpError::Io(io::ErrorKind::UnexpectedEof.into()));
    }
    if n > *budget {
        return Err(HttpError::TooLarge("request head exceeds the limit".into()));
    }
    *budget -= n;
    line.pop();
    if line.last() == Some(&b'\r') {
        line.pop();
    }
    match String::from_utf8(line) {
        Ok(s) => Ok(Some(s)),
        Err(_) => Err(HttpError::Malformed("request head is not valid UTF-8".into())),
    }
}

/// Reads one request off the connection. `Ok(None)` means the peer
/// closed cleanly between requests (normal keep-alive end).
pub fn read_request(
    reader: &mut impl BufRead,
    limits: &HttpLimits,
) -> Result<Option<HttpRequest>, HttpError> {
    let mut budget = limits.max_head_bytes;
    // Tolerate blank lines before the request line (RFC 9112 §2.2).
    let request_line = loop {
        match read_line(reader, &mut budget)? {
            None => return Ok(None),
            Some(line) if line.is_empty() => continue,
            Some(line) => break line,
        }
    };
    let mut parts = request_line.split_whitespace();
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) => (m.to_string(), p.to_string(), v),
        _ => {
            return Err(HttpError::Malformed(format!("bad request line {request_line:?}")));
        }
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(HttpError::Malformed(format!("unsupported protocol version {version:?}")));
    }
    let mut headers = Vec::new();
    loop {
        let line = match read_line(reader, &mut budget)? {
            None => return Err(HttpError::Io(io::ErrorKind::UnexpectedEof.into())),
            Some(line) => line,
        };
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::Malformed(format!("bad header line {line:?}")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    if headers.iter().any(|(n, _)| n == "transfer-encoding") {
        return Err(HttpError::Malformed("Transfer-Encoding is not supported".into()));
    }
    let content_length = match headers.iter().find(|(n, _)| n == "content-length") {
        None => 0usize,
        Some((_, v)) => v
            .parse::<usize>()
            .map_err(|_| HttpError::Malformed(format!("bad Content-Length {v:?}")))?,
    };
    if content_length > limits.max_body_bytes {
        return Err(HttpError::TooLarge(format!(
            "body of {content_length} bytes exceeds the {}-byte limit",
            limits.max_body_bytes
        )));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).map_err(|e| truncated_body(e, "request", content_length))?;
    let keep_alive = {
        let conn =
            headers.iter().find(|(n, _)| n == "connection").map(|(_, v)| v.to_ascii_lowercase());
        match conn.as_deref() {
            Some("close") => false,
            Some("keep-alive") => true,
            _ => version == "HTTP/1.1",
        }
    };
    Ok(Some(HttpRequest { method, path, headers, body, keep_alive }))
}

/// Writes one `text/plain` response.
pub fn write_response(
    writer: &mut impl Write,
    status: u16,
    reason: &str,
    body: &str,
    keep_alive: bool,
) -> io::Result<()> {
    write_response_with_headers(writer, status, reason, body, keep_alive, &[])
}

/// [`write_response`] with extra headers (`Retry-After`, `X-Body-Crc`,
/// …) between the fixed trio and the body. Header names/values must
/// already be wire-safe; this does no escaping.
pub fn write_response_with_headers(
    writer: &mut impl Write,
    status: u16,
    reason: &str,
    body: &str,
    keep_alive: bool,
    extra: &[(&str, String)],
) -> io::Result<()> {
    let connection = if keep_alive { "keep-alive" } else { "close" };
    write!(
        writer,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: text/plain; charset=utf-8\r\nContent-Length: {}\r\nConnection: {connection}\r\n",
        body.len()
    )?;
    for (name, value) in extra {
        write!(writer, "{name}: {value}\r\n")?;
    }
    write!(writer, "\r\n{body}")?;
    writer.flush()
}

/// A parsed response (the load generator's client side).
#[derive(Debug, Clone)]
pub struct HttpResponse {
    /// Status code.
    pub status: u16,
    /// Header name/value pairs, names lowercased.
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// First value of a header, by lowercase name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 (lossy conversions are protocol errors for the
    /// load generator, so this is strict).
    pub fn utf8_body(&self) -> Result<&str, HttpError> {
        std::str::from_utf8(&self.body)
            .map_err(|_| HttpError::Malformed("response body is not valid UTF-8".into()))
    }

    /// Whether the server will keep the connection open after this
    /// response (absent `Connection` header defaults to keep-alive).
    pub fn keep_alive(&self) -> bool {
        self.headers
            .iter()
            .find(|(n, _)| n == "connection")
            .map(|(_, v)| !v.eq_ignore_ascii_case("close"))
            .unwrap_or(true)
    }
}

/// Writes one request with an `X-Api-Key` header (the load generator's
/// client side).
pub fn write_request(
    writer: &mut impl Write,
    method: &str,
    path: &str,
    api_key: &str,
    body: &[u8],
) -> io::Result<()> {
    write_request_with_headers(writer, method, path, api_key, body, &[])
}

/// [`write_request`] with extra headers (`Idempotency-Key`,
/// `X-Body-Crc`, …). Header names/values must already be wire-safe.
pub fn write_request_with_headers(
    writer: &mut impl Write,
    method: &str,
    path: &str,
    api_key: &str,
    body: &[u8],
    extra: &[(&str, String)],
) -> io::Result<()> {
    write!(
        writer,
        "{method} {path} HTTP/1.1\r\nX-Api-Key: {api_key}\r\nContent-Length: {}\r\n",
        body.len()
    )?;
    for (name, value) in extra {
        write!(writer, "{name}: {value}\r\n")?;
    }
    write!(writer, "\r\n")?;
    writer.write_all(body)?;
    writer.flush()
}

/// Reads one response off a client connection. `Ok(None)` on clean EOF.
pub fn read_response(
    reader: &mut impl BufRead,
    limits: &HttpLimits,
) -> Result<Option<HttpResponse>, HttpError> {
    let mut budget = limits.max_head_bytes;
    let status_line = match read_line(reader, &mut budget)? {
        None => return Ok(None),
        Some(line) => line,
    };
    let mut parts = status_line.splitn(3, ' ');
    let status = match (parts.next(), parts.next()) {
        (Some(v), Some(code)) if v.starts_with("HTTP/1.") => code
            .parse::<u16>()
            .map_err(|_| HttpError::Malformed(format!("bad status line {status_line:?}")))?,
        _ => return Err(HttpError::Malformed(format!("bad status line {status_line:?}"))),
    };
    let mut headers = Vec::new();
    loop {
        let line = match read_line(reader, &mut budget)? {
            None => return Err(HttpError::Io(io::ErrorKind::UnexpectedEof.into())),
            Some(line) => line,
        };
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::Malformed(format!("bad header line {line:?}")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    let content_length = match headers.iter().find(|(n, _)| n == "content-length") {
        None => 0usize,
        Some((_, v)) => v
            .parse::<usize>()
            .map_err(|_| HttpError::Malformed(format!("bad Content-Length {v:?}")))?,
    };
    if content_length > limits.max_body_bytes {
        return Err(HttpError::TooLarge("response body exceeds the limit".into()));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).map_err(|e| truncated_body(e, "response", content_length))?;
    Ok(Some(HttpResponse { status, headers, body }))
}

/// Classifies a body-read failure: EOF after a complete head is a
/// [`HttpError::Truncated`] frame (retry-safe), anything else stays io.
fn truncated_body(e: io::Error, what: &str, expected: usize) -> HttpError {
    if e.kind() == io::ErrorKind::UnexpectedEof {
        HttpError::Truncated(format!("{what} body truncated before {expected} bytes arrived"))
    } else {
        HttpError::Io(e)
    }
}

/// CRC-32 (IEEE, reflected) over `bytes` — the integrity check carried in
/// the `X-Body-Crc` header on both requests and responses, so a single
/// flipped bit anywhere in a body is detected before the frame is acted
/// on (chaos-transport corruption shows up as a typed refusal/retry, not
/// a silently wrong count).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            crc = (crc >> 1) ^ (0xEDB8_8320 & (0u32.wrapping_sub(crc & 1)));
        }
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(bytes: &[u8]) -> Result<Option<HttpRequest>, HttpError> {
        read_request(&mut BufReader::new(bytes), &HttpLimits::default())
    }

    #[test]
    fn parses_post_with_body() {
        let req =
            parse(b"POST /v1/count HTTP/1.1\r\nX-Api-Key: k\r\nContent-Length: 5\r\n\r\nhello")
                .unwrap()
                .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/count");
        assert_eq!(req.header("x-api-key"), Some("k"));
        assert_eq!(req.utf8_body().unwrap(), "hello");
        assert!(req.keep_alive, "HTTP/1.1 defaults to keep-alive");
    }

    #[test]
    fn bare_lf_and_connection_close() {
        let req = parse(b"GET /metrics HTTP/1.1\nConnection: close\n\n").unwrap().unwrap();
        assert_eq!(req.method, "GET");
        assert!(!req.keep_alive);
        assert!(req.body.is_empty());
    }

    #[test]
    fn clean_eof_is_none() {
        assert!(parse(b"").unwrap().is_none());
        assert!(parse(b"\r\n\r\n").unwrap().is_none(), "stray blank lines then EOF");
    }

    #[test]
    fn malformed_frames_are_typed_errors() {
        for bytes in [
            b"GARBAGE\r\n\r\n".as_slice(),
            b"GET /x HTTP/2\r\n\r\n".as_slice(),
            b"GET /x HTTP/1.1\r\nbadheader\r\n\r\n".as_slice(),
            b"POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n".as_slice(),
            b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n".as_slice(),
            b"GET \xff\xfe HTTP/1.1\r\n\r\n".as_slice(),
        ] {
            let e = parse(bytes).unwrap_err();
            assert_eq!(e.status(), Some((400, "Bad Request")), "{e:?} for {bytes:?}");
        }
    }

    #[test]
    fn truncated_frames_are_io_errors() {
        for bytes in [
            b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort".as_slice(),
            b"GET /x HTTP/1.1\r\nHeader: truncated".as_slice(),
        ] {
            let e = parse(bytes).unwrap_err();
            assert!(e.status().is_none(), "{e:?}");
        }
    }

    #[test]
    fn oversized_head_and_body_are_413() {
        let limits = HttpLimits { max_head_bytes: 64, max_body_bytes: 8 };
        let mut big = b"GET /x HTTP/1.1\r\nX-Pad: ".to_vec();
        big.extend(std::iter::repeat(b'a').take(100));
        big.extend(b"\r\n\r\n");
        let e = read_request(&mut BufReader::new(big.as_slice()), &limits).unwrap_err();
        assert_eq!(e.status(), Some((413, "Payload Too Large")), "{e:?}");

        let e = read_request(
            &mut BufReader::new(
                b"POST /x HTTP/1.1\r\nContent-Length: 9\r\n\r\n123456789".as_slice(),
            ),
            &limits,
        )
        .unwrap_err();
        assert_eq!(e.status(), Some((413, "Payload Too Large")), "{e:?}");
    }

    #[test]
    fn response_roundtrip() {
        let mut buf = Vec::new();
        write_response(&mut buf, 200, "OK", "ok: count\ncount: 4\n", true).unwrap();
        let resp = read_response(&mut BufReader::new(buf.as_slice()), &HttpLimits::default())
            .unwrap()
            .unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.utf8_body().unwrap(), "ok: count\ncount: 4\n");
        assert_eq!(
            resp.headers.iter().find(|(n, _)| n == "connection").map(|(_, v)| v.as_str()),
            Some("keep-alive")
        );
    }

    #[test]
    fn client_request_parses_back() {
        let mut buf = Vec::new();
        write_request(&mut buf, "POST", "/v1/count", "k1", b"query:\n  ?- e(X, Y).\n").unwrap();
        let req = parse(&buf).unwrap().unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/count");
        assert_eq!(req.header("x-api-key"), Some("k1"));
        assert_eq!(req.utf8_body().unwrap(), "query:\n  ?- e(X, Y).\n");
    }

    #[test]
    fn truncated_response_body_is_typed_and_transient() {
        // A complete head promising 10 body bytes, then EOF after 5: the
        // loadgen retry path must see a typed `Truncated` (transient),
        // not a bare io error it cannot classify.
        let bytes = b"HTTP/1.1 200 OK\r\nContent-Length: 10\r\n\r\nshort".as_slice();
        let e = read_response(&mut BufReader::new(bytes), &HttpLimits::default()).unwrap_err();
        assert!(matches!(e, HttpError::Truncated(_)), "{e:?}");
        assert!(e.is_transient());
        assert!(e.status().is_none(), "nothing can be answered on a dead frame");
        assert!(e.detail().contains("truncated"), "{e:?}");
        // Deterministic verdicts are NOT transient: retrying them loops.
        assert!(!HttpError::Malformed("x".into()).is_transient());
        assert!(!HttpError::TooLarge("x".into()).is_transient());
        assert!(HttpError::Io(io::ErrorKind::ConnectionReset.into()).is_transient());
    }

    #[test]
    fn extra_headers_round_trip() {
        let mut buf = Vec::new();
        write_response_with_headers(
            &mut buf,
            429,
            "Too Many Requests",
            "error: shed\n",
            false,
            &[("Retry-After", "1".to_string()), ("X-Body-Crc", format!("{:08x}", 7))],
        )
        .unwrap();
        let resp = read_response(&mut BufReader::new(buf.as_slice()), &HttpLimits::default())
            .unwrap()
            .unwrap();
        assert_eq!(resp.status, 429);
        assert_eq!(resp.header("retry-after"), Some("1"));
        assert_eq!(resp.header("x-body-crc"), Some("00000007"));
        assert!(!resp.keep_alive());

        let mut buf = Vec::new();
        write_request_with_headers(
            &mut buf,
            "POST",
            "/v1/count",
            "k1",
            b"body",
            &[("Idempotency-Key", "req-0042".to_string())],
        )
        .unwrap();
        let req = parse(&buf).unwrap().unwrap();
        assert_eq!(req.header("idempotency-key"), Some("req-0042"));
        assert_eq!(req.header("x-api-key"), Some("k1"));
        assert_eq!(req.body, b"body");
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
        // Any single flipped bit must change the checksum.
        let body = b"ok: count\ncount: 17\n";
        let base = crc32(body);
        for i in 0..body.len() {
            let mut corrupt = body.to_vec();
            corrupt[i] ^= 0x20;
            assert_ne!(crc32(&corrupt), base, "flip at byte {i} went undetected");
        }
    }

    #[test]
    fn two_requests_on_one_connection() {
        let bytes = b"GET /healthz HTTP/1.1\r\n\r\nGET /metrics HTTP/1.1\r\n\r\n";
        let mut reader = BufReader::new(bytes.as_slice());
        let limits = HttpLimits::default();
        let a = read_request(&mut reader, &limits).unwrap().unwrap();
        let b = read_request(&mut reader, &limits).unwrap().unwrap();
        assert_eq!(a.path, "/healthz");
        assert_eq!(b.path, "/metrics");
        assert!(read_request(&mut reader, &limits).unwrap().is_none());
    }
}
