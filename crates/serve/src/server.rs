//! The threaded TCP front door.
//!
//! [`Server::start`] binds a listener, spawns acceptor threads, and
//! serves each connection on its own thread (keep-alive, bounded by
//! [`ServerConfig::max_connections`]). Requests route through the
//! existing [`EvalEngine`]; every `/v1/*` request runs the four traced
//! stages `serve.parse → serve.admit → serve.count → serve.respond`
//! (see [`bagcq_obs::stages`]).
//!
//! ## Endpoints
//!
//! | method+path      | body                   | answers |
//! |------------------|------------------------|---------|
//! | `POST /v1/count` | count frame            | 200 count frame; 400/401/429/5xx typed errors |
//! | `POST /v1/check` | check frame            | 200 check frame; same errors |
//! | `GET /metrics`   | —                      | 200 engine metrics text (with per-tenant counters) |
//! | `GET /healthz`   | —                      | 200 `ok: healthy` / `ok: degraded` / `ok: draining` (live engine state) |
//! | `POST /admin/drain` | —                   | 200 drain report (requires the admin key) |
//!
//! ## Status mapping
//!
//! Every engine outcome maps to exactly one status: counts/verdicts →
//! 200; [`ShedReason::QuotaExceeded`]/[`ShedReason::InFlightLimit`]/
//! [`ShedReason::ConnectionLimit`] → 429;
//! [`ShedReason::QueueFull`]/[`ShedReason::AdmissionTimeout`]/
//! [`ShedReason::Draining`] and [`Outcome::FailedFast`] → 503;
//! [`ShedReason::ExpiredAtDequeue`] and [`Outcome::TimedOut`] → 504;
//! [`Outcome::Panicked`] → 500. Parse/frame errors → 400 with the caret
//! snippet verbatim; a `semantics`/`containment` combination no backend
//! supports → typed 400 `unsupported_semantics` (rejected at the parse
//! stage, before admission is charged); unknown API keys → 401; unknown
//! paths → 404;
//! oversized frames → 413; a client that starts a request but fails to
//! finish it inside [`ServerConfig::read_deadline`] → 408
//! (`slow_client`) and the connection closes.
//!
//! ## Retry contract
//!
//! Every 408/429/503 carries `Retry-After: 1`; every response carries an
//! `X-Body-Crc` (CRC-32) integrity header, and a request carrying one is
//! verified before parsing (mismatch → typed, retryable 400 `corrupt`).
//! A request carrying an `Idempotency-Key` header has its 200 memoized
//! per `(tenant, key)`: a retried delivery replays the stored frame
//! bit-identically **without** charging admission again, so per tenant
//! `admitted + idempotent_replays == answered 200s` even under
//! aggressive client retries/hedging.
//!
//! `POST /admin/drain` is the SIGTERM-equivalent shutdown: it drains the
//! engine (every in-flight job resolves; queued work is shed as
//! [`ShedReason::Draining`]), flips the server into a draining state
//! where `/v1/*` answers 503, and requests process shutdown — the
//! `bagcq serve` run loop then exits cleanly.

use crate::chaos::{Conn, NetFaultInjector, NetFaultPlan};
use crate::http::{
    crc32, read_request, write_response_with_headers, HttpError, HttpLimits, HttpRequest,
};
use crate::wire::{parse_check_request, parse_count_request, WireResponse};
use bagcq_containment::{ContainmentChoice, Semantics, Verdict};
use bagcq_engine::{
    DrainReport, EngineConfig, EvalEngine, Job, Outcome, ShedReason, TenantConnection, TenantGate,
    TenantRefusal, TenantSpec,
};
use bagcq_obs::stages;
use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// Configuration for [`Server::start`].
pub struct ServerConfig {
    /// Bind address; port 0 picks a free port (see
    /// [`Server::local_addr`]).
    pub addr: String,
    /// Acceptor threads sharing the listener.
    pub acceptors: usize,
    /// Maximum live connections; excess accepts get an immediate 503.
    pub max_connections: usize,
    /// The tenant roster (API keys + quotas).
    pub tenants: Vec<TenantSpec>,
    /// Admin API key for `POST /admin/drain`. `None` disables the
    /// endpoint (404).
    pub admin_key: Option<String>,
    /// Engine configuration (worker pool, admission, cache, …).
    pub engine: EngineConfig,
    /// HTTP frame limits.
    pub limits: HttpLimits,
    /// Per-job wall-clock deadline applied to every wire job.
    pub job_timeout: Duration,
    /// Socket read timeout for idle keep-alive connections (waiting for
    /// the *first* byte of the next request).
    pub idle_timeout: Duration,
    /// Once a request's first byte has arrived, the whole head + body
    /// must complete within this deadline; a client that trickles past
    /// it is evicted with a typed 408. Distinct from `idle_timeout`:
    /// idling between requests is legitimate, trickling inside one is
    /// slow-loris.
    pub read_deadline: Duration,
    /// Each response must be fully written within this deadline; a peer
    /// that stalls the write path past it just loses the connection (no
    /// server thread ever blocks on one socket longer than this).
    pub write_deadline: Duration,
    /// Engine drain deadline used by `POST /admin/drain`.
    pub drain_timeout: Duration,
    /// Wire-level chaos: every accepted connection is wrapped in a
    /// [`crate::chaos::ChaosTransport`] under this plan. `None` (the
    /// default) serves plain sockets.
    pub chaos: Option<NetFaultPlan>,
    /// `BAGCQ_CHAOS_NET_BREAK=corrupt-pass` self-test hook: deliberately
    /// corrupt one digit of every 200 count frame *before* the
    /// `X-Body-Crc` checksum is computed, so transport-level corruption
    /// detection passes and only the load generator's bit-identity
    /// oracle can catch the wrong answer. CI proves it does.
    pub chaos_break_corrupt_pass: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            acceptors: 2,
            max_connections: 256,
            tenants: vec![TenantSpec::new("default", "dev-key")],
            admin_key: Some("admin-key".into()),
            engine: EngineConfig::default(),
            limits: HttpLimits::default(),
            job_timeout: Duration::from_secs(10),
            idle_timeout: Duration::from_secs(30),
            read_deadline: Duration::from_secs(10),
            write_deadline: Duration::from_secs(10),
            drain_timeout: Duration::from_secs(5),
            chaos: None,
            chaos_break_corrupt_pass: false,
        }
    }
}

struct Shared {
    engine: EvalEngine,
    gate: TenantGate,
    admin_key: Option<String>,
    limits: HttpLimits,
    job_timeout: Duration,
    idle_timeout: Duration,
    read_deadline: Duration,
    write_deadline: Duration,
    drain_timeout: Duration,
    stop: AtomicBool,
    draining: AtomicBool,
    live_connections: AtomicUsize,
    max_connections: usize,
    shutdown_requested: Mutex<bool>,
    shutdown_cv: Condvar,
    drain_lock: Mutex<Option<DrainReport>>,
    injector: Option<Arc<NetFaultInjector>>,
    break_corrupt_pass: bool,
    /// Whole-response memo for `/v1/*`: count frames, check frames, and
    /// parse/frame 400s are pure functions of the request body (the
    /// engine's answers are bit-identical by construction), so repeated
    /// bodies skip parse + engine entirely. Admission is still charged
    /// per request (idempotent *replays* are the one exception — see
    /// `idem_cache`); sheds/timeouts/auth are never cached.
    response_cache: Mutex<HashMap<String, CachedResponse>>,
    /// Exactly-once delivery memo, keyed `(api key, Idempotency-Key)`.
    /// A retry carrying the same key replays the stored 200 verbatim
    /// *without* charging admission again — the retrying client's
    /// answer is bit-identical to the first delivery and
    /// `admitted + idempotent_replays == answered` holds per tenant.
    idem_cache: Mutex<HashMap<(String, String), CachedResponse>>,
}

/// A memoized rendered response: `(status, status text, body)`.
type CachedResponse = Arc<(u16, &'static str, String)>;

/// Response-cache entry cap; the map is cleared when it fills (hot
/// entries repopulate immediately, cold ones were one-shot anyway).
const RESPONSE_CACHE_CAP: usize = 4096;
/// Bodies past this size are not worth memoizing.
const RESPONSE_CACHE_MAX_BODY: usize = 64 * 1024;
/// Idempotency-cache entry cap, cleared when full (a cleared entry only
/// costs a retried request one extra engine hop — answers stay
/// bit-identical through the response memo).
const IDEM_CACHE_CAP: usize = 65_536;

/// A running server. Dropping it shuts it down.
pub struct Server {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    acceptors: Vec<thread::JoinHandle<()>>,
}

impl Server {
    /// Binds and starts serving.
    pub fn start(config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            engine: EvalEngine::new(config.engine),
            gate: TenantGate::new(config.tenants),
            admin_key: config.admin_key,
            limits: config.limits,
            job_timeout: config.job_timeout,
            idle_timeout: config.idle_timeout,
            read_deadline: config.read_deadline,
            write_deadline: config.write_deadline,
            drain_timeout: config.drain_timeout,
            stop: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            live_connections: AtomicUsize::new(0),
            max_connections: config.max_connections.max(1),
            shutdown_requested: Mutex::new(false),
            shutdown_cv: Condvar::new(),
            drain_lock: Mutex::new(None),
            injector: config.chaos.map(NetFaultInjector::new),
            break_corrupt_pass: config.chaos_break_corrupt_pass,
            response_cache: Mutex::new(HashMap::new()),
            idem_cache: Mutex::new(HashMap::new()),
        });
        let mut acceptors = Vec::new();
        for i in 0..config.acceptors.max(1) {
            let listener = listener.try_clone()?;
            let shared = Arc::clone(&shared);
            acceptors.push(
                thread::Builder::new()
                    .name(format!("bagcq-serve-accept-{i}"))
                    .spawn(move || accept_loop(listener, shared))
                    .expect("spawn acceptor"),
            );
        }
        Ok(Server { shared, local_addr, acceptors })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Engine metrics with the per-tenant counters filled in — the same
    /// snapshot `/metrics` serves.
    pub fn metrics(&self) -> bagcq_engine::MetricsSnapshot {
        let mut snap = self.shared.engine.metrics();
        snap.tenants = self.shared.gate.snapshot();
        snap
    }

    /// Drains the engine in-process (same as `POST /admin/drain`, minus
    /// the HTTP hop). Idempotent: later calls return the first report.
    pub fn drain(&self, timeout: Duration) -> DrainReport {
        drain_once(&self.shared, timeout)
    }

    /// `true` once a drain has run (via HTTP or [`Server::drain`]).
    pub fn is_draining(&self) -> bool {
        self.shared.draining.load(Ordering::Relaxed)
    }

    /// Blocks until an admin drain requests shutdown, or the timeout
    /// expires. Returns `true` when shutdown was requested.
    pub fn wait_shutdown_requested(&self, timeout: Duration) -> bool {
        let guard = self.shared.shutdown_requested.lock().unwrap_or_else(|p| p.into_inner());
        let (guard, _) = self
            .shared
            .shutdown_cv
            .wait_timeout_while(guard, timeout, |requested| !*requested)
            .unwrap_or_else(|p| p.into_inner());
        *guard
    }

    /// Stops accepting, wakes the acceptors, and joins them. In-flight
    /// connections finish their current request and close.
    pub fn shutdown(mut self) {
        self.stop_accepting();
        for handle in self.acceptors.drain(..) {
            let _ = handle.join();
        }
    }

    fn stop_accepting(&self) {
        self.shared.stop.store(true, Ordering::Relaxed);
        // Wake each acceptor blocked in accept() with a no-op connection.
        for _ in 0..self.acceptors.len().max(1) {
            let _ = TcpStream::connect(self.local_addr);
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop_accepting();
        for handle in self.acceptors.drain(..) {
            let _ = handle.join();
        }
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.stop.load(Ordering::Relaxed) {
                    return;
                }
                continue;
            }
        };
        if shared.stop.load(Ordering::Relaxed) {
            return;
        }
        // Chaos wrap happens before anything touches the socket, so even
        // the over-limit 503 below rides the faulted transport.
        let conn = Conn::from_stream(stream, shared.injector.as_deref(), "accept");
        let live = shared.live_connections.fetch_add(1, Ordering::AcqRel) + 1;
        if live > shared.max_connections {
            let mut conn = conn;
            let _ = conn.set_write_timeout(Some(shared.write_deadline));
            let body = WireResponse::error_with_reason(
                "shed",
                "connection_limit",
                "server connection limit reached",
            )
            .render();
            let _ = send_reply(&mut conn, 503, "Service Unavailable", &body, false, &shared);
            shared.live_connections.fetch_sub(1, Ordering::AcqRel);
            continue;
        }
        let shared = Arc::clone(&shared);
        let _ = thread::Builder::new().name("bagcq-serve-conn".into()).spawn(move || {
            serve_connection(conn, &shared);
            shared.live_connections.fetch_sub(1, Ordering::AcqRel);
        });
    }
}

/// A read half that enforces an absolute deadline: before every read it
/// checks the clock and narrows the socket timeout to the remaining
/// budget, so neither a stalled peer nor a trickling one can pin this
/// thread past the deadline.
struct DeadlineStream {
    conn: Conn,
    deadline: Option<Instant>,
}

impl DeadlineStream {
    fn set_deadline(&mut self, deadline: Option<Instant>) {
        self.deadline = deadline;
    }
}

impl Read for DeadlineStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if let Some(deadline) = self.deadline {
            let now = Instant::now();
            if now >= deadline {
                return Err(io::Error::new(io::ErrorKind::TimedOut, "read deadline exceeded"));
            }
            let _ = self.conn.set_read_timeout(Some(deadline - now));
        }
        self.conn.read(buf)
    }
}

/// The matching write half: a peer that stops draining its receive
/// window cannot hold the response write hostage past the deadline.
struct DeadlineWriter {
    conn: Conn,
    deadline: Option<Instant>,
}

impl Write for DeadlineWriter {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if let Some(deadline) = self.deadline {
            let now = Instant::now();
            if now >= deadline {
                return Err(io::Error::new(io::ErrorKind::TimedOut, "write deadline exceeded"));
            }
            let _ = self.conn.set_write_timeout(Some(deadline - now));
        }
        self.conn.write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.conn.flush()
    }
}

/// `true` for the error shapes a deadline expiry produces: the explicit
/// `TimedOut` from the wrappers, or the `WouldBlock` a POSIX socket
/// timeout surfaces as.
fn is_timeout(e: &HttpError) -> bool {
    matches!(
        e,
        HttpError::Io(io) if matches!(io.kind(), io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock)
    )
}

fn serve_connection(conn: Conn, shared: &Shared) {
    let _ = conn.set_nodelay(true);
    let writer_conn = match conn.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut writer = DeadlineWriter { conn: writer_conn, deadline: None };
    let mut reader = BufReader::new(DeadlineStream { conn, deadline: None });
    // One tenant connection slot per socket, acquired lazily by the first
    // authenticated `/v1/*` request and held (RAII) until the socket
    // closes — this is what `TenantQuota::max_connections` bounds.
    let mut tenant_conn: Option<TenantConnection> = None;
    loop {
        // Idle phase: waiting for the first byte of the next request is
        // legitimate keep-alive behaviour, bounded by `idle_timeout`.
        // Timeouts and dead sockets here close silently.
        reader.get_mut().set_deadline(Some(Instant::now() + shared.idle_timeout));
        match reader.fill_buf() {
            Ok([]) => return,
            Ok(_) => {}
            Err(_) => return,
        }
        // Request phase: once the first byte is in, the entire head +
        // body must arrive within `read_deadline` — a trickling client
        // is evicted with a typed 408 below.
        reader.get_mut().set_deadline(Some(Instant::now() + shared.read_deadline));
        match read_request(&mut reader, &shared.limits) {
            Ok(None) => return,
            Ok(Some(request)) => {
                writer.deadline = Some(Instant::now() + shared.write_deadline);
                let keep_alive = request.keep_alive && !shared.stop.load(Ordering::Relaxed);
                let reply = route(&request, shared, &mut tenant_conn);
                let keep_alive = keep_alive && !reply.close;
                if send_reply(
                    &mut writer,
                    reply.status,
                    reply.reason,
                    &reply.body,
                    keep_alive,
                    shared,
                )
                .is_err()
                {
                    return;
                }
                if !keep_alive {
                    return;
                }
            }
            Err(e) => {
                writer.deadline = Some(Instant::now() + shared.write_deadline);
                if is_timeout(&e) {
                    // Slow-loris eviction: the request started but did
                    // not finish inside the read deadline.
                    bagcq_obs::instant(stages::SERVE_RESPOND, "slow_client");
                    let body = WireResponse::error_with_reason(
                        "slow_client",
                        "read_deadline",
                        "request did not complete within the per-connection read deadline",
                    )
                    .render();
                    let _ = send_reply(&mut writer, 408, "Request Timeout", &body, false, shared);
                } else if let Some((status, reason)) = e.status() {
                    // Malformed/oversized: answer with the typed error,
                    // then close (the framing is unreliable past this
                    // point). Dead sockets just close.
                    let kind = if status == 413 { "too_large" } else { "bad_request" };
                    let body = WireResponse::error(kind, e.detail()).render();
                    let _ = send_reply(&mut writer, status, reason, &body, false, shared);
                }
                return;
            }
        }
    }
}

/// A routed response plus whether the connection must close regardless
/// of the client's keep-alive preference.
struct Reply {
    status: u16,
    reason: &'static str,
    body: String,
    close: bool,
}

impl Reply {
    fn of((status, reason, body): (u16, &'static str, String)) -> Reply {
        Reply { status, reason, body, close: false }
    }
}

/// Writes one response with the hardening headers attached: an
/// `X-Body-Crc` integrity checksum on every body, and `Retry-After: 1`
/// on every 408/429/503 so well-behaved clients know the shed is
/// retryable and when. The `corrupt-pass` break hook (CI's oracle
/// self-test) flips a count digit *before* the CRC is computed.
fn send_reply(
    writer: &mut impl Write,
    status: u16,
    reason: &'static str,
    body: &str,
    keep_alive: bool,
    shared: &Shared,
) -> io::Result<()> {
    let broken;
    let body = if shared.break_corrupt_pass && status == 200 {
        match corrupt_count_body(body) {
            Some(b) => {
                broken = b;
                broken.as_str()
            }
            None => body,
        }
    } else {
        body
    };
    let mut extra: Vec<(&str, String)> =
        vec![("X-Body-Crc", format!("{:08x}", crc32(body.as_bytes())))];
    if matches!(status, 408 | 429 | 503) {
        extra.push(("Retry-After", "1".to_string()));
    }
    write_response_with_headers(writer, status, reason, body, keep_alive, &extra)
}

/// The planted bug behind `BAGCQ_CHAOS_NET_BREAK=corrupt-pass`: bump the
/// final digit of a 200 count frame's `count:` line (mod 10). The frame
/// stays perfectly well-formed and its CRC is computed *after* the
/// corruption, so every transport-level check passes — only a client
/// that verifies answers end-to-end can notice.
fn corrupt_count_body(body: &str) -> Option<String> {
    let line_start =
        if body.starts_with("count: ") { 0 } else { body.find("\ncount: ").map(|i| i + 1)? };
    let digits_at = line_start + "count: ".len();
    let line_end = body[digits_at..].find('\n').map_or(body.len(), |i| digits_at + i);
    let last = body[digits_at..line_end].rfind(|c: char| c.is_ascii_digit())?;
    let idx = digits_at + last;
    let digit = body.as_bytes()[idx] - b'0';
    let mut out = String::with_capacity(body.len());
    out.push_str(&body[..idx]);
    out.push((b'0' + (digit + 1) % 10) as char);
    out.push_str(&body[idx + 1..]);
    Some(out)
}

fn route(
    request: &HttpRequest,
    shared: &Shared,
    tenant_conn: &mut Option<TenantConnection>,
) -> Reply {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => {
            // Live health: the engine's supervisor state machine, with
            // the server-level drain flag overriding (an HTTP drain can
            // outrun the engine's own transition).
            let label = if shared.draining.load(Ordering::Relaxed) {
                "draining"
            } else {
                shared.engine.health().label()
            };
            Reply::of((200, "OK", format!("ok: {label}\n")))
        }
        ("GET", "/metrics") => {
            let mut snap = shared.engine.metrics();
            snap.tenants = shared.gate.snapshot();
            Reply::of((200, "OK", snap.render()))
        }
        ("POST", "/admin/drain") => Reply::of(admin_drain(request, shared)),
        ("POST", "/v1/count") => serve_tenant_job(request, shared, tenant_conn, JobKind::Count),
        ("POST", "/v1/check") => serve_tenant_job(request, shared, tenant_conn, JobKind::Check),
        _ => Reply::of((
            404,
            "Not Found",
            WireResponse::error(
                "not_found",
                format!("no route {} {}", request.method, request.path),
            )
            .render(),
        )),
    }
}

/// `/v1/*` entry: binds the socket to its tenant's connection slot (the
/// per-tenant cap) before running the job. A connection-cap refusal is a
/// typed 429 that also closes the socket — the cap bounds *sockets*, so
/// answering-and-keeping-alive would defeat it.
fn serve_tenant_job(
    request: &HttpRequest,
    shared: &Shared,
    tenant_conn: &mut Option<TenantConnection>,
    kind: JobKind,
) -> Reply {
    if let Some(key) = api_key(request) {
        let held = tenant_conn.as_ref().is_some_and(|tc| tc.api_key() == key);
        if !held {
            match shared.gate.acquire_connection(key) {
                // Replacing releases any slot a previous key held.
                Ok(tc) => *tenant_conn = Some(tc),
                // Unknown keys fall through to the 401 in serve_job.
                Err(TenantRefusal::UnknownKey) => {}
                Err(refusal) => {
                    let reason = refusal.shed_reason().expect("connection refusals are sheds");
                    let mut reply = Reply::of(shed_response(reason));
                    reply.close = true;
                    return reply;
                }
            }
        }
    }
    Reply::of(serve_job(request, shared, kind))
}

fn admin_drain(request: &HttpRequest, shared: &Shared) -> (u16, &'static str, String) {
    let Some(expected) = shared.admin_key.as_deref() else {
        return (404, "Not Found", WireResponse::error("not_found", "admin api disabled").render());
    };
    if api_key(request) != Some(expected) {
        return (401, "Unauthorized", WireResponse::error("auth", "bad admin key").render());
    }
    let report = drain_once(shared, shared.drain_timeout);
    // Request process shutdown: the `bagcq serve` run loop exits once
    // this response is on the wire.
    {
        let mut requested = shared.shutdown_requested.lock().unwrap_or_else(|p| p.into_inner());
        *requested = true;
    }
    shared.shutdown_cv.notify_all();
    let body = format!(
        "ok: drained\ncompleted: {}\nshed: {}\nstragglers: {}\nmet-deadline: {}\n",
        report.completed, report.shed, report.stragglers, report.met_deadline
    );
    (200, "OK", body)
}

fn drain_once(shared: &Shared, timeout: Duration) -> DrainReport {
    let mut slot = shared.drain_lock.lock().unwrap_or_else(|p| p.into_inner());
    if let Some(report) = *slot {
        return report;
    }
    shared.draining.store(true, Ordering::Relaxed);
    let report = shared.engine.drain(timeout);
    *slot = Some(report);
    report
}

enum JobKind {
    Count,
    Check,
}

fn api_key(request: &HttpRequest) -> Option<&str> {
    if let Some(v) = request.header("x-api-key") {
        return Some(v);
    }
    request.header("authorization").and_then(|v| v.strip_prefix("Bearer ")).map(str::trim)
}

fn serve_job(request: &HttpRequest, shared: &Shared, kind: JobKind) -> (u16, &'static str, String) {
    // Integrity first: when the client attached an `X-Body-Crc`, verify
    // it before trusting a single byte. A mismatch is wire corruption —
    // a typed, retryable 400 (the client's retry re-sends intact bytes).
    if let Some(declared) = request.header("x-body-crc") {
        let actual = crc32(&request.body);
        match u32::from_str_radix(declared.trim(), 16) {
            Ok(expected) if expected == actual => {}
            _ => {
                bagcq_obs::instant(stages::SERVE_PARSE, "crc_mismatch");
                return (
                    400,
                    "Bad Request",
                    WireResponse::error(
                        "corrupt",
                        format!(
                            "request body failed its X-Body-Crc check (declared {}, computed {actual:08x})",
                            declared.trim()
                        ),
                    )
                    .render(),
                );
            }
        }
    }
    let Ok(body) = request.utf8_body() else {
        return (
            400,
            "Bad Request",
            WireResponse::error("bad_request", "request body is not valid UTF-8").render(),
        );
    };
    // Exactly-once replay: a retry carrying an `Idempotency-Key` we have
    // already answered for this tenant gets the stored 200 verbatim and
    // is *not* charged admission again — the first delivery paid.
    // Unrecognized keys fall through so auth still answers 401.
    let key = api_key(request).unwrap_or("");
    let idem_key = request.header("idempotency-key").map(str::trim).filter(|k| !k.is_empty());
    if let Some(idem) = idem_key {
        if shared.gate.recognizes(key) {
            let hit = shared
                .idem_cache
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .get(&(key.to_string(), idem.to_string()))
                .cloned();
            if let Some(entry) = hit {
                shared.gate.record_idempotent_replay(key);
                bagcq_obs::instant(stages::SERVE_RESPOND, "idem_replay");
                return (entry.0, entry.1, entry.2.clone());
            }
        }
    }
    // Response-memo probe: a repeated body can skip parse + engine, but
    // never admission — quotas charge every request. The body alone is a
    // sound key because only 200s are memoized and no body can produce a
    // 200 on both endpoints (each parser rejects the other's sections).
    let cacheable = body.len() <= RESPONSE_CACHE_MAX_BODY;
    let cached = cacheable
        .then(|| shared.response_cache.lock().unwrap_or_else(|p| p.into_inner()).get(body).cloned())
        .flatten();

    // Stage 1: parse (frame + DLGP payloads + schema merge); a memo hit
    // already parsed this exact body once.
    let parsed = if cached.is_some() {
        None
    } else {
        let parse_span = bagcq_obs::span(
            stages::SERVE_PARSE,
            match kind {
                JobKind::Count => "count",
                JobKind::Check => "check",
            },
        );
        let parsed = match kind {
            JobKind::Count => parse_count_request(body).map(Parsed::Count),
            JobKind::Check => parse_check_request(body).map(Parsed::Check),
        };
        drop(parse_span);
        match parsed {
            Ok(p) => Some(p),
            Err(e) => return (400, "Bad Request", e.to_response().render()),
        }
    };

    // Stage 2: admit (tenant auth + quota; engine drain state).
    let admit_span = bagcq_obs::span(stages::SERVE_ADMIT, "tenant");
    let permit = match shared.gate.admit(key) {
        Ok(permit) => permit,
        Err(TenantRefusal::UnknownKey) => {
            drop(admit_span);
            return (
                401,
                "Unauthorized",
                WireResponse::error("auth", "unknown api key (use X-Api-Key or Bearer auth)")
                    .render(),
            );
        }
        Err(refusal) => {
            drop(admit_span);
            let reason = refusal.shed_reason().expect("quota refusals are sheds");
            return shed_response(reason);
        }
    };
    if shared.draining.load(Ordering::Relaxed) {
        drop(admit_span);
        drop(permit);
        return shed_response(ShedReason::Draining);
    }
    drop(admit_span);

    if let Some(entry) = cached {
        bagcq_obs::instant(stages::SERVE_RESPOND, "memo_hit");
        drop(permit);
        return (entry.0, entry.1, entry.2.clone());
    }
    let parsed = parsed.expect("memo miss always parses");

    // Stage 3: count (the engine hop; the permit covers the whole hop so
    // max-in-flight really bounds concurrent engine work per tenant).
    let count_span = bagcq_obs::span(stages::SERVE_COUNT, "engine");
    let (outcome, responder) = match parsed {
        Parsed::Count(job) => {
            let bag_total = job.bag.total_multiplicity();
            let support_atoms = job.support.total_atoms() as u64;
            let backend = job.backend;
            let handle = shared.engine.submit(
                Job::count_with(backend, job.query, Arc::clone(&job.support))
                    .with_timeout(shared.job_timeout),
            );
            (handle.wait(), Responder::Count { backend, bag_total, support_atoms })
        }
        Parsed::Check(job) => {
            // Echo what the verdict will have come from: the requested
            // semantics and the *resolved* backend (never `auto`).
            let semantics = job.spec.semantics;
            let containment = job.spec.resolved_choice();
            let handle =
                shared.engine.submit(Job::check(job.spec).with_timeout(shared.job_timeout));
            (handle.wait(), Responder::Check { semantics, containment })
        }
    };
    drop(count_span);
    drop(permit);

    // Stage 4: respond (outcome → frame + status).
    let respond_span = bagcq_obs::span(stages::SERVE_RESPOND, "render");
    let result = respond(outcome, responder);
    drop(respond_span);
    // Memoize value answers only (sheds/timeouts/panics must re-run;
    // 400s stay uncached so malformed bodies are never quota-charged on
    // one path and free on the other).
    if result.0 == 200 && cacheable {
        let mut cache = shared.response_cache.lock().unwrap_or_else(|p| p.into_inner());
        if cache.len() >= RESPONSE_CACHE_CAP {
            cache.clear();
        }
        cache.insert(body.to_string(), Arc::new(result.clone()));
    }
    // Record the first delivery for this Idempotency-Key. `or_insert`
    // keeps the *first* stored answer under concurrent duplicate
    // deliveries, so every replay is bit-identical to it.
    if result.0 == 200 {
        if let Some(idem) = idem_key {
            let mut cache = shared.idem_cache.lock().unwrap_or_else(|p| p.into_inner());
            if cache.len() >= IDEM_CACHE_CAP {
                cache.clear();
            }
            cache
                .entry((key.to_string(), idem.to_string()))
                .or_insert_with(|| Arc::new(result.clone()));
        }
    }
    result
}

enum Parsed {
    Count(crate::wire::CountJob),
    Check(crate::wire::CheckJob),
}

enum Responder {
    Count { backend: bagcq_homcount::BackendChoice, bag_total: u64, support_atoms: u64 },
    Check { semantics: Semantics, containment: ContainmentChoice },
}

fn shed_response(reason: ShedReason) -> (u16, &'static str, String) {
    let (status, text) = match reason {
        ShedReason::QuotaExceeded | ShedReason::InFlightLimit | ShedReason::ConnectionLimit => {
            (429, "Too Many Requests")
        }
        ShedReason::QueueFull | ShedReason::AdmissionTimeout | ShedReason::Draining => {
            (503, "Service Unavailable")
        }
        ShedReason::ExpiredAtDequeue => (504, "Gateway Timeout"),
    };
    let body =
        WireResponse::error_with_reason("shed", reason.label(), format!("job shed: {reason}"))
            .render();
    (status, text, body)
}

fn verdict_label(v: &Verdict) -> &'static str {
    match v {
        Verdict::Proved(_) => "proved",
        Verdict::Refuted(_) => "refuted",
        Verdict::Unknown { .. } => "unknown",
    }
}

fn respond(outcome: Outcome, responder: Responder) -> (u16, &'static str, String) {
    match outcome {
        Outcome::Count(count) => match responder {
            Responder::Count { backend, bag_total, support_atoms } => (
                200,
                "OK",
                WireResponse::Count { backend, bag_total, support_atoms, count }.render(),
            ),
            Responder::Check { .. } => (
                500,
                "Internal Server Error",
                WireResponse::error("panic", "count outcome for a check job").render(),
            ),
        },
        Outcome::Verdict(v) => match responder {
            Responder::Check { semantics, containment } => (
                200,
                "OK",
                WireResponse::Check {
                    semantics,
                    containment,
                    verdict: verdict_label(&v).into(),
                    detail: v.to_string().replace('\n', " "),
                }
                .render(),
            ),
            Responder::Count { .. } => (
                500,
                "Internal Server Error",
                WireResponse::error("panic", "verdict outcome for a count job").render(),
            ),
        },
        Outcome::Power(_) => (
            500,
            "Internal Server Error",
            WireResponse::error("panic", "unexpected power outcome").render(),
        ),
        Outcome::TimedOut => (
            504,
            "Gateway Timeout",
            WireResponse::error("timeout", "job hit its wall-clock deadline").render(),
        ),
        Outcome::Panicked(msg) => {
            (500, "Internal Server Error", WireResponse::error("panic", msg).render())
        }
        Outcome::FailedFast(ff) => (
            503,
            "Service Unavailable",
            WireResponse::error_with_reason("failed_fast", ff.job_kind, "circuit breaker open")
                .render(),
        ),
        Outcome::Shed(reason) => shed_response(reason),
    }
}
