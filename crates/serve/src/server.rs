//! The threaded TCP front door.
//!
//! [`Server::start`] binds a listener, spawns acceptor threads, and
//! serves each connection on its own thread (keep-alive, bounded by
//! [`ServerConfig::max_connections`]). Requests route through the
//! existing [`EvalEngine`]; every `/v1/*` request runs the four traced
//! stages `serve.parse → serve.admit → serve.count → serve.respond`
//! (see [`bagcq_obs::stages`]).
//!
//! ## Endpoints
//!
//! | method+path      | body                   | answers |
//! |------------------|------------------------|---------|
//! | `POST /v1/count` | count frame            | 200 count frame; 400/401/429/5xx typed errors |
//! | `POST /v1/check` | check frame            | 200 check frame; same errors |
//! | `GET /metrics`   | —                      | 200 engine metrics text (with per-tenant counters) |
//! | `GET /healthz`   | —                      | 200 `ok: healthy` |
//! | `POST /admin/drain` | —                   | 200 drain report (requires the admin key) |
//!
//! ## Status mapping
//!
//! Every engine outcome maps to exactly one status: counts/verdicts →
//! 200; [`ShedReason::QuotaExceeded`]/[`ShedReason::InFlightLimit`] →
//! 429; [`ShedReason::QueueFull`]/[`ShedReason::AdmissionTimeout`]/
//! [`ShedReason::Draining`] and [`Outcome::FailedFast`] → 503;
//! [`ShedReason::ExpiredAtDequeue`] and [`Outcome::TimedOut`] → 504;
//! [`Outcome::Panicked`] → 500. Parse/frame errors → 400 with the caret
//! snippet verbatim; unknown API keys → 401; unknown paths → 404;
//! oversized frames → 413.
//!
//! `POST /admin/drain` is the SIGTERM-equivalent shutdown: it drains the
//! engine (every in-flight job resolves; queued work is shed as
//! [`ShedReason::Draining`]), flips the server into a draining state
//! where `/v1/*` answers 503, and requests process shutdown — the
//! `bagcq serve` run loop then exits cleanly.

use crate::http::{read_request, write_response, HttpLimits, HttpRequest};
use crate::wire::{parse_check_request, parse_count_request, WireResponse};
use bagcq_containment::{ContainmentChecker, Verdict};
use bagcq_engine::{
    DrainReport, EngineConfig, EvalEngine, Job, Outcome, ShedReason, TenantGate, TenantRefusal,
    TenantSpec,
};
use bagcq_obs::stages;
use std::collections::HashMap;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::Duration;

/// Configuration for [`Server::start`].
pub struct ServerConfig {
    /// Bind address; port 0 picks a free port (see
    /// [`Server::local_addr`]).
    pub addr: String,
    /// Acceptor threads sharing the listener.
    pub acceptors: usize,
    /// Maximum live connections; excess accepts get an immediate 503.
    pub max_connections: usize,
    /// The tenant roster (API keys + quotas).
    pub tenants: Vec<TenantSpec>,
    /// Admin API key for `POST /admin/drain`. `None` disables the
    /// endpoint (404).
    pub admin_key: Option<String>,
    /// Engine configuration (worker pool, admission, cache, …).
    pub engine: EngineConfig,
    /// HTTP frame limits.
    pub limits: HttpLimits,
    /// Per-job wall-clock deadline applied to every wire job.
    pub job_timeout: Duration,
    /// Socket read timeout for idle keep-alive connections.
    pub idle_timeout: Duration,
    /// Engine drain deadline used by `POST /admin/drain`.
    pub drain_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            acceptors: 2,
            max_connections: 256,
            tenants: vec![TenantSpec::new("default", "dev-key")],
            admin_key: Some("admin-key".into()),
            engine: EngineConfig::default(),
            limits: HttpLimits::default(),
            job_timeout: Duration::from_secs(10),
            idle_timeout: Duration::from_secs(30),
            drain_timeout: Duration::from_secs(5),
        }
    }
}

struct Shared {
    engine: EvalEngine,
    gate: TenantGate,
    admin_key: Option<String>,
    limits: HttpLimits,
    job_timeout: Duration,
    idle_timeout: Duration,
    drain_timeout: Duration,
    stop: AtomicBool,
    draining: AtomicBool,
    live_connections: AtomicUsize,
    max_connections: usize,
    shutdown_requested: Mutex<bool>,
    shutdown_cv: Condvar,
    drain_lock: Mutex<Option<DrainReport>>,
    /// Whole-response memo for `/v1/*`: count frames, check frames, and
    /// parse/frame 400s are pure functions of the request body (the
    /// engine's answers are bit-identical by construction), so repeated
    /// bodies skip parse + engine entirely. Admission is still charged
    /// per request; sheds/timeouts/auth are never cached.
    response_cache: Mutex<HashMap<String, CachedResponse>>,
}

/// A memoized rendered response: `(status, status text, body)`.
type CachedResponse = Arc<(u16, &'static str, String)>;

/// Response-cache entry cap; the map is cleared when it fills (hot
/// entries repopulate immediately, cold ones were one-shot anyway).
const RESPONSE_CACHE_CAP: usize = 4096;
/// Bodies past this size are not worth memoizing.
const RESPONSE_CACHE_MAX_BODY: usize = 64 * 1024;

/// A running server. Dropping it shuts it down.
pub struct Server {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    acceptors: Vec<thread::JoinHandle<()>>,
}

impl Server {
    /// Binds and starts serving.
    pub fn start(config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            engine: EvalEngine::new(config.engine),
            gate: TenantGate::new(config.tenants),
            admin_key: config.admin_key,
            limits: config.limits,
            job_timeout: config.job_timeout,
            idle_timeout: config.idle_timeout,
            drain_timeout: config.drain_timeout,
            stop: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            live_connections: AtomicUsize::new(0),
            max_connections: config.max_connections.max(1),
            shutdown_requested: Mutex::new(false),
            shutdown_cv: Condvar::new(),
            drain_lock: Mutex::new(None),
            response_cache: Mutex::new(HashMap::new()),
        });
        let mut acceptors = Vec::new();
        for i in 0..config.acceptors.max(1) {
            let listener = listener.try_clone()?;
            let shared = Arc::clone(&shared);
            acceptors.push(
                thread::Builder::new()
                    .name(format!("bagcq-serve-accept-{i}"))
                    .spawn(move || accept_loop(listener, shared))
                    .expect("spawn acceptor"),
            );
        }
        Ok(Server { shared, local_addr, acceptors })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Engine metrics with the per-tenant counters filled in — the same
    /// snapshot `/metrics` serves.
    pub fn metrics(&self) -> bagcq_engine::MetricsSnapshot {
        let mut snap = self.shared.engine.metrics();
        snap.tenants = self.shared.gate.snapshot();
        snap
    }

    /// Drains the engine in-process (same as `POST /admin/drain`, minus
    /// the HTTP hop). Idempotent: later calls return the first report.
    pub fn drain(&self, timeout: Duration) -> DrainReport {
        drain_once(&self.shared, timeout)
    }

    /// `true` once a drain has run (via HTTP or [`Server::drain`]).
    pub fn is_draining(&self) -> bool {
        self.shared.draining.load(Ordering::Relaxed)
    }

    /// Blocks until an admin drain requests shutdown, or the timeout
    /// expires. Returns `true` when shutdown was requested.
    pub fn wait_shutdown_requested(&self, timeout: Duration) -> bool {
        let guard = self.shared.shutdown_requested.lock().unwrap_or_else(|p| p.into_inner());
        let (guard, _) = self
            .shared
            .shutdown_cv
            .wait_timeout_while(guard, timeout, |requested| !*requested)
            .unwrap_or_else(|p| p.into_inner());
        *guard
    }

    /// Stops accepting, wakes the acceptors, and joins them. In-flight
    /// connections finish their current request and close.
    pub fn shutdown(mut self) {
        self.stop_accepting();
        for handle in self.acceptors.drain(..) {
            let _ = handle.join();
        }
    }

    fn stop_accepting(&self) {
        self.shared.stop.store(true, Ordering::Relaxed);
        // Wake each acceptor blocked in accept() with a no-op connection.
        for _ in 0..self.acceptors.len().max(1) {
            let _ = TcpStream::connect(self.local_addr);
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop_accepting();
        for handle in self.acceptors.drain(..) {
            let _ = handle.join();
        }
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.stop.load(Ordering::Relaxed) {
                    return;
                }
                continue;
            }
        };
        if shared.stop.load(Ordering::Relaxed) {
            return;
        }
        let live = shared.live_connections.fetch_add(1, Ordering::AcqRel) + 1;
        if live > shared.max_connections {
            let mut stream = stream;
            let body = WireResponse::error_with_reason(
                "shed",
                "connection_limit",
                "server connection limit reached",
            )
            .render();
            let _ = write_response(&mut stream, 503, "Service Unavailable", &body, false);
            shared.live_connections.fetch_sub(1, Ordering::AcqRel);
            continue;
        }
        let shared = Arc::clone(&shared);
        let _ = thread::Builder::new().name("bagcq-serve-conn".into()).spawn(move || {
            serve_connection(stream, &shared);
            shared.live_connections.fetch_sub(1, Ordering::AcqRel);
        });
    }
}

fn serve_connection(stream: TcpStream, shared: &Shared) {
    let _ = stream.set_read_timeout(Some(shared.idle_timeout));
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        match read_request(&mut reader, &shared.limits) {
            Ok(None) => return,
            Ok(Some(request)) => {
                let keep_alive = request.keep_alive && !shared.stop.load(Ordering::Relaxed);
                let (status, reason, body) = route(&request, shared);
                if write_response(&mut writer, status, reason, &body, keep_alive).is_err() {
                    return;
                }
                if !keep_alive {
                    return;
                }
            }
            Err(e) => {
                // Malformed/oversized: answer with the typed error, then
                // close (the framing is unreliable past this point). Dead
                // sockets just close.
                if let Some((status, reason)) = e.status() {
                    let kind = if status == 413 { "too_large" } else { "bad_request" };
                    let body = WireResponse::error(kind, e.detail()).render();
                    let _ = write_response(&mut writer, status, reason, &body, false);
                }
                return;
            }
        }
    }
}

fn route(request: &HttpRequest, shared: &Shared) -> (u16, &'static str, String) {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => (200, "OK", "ok: healthy\n".into()),
        ("GET", "/metrics") => {
            let mut snap = shared.engine.metrics();
            snap.tenants = shared.gate.snapshot();
            (200, "OK", snap.render())
        }
        ("POST", "/admin/drain") => admin_drain(request, shared),
        ("POST", "/v1/count") => serve_job(request, shared, JobKind::Count),
        ("POST", "/v1/check") => serve_job(request, shared, JobKind::Check),
        _ => (
            404,
            "Not Found",
            WireResponse::error(
                "not_found",
                format!("no route {} {}", request.method, request.path),
            )
            .render(),
        ),
    }
}

fn admin_drain(request: &HttpRequest, shared: &Shared) -> (u16, &'static str, String) {
    let Some(expected) = shared.admin_key.as_deref() else {
        return (404, "Not Found", WireResponse::error("not_found", "admin api disabled").render());
    };
    if api_key(request) != Some(expected) {
        return (401, "Unauthorized", WireResponse::error("auth", "bad admin key").render());
    }
    let report = drain_once(shared, shared.drain_timeout);
    // Request process shutdown: the `bagcq serve` run loop exits once
    // this response is on the wire.
    {
        let mut requested = shared.shutdown_requested.lock().unwrap_or_else(|p| p.into_inner());
        *requested = true;
    }
    shared.shutdown_cv.notify_all();
    let body = format!(
        "ok: drained\ncompleted: {}\nshed: {}\nstragglers: {}\nmet-deadline: {}\n",
        report.completed, report.shed, report.stragglers, report.met_deadline
    );
    (200, "OK", body)
}

fn drain_once(shared: &Shared, timeout: Duration) -> DrainReport {
    let mut slot = shared.drain_lock.lock().unwrap_or_else(|p| p.into_inner());
    if let Some(report) = *slot {
        return report;
    }
    shared.draining.store(true, Ordering::Relaxed);
    let report = shared.engine.drain(timeout);
    *slot = Some(report);
    report
}

enum JobKind {
    Count,
    Check,
}

fn api_key(request: &HttpRequest) -> Option<&str> {
    if let Some(v) = request.header("x-api-key") {
        return Some(v);
    }
    request.header("authorization").and_then(|v| v.strip_prefix("Bearer ")).map(str::trim)
}

fn serve_job(request: &HttpRequest, shared: &Shared, kind: JobKind) -> (u16, &'static str, String) {
    let Ok(body) = request.utf8_body() else {
        return (
            400,
            "Bad Request",
            WireResponse::error("bad_request", "request body is not valid UTF-8").render(),
        );
    };
    // Response-memo probe: a repeated body can skip parse + engine, but
    // never admission — quotas charge every request. The body alone is a
    // sound key because only 200s are memoized and no body can produce a
    // 200 on both endpoints (each parser rejects the other's sections).
    let cacheable = body.len() <= RESPONSE_CACHE_MAX_BODY;
    let cached = cacheable
        .then(|| shared.response_cache.lock().unwrap_or_else(|p| p.into_inner()).get(body).cloned())
        .flatten();

    // Stage 1: parse (frame + DLGP payloads + schema merge); a memo hit
    // already parsed this exact body once.
    let parsed = if cached.is_some() {
        None
    } else {
        let parse_span = bagcq_obs::span(
            stages::SERVE_PARSE,
            match kind {
                JobKind::Count => "count",
                JobKind::Check => "check",
            },
        );
        let parsed = match kind {
            JobKind::Count => parse_count_request(body).map(Parsed::Count),
            JobKind::Check => parse_check_request(body).map(Parsed::Check),
        };
        drop(parse_span);
        match parsed {
            Ok(p) => Some(p),
            Err(e) => return (400, "Bad Request", e.to_response().render()),
        }
    };

    // Stage 2: admit (tenant auth + quota; engine drain state).
    let admit_span = bagcq_obs::span(stages::SERVE_ADMIT, "tenant");
    let key = api_key(request).unwrap_or("");
    let permit = match shared.gate.admit(key) {
        Ok(permit) => permit,
        Err(TenantRefusal::UnknownKey) => {
            drop(admit_span);
            return (
                401,
                "Unauthorized",
                WireResponse::error("auth", "unknown api key (use X-Api-Key or Bearer auth)")
                    .render(),
            );
        }
        Err(refusal) => {
            drop(admit_span);
            let reason = refusal.shed_reason().expect("quota refusals are sheds");
            return shed_response(reason);
        }
    };
    if shared.draining.load(Ordering::Relaxed) {
        drop(admit_span);
        drop(permit);
        return shed_response(ShedReason::Draining);
    }
    drop(admit_span);

    if let Some(entry) = cached {
        bagcq_obs::instant(stages::SERVE_RESPOND, "memo_hit");
        drop(permit);
        return (entry.0, entry.1, entry.2.clone());
    }
    let parsed = parsed.expect("memo miss always parses");

    // Stage 3: count (the engine hop; the permit covers the whole hop so
    // max-in-flight really bounds concurrent engine work per tenant).
    let count_span = bagcq_obs::span(stages::SERVE_COUNT, "engine");
    let (outcome, responder) = match parsed {
        Parsed::Count(job) => {
            let bag_total = job.bag.total_multiplicity();
            let support_atoms = job.support.total_atoms() as u64;
            let backend = job.backend;
            let handle = shared.engine.submit(
                Job::count_with(backend, job.query, Arc::clone(&job.support))
                    .with_timeout(shared.job_timeout),
            );
            (handle.wait(), Responder::Count { backend, bag_total, support_atoms })
        }
        Parsed::Check(job) => {
            let handle = shared.engine.submit(
                Job::containment(ContainmentChecker::new(), job.q_small, job.q_big)
                    .with_timeout(shared.job_timeout),
            );
            (handle.wait(), Responder::Check)
        }
    };
    drop(count_span);
    drop(permit);

    // Stage 4: respond (outcome → frame + status).
    let respond_span = bagcq_obs::span(stages::SERVE_RESPOND, "render");
    let result = respond(outcome, responder);
    drop(respond_span);
    // Memoize value answers only (sheds/timeouts/panics must re-run;
    // 400s stay uncached so malformed bodies are never quota-charged on
    // one path and free on the other).
    if result.0 == 200 && cacheable {
        let mut cache = shared.response_cache.lock().unwrap_or_else(|p| p.into_inner());
        if cache.len() >= RESPONSE_CACHE_CAP {
            cache.clear();
        }
        cache.insert(body.to_string(), Arc::new(result.clone()));
    }
    result
}

enum Parsed {
    Count(crate::wire::CountJob),
    Check(crate::wire::CheckJob),
}

enum Responder {
    Count { backend: bagcq_homcount::BackendChoice, bag_total: u64, support_atoms: u64 },
    Check,
}

fn shed_response(reason: ShedReason) -> (u16, &'static str, String) {
    let (status, text) = match reason {
        ShedReason::QuotaExceeded | ShedReason::InFlightLimit => (429, "Too Many Requests"),
        ShedReason::QueueFull | ShedReason::AdmissionTimeout | ShedReason::Draining => {
            (503, "Service Unavailable")
        }
        ShedReason::ExpiredAtDequeue => (504, "Gateway Timeout"),
    };
    let body =
        WireResponse::error_with_reason("shed", reason.label(), format!("job shed: {reason}"))
            .render();
    (status, text, body)
}

fn verdict_label(v: &Verdict) -> &'static str {
    match v {
        Verdict::Proved(_) => "proved",
        Verdict::Refuted(_) => "refuted",
        Verdict::Unknown { .. } => "unknown",
    }
}

fn respond(outcome: Outcome, responder: Responder) -> (u16, &'static str, String) {
    match outcome {
        Outcome::Count(count) => match responder {
            Responder::Count { backend, bag_total, support_atoms } => (
                200,
                "OK",
                WireResponse::Count { backend, bag_total, support_atoms, count }.render(),
            ),
            Responder::Check => (
                500,
                "Internal Server Error",
                WireResponse::error("panic", "count outcome for a check job").render(),
            ),
        },
        Outcome::Verdict(v) => (
            200,
            "OK",
            WireResponse::Check {
                verdict: verdict_label(&v).into(),
                detail: v.to_string().replace('\n', " "),
            }
            .render(),
        ),
        Outcome::Power(_) => (
            500,
            "Internal Server Error",
            WireResponse::error("panic", "unexpected power outcome").render(),
        ),
        Outcome::TimedOut => (
            504,
            "Gateway Timeout",
            WireResponse::error("timeout", "job hit its wall-clock deadline").render(),
        ),
        Outcome::Panicked(msg) => {
            (500, "Internal Server Error", WireResponse::error("panic", msg).render())
        }
        Outcome::FailedFast(ff) => (
            503,
            "Service Unavailable",
            WireResponse::error_with_reason("failed_fast", ff.job_kind, "circuit breaker open")
                .render(),
        ),
        Outcome::Shed(reason) => shed_response(reason),
    }
}
