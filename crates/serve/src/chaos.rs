//! Deterministic, seedable **wire-level** fault injection.
//!
//! PR 2's [`bagcq_engine::FaultPlan`] stops at the engine boundary: it
//! crashes workers and stalls counting loops, but never touches a byte
//! on the network. This module is the same discipline applied to TCP. A
//! [`NetFaultPlan`] is a pure description of how often and which kinds
//! of connection faults to inject; a [`NetFaultInjector`] executes one
//! plan, drawing at most one fault per connection; a [`ChaosTransport`]
//! wraps a [`TcpStream`] (accept side in the server, connect side in the
//! load generator) and applies the drawn fault to the byte stream
//! itself.
//!
//! Decisions mirror the engine injector exactly: a pure function of
//! `(seed, side, connection-sequence)` via SplitMix64, so re-running the
//! same single-threaded accept loop under the same plan faults the same
//! connections at the same byte offsets. Under concurrent connects only
//! the *assignment* of decisions to connections varies with scheduling —
//! which is what the chaos suite wants, since its invariant ("every 200
//! is bit-identical on every delivery, nothing hangs past its deadline,
//! no idempotent retry is double-charged") must hold under **any**
//! interleaving. Every fault is capped ([`NetFaultPlan::max_faults`],
//! [`NetFaultPlan::max_stalls`]) so chaotic workloads still terminate.
//!
//! The eight fault kinds cover the ways real connections die:
//!
//! | kind | wire effect |
//! |------|-------------|
//! | [`NetFaultKind::AcceptDelay`]  | bounded sleep before the first byte (slow accept/connect) |
//! | [`NetFaultKind::AbortRead`]    | RST-style reset after N inbound bytes (mid-request) |
//! | [`NetFaultKind::AbortWrite`]   | broken pipe after N outbound bytes (mid-response) |
//! | [`NetFaultKind::PrematureEof`] | clean EOF after N inbound bytes (truncated frame) |
//! | [`NetFaultKind::TrickleRead`]  | 1-byte reads with stalls (slow-loris client) |
//! | [`NetFaultKind::PartialWrite`] | tiny write chunks with flush stalls (torn writes) |
//! | [`NetFaultKind::CorruptRead`]  | one inbound byte XORed at offset N |
//! | [`NetFaultKind::CorruptWrite`] | one outbound byte XORed at offset N |
//!
//! Corruption is why every serve frame carries an `X-Body-Crc` header
//! (see [`crate::http::crc32`]): a single flipped byte can otherwise
//! turn one valid count into a *different* valid count, and no retry
//! policy can save a client that believes a wrong answer.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// The kinds of connection fault an injector can fire.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NetFaultKind {
    /// Bounded sleep before the connection serves its first byte.
    AcceptDelay,
    /// Connection-reset error once N bytes have been read.
    AbortRead,
    /// Broken-pipe error once N bytes have been written.
    AbortWrite,
    /// Clean EOF once N bytes have been read (truncated frame: the peer
    /// sees a complete head and a short body).
    PrematureEof,
    /// Every read returns at most one byte, with a bounded stall between
    /// reads (a slow-loris peer, as seen from this end of the socket).
    TrickleRead,
    /// Writes are split into tiny chunks with a bounded stall between
    /// them (torn writes / stalled flushes).
    PartialWrite,
    /// One inbound byte, at offset N, is XORed with a nonzero mask.
    CorruptRead,
    /// One outbound byte, at offset N, is XORed with a nonzero mask.
    CorruptWrite,
}

/// Every kind, in the order used by the per-kind counters.
pub const ALL_NET_KINDS: [NetFaultKind; 8] = [
    NetFaultKind::AcceptDelay,
    NetFaultKind::AbortRead,
    NetFaultKind::AbortWrite,
    NetFaultKind::PrematureEof,
    NetFaultKind::TrickleRead,
    NetFaultKind::PartialWrite,
    NetFaultKind::CorruptRead,
    NetFaultKind::CorruptWrite,
];

impl NetFaultKind {
    /// Stable lowercase label (logs, metrics).
    pub fn label(self) -> &'static str {
        match self {
            NetFaultKind::AcceptDelay => "accept_delay",
            NetFaultKind::AbortRead => "abort_read",
            NetFaultKind::AbortWrite => "abort_write",
            NetFaultKind::PrematureEof => "premature_eof",
            NetFaultKind::TrickleRead => "trickle_read",
            NetFaultKind::PartialWrite => "partial_write",
            NetFaultKind::CorruptRead => "corrupt_read",
            NetFaultKind::CorruptWrite => "corrupt_write",
        }
    }
}

/// A seeded, declarative connection-fault schedule (the wire-level
/// sibling of [`bagcq_engine::FaultPlan`]).
#[derive(Clone, Debug)]
pub struct NetFaultPlan {
    /// Seed for every injection decision.
    pub seed: u64,
    /// Probability that a new connection draws a fault, in per-mille
    /// (`0..=1000`).
    pub rate_per_mille: u32,
    /// Hard cap on total faulted connections (`0` = unlimited). Chaos
    /// runs set this so a retrying client always terminates.
    pub max_faults: u64,
    /// Which kinds the plan may fire (empty = no faults at all).
    pub kinds: Vec<NetFaultKind>,
    /// Stall duration for trickle reads, partial writes, and accept
    /// delays; kept small so deadlines, not wall-clock patience, decide
    /// outcomes.
    pub stall: Duration,
    /// Cap on stalls per connection: after this many, a trickling or
    /// torn connection flows normally again.
    pub max_stalls: u32,
    /// Largest byte offset at which aborts / EOFs / corruption strike.
    /// Small serve frames mean offsets in the first few hundred bytes
    /// land mid-request-line, mid-headers, and mid-body alike.
    pub max_offset: u64,
}

impl NetFaultPlan {
    /// A plan with every fault kind enabled at a rate high enough that a
    /// few-hundred-connection run exercises all of them, capped so every
    /// retrying workload terminates.
    pub fn seeded(seed: u64) -> Self {
        NetFaultPlan {
            seed,
            rate_per_mille: 250,
            max_faults: 96,
            kinds: ALL_NET_KINDS.to_vec(),
            stall: Duration::from_millis(2),
            max_stalls: 8,
            max_offset: 384,
        }
    }

    /// Keeps only the given kinds.
    pub fn with_kinds(mut self, kinds: &[NetFaultKind]) -> Self {
        self.kinds = kinds.to_vec();
        self
    }

    /// Sets the per-mille injection rate.
    pub fn with_rate_per_mille(mut self, rate: u32) -> Self {
        self.rate_per_mille = rate.min(1000);
        self
    }

    /// Sets the total fault cap (`0` = unlimited).
    pub fn with_max_faults(mut self, max: u64) -> Self {
        self.max_faults = max;
        self
    }

    /// Sets the stall duration.
    pub fn with_stall(mut self, stall: Duration) -> Self {
        self.stall = stall;
        self
    }
}

/// One drawn fault: what strikes this connection, where, and (for
/// corruption) with which XOR mask. A pure function of the plan and the
/// connection's draw sequence, so any run is replayable from
/// `(plan, sequence)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ConnFault {
    /// What fires.
    pub kind: NetFaultKind,
    /// Byte offset (per direction) at which it fires.
    pub offset: u64,
    /// XOR mask for corruption kinds; always nonzero, so a corruption
    /// fault never degenerates into a no-op.
    pub mask: u8,
}

fn mix(mut z: u64) -> u64 {
    // SplitMix64 finalizer — same mixer as the engine's retry jitter and
    // the loadgen's `SplitMix64` stream.
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn side_hash(side: &str) -> u64 {
    // FNV-1a, enough to decorrelate the two static side names.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in side.as_bytes() {
        h = (h ^ u64::from(*b)).wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Executes a [`NetFaultPlan`]: decides, per connection, whether to
/// fault it and how, and keeps per-kind counters of what it injected.
#[derive(Debug)]
pub struct NetFaultInjector {
    plan: NetFaultPlan,
    sequence: AtomicU64,
    fired: AtomicU64,
    per_kind: [AtomicU64; 8],
}

impl NetFaultInjector {
    /// An injector executing `plan`, shareable across acceptor and
    /// client threads.
    pub fn new(plan: NetFaultPlan) -> Arc<Self> {
        Arc::new(NetFaultInjector {
            plan,
            sequence: AtomicU64::new(0),
            fired: AtomicU64::new(0),
            per_kind: Default::default(),
        })
    }

    /// The plan this injector executes.
    pub fn plan(&self) -> &NetFaultPlan {
        &self.plan
    }

    /// Total faulted connections so far.
    pub fn injected(&self) -> u64 {
        self.fired.load(Ordering::Relaxed)
    }

    /// Faults of one kind injected so far.
    pub fn injected_of(&self, kind: NetFaultKind) -> u64 {
        self.per_kind[kind_index(kind)].load(Ordering::Relaxed)
    }

    /// Connections seen so far (faulted or not).
    pub fn connections(&self) -> u64 {
        self.sequence.load(Ordering::Relaxed)
    }

    /// Draws the decision for the next connection on `side` (a static
    /// label like `"accept"` or `"connect"`, decorrelating server-side
    /// and client-side schedules under one seed).
    pub fn draw(&self, side: &str) -> Option<ConnFault> {
        let n = self.sequence.fetch_add(1, Ordering::Relaxed);
        if self.plan.kinds.is_empty() || self.plan.rate_per_mille == 0 {
            return None;
        }
        let h = mix(self.plan.seed ^ side_hash(side) ^ n.wrapping_mul(0xA24B_AED4_963E_E407));
        if (h % 1000) as u32 >= self.plan.rate_per_mille {
            return None;
        }
        // Respect the global cap without over-counting under contention.
        if self.plan.max_faults > 0 {
            let claimed = self
                .fired
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |f| {
                    (f < self.plan.max_faults).then_some(f + 1)
                })
                .is_ok();
            if !claimed {
                return None;
            }
        } else {
            self.fired.fetch_add(1, Ordering::Relaxed);
        }
        let kind = self.plan.kinds[((h >> 32) as usize) % self.plan.kinds.len()];
        self.per_kind[kind_index(kind)].fetch_add(1, Ordering::Relaxed);
        let h2 = mix(h);
        let offset = h2 % self.plan.max_offset.max(1);
        let mask = ((mix(h2) % 255) + 1) as u8;
        Some(ConnFault { kind, offset, mask })
    }

    /// Wraps `stream` with this injector's next decision for `side`.
    pub fn wrap(&self, stream: TcpStream, side: &str) -> ChaosTransport {
        ChaosTransport::new(stream, self.draw(side), &self.plan)
    }

    /// One line per fired kind, for logs.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = write!(
            out,
            "chaos-net: seed={} connections={} faulted={}",
            self.plan.seed,
            self.connections(),
            self.injected()
        );
        for kind in ALL_NET_KINDS {
            let n = self.injected_of(kind);
            if n > 0 {
                let _ = write!(out, " {}={n}", kind.label());
            }
        }
        out
    }
}

fn kind_index(kind: NetFaultKind) -> usize {
    ALL_NET_KINDS.iter().position(|k| *k == kind).expect("all kinds are indexed")
}

/// Per-connection fault state, shared between the read and write clones
/// of one [`ChaosTransport`] so byte offsets stay coherent across
/// `try_clone`.
#[derive(Debug)]
struct ConnChaos {
    fault: Option<ConnFault>,
    read_off: AtomicU64,
    write_off: AtomicU64,
    stalls: AtomicU32,
    stall: Duration,
    max_stalls: u32,
}

impl ConnChaos {
    /// Sleeps one bounded stall, up to the per-connection cap.
    fn stall_once(&self) {
        let allowed = self
            .stalls
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |s| {
                (s < self.max_stalls).then_some(s + 1)
            })
            .is_ok();
        if allowed && !self.stall.is_zero() {
            std::thread::sleep(self.stall);
        }
    }
}

/// A [`TcpStream`] with one [`ConnFault`] applied to its byte stream.
/// Cloning (for the usual reader/writer split) shares the fault state,
/// so offsets and stall caps are per *connection*, not per handle.
#[derive(Debug)]
pub struct ChaosTransport {
    stream: TcpStream,
    state: Arc<ConnChaos>,
}

impl ChaosTransport {
    /// Wraps `stream`, applying `fault` (an [`NetFaultKind::AcceptDelay`]
    /// fires right here, before the first byte).
    pub fn new(stream: TcpStream, fault: Option<ConnFault>, plan: &NetFaultPlan) -> Self {
        let state = Arc::new(ConnChaos {
            fault,
            read_off: AtomicU64::new(0),
            write_off: AtomicU64::new(0),
            stalls: AtomicU32::new(0),
            stall: plan.stall,
            max_stalls: plan.max_stalls,
        });
        if matches!(fault, Some(ConnFault { kind: NetFaultKind::AcceptDelay, .. })) {
            state.stall_once();
        }
        ChaosTransport { stream, state }
    }

    /// A second handle onto the same faulted connection.
    pub fn try_clone(&self) -> io::Result<Self> {
        Ok(ChaosTransport { stream: self.stream.try_clone()?, state: Arc::clone(&self.state) })
    }

    /// The fault this connection drew, if any.
    pub fn fault(&self) -> Option<ConnFault> {
        self.state.fault
    }

    /// Passthrough to [`TcpStream::set_read_timeout`].
    pub fn set_read_timeout(&self, dur: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(dur)
    }

    /// Passthrough to [`TcpStream::set_write_timeout`].
    pub fn set_write_timeout(&self, dur: Option<Duration>) -> io::Result<()> {
        self.stream.set_write_timeout(dur)
    }

    /// Passthrough to [`TcpStream::set_nodelay`].
    pub fn set_nodelay(&self, on: bool) -> io::Result<()> {
        self.stream.set_nodelay(on)
    }
}

impl Read for ChaosTransport {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        let state = Arc::clone(&self.state);
        let off = state.read_off.load(Ordering::Relaxed);
        let mut limit = buf.len();
        match state.fault {
            Some(ConnFault { kind: NetFaultKind::AbortRead, offset, .. }) => {
                if off >= offset {
                    return Err(io::Error::new(
                        io::ErrorKind::ConnectionReset,
                        "chaos-net: injected connection reset",
                    ));
                }
                limit = limit.min(usize::try_from(offset - off).unwrap_or(usize::MAX));
            }
            Some(ConnFault { kind: NetFaultKind::PrematureEof, offset, .. }) => {
                if off >= offset {
                    return Ok(0);
                }
                limit = limit.min(usize::try_from(offset - off).unwrap_or(usize::MAX));
            }
            Some(ConnFault { kind: NetFaultKind::TrickleRead, .. }) => {
                state.stall_once();
                limit = 1;
            }
            _ => {}
        }
        let n = self.stream.read(&mut buf[..limit])?;
        if let Some(ConnFault { kind: NetFaultKind::CorruptRead, offset, mask }) = state.fault {
            if offset >= off && offset < off + n as u64 {
                buf[(offset - off) as usize] ^= mask;
            }
        }
        state.read_off.fetch_add(n as u64, Ordering::Relaxed);
        Ok(n)
    }
}

impl Write for ChaosTransport {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        let state = Arc::clone(&self.state);
        let off = state.write_off.load(Ordering::Relaxed);
        let mut limit = buf.len();
        match state.fault {
            Some(ConnFault { kind: NetFaultKind::AbortWrite, offset, .. }) => {
                if off >= offset {
                    return Err(io::Error::new(
                        io::ErrorKind::BrokenPipe,
                        "chaos-net: injected broken pipe",
                    ));
                }
                limit = limit.min(usize::try_from(offset - off).unwrap_or(usize::MAX));
            }
            Some(ConnFault { kind: NetFaultKind::PartialWrite, .. }) => {
                state.stall_once();
                limit = limit.min(7);
            }
            _ => {}
        }
        let n = match state.fault {
            Some(ConnFault { kind: NetFaultKind::CorruptWrite, offset, mask })
                if offset >= off && offset < off + limit as u64 =>
            {
                let mut chunk = buf[..limit].to_vec();
                chunk[(offset - off) as usize] ^= mask;
                self.stream.write(&chunk)?
            }
            _ => self.stream.write(&buf[..limit])?,
        };
        state.write_off.fetch_add(n as u64, Ordering::Relaxed);
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.stream.flush()
    }
}

/// Either a plain [`TcpStream`] or a chaos-wrapped one — the connection
/// type the server and load generator actually hold, so the chaos layer
/// costs nothing when no plan is configured.
#[derive(Debug)]
pub enum Conn {
    /// An unwrapped stream (no chaos plan).
    Plain(TcpStream),
    /// A stream with an injector decision applied.
    Chaos(ChaosTransport),
}

impl Conn {
    /// Wraps `stream` under `injector`'s next decision for `side`, or
    /// leaves it plain when chaos is off.
    pub fn from_stream(stream: TcpStream, injector: Option<&NetFaultInjector>, side: &str) -> Self {
        match injector {
            Some(inj) => Conn::Chaos(inj.wrap(stream, side)),
            None => Conn::Plain(stream),
        }
    }

    /// A second handle onto the same connection.
    pub fn try_clone(&self) -> io::Result<Self> {
        Ok(match self {
            Conn::Plain(s) => Conn::Plain(s.try_clone()?),
            Conn::Chaos(s) => Conn::Chaos(s.try_clone()?),
        })
    }

    /// Passthrough to [`TcpStream::set_read_timeout`].
    pub fn set_read_timeout(&self, dur: Option<Duration>) -> io::Result<()> {
        match self {
            Conn::Plain(s) => s.set_read_timeout(dur),
            Conn::Chaos(s) => s.set_read_timeout(dur),
        }
    }

    /// Passthrough to [`TcpStream::set_write_timeout`].
    pub fn set_write_timeout(&self, dur: Option<Duration>) -> io::Result<()> {
        match self {
            Conn::Plain(s) => s.set_write_timeout(dur),
            Conn::Chaos(s) => s.set_write_timeout(dur),
        }
    }

    /// Passthrough to [`TcpStream::set_nodelay`].
    pub fn set_nodelay(&self, on: bool) -> io::Result<()> {
        match self {
            Conn::Plain(s) => s.set_nodelay(on),
            Conn::Chaos(s) => s.set_nodelay(on),
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Plain(s) => s.read(buf),
            Conn::Chaos(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Plain(s) => s.write(buf),
            Conn::Chaos(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Plain(s) => s.flush(),
            Conn::Chaos(s) => s.flush(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;
    use std::net::TcpListener;

    fn drain(inj: &NetFaultInjector, n: u64, side: &str) -> Vec<Option<ConnFault>> {
        (0..n).map(|_| inj.draw(side)).collect()
    }

    #[test]
    fn decisions_are_reproducible_and_seed_sensitive() {
        let fresh = |seed| NetFaultInjector::new(NetFaultPlan::seeded(seed).with_max_faults(0));
        let a = fresh(7);
        assert_eq!(drain(&a, 400, "accept"), drain(&fresh(7), 400, "accept"));
        assert!(a.injected() > 0, "a 25% rate over 400 connections must fire");
        assert_ne!(drain(&fresh(7), 400, "accept"), drain(&fresh(8), 400, "accept"));
        // The two sides of the wire draw decorrelated schedules.
        assert_ne!(drain(&fresh(7), 400, "accept"), drain(&fresh(7), 400, "connect"));
    }

    #[test]
    fn cap_rate_zero_and_masks() {
        let inj = NetFaultInjector::new(NetFaultPlan::seeded(3).with_rate_per_mille(1000));
        let drawn: Vec<_> = drain(&inj, 300, "accept").into_iter().flatten().collect();
        assert_eq!(drawn.len() as u64, inj.plan().max_faults, "cap must bound total faults");
        assert!(drain(&inj, 50, "accept").iter().all(Option::is_none), "after the cap: clean");
        for fault in &drawn {
            assert_ne!(fault.mask, 0, "corruption masks are never no-ops");
            assert!(fault.offset < inj.plan().max_offset);
        }
        // Full-rate draws must eventually cover every kind.
        let all = NetFaultInjector::new(
            NetFaultPlan::seeded(5).with_rate_per_mille(1000).with_max_faults(0),
        );
        let _ = drain(&all, 400, "accept");
        for kind in ALL_NET_KINDS {
            assert!(all.injected_of(kind) > 0, "{} never drawn in 400 tries", kind.label());
        }

        let quiet = NetFaultInjector::new(NetFaultPlan::seeded(4).with_rate_per_mille(0));
        assert!(drain(&quiet, 200, "accept").iter().all(Option::is_none));
        assert_eq!(quiet.injected(), 0);
        assert_eq!(quiet.connections(), 200);
    }

    /// One loopback pair with the given fault applied to the accepted
    /// end; the unwrapped client end is returned for the test to drive.
    fn faulted_pair(fault: ConnFault) -> (ChaosTransport, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).expect("connect");
        let (accepted, _) = listener.accept().expect("accept");
        let plan = NetFaultPlan::seeded(0).with_stall(Duration::from_micros(50));
        (ChaosTransport::new(accepted, Some(fault), &plan), client)
    }

    #[test]
    fn corrupt_read_flips_exactly_one_byte() {
        let payload = b"POST /v1/count HTTP/1.1\r\nX-Api-Key: k\r\n\r\n";
        let fault = ConnFault { kind: NetFaultKind::CorruptRead, offset: 5, mask: 0x41 };
        let (mut server_end, mut client) = faulted_pair(fault);
        client.write_all(payload).unwrap();
        drop(client);
        let mut got = Vec::new();
        server_end.read_to_end(&mut got).unwrap();
        assert_eq!(got.len(), payload.len());
        let diffs: Vec<usize> = (0..got.len()).filter(|&i| got[i] != payload[i]).collect();
        assert_eq!(diffs, vec![5]);
        assert_eq!(got[5], payload[5] ^ 0x41);
    }

    #[test]
    fn abort_read_resets_at_the_chosen_offset() {
        let payload = vec![0xABu8; 64];
        let fault = ConnFault { kind: NetFaultKind::AbortRead, offset: 10, mask: 1 };
        let (mut server_end, mut client) = faulted_pair(fault);
        client.write_all(&payload).unwrap();
        let mut got = [0u8; 64];
        let mut read = 0;
        let err = loop {
            match server_end.read(&mut got[read..]) {
                Ok(n) => read += n,
                Err(e) => break e,
            }
        };
        assert_eq!(read, 10, "exactly `offset` bytes arrive before the reset");
        assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
    }

    #[test]
    fn premature_eof_truncates_cleanly() {
        let payload = vec![7u8; 32];
        let fault = ConnFault { kind: NetFaultKind::PrematureEof, offset: 12, mask: 1 };
        let (mut server_end, mut client) = faulted_pair(fault);
        client.write_all(&payload).unwrap();
        let mut got = Vec::new();
        server_end.read_to_end(&mut got).unwrap();
        assert_eq!(got.len(), 12, "EOF after `offset` bytes, no error");
    }

    #[test]
    fn trickle_read_is_byte_at_a_time_and_bounded() {
        let payload = b"0123456789abcdef";
        let fault = ConnFault { kind: NetFaultKind::TrickleRead, offset: 0, mask: 1 };
        let (server_end, mut client) = faulted_pair(fault);
        client.write_all(payload).unwrap();
        drop(client);
        let mut reader = BufReader::new(server_end);
        let mut got = Vec::new();
        let mut buf = [0u8; 16];
        loop {
            match reader.get_mut().read(&mut buf) {
                Ok(0) => break,
                Ok(n) => {
                    assert_eq!(n, 1, "trickle reads deliver one byte at a time");
                    got.extend_from_slice(&buf[..n]);
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert_eq!(got, payload, "trickling reorders nothing");
    }

    #[test]
    fn corrupt_write_flips_exactly_one_byte_across_chunked_writes() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).expect("connect");
        let (accepted, _) = listener.accept().expect("accept");
        let plan = NetFaultPlan::seeded(0).with_stall(Duration::ZERO);
        let fault = ConnFault { kind: NetFaultKind::CorruptWrite, offset: 9, mask: 0x10 };
        let mut server_end = ChaosTransport::new(accepted, Some(fault), &plan);
        // Write in two chunks so the offset bookkeeping must span writes.
        server_end.write_all(b"HTTP/1.1 ").unwrap();
        server_end.write_all(b"200 OK\r\n").unwrap();
        drop(server_end);
        let mut got = Vec::new();
        let mut client = client;
        client.read_to_end(&mut got).unwrap();
        let expected = b"HTTP/1.1 200 OK\r\n";
        assert_eq!(got.len(), expected.len());
        let diffs: Vec<usize> = (0..got.len()).filter(|&i| got[i] != expected[i]).collect();
        assert_eq!(diffs, vec![9]);
        assert_eq!(got[9], b'2' ^ 0x10);
    }

    #[test]
    fn clones_share_offsets_and_stall_caps() {
        let payload = vec![1u8; 8];
        let fault = ConnFault { kind: NetFaultKind::AbortRead, offset: 4, mask: 1 };
        let (mut a, mut client) = faulted_pair(fault);
        let mut b = a.try_clone().expect("clone");
        client.write_all(&payload).unwrap();
        let mut buf = [0u8; 2];
        a.read_exact(&mut buf).unwrap();
        b.read_exact(&mut buf).unwrap();
        // 4 bytes consumed across both handles: the shared offset trips.
        let err = a.read(&mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
        let err = b.read(&mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionReset, "clones share fault state");
    }
}
