//! # bagcq-serve — the network front door
//!
//! A std-only (zero external dependencies) serving layer that puts the
//! bag-semantics evaluation engine behind a TCP socket:
//!
//! * [`http`] — a minimal HTTP/1.1 codec: request line + headers +
//!   `Content-Length` bodies, keep-alive, typed errors for every
//!   malformed frame (no panics, no hangs);
//! * [`wire`] — the DLGP-style text protocol: `query:`/`data:` (or
//!   `small:`/`big:`) sections carrying conjunctive queries and bag
//!   databases (`e(a, b)@3.`), plus the newline-delimited response
//!   frames with an exact parse/serialize round trip;
//! * [`server`] — the threaded front door itself: tenant API keys,
//!   token-bucket quotas and in-flight caps (typed 429s), engine-backed
//!   `/v1/count` and `/v1/check`, `/metrics` with per-tenant counters,
//!   and a drain-then-shutdown admin endpoint;
//! * [`loadgen`] — a seeded closed-loop load generator that replays
//!   mixed workloads and verifies **bit-identical** answers against the
//!   in-process counting path.
//!
//! ## One request, end to end
//!
//! ```text
//! POST /v1/count HTTP/1.1
//! X-Api-Key: dev-key
//! Content-Length: 60
//!
//! query:
//!   ?- e(X, Y), e(Y, Z).
//! data:
//!   e(a, b)@2.
//!   e(b, c).
//! ```
//!
//! answers
//!
//! ```text
//! HTTP/1.1 200 OK
//!
//! ok: count
//! backend: auto
//! bag-total: 3
//! support-atoms: 2
//! count: 1
//! ```
//!
//! Multiplicities (`@2`) ride along faithfully in the [`wire`] layer
//! (`bag-total` is their sum) while evaluation runs on the set support,
//! exactly as the paper defines `ψ(D)` on ordinary structures — bag
//! semantics lives in the *answer counts*, not the database encoding.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod http;
pub mod loadgen;
pub mod server;
pub mod wire;

pub use bagcq_engine::{DrainReport, RetryPolicy, TenantQuota, TenantSpec};
pub use chaos::{ChaosTransport, Conn, ConnFault, NetFaultInjector, NetFaultKind, NetFaultPlan};
pub use http::{HttpError, HttpLimits, HttpRequest, HttpResponse};
pub use loadgen::{
    plan_requests, LoadgenConfig, LoadgenReport, PlannedRequest, SplitMix64, WorkloadMix,
};
pub use server::{Server, ServerConfig};
pub use wire::{
    parse_check_request, parse_count_request, parse_response, CheckJob, CountJob, WireError,
    WireResponse,
};
