//! Onto-homomorphism certificates (the Lemma 12 argument).
//!
//! Lemma 12 of the paper rests on a simple but powerful observation: if
//! there is a homomorphism `h` from (the canonical structure of) `ρ_b`
//! onto the variables of `ρ_s`, then `H(g) = g ∘ h` injects `Hom(ρ_s, D)`
//! into `Hom(ρ_b, D)`, so `ρ_s(D) ≤ ρ_b(D)` for *every* database `D`.
//!
//! This module searches for such onto homomorphisms; the containment crate
//! turns a found witness into a sound *Proved* verdict.

use crate::naive::for_each_hom_limited;
use bagcq_query::{Query, Term};
use std::collections::HashSet;

/// A witness that `small(D) ≤ big(D)` holds for every `D`: a homomorphism
/// from `big`'s variables onto `small`'s variables (Lemma 12).
#[derive(Clone, Debug)]
pub struct OntoHom {
    /// For each variable of `big` (by index), the vertex of `small`'s
    /// canonical structure it maps to.
    pub assignment: Vec<u32>,
}

/// Searches for a homomorphism from `big` to the canonical structure of
/// `small` whose image covers every *variable* vertex of `small`.
///
/// Constants map to themselves by definition, so only variable coverage is
/// checked. Both queries should be over the same schema. Inequalities in
/// `big` are honored semantically (mapped endpoints must differ in the
/// canonical structure); `small`'s inequalities do not affect the
/// canonical structure (Section 2.1 identifies queries with the canonical
/// structures of their relational parts).
///
/// The search enumerates homomorphisms with a coverage check; it is meant
/// for the paper's hand-constructed query pairs (e.g. `π_b → π_s`), not as
/// a general-purpose decision procedure.
pub fn find_onto_hom(big: &Query, small: &Query) -> Option<OntoHom> {
    let (target, var_vertices) = small.canonical_structure();
    let needed: HashSet<u32> = var_vertices.iter().map(|v| v.0).collect();
    let mut found = None;
    for_each_hom_limited(big, &target, 0, |assign| {
        let image: HashSet<u32> = assign.iter().copied().collect();
        if needed.is_subset(&image) {
            found = Some(OntoHom { assignment: assign.to_vec() });
            false
        } else {
            true
        }
    });
    found
}

/// Verifies that a given assignment really is a homomorphism from `big`
/// into `small`'s canonical structure and is onto `small`'s variables.
/// Used to double-check hand-constructed witnesses (the explicit `h` built
/// in the reduction crate for Lemma 12).
pub fn verify_onto_hom(big: &Query, small: &Query, h: &OntoHom) -> bool {
    let (target, var_vertices) = small.canonical_structure();
    if h.assignment.len() != big.var_count() as usize {
        return false;
    }
    let resolve = |t: &Term| -> u32 {
        match t {
            Term::Var(v) => h.assignment[v.0 as usize],
            Term::Const(c) => target.constant_vertex(*c).0,
        }
    };
    for a in big.atoms() {
        let args: Vec<_> = a.args.iter().map(|t| bagcq_structure::Vertex(resolve(t))).collect();
        if !target.contains_atom(a.rel, &args) {
            return false;
        }
    }
    for ineq in big.inequalities() {
        if resolve(&ineq.lhs) == resolve(&ineq.rhs) {
            return false;
        }
    }
    let image: HashSet<u32> = h.assignment.iter().copied().collect();
    var_vertices.iter().all(|v| image.contains(&v.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{BackendChoice, CountRequest};
    use bagcq_query::path_query;
    use bagcq_structure::{SchemaBuilder, StructureGen};
    use std::sync::Arc;

    fn digraph() -> Arc<bagcq_structure::Schema> {
        let mut b = SchemaBuilder::default();
        b.relation("E", 2);
        b.build()
    }

    #[test]
    fn longer_path_maps_onto_shorter_via_no_hom() {
        // A 3-edge path has no hom onto a 2-edge path's variables...
        // actually paths map forward only; P3 → P2 canonical (a path of 3
        // vertices) has no hom at all from a 4-vertex path (no cycles), so
        // expect None.
        let s = digraph();
        let p3 = path_query(&s, "E", 3);
        let p2 = path_query(&s, "E", 2);
        assert!(find_onto_hom(&p3, &p2).is_none());
    }

    #[test]
    fn identity_is_onto() {
        let s = digraph();
        let p2 = path_query(&s, "E", 2);
        let h = find_onto_hom(&p2, &p2).expect("identity-like hom exists");
        assert!(verify_onto_hom(&p2, &p2, &h));
    }

    #[test]
    fn loop_plus_ray_maps_onto_shorter_ray() {
        // small: E(x,x) ∧ E(x,y)   big: E(x,x) ∧ E(x,y) ∧ E(y',x) — no;
        // instead mimic the π_s/π_b shape: big has a longer ray but the
        // self-loop lets it collapse. small: loop + 1-ray; big: loop + 2-ray.
        let s = digraph();
        let mut qb = bagcq_query::Query::builder(Arc::clone(&s));
        let x = qb.var("x");
        let y = qb.var("y");
        qb.atom_named("E", &[x, x]).atom_named("E", &[x, y]);
        let small = qb.build();

        let mut qb = bagcq_query::Query::builder(Arc::clone(&s));
        let x = qb.var("x");
        let y1 = qb.var("y1");
        let y2 = qb.var("y2");
        qb.atom_named("E", &[x, x]).atom_named("E", &[x, y1]).atom_named("E", &[y1, y2]);
        let big = qb.build();

        let h = find_onto_hom(&big, &small).expect("collapse through the loop");
        assert!(verify_onto_hom(&big, &small, &h));

        // And the Lemma 12 conclusion holds on random structures.
        let sg = StructureGen::default();
        for seed in 0..10 {
            let d = sg.sample(&s, seed);
            let cs = CountRequest::new(&small, &d).backend(BackendChoice::Naive).count();
            let cb = CountRequest::new(&big, &d).backend(BackendChoice::Naive).count();
            assert!(cs <= cb, "seed {seed}: {cs} > {cb}");
        }
    }

    #[test]
    fn verify_rejects_bogus_witness() {
        let s = digraph();
        let p2 = path_query(&s, "E", 2);
        let bogus = OntoHom { assignment: vec![0, 0, 0] };
        assert!(!verify_onto_hom(&p2, &p2, &bogus));
        let wrong_len = OntoHom { assignment: vec![0] };
        assert!(!verify_onto_hom(&p2, &p2, &wrong_len));
    }
}
