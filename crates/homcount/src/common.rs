//! Shared machinery for the counting engines: term resolution, inequality
//! checking, per-position tuple indexes, and decomposition of a query into
//! connected components.

use crate::cancel::{CancelReason, Cancelled, EvalControl};
use bagcq_arith::Nat;
use bagcq_query::{Inequality, Query, Term};
use bagcq_structure::{RelId, Structure};
use std::collections::HashMap;

/// Resolves a term under a partial assignment of variables.
/// `assign[v] == u32::MAX` means unassigned.
pub(crate) const UNASSIGNED: u32 = u32::MAX;

#[inline]
pub(crate) fn resolve(term: &Term, assign: &[u32], d: &Structure) -> u32 {
    match term {
        Term::Var(v) => assign[v.0 as usize],
        Term::Const(c) => d.constant_vertex(*c).0,
    }
}

/// Checks an inequality under a (possibly partial) assignment: returns
/// `false` only when both sides are bound and equal.
#[inline]
pub(crate) fn inequality_ok(ineq: &Inequality, assign: &[u32], d: &Structure) -> bool {
    let a = resolve(&ineq.lhs, assign, d);
    let b = resolve(&ineq.rhs, assign, d);
    a == UNASSIGNED || b == UNASSIGNED || a != b
}

/// Heap bytes a [`Nat`] occupies (its limbs), for memory-gauge charges.
#[inline]
pub(crate) fn nat_bytes(n: &Nat) -> u64 {
    8 * n.limbs().len() as u64
}

/// The `|V_D|^k` factor contributed by variables occurring in no atom and
/// no inequality.
///
/// Routed through [`Nat::checked_pow`] with the a-priori bound
/// `bits(n)·k`, which the true result never exceeds — so the only failure
/// paths are the typed ones: the bound itself overflowing `u64` (a result
/// too large to even size) or the memory gauge refusing the bytes. A
/// hostile free-variable count therefore yields
/// [`CancelReason::MemoryBudgetExceeded`] instead of panicking or
/// aborting a worker mid-allocation.
pub(crate) fn free_var_factor(n: u64, k: u64, ctl: &EvalControl) -> Result<Nat, Cancelled> {
    if n <= 1 || k == 0 {
        return Ok(if n == 0 && k > 0 { Nat::zero() } else { Nat::one() });
    }
    let base = Nat::from_u64(n);
    let bound = base.bits().checked_mul(k).ok_or(Cancelled(CancelReason::MemoryBudgetExceeded))?;
    ctl.charge(bound.div_ceil(8))?;
    base.checked_pow(k, bound).ok_or(Cancelled(CancelReason::MemoryBudgetExceeded))
}

/// Inverted index over one relation of a structure: for a fixed argument
/// position, maps a vertex to the tuple indexes having that vertex there.
pub(crate) struct PositionIndex {
    by_value: HashMap<u32, Vec<u32>>,
}

impl PositionIndex {
    pub(crate) fn build(d: &Structure, rel: RelId, pos: usize) -> Self {
        let mut by_value: HashMap<u32, Vec<u32>> = HashMap::new();
        for (i, t) in d.tuples(rel).enumerate() {
            by_value.entry(t[pos]).or_default().push(i as u32);
        }
        PositionIndex { by_value }
    }

    pub(crate) fn get(&self, v: u32) -> &[u32] {
        self.by_value.get(&v).map_or(&[], Vec::as_slice)
    }
}

/// Index cache: `(relation, position) → PositionIndex`, built lazily while
/// a single count runs.
#[derive(Default)]
pub(crate) struct IndexCache {
    indexes: HashMap<(u32, u32), PositionIndex>,
}

impl IndexCache {
    pub(crate) fn get(&mut self, d: &Structure, rel: RelId, pos: usize) -> &PositionIndex {
        self.indexes.entry((rel.0, pos as u32)).or_insert_with(|| PositionIndex::build(d, rel, pos))
    }
}

/// Partitions the query's atoms, inequalities and variables into connected
/// components (variables are connected when they co-occur in an atom or
/// inequality; atoms/inequalities with no variables form their own
/// "ground" component).
///
/// By Lemma 1 the count of a query is the product of the counts of its
/// components, which is what makes `θ↑k` countable in time `k·cost(θ)`
/// instead of `cost(θ)^k`.
pub(crate) struct Components {
    /// For each component: (atom indexes, inequality indexes, variable ids).
    pub comps: Vec<(Vec<usize>, Vec<usize>, Vec<u32>)>,
    /// Atoms mentioning no variable at all (ground facts — e.g. `Arena`).
    pub ground_atoms: Vec<usize>,
    /// Inequalities mentioning no variable (constant ≠ constant).
    pub ground_inequalities: Vec<usize>,
    /// Variables in no atom and no inequality: each contributes a free
    /// factor `|V_D|`.
    pub free_vars: u32,
}

pub(crate) fn components(q: &Query) -> Components {
    let n = q.var_count() as usize;
    // Union-find over variables.
    let mut parent: Vec<u32> = (0..n as u32).collect();
    fn find(parent: &mut [u32], mut x: u32) -> u32 {
        while parent[x as usize] != x {
            parent[x as usize] = parent[parent[x as usize] as usize];
            x = parent[x as usize];
        }
        x
    }
    let union = |parent: &mut Vec<u32>, a: u32, b: u32| {
        let ra = find(parent, a);
        let rb = find(parent, b);
        if ra != rb {
            parent[ra as usize] = rb;
        }
    };

    let vars_of_atom = |args: &[Term]| -> Vec<u32> {
        args.iter()
            .filter_map(|t| match t {
                Term::Var(v) => Some(v.0),
                Term::Const(_) => None,
            })
            .collect()
    };

    let mut ground_atoms = Vec::new();
    for (i, a) in q.atoms().iter().enumerate() {
        let vs = vars_of_atom(&a.args);
        if vs.is_empty() {
            ground_atoms.push(i);
            continue;
        }
        for w in vs.windows(2) {
            union(&mut parent, w[0], w[1]);
        }
        let _ = i;
    }
    let mut ground_inequalities = Vec::new();
    for (i, ineq) in q.inequalities().iter().enumerate() {
        let mut vs = Vec::new();
        if let Term::Var(v) = ineq.lhs {
            vs.push(v.0);
        }
        if let Term::Var(v) = ineq.rhs {
            vs.push(v.0);
        }
        if vs.is_empty() {
            ground_inequalities.push(i);
            continue;
        }
        for w in vs.windows(2) {
            union(&mut parent, w[0], w[1]);
        }
    }

    // Group variables by root; only variables that occur somewhere get a
    // component — the rest are free.
    let mut occurs = vec![false; n];
    for a in q.atoms() {
        for t in &a.args {
            if let Term::Var(v) = t {
                occurs[v.0 as usize] = true;
            }
        }
    }
    for ineq in q.inequalities() {
        if let Term::Var(v) = ineq.lhs {
            occurs[v.0 as usize] = true;
        }
        if let Term::Var(v) = ineq.rhs {
            occurs[v.0 as usize] = true;
        }
    }

    let mut comp_of_root: HashMap<u32, usize> = HashMap::new();
    let mut comps: Vec<(Vec<usize>, Vec<usize>, Vec<u32>)> = Vec::new();
    for v in 0..n as u32 {
        if !occurs[v as usize] {
            continue;
        }
        let r = find(&mut parent, v);
        let idx = *comp_of_root.entry(r).or_insert_with(|| {
            comps.push((Vec::new(), Vec::new(), Vec::new()));
            comps.len() - 1
        });
        comps[idx].2.push(v);
    }
    for (i, a) in q.atoms().iter().enumerate() {
        let vs = vars_of_atom(&a.args);
        if let Some(&v0) = vs.first() {
            let r = find(&mut parent, v0);
            let idx = comp_of_root[&r];
            comps[idx].0.push(i);
        }
    }
    for (i, ineq) in q.inequalities().iter().enumerate() {
        let v0 = match (ineq.lhs, ineq.rhs) {
            (Term::Var(v), _) | (_, Term::Var(v)) => Some(v.0),
            _ => None,
        };
        if let Some(v0) = v0 {
            let r = find(&mut parent, v0);
            let idx = comp_of_root[&r];
            comps[idx].1.push(i);
        }
    }

    let free_vars = (0..n).filter(|&v| !occurs[v]).count() as u32;
    Components { comps, ground_atoms, ground_inequalities, free_vars }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bagcq_query::Query;
    use bagcq_structure::SchemaBuilder;
    use std::sync::Arc;

    #[test]
    fn splits_disjoint_conjunction() {
        let mut b = SchemaBuilder::default();
        b.relation("E", 2);
        let schema = b.build();
        let mut qb = Query::builder(Arc::clone(&schema));
        let x = qb.var("x");
        let y = qb.var("y");
        qb.atom_named("E", &[x, y]);
        let q = qb.build();
        let q3 = q.power(3);
        let c = components(&q3);
        assert_eq!(c.comps.len(), 3);
        assert_eq!(c.free_vars, 0);
        assert!(c.ground_atoms.is_empty());
    }

    #[test]
    fn detects_ground_and_free() {
        let mut b = SchemaBuilder::default();
        b.relation("E", 2);
        b.constant("a");
        let schema = b.build();
        let mut qb = Query::builder(Arc::clone(&schema));
        let a = qb.constant("a");
        let x = qb.var("x");
        let _unused = qb.var("floating");
        qb.atom_named("E", &[a, a]); // ground
        qb.atom_named("E", &[a, x]);
        let q = qb.build();
        let c = components(&q);
        assert_eq!(c.ground_atoms.len(), 1);
        assert_eq!(c.comps.len(), 1);
        assert_eq!(c.free_vars, 1);
    }

    #[test]
    fn inequalities_connect_variables() {
        let mut b = SchemaBuilder::default();
        b.relation("E", 2);
        let schema = b.build();
        let mut qb = Query::builder(Arc::clone(&schema));
        let x = qb.var("x");
        let y = qb.var("y");
        let z = qb.var("z");
        let w = qb.var("w");
        qb.atom_named("E", &[x, y]);
        qb.atom_named("E", &[z, w]);
        qb.neq(y, z); // bridges the two atom components
        let q = qb.build();
        let c = components(&q);
        assert_eq!(c.comps.len(), 1);
        assert_eq!(c.comps[0].0.len(), 2);
        assert_eq!(c.comps[0].1.len(), 1);
    }
}
