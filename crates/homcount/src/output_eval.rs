//! Bag-semantics evaluation of non-boolean (output) queries.
//!
//! The answer of an [`OutputQuery`] on `D` is a *multirelation*: each
//! output tuple is mapped to the number of homomorphisms producing it.
//! Bag containment of non-boolean queries is pointwise multiplicity
//! comparison — the `⊆` of the QCP statement read as multiset inclusion.
//!
//! The module also mechanizes the paper's Section 2.3 observation: for a
//! boolean query with constants `a⃗` and its freed non-boolean variant,
//! the multiplicity of the answer tuple `v⃗` equals the boolean count
//! under the constant interpretation `a⃗ ↦ v⃗` — pointwise, on every
//! database (tested exhaustively on samples), which is exactly why the
//! two containment statements coincide.

use crate::naive::for_each_hom_limited;
use bagcq_arith::Nat;
use bagcq_query::OutputQuery;
use bagcq_structure::Structure;
use std::collections::BTreeMap;

/// The bag of answers: output tuple → multiplicity.
pub type AnswerBag = BTreeMap<Vec<u32>, Nat>;

/// Evaluates an output query to its answer bag.
///
/// Uses exhaustive homomorphism enumeration grouped by the output
/// projection; intended for the moderate sizes of the verification
/// harness (the boolean fast path is [`crate::count`]).
pub fn answer_bag(oq: &OutputQuery, d: &Structure) -> AnswerBag {
    let mut out: AnswerBag = BTreeMap::new();
    for_each_hom_limited(&oq.query, d, 0, |assign| {
        let tuple: Vec<u32> = oq.outputs.iter().map(|v| assign[v.0 as usize]).collect();
        out.entry(tuple).and_modify(|n| n.add_assign_u64(1)).or_insert_with(Nat::one);
        true
    });
    out
}

/// Multiset inclusion of answer bags: every tuple's multiplicity in `a`
/// is at most its multiplicity in `b`.
pub fn answer_bag_contained(a: &AnswerBag, b: &AnswerBag) -> bool {
    a.iter().all(|(t, m)| b.get(t).is_some_and(|mb| m <= mb))
}

/// Bag containment of two output queries on one database.
pub fn output_contained_on(s: &OutputQuery, b: &OutputQuery, d: &Structure) -> bool {
    assert_eq!(s.output_arity(), b.output_arity(), "containment needs equal output arities");
    answer_bag_contained(&answer_bag(s, d), &answer_bag(b, d))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{BackendChoice, CountRequest};
    use bagcq_query::{free_constants, OutputQuery, Query};
    use bagcq_structure::{SchemaBuilder, StructureGen, Vertex};
    use std::sync::Arc;

    fn schema() -> Arc<bagcq_structure::Schema> {
        let mut b = SchemaBuilder::default();
        b.relation("E", 2);
        b.constant("a");
        b.build()
    }

    #[test]
    fn answer_bag_of_edges() {
        let s = schema();
        let e = s.relation_by_name("E").unwrap();
        let mut d = bagcq_structure::Structure::new(Arc::clone(&s));
        d.add_vertices(2);
        // Edges 1→2, 1→2 is deduped; add 1→2 and 2→1 and loop 1→1.
        d.add_atom(e, &[Vertex(1), Vertex(2)]);
        d.add_atom(e, &[Vertex(2), Vertex(1)]);
        d.add_atom(e, &[Vertex(1), Vertex(1)]);

        // q(x) := E(x, y): out-degree per vertex.
        let mut qb = Query::builder(Arc::clone(&s));
        let x = qb.var("x");
        let y = qb.var("y");
        qb.atom_named("E", &[x, y]);
        let q = qb.build();
        let x_id = bagcq_query::VarId(0);
        let oq = OutputQuery::new(q, vec![x_id]);
        let bag = answer_bag(&oq, &d);
        assert_eq!(bag.get(&vec![1]).cloned(), Some(Nat::from_u64(2)));
        assert_eq!(bag.get(&vec![2]).cloned(), Some(Nat::one()));
        assert_eq!(bag.get(&vec![0]), None);
    }

    #[test]
    fn boolean_answer_bag_is_total_count() {
        let s = schema();
        let gen = StructureGen { extra_vertices: 3, density: 0.5, ..Default::default() };
        let d = gen.sample(&s, 4);
        let mut qb = Query::builder(Arc::clone(&s));
        let x = qb.var("x");
        let y = qb.var("y");
        qb.atom_named("E", &[x, y]);
        let q = qb.build();
        let oq = OutputQuery::boolean(q.clone());
        let bag = answer_bag(&oq, &d);
        let total = CountRequest::new(&q, &d).backend(BackendChoice::Naive).count();
        if total.is_zero() {
            assert!(bag.is_empty());
        } else {
            assert_eq!(bag.get(&Vec::new()).cloned(), Some(total));
        }
    }

    /// The Section 2.3 pointwise identity: the multiplicity of answer
    /// tuple `v` of the freed query equals the boolean count with the
    /// constant reinterpreted at `v`.
    #[test]
    fn section_2_3_pointwise_identity() {
        let s = schema();
        let ca = s.constant_by_name("a").unwrap();
        let mut qb = Query::builder(Arc::clone(&s));
        let a = qb.constant("a");
        let x = qb.var("x");
        let y = qb.var("y");
        qb.atom_named("E", &[a, x]).atom_named("E", &[x, y]).atom_named("E", &[y, a]);
        let boolean_q = qb.build();
        let freed = free_constants(&boolean_q, &[ca]);

        let gen = StructureGen { extra_vertices: 4, density: 0.45, ..Default::default() };
        for seed in 0..8u64 {
            let d = gen.sample(&s, seed);
            let bag = answer_bag(&freed, &d);
            for v in 0..d.vertex_count() {
                let mut dv = d.clone();
                dv.set_constant_vertex(ca, Vertex(v));
                let boolean_count =
                    CountRequest::new(&boolean_q, &dv).backend(BackendChoice::Naive).count();
                let mult = bag.get(&vec![v]).cloned().unwrap_or_else(Nat::zero);
                assert_eq!(boolean_count, mult, "seed {seed}, v {v}");
            }
        }
    }

    /// Section 2.3's containment equivalence, sampled: on every database,
    /// the boolean containments over all constant placements agree with
    /// the non-boolean answer-bag containment.
    #[test]
    fn section_2_3_containment_equivalence_sampled() {
        let s = schema();
        let ca = s.constant_by_name("a").unwrap();
        // φ_s(a) := E(a, x); φ_b(a) := E(a, x) ∧ E(x, y)  — 1-walks vs
        // 2-walks from a: containment fails (dead ends).
        let mut qb = Query::builder(Arc::clone(&s));
        let a = qb.constant("a");
        let x = qb.var("x");
        qb.atom_named("E", &[a, x]);
        let phi_s = qb.build();
        let mut qb = Query::builder(Arc::clone(&s));
        let a = qb.constant("a");
        let x = qb.var("x");
        let y = qb.var("y");
        qb.atom_named("E", &[a, x]).atom_named("E", &[x, y]);
        let phi_b = qb.build();
        let free_s = free_constants(&phi_s, &[ca]);
        let free_b = free_constants(&phi_b, &[ca]);

        let gen = StructureGen { extra_vertices: 4, density: 0.4, ..Default::default() };
        for seed in 0..8u64 {
            let d = gen.sample(&s, seed);
            // Boolean side: containment under every placement of 'a'.
            let boolean_all = (0..d.vertex_count()).all(|v| {
                let mut dv = d.clone();
                dv.set_constant_vertex(ca, Vertex(v));
                CountRequest::new(&phi_s, &dv).backend(BackendChoice::Naive).count()
                    <= CountRequest::new(&phi_b, &dv).backend(BackendChoice::Naive).count()
            });
            // Non-boolean side: answer-bag inclusion on d... with empty
            // s-multiplicities allowed (0 ≤ anything): adapt inclusion to
            // treat missing b-tuples as 0.
            let bag_s = answer_bag(&free_s, &d);
            let bag_b = answer_bag(&free_b, &d);
            let nonboolean = bag_s.iter().all(|(t, m)| bag_b.get(t).is_some_and(|mb| m <= mb));
            assert_eq!(boolean_all, nonboolean, "seed {seed}");
        }
    }

    #[test]
    fn answer_bag_inclusion() {
        let mut a: AnswerBag = BTreeMap::new();
        let mut b: AnswerBag = BTreeMap::new();
        a.insert(vec![0], Nat::from_u64(2));
        b.insert(vec![0], Nat::from_u64(3));
        b.insert(vec![1], Nat::one());
        assert!(answer_bag_contained(&a, &b));
        assert!(!answer_bag_contained(&b, &a));
    }
}
