//! Tree decompositions of query primal graphs.
//!
//! The optimized counting engine implements the textbook `#Hom` algorithm:
//! decompose the query's primal graph (variables are nodes; variables
//! co-occurring in an atom or inequality are adjacent), then run dynamic
//! programming over the bags. This module builds decompositions from
//! elimination orders produced by the **min-fill** heuristic and validates
//! the three tree-decomposition properties (used by property tests).

use std::collections::HashSet;

/// A rooted tree decomposition over variables `0..n`.
#[derive(Debug, Clone)]
pub struct TreeDecomposition {
    /// Variable sets per bag, each sorted ascending.
    pub bags: Vec<Vec<u32>>,
    /// Parent bag index (`None` for the root).
    pub parent: Vec<Option<usize>>,
    /// Children lists (derived from `parent`).
    pub children: Vec<Vec<usize>>,
    /// Root bag index.
    pub root: usize,
}

impl TreeDecomposition {
    /// Width = max bag size − 1 (width 0 for edgeless graphs).
    pub fn width(&self) -> usize {
        self.bags.iter().map(Vec::len).max().unwrap_or(1).saturating_sub(1)
    }

    /// Checks the three TD properties against the given vertex count and
    /// edge list: every vertex in some bag; every edge inside some bag;
    /// for each vertex, the bags containing it form a connected subtree.
    pub fn validate(&self, n_vars: u32, edges: &[(u32, u32)]) -> bool {
        // 1. Coverage of vertices.
        let mut covered = vec![false; n_vars as usize];
        for bag in &self.bags {
            for &v in bag {
                if v >= n_vars {
                    return false;
                }
                covered[v as usize] = true;
            }
        }
        if !covered.iter().all(|&c| c) {
            return false;
        }
        // 2. Coverage of edges.
        for &(a, b) in edges {
            if !self
                .bags
                .iter()
                .any(|bag| bag.binary_search(&a).is_ok() && bag.binary_search(&b).is_ok())
            {
                return false;
            }
        }
        // 3. Connectedness per vertex: count, for each vertex, the number
        // of tree edges inside its bag set; the bag set is connected iff
        // #bags_with_v − #tree_edges_with_both_endpoints_having_v == 1.
        for v in 0..n_vars {
            let holds = |i: usize| self.bags[i].binary_search(&v).is_ok();
            let bag_count = (0..self.bags.len()).filter(|&i| holds(i)).count();
            if bag_count == 0 {
                return false;
            }
            let edge_count = (0..self.bags.len())
                .filter(|&i| {
                    if !holds(i) {
                        return false;
                    }
                    match self.parent[i] {
                        Some(p) => holds(p),
                        None => false,
                    }
                })
                .count();
            if bag_count - edge_count != 1 {
                return false;
            }
        }
        true
    }
}

/// Builds a tree decomposition of the graph on `0..n` with the given
/// adjacency sets, using min-fill elimination. Isolated vertices get
/// singleton bags.
pub fn decompose_min_fill(n: u32, adj: &[HashSet<u32>]) -> TreeDecomposition {
    assert_eq!(adj.len(), n as usize);
    let mut work: Vec<HashSet<u32>> = adj.to_vec();
    let mut eliminated = vec![false; n as usize];
    let mut order: Vec<u32> = Vec::with_capacity(n as usize);
    // Bag contents decided at elimination time: v plus its not-yet-
    // eliminated neighbors in the (filled) working graph.
    let mut bag_of: Vec<Vec<u32>> = vec![Vec::new(); n as usize];

    for _ in 0..n {
        // Min-fill: vertex whose neighborhood needs fewest fill edges.
        let mut best: Option<(u32, usize)> = None;
        for v in 0..n {
            if eliminated[v as usize] {
                continue;
            }
            let nbrs: Vec<u32> =
                work[v as usize].iter().copied().filter(|&u| !eliminated[u as usize]).collect();
            let mut fill = 0usize;
            for i in 0..nbrs.len() {
                for j in (i + 1)..nbrs.len() {
                    if !work[nbrs[i] as usize].contains(&nbrs[j]) {
                        fill += 1;
                    }
                }
            }
            if best.is_none_or(|(_, bf)| fill < bf) {
                best = Some((v, fill));
            }
        }
        let (v, _) = best.expect("some vertex remains");
        let nbrs: Vec<u32> =
            work[v as usize].iter().copied().filter(|&u| !eliminated[u as usize]).collect();
        // Fill in the neighborhood.
        for i in 0..nbrs.len() {
            for j in (i + 1)..nbrs.len() {
                work[nbrs[i] as usize].insert(nbrs[j]);
                work[nbrs[j] as usize].insert(nbrs[i]);
            }
        }
        let mut bag = nbrs;
        bag.push(v);
        bag.sort_unstable();
        bag_of[v as usize] = bag;
        eliminated[v as usize] = true;
        order.push(v);
    }

    // Build the tree: bag(v) attaches to bag(u) where u is the earliest-
    // eliminated vertex of bag(v)\{v}; if none, it becomes a root; multiple
    // roots are joined under a synthetic empty root to keep one tree.
    let pos: Vec<usize> = {
        let mut p = vec![0usize; n as usize];
        for (i, &v) in order.iter().enumerate() {
            p[v as usize] = i;
        }
        p
    };
    let mut bags: Vec<Vec<u32>> = order.iter().map(|&v| bag_of[v as usize].clone()).collect();
    let mut parent: Vec<Option<usize>> = vec![None; bags.len()];
    for (i, &v) in order.iter().enumerate() {
        let next =
            bag_of[v as usize].iter().copied().filter(|&u| u != v).min_by_key(|&u| pos[u as usize]);
        if let Some(u) = next {
            parent[i] = Some(pos[u as usize]);
        }
    }
    // Join multiple roots (disconnected graphs shouldn't reach here —
    // callers decompose per component — but empty graphs of isolated
    // vertices do).
    let roots: Vec<usize> = (0..bags.len()).filter(|&i| parent[i].is_none()).collect();
    let root = if roots.len() == 1 {
        roots[0]
    } else if roots.is_empty() {
        // n == 0: single empty bag.
        bags.push(Vec::new());
        parent.push(None);
        bags.len() - 1
    } else {
        let r = bags.len();
        bags.push(Vec::new());
        parent.push(None);
        for &i in &roots {
            parent[i] = Some(r);
        }
        r
    };

    let mut children: Vec<Vec<usize>> = vec![Vec::new(); bags.len()];
    for (i, p) in parent.iter().enumerate() {
        if let Some(p) = *p {
            children[p].push(i);
        }
    }
    TreeDecomposition { bags, parent, children, root }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn adj_from_edges(n: u32, edges: &[(u32, u32)]) -> Vec<HashSet<u32>> {
        let mut adj = vec![HashSet::new(); n as usize];
        for &(a, b) in edges {
            adj[a as usize].insert(b);
            adj[b as usize].insert(a);
        }
        adj
    }

    #[test]
    fn path_has_width_one() {
        let edges = [(0, 1), (1, 2), (2, 3), (3, 4)];
        let td = decompose_min_fill(5, &adj_from_edges(5, &edges));
        assert!(td.validate(5, &edges));
        assert_eq!(td.width(), 1);
    }

    #[test]
    fn cycle_has_width_two() {
        let edges = [(0, 1), (1, 2), (2, 3), (3, 0)];
        let td = decompose_min_fill(4, &adj_from_edges(4, &edges));
        assert!(td.validate(4, &edges));
        assert_eq!(td.width(), 2);
    }

    #[test]
    fn clique_has_full_width() {
        let mut edges = Vec::new();
        for i in 0..5u32 {
            for j in (i + 1)..5 {
                edges.push((i, j));
            }
        }
        let td = decompose_min_fill(5, &adj_from_edges(5, &edges));
        assert!(td.validate(5, &edges));
        assert_eq!(td.width(), 4);
    }

    #[test]
    fn isolated_vertices() {
        let td = decompose_min_fill(3, &adj_from_edges(3, &[]));
        assert!(td.validate(3, &[]));
        assert_eq!(td.width(), 0);
    }

    #[test]
    fn grid_3x3_width() {
        // 3×3 grid, vertices row-major; treewidth 3... min-fill should
        // find width ≤ 4 and validation must hold regardless.
        let idx = |x: u32, y: u32| y * 3 + x;
        let mut edges = Vec::new();
        for y in 0..3u32 {
            for x in 0..3u32 {
                if x + 1 < 3 {
                    edges.push((idx(x, y), idx(x + 1, y)));
                }
                if y + 1 < 3 {
                    edges.push((idx(x, y), idx(x, y + 1)));
                }
            }
        }
        let td = decompose_min_fill(9, &adj_from_edges(9, &edges));
        assert!(td.validate(9, &edges));
        assert!(td.width() <= 4, "width {}", td.width());
        assert!(td.width() >= 2);
    }

    #[test]
    fn empty_graph() {
        let td = decompose_min_fill(0, &[]);
        assert!(td.validate(0, &[]));
    }

    #[test]
    fn star_has_width_one() {
        let edges = [(0, 1), (0, 2), (0, 3), (0, 4), (0, 5)];
        let td = decompose_min_fill(6, &adj_from_edges(6, &edges));
        assert!(td.validate(6, &edges));
        assert_eq!(td.width(), 1);
    }
}
