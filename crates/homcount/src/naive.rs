//! The baseline counting engine: indexed backtracking enumeration.
//!
//! `ψ(D) = |Hom(ψ, D)|` is computed by ordering the atoms greedily for
//! connectivity and backtracking over candidate tuples, using per-position
//! inverted indexes on the structure. Two structural optimizations keep the
//! engine usable on the paper's constructions:
//!
//! * **component factorization** — by Lemma 1 the count of a query is the
//!   product over its connected components, so `θ↑k` costs `k` component
//!   counts, not `θ(D)^k` enumeration steps;
//! * **free-variable factor** — variables occurring in no atom and no
//!   inequality contribute `|V_D|` each.
//!
//! The engine is deliberately simple: it is the *reference* whose results
//! the tree-decomposition engine (and everything built on top) is
//! cross-validated against.

use crate::cancel::{Cancelled, EvalControl, Ticker};
use crate::common::{components, free_var_factor, inequality_ok, resolve, IndexCache, UNASSIGNED};
use bagcq_arith::{Accumulator, Nat};
use bagcq_query::{Query, Term};
use bagcq_structure::Structure;

/// Reference counting engine (indexed backtracking).
#[derive(Default, Clone, Copy, Debug)]
pub struct NaiveCounter;

impl NaiveCounter {
    /// Ablation baseline: counts by enumerating every homomorphism one at
    /// a time, with no component factorization and no free-variable
    /// shortcut. Exponentially slower on disjoint conjunctions (`θ↑k`
    /// costs `θ(D)^k` steps instead of `k` component counts) — used by the
    /// ablation benchmark to quantify what the factorization buys.
    pub fn count_enumerative(&self, q: &Query, d: &Structure) -> Nat {
        let mut total = Nat::zero();
        for_each_hom_limited(q, d, 0, |_| {
            total.add_assign_u64(1);
            true
        });
        total
    }

    /// Decides `D ⊨ ψ` (set semantics): is there at least one homomorphism?
    pub fn exists(&self, q: &Query, d: &Structure) -> bool {
        let mut any = false;
        for_each_hom_limited(q, d, 1, |_| {
            any = true;
            false
        });
        any
    }
}

/// The backtracking kernel, generic over the accumulator: `A = Nat` is the
/// arbitrary-precision reference path, `A = Acc` the machine-word fast
/// path. Both monomorphize to the same control flow, so their results are
/// bit-identical by construction of [`Accumulator`].
pub(crate) fn try_count_generic<A: Accumulator>(
    q: &Query,
    d: &Structure,
    ctl: &EvalControl,
) -> Result<Nat, Cancelled> {
    let _span = bagcq_obs::span("homcount.naive", "backtrack");
    let comps = components(q);

    // Ground atoms/inequalities gate the whole count.
    for &i in &comps.ground_atoms {
        let a = &q.atoms()[i];
        let assign: Vec<u32> = vec![UNASSIGNED; q.var_count() as usize];
        let args: Vec<_> =
            a.args.iter().map(|t| bagcq_structure::Vertex(resolve(t, &assign, d))).collect();
        if !d.contains_atom(a.rel, &args) {
            return Ok(Nat::zero());
        }
    }
    for &i in &comps.ground_inequalities {
        let ineq = &q.inequalities()[i];
        let assign: Vec<u32> = vec![UNASSIGNED; q.var_count() as usize];
        if resolve(&ineq.lhs, &assign, d) == resolve(&ineq.rhs, &assign, d) {
            return Ok(Nat::zero());
        }
    }

    let n = d.vertex_count() as u64;
    let mut ticker = ctl.ticker();
    let mut total = A::one();
    for (atom_idx, ineq_idx, vars) in &comps.comps {
        let c = count_component::<A>(q, d, atom_idx, ineq_idx, vars, &mut ticker)?;
        if c.is_zero() {
            return Ok(Nat::zero());
        }
        ctl.charge(c.heap_bytes())?;
        total.mul_assign_acc(&c);
    }
    if comps.free_vars > 0 {
        total.mul_assign_nat(&free_var_factor(n, comps.free_vars as u64, ctl)?);
    }
    Ok(total.into_nat())
}

/// Counts homomorphisms of one connected component by ordered backtracking.
fn count_component<A: Accumulator>(
    q: &Query,
    d: &Structure,
    atom_idx: &[usize],
    ineq_idx: &[usize],
    vars: &[u32],
    ticker: &mut Ticker<'_>,
) -> Result<A, Cancelled> {
    let order = order_atoms(q, d, atom_idx);
    let mut assign: Vec<u32> = vec![UNASSIGNED; q.var_count() as usize];
    let mut cache = IndexCache::default();
    let mut count = A::zero();
    let mut trail: Vec<u32> = Vec::new();
    backtrack_atoms(
        q,
        d,
        &order,
        0,
        ineq_idx,
        vars,
        &mut assign,
        &mut cache,
        &mut trail,
        &mut count,
        ticker,
    )?;
    Ok(count)
}

/// Greedy atom ordering: repeatedly pick the atom with the most already-
/// bound variables (connectivity first), tie-breaking towards smaller
/// relations.
fn order_atoms(q: &Query, d: &Structure, atom_idx: &[usize]) -> Vec<usize> {
    let mut remaining: Vec<usize> = atom_idx.to_vec();
    let mut bound: Vec<bool> = vec![false; q.var_count() as usize];
    let mut order = Vec::with_capacity(remaining.len());
    while !remaining.is_empty() {
        let (pos, &best) = remaining
            .iter()
            .enumerate()
            .max_by_key(|(_, &ai)| {
                let a = &q.atoms()[ai];
                let bound_vars = a
                    .args
                    .iter()
                    .filter(|t| matches!(t, Term::Var(v) if bound[v.0 as usize]))
                    .count();
                let consts = a.args.iter().filter(|t| matches!(t, Term::Const(_))).count();
                // Prefer connectivity, then constants, then small relations.
                (bound_vars, consts, usize::MAX - d.atom_count(a.rel))
            })
            .expect("nonempty");
        order.push(best);
        for t in &q.atoms()[best].args {
            if let Term::Var(v) = t {
                bound[v.0 as usize] = true;
            }
        }
        remaining.swap_remove(pos);
    }
    order
}

#[allow(clippy::too_many_arguments)]
fn backtrack_atoms<A: Accumulator>(
    q: &Query,
    d: &Structure,
    order: &[usize],
    depth: usize,
    ineq_idx: &[usize],
    vars: &[u32],
    assign: &mut Vec<u32>,
    cache: &mut IndexCache,
    trail: &mut Vec<u32>,
    count: &mut A,
    ticker: &mut Ticker<'_>,
) -> Result<(), Cancelled> {
    if depth == order.len() {
        // All atoms matched; enumerate component variables that occur only
        // in inequalities.
        let unbound: Vec<u32> =
            vars.iter().copied().filter(|&v| assign[v as usize] == UNASSIGNED).collect();
        return enumerate_unbound(q, d, &unbound, 0, ineq_idx, assign, count, ticker);
    }
    let atom = &q.atoms()[order[depth]];
    // Pick the most selective access path: a bound position with the
    // smallest index bucket, else a full relation scan.
    let mut best: Option<(usize, u32)> = None; // (position, value)
    for (pos, t) in atom.args.iter().enumerate() {
        let v = resolve(t, assign, d);
        if v != UNASSIGNED {
            match best {
                None => best = Some((pos, v)),
                Some((bp, bv)) => {
                    let cur_len = cache.get(d, atom.rel, pos).get(v).len();
                    let best_len = cache.get(d, atom.rel, bp).get(bv).len();
                    if cur_len < best_len {
                        best = Some((pos, v));
                    }
                }
            }
        }
    }

    let tuple_ids: Vec<u32> = match best {
        Some((pos, v)) => cache.get(d, atom.rel, pos).get(v).to_vec(),
        None => (0..d.atom_count(atom.rel) as u32).collect(),
    };
    let tuples: Vec<&[u32]> = d.tuples(atom.rel).collect();

    'tuples: for &ti in &tuple_ids {
        ticker.tick()?;
        let tuple = tuples[ti as usize];
        let mark = trail.len();
        for (pos, t) in atom.args.iter().enumerate() {
            let want = tuple[pos];
            match t {
                Term::Const(c) => {
                    if d.constant_vertex(*c).0 != want {
                        unwind(assign, trail, mark);
                        continue 'tuples;
                    }
                }
                Term::Var(v) => {
                    let cur = assign[v.0 as usize];
                    if cur == UNASSIGNED {
                        assign[v.0 as usize] = want;
                        trail.push(v.0);
                        // Inequality propagation on the newly bound var.
                        for &ii in ineq_idx {
                            if !inequality_ok(&q.inequalities()[ii], assign, d) {
                                unwind(assign, trail, mark);
                                continue 'tuples;
                            }
                        }
                    } else if cur != want {
                        unwind(assign, trail, mark);
                        continue 'tuples;
                    }
                }
            }
        }
        backtrack_atoms(
            q,
            d,
            order,
            depth + 1,
            ineq_idx,
            vars,
            assign,
            cache,
            trail,
            count,
            ticker,
        )?;
        unwind(assign, trail, mark);
    }
    Ok(())
}

fn unwind(assign: &mut [u32], trail: &mut Vec<u32>, mark: usize) {
    while trail.len() > mark {
        let v = trail.pop().unwrap();
        assign[v as usize] = UNASSIGNED;
    }
}

/// Enumerates variables that occur only in inequalities (never in atoms).
#[allow(clippy::too_many_arguments)]
fn enumerate_unbound<A: Accumulator>(
    q: &Query,
    d: &Structure,
    unbound: &[u32],
    i: usize,
    ineq_idx: &[usize],
    assign: &mut Vec<u32>,
    count: &mut A,
    ticker: &mut Ticker<'_>,
) -> Result<(), Cancelled> {
    if i == unbound.len() {
        count.add_one();
        return Ok(());
    }
    let v = unbound[i];
    for u in 0..d.vertex_count() {
        ticker.tick()?;
        assign[v as usize] = u;
        if ineq_idx.iter().all(|&ii| inequality_ok(&q.inequalities()[ii], assign, d)) {
            enumerate_unbound(q, d, unbound, i + 1, ineq_idx, assign, count, ticker)?;
        }
    }
    assign[v as usize] = UNASSIGNED;
    Ok(())
}

/// Enumerates complete homomorphisms (every variable assigned, including
/// free ones), invoking `f` with the assignment; `f` returns `false` to
/// stop early. `limit == 0` means unlimited.
///
/// This is the exhaustive path used by the onto-homomorphism search and by
/// cross-validation tests; the optimized counters above never materialize
/// individual homs.
pub fn for_each_hom_limited(q: &Query, d: &Structure, limit: u64, f: impl FnMut(&[u32]) -> bool) {
    try_for_each_hom_limited(q, d, limit, &EvalControl::unlimited(), f)
        .expect("unlimited enumeration cannot be cancelled")
}

/// Cancellable form of [`for_each_hom_limited`]: additionally stops with
/// [`Cancelled`] when the step budget or token of `ctl` trips.
pub fn try_for_each_hom_limited(
    q: &Query,
    d: &Structure,
    limit: u64,
    ctl: &EvalControl,
    mut f: impl FnMut(&[u32]) -> bool,
) -> Result<(), Cancelled> {
    // Check ground atoms first.
    let empty_assign: Vec<u32> = vec![UNASSIGNED; q.var_count() as usize];
    for a in q.atoms() {
        if a.args.iter().all(|t| matches!(t, Term::Const(_))) {
            let args: Vec<_> = a
                .args
                .iter()
                .map(|t| bagcq_structure::Vertex(resolve(t, &empty_assign, d)))
                .collect();
            if !d.contains_atom(a.rel, &args) {
                return Ok(());
            }
        }
    }

    let all_atoms: Vec<usize> = (0..q.atoms().len()).collect();
    let all_ineqs: Vec<usize> = (0..q.inequalities().len()).collect();
    let order = order_atoms(q, d, &all_atoms);
    let mut assign = empty_assign;
    let mut cache = IndexCache::default();
    let mut trail: Vec<u32> = Vec::new();
    let mut seen: u64 = 0;
    let mut stop = false;
    let mut ticker = ctl.ticker();
    full_backtrack(
        q,
        d,
        &order,
        0,
        &all_ineqs,
        &mut assign,
        &mut cache,
        &mut trail,
        &mut seen,
        limit,
        &mut stop,
        &mut ticker,
        &mut f,
    )
}

#[allow(clippy::too_many_arguments)]
fn full_backtrack(
    q: &Query,
    d: &Structure,
    order: &[usize],
    depth: usize,
    ineq_idx: &[usize],
    assign: &mut Vec<u32>,
    cache: &mut IndexCache,
    trail: &mut Vec<u32>,
    seen: &mut u64,
    limit: u64,
    stop: &mut bool,
    ticker: &mut Ticker<'_>,
    f: &mut impl FnMut(&[u32]) -> bool,
) -> Result<(), Cancelled> {
    if *stop {
        return Ok(());
    }
    if depth == order.len() {
        // Enumerate every remaining unassigned variable over the domain.
        let unbound: Vec<u32> =
            (0..q.var_count()).filter(|&v| assign[v as usize] == UNASSIGNED).collect();
        return full_enumerate(q, d, &unbound, 0, ineq_idx, assign, seen, limit, stop, ticker, f);
    }
    let atom = &q.atoms()[order[depth]];
    let mut best: Option<(usize, u32)> = None;
    for (pos, t) in atom.args.iter().enumerate() {
        let v = resolve(t, assign, d);
        if v != UNASSIGNED {
            best = match best {
                None => Some((pos, v)),
                Some((bp, bv)) => {
                    if cache.get(d, atom.rel, pos).get(v).len()
                        < cache.get(d, atom.rel, bp).get(bv).len()
                    {
                        Some((pos, v))
                    } else {
                        Some((bp, bv))
                    }
                }
            };
        }
    }
    let tuple_ids: Vec<u32> = match best {
        Some((pos, v)) => cache.get(d, atom.rel, pos).get(v).to_vec(),
        None => (0..d.atom_count(atom.rel) as u32).collect(),
    };
    let tuples: Vec<&[u32]> = d.tuples(atom.rel).collect();
    'tuples: for &ti in &tuple_ids {
        if *stop {
            return Ok(());
        }
        ticker.tick()?;
        let tuple = tuples[ti as usize];
        let mark = trail.len();
        for (pos, t) in atom.args.iter().enumerate() {
            let want = tuple[pos];
            match t {
                Term::Const(c) => {
                    if d.constant_vertex(*c).0 != want {
                        unwind(assign, trail, mark);
                        continue 'tuples;
                    }
                }
                Term::Var(v) => {
                    let cur = assign[v.0 as usize];
                    if cur == UNASSIGNED {
                        assign[v.0 as usize] = want;
                        trail.push(v.0);
                        for &ii in ineq_idx {
                            if !inequality_ok(&q.inequalities()[ii], assign, d) {
                                unwind(assign, trail, mark);
                                continue 'tuples;
                            }
                        }
                    } else if cur != want {
                        unwind(assign, trail, mark);
                        continue 'tuples;
                    }
                }
            }
        }
        full_backtrack(
            q,
            d,
            order,
            depth + 1,
            ineq_idx,
            assign,
            cache,
            trail,
            seen,
            limit,
            stop,
            ticker,
            f,
        )?;
        unwind(assign, trail, mark);
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn full_enumerate(
    q: &Query,
    d: &Structure,
    unbound: &[u32],
    i: usize,
    ineq_idx: &[usize],
    assign: &mut Vec<u32>,
    seen: &mut u64,
    limit: u64,
    stop: &mut bool,
    ticker: &mut Ticker<'_>,
    f: &mut impl FnMut(&[u32]) -> bool,
) -> Result<(), Cancelled> {
    if *stop {
        return Ok(());
    }
    if i == unbound.len() {
        *seen += 1;
        if !f(assign) || (limit != 0 && *seen >= limit) {
            *stop = true;
        }
        return Ok(());
    }
    let v = unbound[i];
    for u in 0..d.vertex_count() {
        if *stop {
            break;
        }
        ticker.tick()?;
        assign[v as usize] = u;
        if ineq_idx.iter().all(|&ii| inequality_ok(&q.inequalities()[ii], assign, d)) {
            full_enumerate(q, d, unbound, i + 1, ineq_idx, assign, seen, limit, stop, ticker, f)?;
        }
    }
    assign[v as usize] = UNASSIGNED;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{BackendChoice, CountError, CountRequest};
    use bagcq_query::{cycle_query, path_query, star_query};
    use bagcq_structure::{SchemaBuilder, Vertex};
    use std::sync::Arc;

    fn naive_count(q: &Query, d: &Structure) -> Nat {
        CountRequest::new(q, d).backend(BackendChoice::Naive).count()
    }

    fn naive_try_count(q: &Query, d: &Structure, ctl: &EvalControl) -> Result<Nat, Cancelled> {
        match CountRequest::new(q, d).backend(BackendChoice::Naive).control(ctl.clone()).run() {
            Ok(n) => Ok(n),
            Err(CountError::Cancelled(c)) => Err(c),
            Err(e) => panic!("naive backend only fails by cancellation: {e}"),
        }
    }

    fn digraph() -> Arc<bagcq_structure::Schema> {
        let mut b = SchemaBuilder::default();
        b.relation("E", 2);
        b.build()
    }

    /// Directed cycle structure of length n.
    fn cycle_struct(schema: &Arc<bagcq_structure::Schema>, n: u32) -> Structure {
        let e = schema.relation_by_name("E").unwrap();
        let mut d = Structure::new(Arc::clone(schema));
        d.add_vertices(n);
        for i in 0..n {
            d.add_atom(e, &[Vertex(i), Vertex((i + 1) % n)]);
        }
        d
    }

    /// Complete digraph with loops on n vertices.
    fn complete_struct(schema: &Arc<bagcq_structure::Schema>, n: u32) -> Structure {
        let e = schema.relation_by_name("E").unwrap();
        let mut d = Structure::new(Arc::clone(schema));
        d.add_vertices(n);
        for i in 0..n {
            for j in 0..n {
                d.add_atom(e, &[Vertex(i), Vertex(j)]);
            }
        }
        d
    }

    #[test]
    fn edge_into_cycle() {
        let s = digraph();
        let d = cycle_struct(&s, 5);
        let q = path_query(&s, "E", 1);
        // Every edge is a hom: 5.
        assert_eq!(naive_count(&q, &d), Nat::from_u64(5));
    }

    #[test]
    fn paths_into_complete_graph() {
        let s = digraph();
        let d = complete_struct(&s, 4);
        // A path with k edges has k+1 vertices: 4^(k+1) homs.
        for k in 1..5 {
            let q = path_query(&s, "E", k);
            assert_eq!(naive_count(&q, &d), Nat::from_u64(4u64.pow(k + 1)), "path length {k}");
        }
    }

    #[test]
    fn cycle_into_cycle() {
        let s = digraph();
        // Homs C_k → C_n: k-cycle maps onto n-cycle iff n | k, and there
        // are n of them (choice of start).
        let d = cycle_struct(&s, 3);
        assert_eq!(naive_count(&cycle_query(&s, "E", 3), &d), Nat::from_u64(3));
        assert_eq!(naive_count(&cycle_query(&s, "E", 6), &d), Nat::from_u64(3));
        assert_eq!(naive_count(&cycle_query(&s, "E", 4), &d), Nat::zero());
    }

    #[test]
    fn star_counts() {
        let s = digraph();
        let e = s.relation_by_name("E").unwrap();
        let mut d = Structure::new(Arc::clone(&s));
        d.add_vertices(4);
        // 0 → 1,2,3
        for j in 1..4 {
            d.add_atom(e, &[Vertex(0), Vertex(j)]);
        }
        // Star with 2 leaves from the center: 3² choices of leaves.
        let q = star_query(&s, "E", 2);
        assert_eq!(naive_count(&q, &d), Nat::from_u64(9));
    }

    #[test]
    fn lemma1_multiplicativity() {
        // (ρ ∧̄ ρ')(D) = ρ(D)·ρ'(D) — the disjoint-conjunction law.
        let s = digraph();
        let d = cycle_struct(&s, 4);
        let p1 = path_query(&s, "E", 1);
        let p2 = path_query(&s, "E", 2);
        let conj = p1.disjoint_conj(&p2);
        let c1 = naive_count(&p1, &d);
        let c2 = naive_count(&p2, &d);
        assert_eq!(naive_count(&conj, &d), c1.mul_ref(&c2));
    }

    #[test]
    fn definition2_power_law() {
        let s = digraph();
        let d = complete_struct(&s, 3);
        let q = path_query(&s, "E", 1);
        let c = naive_count(&q, &d);
        for k in 0..4 {
            assert_eq!(naive_count(&q.power(k), &d), c.pow_u64(k as u64), "power {k}");
        }
    }

    #[test]
    fn inequality_semantics() {
        let s = digraph();
        let d = complete_struct(&s, 3);
        // E(x,y): 9 homs; with x ≠ y: 6.
        let mut qb = bagcq_query::Query::builder(Arc::clone(&s));
        let x = qb.var("x");
        let y = qb.var("y");
        qb.atom_named("E", &[x, y]).neq(x, y);
        assert_eq!(naive_count(&qb.build(), &d), Nat::from_u64(6));
    }

    #[test]
    fn inequality_only_variables() {
        let s = digraph();
        let d = complete_struct(&s, 4);
        // x ≠ y with neither in an atom: 4·3 = 12 assignments.
        let mut qb = bagcq_query::Query::builder(Arc::clone(&s));
        let x = qb.var("x");
        let y = qb.var("y");
        qb.neq(x, y);
        assert_eq!(naive_count(&qb.build(), &d), Nat::from_u64(12));
    }

    #[test]
    fn free_variable_factor() {
        let s = digraph();
        let d = complete_struct(&s, 5);
        let mut qb = bagcq_query::Query::builder(Arc::clone(&s));
        let x = qb.var("x");
        let y = qb.var("y");
        let _free = qb.var("free");
        qb.atom_named("E", &[x, y]);
        // 25 edge homs × 5 for the free variable.
        assert_eq!(naive_count(&qb.build(), &d), Nat::from_u64(125));
    }

    #[test]
    fn empty_query_counts_one() {
        let s = digraph();
        let d = cycle_struct(&s, 3);
        let q = bagcq_query::Query::empty(Arc::clone(&s));
        assert_eq!(naive_count(&q, &d), Nat::one());
    }

    #[test]
    fn ground_atoms_gate() {
        let mut b = SchemaBuilder::default();
        b.relation("E", 2);
        b.constant("a");
        let s = b.build();
        let e = s.relation_by_name("E").unwrap();
        let mut qb = bagcq_query::Query::builder(Arc::clone(&s));
        let a = qb.constant("a");
        qb.atom_named("E", &[a, a]);
        let q = qb.build();

        let mut d = Structure::new(Arc::clone(&s));
        assert_eq!(naive_count(&q, &d), Nat::zero());
        let av = d.constant_vertex(s.constant_by_name("a").unwrap());
        d.add_atom(e, &[av, av]);
        assert_eq!(naive_count(&q, &d), Nat::one());
    }

    #[test]
    fn repeated_variable_in_atom() {
        let s = digraph();
        let e = s.relation_by_name("E").unwrap();
        let mut d = Structure::new(Arc::clone(&s));
        d.add_vertices(3);
        d.add_atom(e, &[Vertex(0), Vertex(0)]); // loop
        d.add_atom(e, &[Vertex(0), Vertex(1)]);
        // E(x,x) matches only the loop.
        let q = cycle_query(&s, "E", 1);
        assert_eq!(naive_count(&q, &d), Nat::one());
    }

    #[test]
    fn exists_early_exit() {
        let s = digraph();
        let d = complete_struct(&s, 10);
        let q = path_query(&s, "E", 6);
        assert!(NaiveCounter.exists(&q, &d));
        let d0 = Structure::new(Arc::clone(&s));
        assert!(!NaiveCounter.exists(&q, &d0));
    }

    #[test]
    fn for_each_hom_enumerates_all() {
        let s = digraph();
        let d = complete_struct(&s, 3);
        let q = path_query(&s, "E", 1);
        let mut homs = Vec::new();
        for_each_hom_limited(&q, &d, 0, |a| {
            homs.push(a.to_vec());
            true
        });
        assert_eq!(homs.len(), 9);
        homs.sort();
        homs.dedup();
        assert_eq!(homs.len(), 9);
    }

    #[test]
    fn for_each_hom_respects_limit() {
        let s = digraph();
        let d = complete_struct(&s, 3);
        let q = path_query(&s, "E", 1);
        let mut n = 0;
        for_each_hom_limited(&q, &d, 4, |_| {
            n += 1;
            true
        });
        assert_eq!(n, 4);
    }

    #[test]
    fn step_budget_stops_count() {
        use crate::cancel::CancelReason;
        let s = digraph();
        let d = complete_struct(&s, 8);
        let q = path_query(&s, "E", 5);
        // A tiny budget must trip; a generous one must agree with count().
        let tiny = EvalControl::new(3, None);
        assert_eq!(naive_try_count(&q, &d, &tiny), Err(Cancelled(CancelReason::BudgetExhausted)));
        let roomy = EvalControl::new(100_000_000, None);
        assert_eq!(naive_try_count(&q, &d, &roomy), Ok(naive_count(&q, &d)));
    }

    #[test]
    fn pre_cancelled_token_stops_enumeration() {
        use crate::cancel::CancelToken;
        let s = digraph();
        let d = complete_struct(&s, 6);
        let q = path_query(&s, "E", 6);
        let token = CancelToken::new();
        token.cancel();
        let ctl = EvalControl::new(0, Some(token));
        let mut n = 0u64;
        let r = try_for_each_hom_limited(&q, &d, 0, &ctl, |_| {
            n += 1;
            true
        });
        assert!(r.is_err());
        // Polls happen every CHECK_INTERVAL steps, so a bounded prefix may
        // have been visited before the trip.
        assert!(n < 10 * crate::cancel::CHECK_INTERVAL, "saw {n} homs");
    }

    #[test]
    fn budget_counts_inequality_enumeration() {
        use crate::cancel::CancelReason;
        let s = digraph();
        let d = complete_struct(&s, 50);
        // x ≠ y with neither in an atom: pure enumeration territory.
        let mut qb = bagcq_query::Query::builder(Arc::clone(&s));
        let x = qb.var("x");
        let y = qb.var("y");
        qb.neq(x, y);
        let q = qb.build();
        let tiny = EvalControl::new(10, None);
        assert_eq!(naive_try_count(&q, &d, &tiny), Err(Cancelled(CancelReason::BudgetExhausted)));
    }
}

#[cfg(test)]
mod ablation_tests {
    use super::*;
    use crate::backend::{BackendChoice, CountRequest};
    use bagcq_query::{path_query, QueryGen};
    use bagcq_structure::{SchemaBuilder, StructureGen};
    use std::sync::Arc;

    fn naive_count(q: &Query, d: &Structure) -> Nat {
        CountRequest::new(q, d).backend(BackendChoice::Naive).count()
    }

    #[test]
    fn enumerative_agrees_with_factored() {
        let mut b = SchemaBuilder::default();
        b.relation("E", 2);
        b.constant("a");
        let s = b.build();
        let qg = QueryGen { variables: 3, atoms: 3, constant_prob: 0.1, inequalities: 1 };
        let sg = StructureGen { extra_vertices: 3, density: 0.4, ..Default::default() };
        for seed in 0..15u64 {
            let q = qg.sample(&s, seed);
            let d = sg.sample(&s, seed + 1000);
            assert_eq!(NaiveCounter.count_enumerative(&q, &d), naive_count(&q, &d), "seed {seed}");
        }
    }

    #[test]
    fn enumerative_agrees_on_powers() {
        let mut b = SchemaBuilder::default();
        b.relation("E", 2);
        let s = b.build();
        let d =
            StructureGen { extra_vertices: 3, density: 0.5, ..Default::default() }.sample(&s, 3);
        let q = path_query(&s, "E", 1).power(2);
        assert_eq!(NaiveCounter.count_enumerative(&q, &d), naive_count(&q, &d));
        let _ = Arc::strong_count(&s);
    }
}
