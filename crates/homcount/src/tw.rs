//! The optimized counting engine: `#Hom` by dynamic programming over a
//! tree decomposition of the query's primal graph.
//!
//! For a query of treewidth `w` over a structure with `n` vertices, the DP
//! runs in roughly `O(#bags · n^{w+1})` — exponential in the *width*, not
//! in the number of variables, which is what separates it from
//! [`crate::NaiveCounter`] on low-width query families (paths, cycles,
//! stars, grids; experiment E-PERF1).

use crate::cancel::{Cancelled, EvalControl, Ticker};
use crate::common::{components, free_var_factor, inequality_ok, resolve, UNASSIGNED};
use crate::treedec::{decompose_min_fill, TreeDecomposition};
use bagcq_arith::{Accumulator, Nat};
use bagcq_query::{Query, Term};
use bagcq_structure::Structure;
use std::collections::{HashMap, HashSet};

/// Tree-decomposition dynamic-programming counting engine.
#[derive(Default, Clone, Copy, Debug)]
pub struct TreewidthCounter;

impl TreewidthCounter {
    /// The width min-fill found for this query's primal graph (diagnostics
    /// and bench labeling).
    pub fn decomposition_width(&self, q: &Query) -> usize {
        let comps = components(q);
        comps
            .comps
            .iter()
            .map(|(atom_idx, ineq_idx, vars)| {
                let (td, _) = decompose_component(q, atom_idx, ineq_idx, vars);
                td.width()
            })
            .max()
            .unwrap_or(0)
    }
}

/// The DP kernel, generic over the accumulator — see
/// [`crate::naive::try_count_generic`] for the `Nat`/`Acc` contract.
pub(crate) fn try_count_generic<A: Accumulator>(
    q: &Query,
    d: &Structure,
    ctl: &EvalControl,
) -> Result<Nat, Cancelled> {
    let comps = components(q);

    // Ground gates, as in the naive engine.
    let empty: Vec<u32> = vec![UNASSIGNED; q.var_count() as usize];
    for &i in &comps.ground_atoms {
        let a = &q.atoms()[i];
        let args: Vec<_> =
            a.args.iter().map(|t| bagcq_structure::Vertex(resolve(t, &empty, d))).collect();
        if !d.contains_atom(a.rel, &args) {
            return Ok(Nat::zero());
        }
    }
    for &i in &comps.ground_inequalities {
        let ineq = &q.inequalities()[i];
        if resolve(&ineq.lhs, &empty, d) == resolve(&ineq.rhs, &empty, d) {
            return Ok(Nat::zero());
        }
    }

    let mut ticker = ctl.ticker();
    let mut total = A::one();
    for (atom_idx, ineq_idx, vars) in &comps.comps {
        let c = count_component::<A>(q, d, atom_idx, ineq_idx, vars, &mut ticker)?;
        if c.is_zero() {
            return Ok(Nat::zero());
        }
        ctl.charge(c.heap_bytes())?;
        total.mul_assign_acc(&c);
    }
    if comps.free_vars > 0 {
        total.mul_assign_nat(&free_var_factor(
            d.vertex_count() as u64,
            comps.free_vars as u64,
            ctl,
        )?);
    }
    Ok(total.into_nat())
}

/// Builds the local primal graph and its decomposition for one component.
/// Returns the TD (over *local* variable indexes) and the local index of
/// each global variable.
pub(crate) fn decompose_component(
    q: &Query,
    atom_idx: &[usize],
    ineq_idx: &[usize],
    vars: &[u32],
) -> (TreeDecomposition, HashMap<u32, u32>) {
    let _span = bagcq_obs::span("homcount.treedec", "min-fill");
    let local: HashMap<u32, u32> = vars.iter().enumerate().map(|(i, &v)| (v, i as u32)).collect();
    let n = vars.len() as u32;
    let mut adj: Vec<HashSet<u32>> = vec![HashSet::new(); n as usize];
    let connect_all = |vs: &[u32], adj: &mut Vec<HashSet<u32>>| {
        for i in 0..vs.len() {
            for j in (i + 1)..vs.len() {
                if vs[i] != vs[j] {
                    adj[vs[i] as usize].insert(vs[j]);
                    adj[vs[j] as usize].insert(vs[i]);
                }
            }
        }
    };
    for &ai in atom_idx {
        let vs: Vec<u32> = q.atoms()[ai]
            .args
            .iter()
            .filter_map(|t| match t {
                Term::Var(v) => Some(local[&v.0]),
                Term::Const(_) => None,
            })
            .collect();
        connect_all(&vs, &mut adj);
    }
    for &ii in ineq_idx {
        let ineq = &q.inequalities()[ii];
        let mut vs = Vec::new();
        if let Term::Var(v) = ineq.lhs {
            vs.push(local[&v.0]);
        }
        if let Term::Var(v) = ineq.rhs {
            vs.push(local[&v.0]);
        }
        connect_all(&vs, &mut adj);
    }
    (decompose_min_fill(n, &adj), local)
}

fn count_component<A: Accumulator>(
    q: &Query,
    d: &Structure,
    atom_idx: &[usize],
    ineq_idx: &[usize],
    vars: &[u32],
    ticker: &mut Ticker<'_>,
) -> Result<A, Cancelled> {
    let _span = bagcq_obs::span("homcount.bagsweep", "dp");
    let (td, local) = decompose_component(q, atom_idx, ineq_idx, vars);
    let global: Vec<u32> = vars.to_vec(); // local index -> global var id

    // Assign constraints to bags: every bag checks all constraints whose
    // variables are fully inside it (checking is idempotent — constraints
    // are filters, so multiple checks are harmless and coverage is
    // guaranteed by the clique-containment property of tree
    // decompositions).
    let bag_has = |bag: &[u32], lv: u32| bag.binary_search(&lv).is_ok();
    let atom_vars: Vec<Vec<u32>> = atom_idx
        .iter()
        .map(|&ai| {
            q.atoms()[ai]
                .args
                .iter()
                .filter_map(|t| match t {
                    Term::Var(v) => Some(local[&v.0]),
                    Term::Const(_) => None,
                })
                .collect()
        })
        .collect();
    let ineq_vars: Vec<Vec<u32>> = ineq_idx
        .iter()
        .map(|&ii| {
            let ineq = &q.inequalities()[ii];
            let mut vs = Vec::new();
            if let Term::Var(v) = ineq.lhs {
                vs.push(local[&v.0]);
            }
            if let Term::Var(v) = ineq.rhs {
                vs.push(local[&v.0]);
            }
            vs
        })
        .collect();

    let bag_atoms: Vec<Vec<usize>> = td
        .bags
        .iter()
        .map(|bag| {
            (0..atom_idx.len())
                .filter(|&k| atom_vars[k].iter().all(|&lv| bag_has(bag, lv)))
                .collect()
        })
        .collect();
    let bag_ineqs: Vec<Vec<usize>> = td
        .bags
        .iter()
        .map(|bag| {
            (0..ineq_idx.len())
                .filter(|&k| ineq_vars[k].iter().all(|&lv| bag_has(bag, lv)))
                .collect()
        })
        .collect();

    // Sanity (debug builds): every constraint covered by some bag.
    debug_assert!(
        (0..atom_idx.len()).all(|k| (0..td.bags.len()).any(|b| bag_atoms[b].contains(&k)))
    );
    debug_assert!(
        (0..ineq_idx.len()).all(|k| (0..td.bags.len()).any(|b| bag_ineqs[b].contains(&k)))
    );

    // Bottom-up DP in post-order.
    let order = postorder(&td);
    // table[bag]: assignment of bag variables (in bag order) -> count of
    // extensions over the subtree below.
    let mut tables: Vec<Option<HashMap<Vec<u32>, A>>> = vec![None; td.bags.len()];

    for &b in &order {
        let bag = &td.bags[b];
        // Child aggregates keyed by the separator assignment.
        type ChildAgg<A> = (Vec<u32>, HashMap<Vec<u32>, A>);
        let child_aggs: Vec<ChildAgg<A>> = td.children[b]
            .iter()
            .map(|&c| {
                let sep: Vec<u32> =
                    td.bags[c].iter().copied().filter(|&lv| bag_has(bag, lv)).collect();
                let mut agg: HashMap<Vec<u32>, A> = HashMap::new();
                let child_bag = &td.bags[c];
                let sep_pos: Vec<usize> =
                    sep.iter().map(|lv| child_bag.binary_search(lv).unwrap()).collect();
                for (a, cnt) in tables[c].take().expect("child computed") {
                    let key: Vec<u32> = sep_pos.iter().map(|&i| a[i]).collect();
                    agg.entry(key).and_modify(|acc| acc.add_assign_acc(&cnt)).or_insert(cnt);
                }
                (sep, agg)
            })
            .collect();

        // Enumerate satisfying assignments of the bag.
        let mut table: HashMap<Vec<u32>, A> = HashMap::new();
        let mut assign_global: Vec<u32> = vec![UNASSIGNED; q.var_count() as usize];
        let mut current: Vec<u32> = vec![0; bag.len()];
        enumerate_bag(
            q,
            d,
            bag,
            &global,
            0,
            &bag_atoms[b],
            &bag_ineqs[b],
            atom_idx,
            ineq_idx,
            &mut assign_global,
            &mut current,
            ticker,
            &mut |bag_assign: &[u32]| {
                // Multiply in child aggregates.
                let mut weight = A::one();
                for (sep, agg) in &child_aggs {
                    let key: Vec<u32> =
                        sep.iter().map(|lv| bag_assign[bag.binary_search(lv).unwrap()]).collect();
                    match agg.get(&key) {
                        Some(w) => weight.mul_assign_acc(w),
                        None => return, // no extension below
                    }
                }
                table
                    .entry(bag_assign.to_vec())
                    .and_modify(|acc| acc.add_assign_acc(&weight))
                    .or_insert(weight);
            },
        )?;
        tables[b] = Some(table);
    }

    let root_table = tables[td.root].take().expect("root computed");
    let mut total = A::zero();
    for (_, w) in root_table {
        total.add_assign_acc(&w);
    }
    Ok(total)
}

fn postorder(td: &TreeDecomposition) -> Vec<usize> {
    let mut out = Vec::with_capacity(td.bags.len());
    let mut stack = vec![(td.root, false)];
    while let Some((b, visited)) = stack.pop() {
        if visited {
            out.push(b);
        } else {
            stack.push((b, true));
            for &c in &td.children[b] {
                stack.push((c, false));
            }
        }
    }
    out
}

/// Recursively assigns the bag's variables (in bag order), pruning with any
/// bag constraint that has become fully bound, and calls `emit` for every
/// satisfying bag assignment.
#[allow(clippy::too_many_arguments)]
fn enumerate_bag(
    q: &Query,
    d: &Structure,
    bag: &[u32],
    global: &[u32],
    i: usize,
    bag_atoms: &[usize],
    bag_ineqs: &[usize],
    atom_idx: &[usize],
    ineq_idx: &[usize],
    assign_global: &mut Vec<u32>,
    current: &mut Vec<u32>,
    ticker: &mut Ticker<'_>,
    emit: &mut impl FnMut(&[u32]),
) -> Result<(), Cancelled> {
    if i == bag.len() {
        emit(current);
        return Ok(());
    }
    let gvar = global[bag[i] as usize];
    for u in 0..d.vertex_count() {
        ticker.tick()?;
        assign_global[gvar as usize] = u;
        current[i] = u;
        // Check bag constraints that are fully bound among bag[0..=i].
        let bound_ok = {
            let is_bound = |lv: u32| bag[..=i].contains(&lv);
            bag_atoms.iter().all(|&k| {
                let a = &q.atoms()[atom_idx[k]];
                let fully = a.args.iter().all(|t| match t {
                    Term::Var(v) => {
                        // Global var -> local index within component.
                        // Bag constraints only contain bag vars.
                        bag.iter()
                            .position(|&lv| global[lv as usize] == v.0)
                            .map(|p| is_bound(bag[p]))
                            .unwrap_or(false)
                    }
                    Term::Const(_) => true,
                });
                if !fully {
                    return true;
                }
                let args: Vec<_> = a
                    .args
                    .iter()
                    .map(|t| bagcq_structure::Vertex(resolve(t, assign_global, d)))
                    .collect();
                d.contains_atom(a.rel, &args)
            }) && bag_ineqs
                .iter()
                .all(|&k| inequality_ok(&q.inequalities()[ineq_idx[k]], assign_global, d))
        };
        if bound_ok {
            enumerate_bag(
                q,
                d,
                bag,
                global,
                i + 1,
                bag_atoms,
                bag_ineqs,
                atom_idx,
                ineq_idx,
                assign_global,
                current,
                ticker,
                emit,
            )?;
        }
    }
    assign_global[gvar as usize] = UNASSIGNED;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{BackendChoice, CountError, CountRequest};
    use bagcq_query::{cycle_query, grid_query, path_query, star_query, QueryGen};
    use bagcq_structure::{SchemaBuilder, StructureGen, Vertex};
    use std::sync::Arc;

    fn naive_count(q: &Query, d: &Structure) -> Nat {
        CountRequest::new(q, d).backend(BackendChoice::Naive).count()
    }

    fn tw_count(q: &Query, d: &Structure) -> Nat {
        CountRequest::new(q, d).backend(BackendChoice::Treewidth).count()
    }

    fn tw_try_count(q: &Query, d: &Structure, ctl: &EvalControl) -> Result<Nat, Cancelled> {
        match CountRequest::new(q, d).backend(BackendChoice::Treewidth).control(ctl.clone()).run() {
            Ok(n) => Ok(n),
            Err(CountError::Cancelled(c)) => Err(c),
            Err(e) => panic!("treewidth backend only fails by cancellation: {e}"),
        }
    }

    fn digraph() -> Arc<bagcq_structure::Schema> {
        let mut b = SchemaBuilder::default();
        b.relation("E", 2);
        b.build()
    }

    fn cycle_struct(schema: &Arc<bagcq_structure::Schema>, n: u32) -> Structure {
        let e = schema.relation_by_name("E").unwrap();
        let mut d = Structure::new(Arc::clone(schema));
        d.add_vertices(n);
        for i in 0..n {
            d.add_atom(e, &[Vertex(i), Vertex((i + 1) % n)]);
        }
        d
    }

    #[test]
    fn agrees_with_naive_on_families() {
        let s = digraph();
        let d = cycle_struct(&s, 5);
        let mut d2 = d.clone();
        let e = s.relation_by_name("E").unwrap();
        d2.add_atom(e, &[Vertex(0), Vertex(0)]);
        d2.add_atom(e, &[Vertex(2), Vertex(0)]);
        for q in [
            path_query(&s, "E", 3),
            cycle_query(&s, "E", 4),
            star_query(&s, "E", 3),
            grid_query(&s, "E", 3, 2),
        ] {
            for dd in [&d, &d2] {
                assert_eq!(tw_count(&q, dd), naive_count(&q, dd), "query {q}");
            }
        }
    }

    #[test]
    fn agrees_with_naive_on_random_inputs() {
        let mut b = SchemaBuilder::default();
        b.relation("E", 2);
        b.relation("F", 2);
        b.constant("a");
        let s = b.build();
        let qg = QueryGen { variables: 5, atoms: 6, constant_prob: 0.15, inequalities: 1 };
        let sg = StructureGen { extra_vertices: 4, density: 0.4, ..Default::default() };
        for seed in 0..30u64 {
            let q = qg.sample(&s, seed);
            let d = sg.sample(&s, seed.wrapping_mul(31) + 7);
            assert_eq!(tw_count(&q, &d), naive_count(&q, &d), "seed {seed}, query {q}");
        }
    }

    #[test]
    fn width_diagnostics() {
        let s = digraph();
        assert_eq!(TreewidthCounter.decomposition_width(&path_query(&s, "E", 5)), 1);
        assert_eq!(TreewidthCounter.decomposition_width(&cycle_query(&s, "E", 5)), 2);
        // Grids: min-fill is a heuristic; just check it is near-optimal.
        let w = TreewidthCounter.decomposition_width(&grid_query(&s, "E", 3, 3));
        assert!((2..=4).contains(&w), "grid width {w}");
    }

    #[test]
    fn power_queries_stay_cheap() {
        // θ↑6 over a 6-cycle: component factorization must keep this fast
        // and exact: count = (#homs θ)^6.
        let s = digraph();
        let d = cycle_struct(&s, 6);
        let q = path_query(&s, "E", 2).power(6);
        let single = tw_count(&path_query(&s, "E", 2), &d);
        assert_eq!(tw_count(&q, &d), single.pow_u64(6));
    }

    #[test]
    fn inequality_queries_agree() {
        let s = digraph();
        let d = cycle_struct(&s, 4);
        let mut qb = bagcq_query::Query::builder(Arc::clone(&s));
        let x = qb.var("x");
        let y = qb.var("y");
        let z = qb.var("z");
        qb.atom_named("E", &[x, y]).atom_named("E", &[y, z]).neq(x, z);
        let q = qb.build();
        assert_eq!(tw_count(&q, &d), naive_count(&q, &d));
    }

    #[test]
    fn step_budget_stops_dp() {
        use crate::cancel::{CancelReason, Cancelled, EvalControl};
        let s = digraph();
        let d = cycle_struct(&s, 40);
        let q = grid_query(&s, "E", 4, 4);
        let tiny = EvalControl::new(5, None);
        assert_eq!(tw_try_count(&q, &d, &tiny), Err(Cancelled(CancelReason::BudgetExhausted)));
        let roomy = EvalControl::new(500_000_000, None);
        assert_eq!(tw_try_count(&q, &d, &roomy), Ok(tw_count(&q, &d)));
    }

    #[test]
    fn empty_and_ground_queries() {
        let mut b = SchemaBuilder::default();
        b.relation("E", 2);
        b.constant("a");
        let s = b.build();
        let e = s.relation_by_name("E").unwrap();
        let q_empty = bagcq_query::Query::empty(Arc::clone(&s));
        let mut d = Structure::new(Arc::clone(&s));
        assert_eq!(tw_count(&q_empty, &d), Nat::one());

        let mut qb = bagcq_query::Query::builder(Arc::clone(&s));
        let a = qb.constant("a");
        qb.atom_named("E", &[a, a]);
        let q_ground = qb.build();
        assert_eq!(tw_count(&q_ground, &d), Nat::zero());
        let av = d.constant_vertex(s.constant_by_name("a").unwrap());
        d.add_atom(e, &[av, av]);
        assert_eq!(tw_count(&q_ground, &d), Nat::one());
    }
}
