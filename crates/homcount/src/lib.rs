//! # bagcq-homcount
//!
//! Bag-semantics evaluation of boolean conjunctive queries:
//! `ψ(D) = |Hom(ψ, D)|` (Section 2.1 of Marcinkowski & Orda, PODS 2024).
//!
//! Every count goes through one API — a [`CountRequest`] naming the
//! query, the structure, a [`BackendChoice`], and optional cancellation
//! controls — behind which four [`CountBackend`] kernels register:
//!
//! * [`NaiveCounter`] — indexed backtracking enumeration with component
//!   factorization (the reference / baseline engine);
//! * [`TreewidthCounter`] — the textbook `#Hom` dynamic program over a
//!   min-fill tree decomposition of the query's primal graph
//!   ([`TreeDecomposition`]), exponential in width instead of variable
//!   count;
//! * [`FastNaiveCounter`] / [`FastTreewidthCounter`] — the same kernels
//!   over widening `u64 → u128 → Nat` accumulators
//!   ([`bagcq_arith::Acc`]): machine-word speed while counts fit,
//!   checked promotion on overflow, bit-identical results always.
//!
//! `BackendChoice::Auto` (the default) picks a fast kernel by
//! decomposition width and a per-component count upper bound.
//!
//! On top of raw counting:
//!
//! * [`eval_power_query`] evaluates symbolic `∏ θᵢ↑eᵢ` queries into
//!   certified [`bagcq_arith::Magnitude`]s (how the Theorem 1 query `φ_b`
//!   with astronomical exponents is handled);
//! * [`find_onto_hom`] / [`verify_onto_hom`] produce and check the
//!   Lemma 12 onto-homomorphism certificates that prove
//!   `ρ_s(D) ≤ ρ_b(D)` for all `D`;
//! * [`for_each_hom_limited`] exhaustively enumerates homomorphisms (the
//!   primitive behind existence checks and certificate searches);
//! * [`CancelToken`] / [`EvalControl`] give every counting loop
//!   cooperative cancellation: deadlines, step budgets, and memory
//!   gauges, carried on the request and reported through the unified
//!   [`CountError`].
//!
//! ```
//! use bagcq_homcount::CountRequest;
//! use bagcq_query::{path_query, Query};
//! use bagcq_structure::{Schema, Structure, Vertex};
//! use bagcq_arith::Nat;
//!
//! let mut sb = Schema::builder();
//! let e = sb.relation("E", 2);
//! let schema = sb.build();
//! let mut d = Structure::new(std::sync::Arc::clone(&schema));
//! d.add_vertices(3);
//! d.add_atom(e, &[Vertex(0), Vertex(1)]);
//! d.add_atom(e, &[Vertex(1), Vertex(2)]);
//!
//! // ψ(D) = |Hom(ψ, D)| — bag semantics (Section 2.1 of the paper):
//! let two_walks = path_query(&schema, "E", 2);
//! assert_eq!(CountRequest::new(&two_walks, &d).count(), Nat::one());
//!
//! // Lemma 1: disjoint conjunction multiplies counts.
//! let edges = path_query(&schema, "E", 1);
//! let conj = edges.disjoint_conj(&two_walks);
//! assert_eq!(CountRequest::new(&conj, &d).count(), Nat::from_u64(2));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod backend;
mod cancel;
mod common;
mod eval;
mod naive;
mod onto;
mod output_eval;
mod treedec;
mod tw;

pub use backend::{
    backend_for, registered_backends, BackendChoice, CountBackend, CountError, CountRequest,
    FastNaiveCounter, FastTreewidthCounter,
};
pub use cancel::{
    CancelReason, CancelToken, Cancelled, CheckpointHook, EvalControl, MemoryGauge, Ticker,
    CHECK_INTERVAL,
};
pub use eval::{eval_power_query, try_eval_power_query, Engine, EvalOptions};
pub use naive::{for_each_hom_limited, try_for_each_hom_limited, NaiveCounter};
pub use onto::{find_onto_hom, verify_onto_hom, OntoHom};
pub use output_eval::{answer_bag, answer_bag_contained, output_contained_on, AnswerBag};
pub use treedec::{decompose_min_fill, TreeDecomposition};
pub use tw::TreewidthCounter;
