//! The unified counting API: [`CountBackend`] implementations behind a
//! [`CountRequest`] builder, plus the one [`CountError`] hierarchy every
//! layer above speaks.
//!
//! Historically the crate grew three parallel entry-point families
//! (`count`/`count_with`/`try_count_with` free functions plus the
//! [`NaiveCounter`]/[`TreewidthCounter`] inherent methods), which the
//! engine, the containment checker, and the experiment binaries each wired
//! up slightly differently. This module collapses them: every count is a
//! [`CountRequest`] — query, structure, backend preference, cancellation
//! controls — and every registered kernel sits behind the [`CountBackend`]
//! trait. The old entry points survive as `#[deprecated]` shims.
//!
//! Four kernels register ([`BackendChoice`]):
//!
//! * `Naive` / `Treewidth` — the original arbitrary-precision [`Nat`]
//!   paths, kept as the cross-validation reference;
//! * `FastNaive` / `FastTreewidth` — the same kernels monomorphized over
//!   the widening [`bagcq_arith::Acc`] accumulator: `u64` while counts
//!   fit, checked promotion to `u128` and then `Nat` on overflow.
//!   Promotion is per *component* (Lemma 1 factors independently), so one
//!   astronomically large factor does not drag the others off the machine
//!   word. Never wrong, only fast.
//! * `Auto` — picks between the fast kernels by decomposition width and a
//!   cheap per-component count upper bound (see [`BackendChoice::resolve`]).
//!
//! The `BAGCQ_BACKEND` environment variable (values `naive`, `treewidth`,
//! `fast-naive`, `fast-treewidth`, `auto`) overrides what `Auto` resolves
//! to — the CI backend matrix forces each kernel through every `Auto` call
//! site this way. Explicitly pinned backends are never overridden, so
//! differential tests stay meaningful under the matrix.

use crate::cancel::{CancelReason, Cancelled, EvalControl, MemoryGauge};
use crate::eval::Engine;
use crate::naive::{self, NaiveCounter};
use crate::tw::{self, TreewidthCounter};
use bagcq_arith::{Acc, Nat};
use bagcq_query::Query;
use bagcq_structure::Structure;
use std::fmt;
use std::str::FromStr;
use std::sync::{Arc, OnceLock};

/// Typed failure of one counting request.
///
/// This is the single error hierarchy of the counting stack: budget and
/// deadline denial arrive as [`CountError::Cancelled`] (see
/// [`CancelReason`] for which), backend failure as
/// [`CountError::Mismatch`] or [`CountError::Transient`]. The engine and
/// containment crates re-export this type rather than defining their own,
/// so callers match one error family end to end.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CountError {
    /// The evaluation was cancelled (deadline, step budget, memory
    /// budget, engine shutdown, or a spurious injected cancellation — see
    /// [`CancelReason`]).
    Cancelled(Cancelled),
    /// Dual-engine cross-validation disagreed: one of the two counting
    /// engines has a bug, and no number can be trusted. Terminal.
    Mismatch(String),
    /// A transient infrastructure failure worth retrying.
    Transient(String),
}

impl fmt::Display for CountError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CountError::Cancelled(c) => write!(f, "{c}"),
            CountError::Mismatch(msg) => write!(f, "cross-validation mismatch: {msg}"),
            CountError::Transient(msg) => write!(f, "transient failure: {msg}"),
        }
    }
}

impl std::error::Error for CountError {}

impl From<Cancelled> for CountError {
    fn from(c: Cancelled) -> Self {
        CountError::Cancelled(c)
    }
}

impl CountError {
    /// `true` for failures a retry may cure: transient errors and
    /// spurious cancellations (a cancellation nobody's deadline or budget
    /// explains).
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            CountError::Transient(_) | CountError::Cancelled(Cancelled(CancelReason::Cancelled))
        )
    }

    /// The cancellation reason, when this is a budget/deadline denial.
    pub fn cancel_reason(&self) -> Option<CancelReason> {
        match self {
            CountError::Cancelled(Cancelled(r)) => Some(*r),
            _ => None,
        }
    }
}

/// Which kernel a [`CountRequest`] runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum BackendChoice {
    /// Pick a fast kernel by decomposition width and a per-component
    /// count upper bound (the default; see [`BackendChoice::resolve`]).
    #[default]
    Auto,
    /// Reference backtracking kernel, `Nat` accumulators throughout.
    Naive,
    /// Tree-decomposition DP kernel, `Nat` accumulators throughout.
    Treewidth,
    /// Backtracking kernel over the widening machine-word accumulator.
    FastNaive,
    /// Tree-decomposition DP over the widening machine-word accumulator.
    FastTreewidth,
}

impl BackendChoice {
    /// Every choice, `Auto` included (the CI backend matrix iterates
    /// this).
    pub const ALL: [BackendChoice; 5] = [
        BackendChoice::Auto,
        BackendChoice::Naive,
        BackendChoice::Treewidth,
        BackendChoice::FastNaive,
        BackendChoice::FastTreewidth,
    ];

    /// The four concrete registered kernels (what `Auto` resolves into,
    /// plus the reference paths).
    pub const REGISTERED: [BackendChoice; 4] = [
        BackendChoice::Naive,
        BackendChoice::Treewidth,
        BackendChoice::FastNaive,
        BackendChoice::FastTreewidth,
    ];

    /// Stable lowercase label (also the `BAGCQ_BACKEND` syntax).
    pub fn label(self) -> &'static str {
        match self {
            BackendChoice::Auto => "auto",
            BackendChoice::Naive => "naive",
            BackendChoice::Treewidth => "treewidth",
            BackendChoice::FastNaive => "fast-naive",
            BackendChoice::FastTreewidth => "fast-treewidth",
        }
    }

    /// The algorithm family this choice runs (fast variants share their
    /// reference kernel's family) — what cross-validation pairs against.
    pub fn family(self) -> Engine {
        match self {
            BackendChoice::Naive | BackendChoice::FastNaive => Engine::Naive,
            BackendChoice::Treewidth | BackendChoice::FastTreewidth | BackendChoice::Auto => {
                Engine::Treewidth
            }
        }
    }

    /// Resolves `Auto` to a concrete kernel for this `(query, structure)`
    /// pair; concrete choices return themselves unchanged.
    ///
    /// `Auto` always lands on a fast kernel (promotion makes them exact,
    /// so there is no correctness reason to prefer `Nat`), choosing naive
    /// vs. treewidth by comparing, per connected component, a cheap count
    /// upper bound (the product of the matched relations' sizes, capped by
    /// `n^{vars}` — which bounds the backtracking work) against the DP
    /// cost `#bags · n^{w+1}` of the min-fill decomposition. The
    /// `BAGCQ_BACKEND` environment variable overrides the outcome.
    pub fn resolve(self, q: &Query, d: &Structure) -> BackendChoice {
        if self != BackendChoice::Auto {
            return self;
        }
        match env_override() {
            Some(BackendChoice::Auto) | None => auto_choice(q, d),
            Some(forced) => forced,
        }
    }
}

impl fmt::Display for BackendChoice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl FromStr for BackendChoice {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().replace('_', "-").as_str() {
            "auto" => Ok(BackendChoice::Auto),
            "naive" => Ok(BackendChoice::Naive),
            "treewidth" | "tw" => Ok(BackendChoice::Treewidth),
            "fast-naive" | "fastnaive" => Ok(BackendChoice::FastNaive),
            "fast-treewidth" | "fasttreewidth" | "fast-tw" => Ok(BackendChoice::FastTreewidth),
            other => Err(format!(
                "unknown backend {other:?} (expected auto|naive|treewidth|fast-naive|fast-treewidth)"
            )),
        }
    }
}

/// The legacy two-engine enum maps onto the `Nat` reference kernels, so
/// pre-redesign call sites (`Job::count_with(Engine::Naive, ..)`) keep
/// their exact behavior.
impl From<Engine> for BackendChoice {
    fn from(e: Engine) -> Self {
        match e {
            Engine::Naive => BackendChoice::Naive,
            Engine::Treewidth => BackendChoice::Treewidth,
        }
    }
}

/// `BAGCQ_BACKEND` override for `Auto` resolution, parsed once per
/// process.
fn env_override() -> Option<BackendChoice> {
    static OVERRIDE: OnceLock<Option<BackendChoice>> = OnceLock::new();
    *OVERRIDE.get_or_init(|| match std::env::var("BAGCQ_BACKEND") {
        Ok(raw) => match raw.parse::<BackendChoice>() {
            Ok(choice) => Some(choice),
            Err(e) => {
                eprintln!("warning: ignoring BAGCQ_BACKEND: {e}");
                None
            }
        },
        Err(_) => None,
    })
}

/// Caps the log-space cost estimates so summing them in `f64` stays
/// finite (anything this large loses to anything smaller either way).
const COST_LOG_CAP: f64 = 400.0;

/// Width-and-size heuristic behind `Auto`: per component, compare the
/// count upper bound driving backtracking against the DP's bag sweep.
fn auto_choice(q: &Query, d: &Structure) -> BackendChoice {
    let comps = crate::common::components(q);
    let log_n = (d.vertex_count().max(2) as f64).log2();
    let mut naive_cost = 0.0f64;
    let mut tw_cost = 0.0f64;
    for (atom_idx, ineq_idx, vars) in &comps.comps {
        // Count upper bound: product of matched relation sizes, capped by
        // n^{vars} — both bound the assignments backtracking can visit.
        let product_log: f64 =
            atom_idx.iter().map(|&ai| (d.atom_count(q.atoms()[ai].rel).max(1) as f64).log2()).sum();
        let dom_log = vars.len() as f64 * log_n;
        let ub_log = if atom_idx.is_empty() { dom_log } else { product_log.min(dom_log) };
        naive_cost += ub_log.min(COST_LOG_CAP).exp2();

        let (td, _) = tw::decompose_component(q, atom_idx, ineq_idx, vars);
        let tw_log = (td.bags.len().max(1) as f64).log2() + (td.width() as f64 + 1.0) * log_n;
        tw_cost += tw_log.min(COST_LOG_CAP).exp2();
    }
    if tw_cost < naive_cost {
        BackendChoice::FastTreewidth
    } else {
        BackendChoice::FastNaive
    }
}

/// A registered counting kernel.
///
/// Implementations must be exact: every backend returns the same number
/// for the same `(query, structure)` pair (the fast kernels guarantee it
/// by checked promotion, and the differential test suite enforces it).
pub trait CountBackend: Send + Sync {
    /// Stable backend name (matches [`BackendChoice::label`]).
    fn name(&self) -> &'static str;

    /// Counts `|Hom(q, d)|` under cooperative cancellation controls.
    fn try_count(&self, q: &Query, d: &Structure, ctl: &EvalControl) -> Result<Nat, CountError>;
}

impl CountBackend for NaiveCounter {
    fn name(&self) -> &'static str {
        "naive"
    }

    fn try_count(&self, q: &Query, d: &Structure, ctl: &EvalControl) -> Result<Nat, CountError> {
        Ok(naive::try_count_generic::<Nat>(q, d, ctl)?)
    }
}

impl CountBackend for TreewidthCounter {
    fn name(&self) -> &'static str {
        "treewidth"
    }

    fn try_count(&self, q: &Query, d: &Structure, ctl: &EvalControl) -> Result<Nat, CountError> {
        Ok(tw::try_count_generic::<Nat>(q, d, ctl)?)
    }
}

/// Machine-word fast-path variant of [`NaiveCounter`]: same backtracking
/// kernel, widening `u64 → u128 → Nat` accumulators.
#[derive(Default, Clone, Copy, Debug)]
pub struct FastNaiveCounter;

impl CountBackend for FastNaiveCounter {
    fn name(&self) -> &'static str {
        "fast-naive"
    }

    fn try_count(&self, q: &Query, d: &Structure, ctl: &EvalControl) -> Result<Nat, CountError> {
        Ok(naive::try_count_generic::<Acc>(q, d, ctl)?)
    }
}

/// Machine-word fast-path variant of [`TreewidthCounter`]: same DP
/// kernel, widening `u64 → u128 → Nat` accumulators in the bag tables.
#[derive(Default, Clone, Copy, Debug)]
pub struct FastTreewidthCounter;

impl CountBackend for FastTreewidthCounter {
    fn name(&self) -> &'static str {
        "fast-treewidth"
    }

    fn try_count(&self, q: &Query, d: &Structure, ctl: &EvalControl) -> Result<Nat, CountError> {
        Ok(tw::try_count_generic::<Acc>(q, d, ctl)?)
    }
}

/// The kernel registered for a concrete choice.
///
/// # Panics
///
/// On [`BackendChoice::Auto`], which only resolves against a concrete
/// `(query, structure)` pair — call [`BackendChoice::resolve`] first.
pub fn backend_for(choice: BackendChoice) -> &'static dyn CountBackend {
    static NAIVE: NaiveCounter = NaiveCounter;
    static TREEWIDTH: TreewidthCounter = TreewidthCounter;
    static FAST_NAIVE: FastNaiveCounter = FastNaiveCounter;
    static FAST_TREEWIDTH: FastTreewidthCounter = FastTreewidthCounter;
    match choice {
        BackendChoice::Naive => &NAIVE,
        BackendChoice::Treewidth => &TREEWIDTH,
        BackendChoice::FastNaive => &FAST_NAIVE,
        BackendChoice::FastTreewidth => &FAST_TREEWIDTH,
        BackendChoice::Auto => panic!("Auto must be resolved against a query/structure pair"),
    }
}

/// Every registered kernel with its choice tag — the paper-claims
/// conformance suite and the benches iterate this.
pub fn registered_backends() -> [(&'static dyn CountBackend, BackendChoice); 4] {
    BackendChoice::REGISTERED.map(|c| (backend_for(c), c))
}

/// One homomorphism count, built up fluently: query and structure plus a
/// backend preference and cancellation controls.
///
/// ```
/// use bagcq_homcount::{BackendChoice, CountRequest};
/// use bagcq_query::path_query;
/// use bagcq_structure::{SchemaBuilder, Structure, Vertex};
/// use std::sync::Arc;
///
/// let mut b = SchemaBuilder::default();
/// let e = b.relation("E", 2);
/// let schema = b.build();
/// let mut d = Structure::new(Arc::clone(&schema));
/// d.add_vertices(3);
/// for i in 0..3 {
///     for j in 0..3 {
///         d.add_atom(e, &[Vertex(i), Vertex(j)]);
///     }
/// }
/// let q = path_query(&schema, "E", 2);
/// let auto = CountRequest::new(&q, &d).count();
/// let pinned = CountRequest::new(&q, &d).backend(BackendChoice::Naive).count();
/// assert_eq!(auto, pinned); // backends are exact: all agree
/// ```
#[derive(Clone, Debug)]
pub struct CountRequest<'a> {
    query: &'a Query,
    database: &'a Structure,
    backend: BackendChoice,
    control: EvalControl,
}

impl<'a> CountRequest<'a> {
    /// A request with the default backend ([`BackendChoice::Auto`]) and
    /// unlimited controls.
    pub fn new(query: &'a Query, database: &'a Structure) -> Self {
        CountRequest {
            query,
            database,
            backend: BackendChoice::Auto,
            control: EvalControl::unlimited(),
        }
    }

    /// Sets the backend preference ([`Engine`] values are accepted and
    /// map to the `Nat` reference kernels).
    pub fn backend(mut self, backend: impl Into<BackendChoice>) -> Self {
        self.backend = backend.into();
        self
    }

    /// Installs full cancellation controls (budget, token, checkpoint
    /// hook, memory gauge).
    pub fn control(mut self, control: EvalControl) -> Self {
        self.control = control;
        self
    }

    /// Sets the step budget (`0` = unlimited) on the current controls.
    pub fn step_budget(mut self, steps: u64) -> Self {
        self.control = self.control.with_step_budget(steps);
        self
    }

    /// Installs a cancellation token on the current controls.
    pub fn cancel(mut self, token: crate::cancel::CancelToken) -> Self {
        self.control = self.control.with_cancel(token);
        self
    }

    /// Installs a memory gauge on the current controls.
    pub fn memory_gauge(mut self, gauge: Arc<dyn MemoryGauge>) -> Self {
        self.control = self.control.with_memory_gauge(gauge);
        self
    }

    /// The concrete kernel this request will run (resolves `Auto` against
    /// the query/structure pair — diagnostics, cache keys, bench labels).
    pub fn resolved_backend(&self) -> BackendChoice {
        self.backend.resolve(self.query, self.database)
    }

    /// Runs the count under the configured controls.
    pub fn run(&self) -> Result<Nat, CountError> {
        // Entry checkpoint: small queries may never reach a ticker poll
        // boundary, so fault-injection hooks get at least one shot per
        // count.
        self.control.checkpoint("homcount/count")?;
        let resolved = self.resolved_backend();
        let _span = bagcq_obs::span("homcount.request", resolved.label());
        backend_for(resolved).try_count(self.query, self.database, &self.control)
    }

    /// Runs the count, panicking on cancellation — the infallible
    /// convenience for requests whose controls cannot trip (the default).
    pub fn count(&self) -> Nat {
        self.run().expect("count failed under supposedly non-tripping controls")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bagcq_query::{cycle_query, grid_query, path_query};
    use bagcq_structure::{SchemaBuilder, Vertex};
    use std::sync::Arc;

    fn complete(n: u32) -> (Arc<bagcq_structure::Schema>, Structure) {
        let mut b = SchemaBuilder::default();
        let e = b.relation("E", 2);
        let s = b.build();
        let mut d = Structure::new(Arc::clone(&s));
        d.add_vertices(n);
        for i in 0..n {
            for j in 0..n {
                d.add_atom(e, &[Vertex(i), Vertex(j)]);
            }
        }
        (s, d)
    }

    #[test]
    fn all_backends_agree_on_basics() {
        let (s, d) = complete(4);
        for q in [
            path_query(&s, "E", 3),
            cycle_query(&s, "E", 4),
            grid_query(&s, "E", 2, 3),
            path_query(&s, "E", 1).power(3),
        ] {
            let reference = CountRequest::new(&q, &d).backend(BackendChoice::Naive).count();
            for (backend, choice) in registered_backends() {
                let got =
                    backend.try_count(&q, &d, &EvalControl::unlimited()).expect("unlimited count");
                assert_eq!(got, reference, "backend {choice} on {q}");
            }
            assert_eq!(CountRequest::new(&q, &d).count(), reference, "auto on {q}");
        }
    }

    #[test]
    fn labels_round_trip() {
        for choice in BackendChoice::ALL {
            assert_eq!(choice.label().parse::<BackendChoice>(), Ok(choice));
        }
        assert!("nonsense".parse::<BackendChoice>().is_err());
        assert_eq!("fast_naive".parse::<BackendChoice>(), Ok(BackendChoice::FastNaive));
        assert_eq!("TW".parse::<BackendChoice>(), Ok(BackendChoice::Treewidth));
    }

    #[test]
    fn engine_maps_to_reference_kernels() {
        assert_eq!(BackendChoice::from(Engine::Naive), BackendChoice::Naive);
        assert_eq!(BackendChoice::from(Engine::Treewidth), BackendChoice::Treewidth);
    }

    #[test]
    fn auto_resolves_to_a_fast_kernel() {
        let (s, d) = complete(3);
        let q = path_query(&s, "E", 4);
        let resolved = BackendChoice::Auto.resolve(&q, &d);
        assert!(
            matches!(resolved, BackendChoice::FastNaive | BackendChoice::FastTreewidth),
            "auto resolved to {resolved}"
        );
        // Concrete choices resolve to themselves.
        assert_eq!(BackendChoice::Naive.resolve(&q, &d), BackendChoice::Naive);
    }

    #[test]
    fn auto_prefers_treewidth_on_long_low_width_queries() {
        // A long path has width 1: the DP cost #bags·n² beats the
        // relation-product upper bound once the path is long and the
        // structure dense.
        let (s, d) = complete(8);
        let q = path_query(&s, "E", 12);
        assert_eq!(BackendChoice::Auto.resolve(&q, &d), BackendChoice::FastTreewidth);
    }

    #[test]
    fn step_budget_denial_arrives_as_count_error() {
        let (s, d) = complete(8);
        let q = path_query(&s, "E", 5);
        let err = CountRequest::new(&q, &d)
            .backend(BackendChoice::FastNaive)
            .step_budget(3)
            .run()
            .unwrap_err();
        assert_eq!(err.cancel_reason(), Some(CancelReason::BudgetExhausted));
        assert!(!err.is_transient());
    }

    #[test]
    fn cancel_token_trips_request() {
        use crate::cancel::CancelToken;
        let (s, d) = complete(6);
        let q = path_query(&s, "E", 6);
        let token = CancelToken::new();
        token.cancel();
        // Pin the backtracking kernel: the DP finishes this query in fewer
        // than CHECK_INTERVAL ticks, so the token would never be polled.
        let err = CountRequest::new(&q, &d)
            .backend(BackendChoice::FastNaive)
            .cancel(token)
            .run()
            .unwrap_err();
        assert!(matches!(err, CountError::Cancelled(_)));
    }
}
