//! Evaluation of symbolic [`PowerQuery`]s into certified [`Magnitude`]s.
//!
//! `Φ = ∏ θᵢ↑eᵢ` evaluates as `Φ(D) = ∏ θᵢ(D)^{eᵢ}` (Lemma 1 +
//! Definition 2). Each base is counted exactly once through the
//! [`CountRequest`] API; the powers and products are assembled in
//! [`Magnitude`] arithmetic so the result stays exact while it fits a bit
//! budget and degrades to a certified enclosure beyond that — which is how
//! `φ_b = π_b ∧̄ ζ_b ∧̄ δ_b` with its astronomical exponent `C` is
//! evaluated at all.
//!
//! The free-function counting entry points that used to live here
//! (`count`, `count_with`, `try_count_with`) are gone: [`CountRequest`]
//! is the single counting surface — see [`crate::backend`].

use crate::backend::{BackendChoice, CountError, CountRequest};
use crate::cancel::{CancelToken, Cancelled, EvalControl};
use crate::common::nat_bytes;
use bagcq_arith::{Magnitude, Nat, DEFAULT_EXACT_BITS};
use bagcq_query::PowerQuery;
use bagcq_structure::Structure;

/// The two original counting algorithms (legacy selector).
///
/// Kept for call sites predating [`BackendChoice`]; `Engine` values
/// convert into the `Nat` reference kernels via
/// `BackendChoice::from(engine)`, and [`BackendChoice::family`] maps every
/// backend (fast variants included) back onto its `Engine` family for
/// cross-validation pairing.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Engine {
    /// Reference backtracking engine.
    Naive,
    /// Tree-decomposition dynamic programming (default).
    #[default]
    Treewidth,
}

/// Evaluation options.
#[derive(Clone, Debug)]
pub struct EvalOptions {
    /// Backend preference for counting base queries.
    pub backend: BackendChoice,
    /// Bit budget below which magnitudes stay exact.
    pub exact_bits: u64,
    /// Step budget for the counting loops (`0` = unlimited). Only the
    /// `try_*` entry points report exhaustion; the infallible ones require
    /// this to be `0`.
    pub step_budget: u64,
    /// Cooperative cancellation token (optional). As with `step_budget`,
    /// meaningful through the `try_*` entry points.
    pub cancel: Option<CancelToken>,
}

impl EvalOptions {
    /// The cancellation controls these options describe.
    pub fn control(&self) -> EvalControl {
        EvalControl::new(self.step_budget, self.cancel.clone())
    }
}

impl Default for EvalOptions {
    fn default() -> Self {
        EvalOptions {
            backend: BackendChoice::Auto,
            exact_bits: DEFAULT_EXACT_BITS,
            step_budget: 0,
            cancel: None,
        }
    }
}

/// Evaluates a symbolic power query on a database.
///
/// Ignores any budget/token in `opts` (it cannot report cancellation);
/// use [`try_eval_power_query`] to evaluate under controls.
pub fn eval_power_query(pq: &PowerQuery, d: &Structure, opts: &EvalOptions) -> Magnitude {
    let _span = bagcq_obs::span("homcount.power", "eval");
    let mut acc = Magnitude::exact_with_budget(Nat::one(), opts.exact_bits);
    for f in pq.factors() {
        let base = CountRequest::new(&f.base, d).backend(opts.backend).count();
        let m = Magnitude::exact_with_budget(base, opts.exact_bits).pow(&f.exponent);
        acc = acc.mul(&m);
    }
    acc
}

/// Evaluates a symbolic power query under the budget/token carried in
/// `opts` (each counted factor gets the full step budget; the token is
/// shared across all of them).
pub fn try_eval_power_query(
    pq: &PowerQuery,
    d: &Structure,
    opts: &EvalOptions,
) -> Result<Magnitude, Cancelled> {
    let ctl = opts.control();
    let _span = bagcq_obs::span("homcount.power", "eval");
    let mut acc = Magnitude::exact_with_budget(Nat::one(), opts.exact_bits);
    for f in pq.factors() {
        ctl.checkpoint("homcount/power-factor")?;
        let base =
            match CountRequest::new(&f.base, d).backend(opts.backend).control(ctl.clone()).run() {
                Ok(n) => n,
                Err(CountError::Cancelled(c)) => return Err(c),
                Err(e) => unreachable!("plain kernels only fail by cancellation: {e}"),
            };
        let m = Magnitude::exact_with_budget(base, opts.exact_bits).pow(&f.exponent);
        // Exact magnitudes carry their Nat on the heap; intervals are a
        // couple of machine words. Charge before accumulating.
        ctl.charge(m.as_exact().map_or(16, nat_bytes))?;
        acc = acc.mul(&m);
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bagcq_arith::CertOrd;
    use bagcq_query::path_query;
    use bagcq_structure::{SchemaBuilder, Vertex};
    use std::sync::Arc;

    fn complete(n: u32) -> (Arc<bagcq_structure::Schema>, Structure) {
        let mut b = SchemaBuilder::default();
        let e = b.relation("E", 2);
        let s = b.build();
        let mut d = Structure::new(Arc::clone(&s));
        d.add_vertices(n);
        for i in 0..n {
            for j in 0..n {
                d.add_atom(e, &[Vertex(i), Vertex(j)]);
            }
        }
        (s, d)
    }

    #[test]
    fn symbolic_matches_expanded() {
        let (s, d) = complete(3);
        let q = path_query(&s, "E", 1); // 9 homs
        let pq = PowerQuery::power(q.clone(), Nat::from_u64(4));
        let symbolic = eval_power_query(&pq, &d, &EvalOptions::default());
        let flat = pq.expand(100).unwrap();
        let direct = CountRequest::new(&flat, &d).count();
        assert_eq!(symbolic.as_exact(), Some(&direct));
        assert_eq!(direct, Nat::from_u64(9).pow_u64(4));
    }

    #[test]
    fn huge_exponent_certified() {
        let (s, d) = complete(2);
        let q = path_query(&s, "E", 1); // 4 homs
        let huge = Nat::from_u64(10_000_000);
        let pq = PowerQuery::power(q, huge);
        let m = eval_power_query(&pq, &d, &EvalOptions::default());
        assert!(!m.is_exact());
        // 4^10^7 = 2^(2·10^7): certifiably bigger than 2^10^7 and smaller
        // than 2^(3·10^7).
        let below = Magnitude::from_u64(2).pow(&Nat::from_u64(10_000_000));
        let above = Magnitude::from_u64(2).pow(&Nat::from_u64(30_000_000));
        assert_eq!(m.cmp_cert(&below), CertOrd::Greater);
        assert_eq!(m.cmp_cert(&above), CertOrd::Less);
    }

    #[test]
    fn zero_base_collapses() {
        let (s, _) = complete(3);
        let empty_d = Structure::new(Arc::clone(&s));
        let q = path_query(&s, "E", 1);
        let pq = PowerQuery::power(q, Nat::from_u64(1_000_000_000));
        let m = eval_power_query(&pq, &empty_d, &EvalOptions::default());
        assert_eq!(m.as_exact(), Some(&Nat::zero()));
    }

    #[test]
    fn engines_agree() {
        let (s, d) = complete(3);
        let q = path_query(&s, "E", 3);
        assert_eq!(
            CountRequest::new(&q, &d).backend(Engine::Naive).count(),
            CountRequest::new(&q, &d).backend(Engine::Treewidth).count()
        );
    }

    #[test]
    fn power_eval_respects_backend_choice() {
        let (s, d) = complete(3);
        let q = path_query(&s, "E", 2);
        let pq = PowerQuery::power(q, Nat::from_u64(3));
        let reference = eval_power_query(
            &pq,
            &d,
            &EvalOptions { backend: BackendChoice::Naive, ..EvalOptions::default() },
        );
        for choice in BackendChoice::ALL {
            let m = eval_power_query(
                &pq,
                &d,
                &EvalOptions { backend: choice, ..EvalOptions::default() },
            );
            assert_eq!(m.as_exact(), reference.as_exact(), "backend {choice}");
        }
    }

    #[test]
    fn unit_power_query_is_one() {
        let (_, d) = complete(3);
        let m = eval_power_query(&PowerQuery::unit(), &d, &EvalOptions::default());
        assert_eq!(m.as_exact(), Some(&Nat::one()));
    }
}
