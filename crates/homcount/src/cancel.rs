//! Cooperative cancellation and step budgets for the counting loops.
//!
//! The paper's constructions make it easy to write down queries whose
//! naive evaluation is astronomically expensive (that is the point of
//! Theorem 1's reduction). The evaluation engine therefore needs a way to
//! bound a count without killing the thread running it: counting loops
//! periodically poll a [`CancelToken`] (shared flag + optional wall-clock
//! deadline) and a step budget, and return [`Cancelled`] instead of an
//! answer when either trips.
//!
//! Polling is amortized: a [`Ticker`] checks the token only every
//! [`CHECK_INTERVAL`] steps, so the fast path of the backtracking engines
//! stays one increment-and-mask per step.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// How many ticks pass between token/deadline polls (a power of two).
pub const CHECK_INTERVAL: u64 = 1024;

/// Why a computation was cancelled.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CancelReason {
    /// [`CancelToken::cancel`] was called.
    Cancelled,
    /// The token's deadline passed.
    DeadlineExceeded,
    /// The step budget ran out.
    BudgetExhausted,
    /// A [`MemoryGauge`] refused an allocation: the evaluation would push
    /// the engine past its byte budget (or past what `u64` arithmetic can
    /// even size). Deterministic for a fixed budget — retrying the same
    /// engine is futile, but a leaner engine may fit.
    MemoryBudgetExceeded,
    /// The owning engine is draining: in-flight work is asked to stop at
    /// the next checkpoint so shutdown can meet its deadline.
    ShuttingDown,
}

/// Error returned by cancellable counting entry points.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Cancelled(pub CancelReason);

impl fmt::Display for Cancelled {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            CancelReason::Cancelled => write!(f, "computation cancelled"),
            CancelReason::DeadlineExceeded => write!(f, "computation deadline exceeded"),
            CancelReason::BudgetExhausted => write!(f, "computation step budget exhausted"),
            CancelReason::MemoryBudgetExceeded => {
                write!(f, "computation memory budget exceeded")
            }
            CancelReason::ShuttingDown => write!(f, "computation stopped: engine shutting down"),
        }
    }
}

impl std::error::Error for Cancelled {}

#[derive(Debug)]
struct TokenInner {
    flag: AtomicBool,
    deadline: Option<Instant>,
}

/// Shareable cancellation handle: an explicit flag plus an optional
/// deadline. Cloning shares the same underlying state, so an engine can
/// hand one clone to a worker and keep another to cancel it.
#[derive(Clone, Debug)]
pub struct CancelToken {
    inner: Arc<TokenInner>,
}

impl CancelToken {
    /// A token that only cancels when [`CancelToken::cancel`] is called.
    pub fn new() -> Self {
        CancelToken { inner: Arc::new(TokenInner { flag: AtomicBool::new(false), deadline: None }) }
    }

    /// A token that additionally trips once `deadline` passes.
    pub fn with_deadline(deadline: Instant) -> Self {
        CancelToken {
            inner: Arc::new(TokenInner { flag: AtomicBool::new(false), deadline: Some(deadline) }),
        }
    }

    /// Requests cancellation; all clones observe it at their next poll.
    pub fn cancel(&self) {
        self.inner.flag.store(true, Ordering::Relaxed);
    }

    /// The deadline this token carries, if any.
    pub fn deadline(&self) -> Option<Instant> {
        self.inner.deadline
    }

    /// Polls the token. `Err` carries whether the explicit flag or the
    /// deadline tripped.
    pub fn check(&self) -> Result<(), Cancelled> {
        if self.inner.flag.load(Ordering::Relaxed) {
            return Err(Cancelled(CancelReason::Cancelled));
        }
        if let Some(deadline) = self.inner.deadline {
            if Instant::now() >= deadline {
                // Latch, so clones see the cancellation without re-reading
                // the clock.
                self.inner.flag.store(true, Ordering::Relaxed);
                return Err(Cancelled(CancelReason::DeadlineExceeded));
            }
        }
        Ok(())
    }

    /// Non-erroring form of [`CancelToken::check`].
    pub fn is_cancelled(&self) -> bool {
        self.check().is_err()
    }
}

impl Default for CancelToken {
    fn default() -> Self {
        CancelToken::new()
    }
}

/// A callback fired at evaluation checkpoints.
///
/// The counting loops call it through [`EvalControl::checkpoint`] — once
/// at every coarse boundary (evaluation entry, per power-query factor)
/// and at every [`CHECK_INTERVAL`]-step [`Ticker`] poll. A hook may:
///
/// * return `Ok(())` — the common no-op;
/// * sleep before returning — injected latency;
/// * return `Err(Cancelled)` — a spurious cancellation, indistinguishable
///   from a real one to the evaluation itself;
/// * panic — a simulated worker crash, to be caught by whatever
///   `catch_unwind` isolation the caller runs under.
///
/// The `bagcq-engine` crate uses this to thread its deterministic
/// fault-injection harness through every evaluation without the counting
/// code knowing anything about faults.
pub trait CheckpointHook: Send + Sync {
    /// Fires the checkpoint; `site` names the location (e.g.
    /// `"homcount/count"`, `"homcount/tick"`).
    fn checkpoint(&self, site: &'static str) -> Result<(), Cancelled>;
}

/// A shared allocation-accounting hook: the counting loops report the
/// sizes of the big numbers they are about to materialize *before*
/// materializing them, and the gauge either reserves the bytes or refuses
/// with [`CancelReason::MemoryBudgetExceeded`].
///
/// Accounting is advisory, not an allocator shim — only the `Nat`-heavy
/// products of the counting layer are charged (component counts, free-
/// variable power factors, power-query accumulators), which is where the
/// paper's constructions put all the weight. The `bagcq-engine` crate
/// implements this over a per-engine byte budget so a burst of Theorem 1
/// sweep jobs degrades with typed errors instead of aborting on OOM.
pub trait MemoryGauge: Send + Sync {
    /// Attempts to reserve `bytes` against the budget. `Err` must carry
    /// [`CancelReason::MemoryBudgetExceeded`].
    fn try_reserve(&self, bytes: u64) -> Result<(), Cancelled>;
}

/// Bundled cancellation controls for one evaluation: optional token plus
/// optional step budget (`0` = unlimited) plus an optional
/// [`CheckpointHook`] for fault injection plus an optional [`MemoryGauge`]
/// for allocation accounting.
#[derive(Clone, Default)]
pub struct EvalControl {
    step_budget: u64,
    cancel: Option<CancelToken>,
    hook: Option<Arc<dyn CheckpointHook>>,
    mem: Option<Arc<dyn MemoryGauge>>,
}

impl fmt::Debug for EvalControl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EvalControl")
            .field("step_budget", &self.step_budget)
            .field("cancel", &self.cancel)
            .field("hook", &self.hook.as_ref().map(|_| "<hook>"))
            .field("mem", &self.mem.as_ref().map(|_| "<gauge>"))
            .finish()
    }
}

impl EvalControl {
    /// No budget, no token: counting never stops early.
    pub fn unlimited() -> Self {
        EvalControl::default()
    }

    /// Controls with the given budget (`0` = unlimited) and token.
    pub fn new(step_budget: u64, cancel: Option<CancelToken>) -> Self {
        EvalControl { step_budget, cancel, hook: None, mem: None }
    }

    /// Controls with a budget, token, and checkpoint hook.
    pub fn with_hook(
        step_budget: u64,
        cancel: Option<CancelToken>,
        hook: Option<Arc<dyn CheckpointHook>>,
    ) -> Self {
        EvalControl { step_budget, cancel, hook, mem: None }
    }

    /// Installs a memory gauge on these controls (builder style).
    pub fn with_memory_gauge(mut self, mem: Arc<dyn MemoryGauge>) -> Self {
        self.mem = Some(mem);
        self
    }

    /// Sets the step budget (`0` = unlimited) on these controls (builder
    /// style).
    pub fn with_step_budget(mut self, step_budget: u64) -> Self {
        self.step_budget = step_budget;
        self
    }

    /// Installs a cancellation token on these controls (builder style).
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = Some(cancel);
        self
    }

    /// True iff no budget, token, hook, or gauge is set (the fast path
    /// can skip all bookkeeping).
    pub fn is_unlimited(&self) -> bool {
        self.step_budget == 0 && self.cancel.is_none() && self.hook.is_none() && self.mem.is_none()
    }

    /// Fires the checkpoint hook, if one is installed.
    #[inline]
    pub fn checkpoint(&self, site: &'static str) -> Result<(), Cancelled> {
        match &self.hook {
            Some(hook) => hook.checkpoint(site),
            None => Ok(()),
        }
    }

    /// Reserves `bytes` against the installed memory gauge, if any.
    ///
    /// Counting loops call this *before* materializing a big number; with
    /// no gauge installed it is free.
    #[inline]
    pub fn charge(&self, bytes: u64) -> Result<(), Cancelled> {
        match &self.mem {
            Some(gauge) => gauge.try_reserve(bytes),
            None => Ok(()),
        }
    }

    /// Starts a step counter over these controls.
    pub fn ticker(&self) -> Ticker<'_> {
        Ticker { control: self, steps: 0 }
    }
}

/// Amortized step counter: cheap `tick()` per loop iteration, with the
/// token polled every [`CHECK_INTERVAL`] ticks and the budget enforced
/// exactly.
pub struct Ticker<'a> {
    control: &'a EvalControl,
    steps: u64,
}

impl Ticker<'_> {
    /// Records one unit of work; errors if the budget is exhausted or (at
    /// poll boundaries) the token has tripped.
    #[inline]
    pub fn tick(&mut self) -> Result<(), Cancelled> {
        self.steps += 1;
        let budget = self.control.step_budget;
        if budget != 0 && self.steps > budget {
            return Err(Cancelled(CancelReason::BudgetExhausted));
        }
        if self.steps.is_multiple_of(CHECK_INTERVAL) {
            if let Some(token) = &self.control.cancel {
                token.check()?;
            }
            self.control.checkpoint("homcount/tick")?;
        }
        Ok(())
    }

    /// Steps recorded so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn token_cancels_all_clones() {
        let t = CancelToken::new();
        let c = t.clone();
        assert!(!c.is_cancelled());
        t.cancel();
        assert!(c.is_cancelled());
        assert_eq!(c.check(), Err(Cancelled(CancelReason::Cancelled)));
    }

    #[test]
    fn deadline_trips() {
        let t = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        assert_eq!(t.check(), Err(Cancelled(CancelReason::DeadlineExceeded)));
        let far = CancelToken::with_deadline(Instant::now() + Duration::from_secs(3600));
        assert!(!far.is_cancelled());
    }

    #[test]
    fn budget_enforced_exactly() {
        let ctl = EvalControl::new(10, None);
        let mut ticker = ctl.ticker();
        for _ in 0..10 {
            assert!(ticker.tick().is_ok());
        }
        assert_eq!(ticker.tick(), Err(Cancelled(CancelReason::BudgetExhausted)));
    }

    #[test]
    fn cancellation_observed_at_poll_boundary() {
        let token = CancelToken::new();
        let ctl = EvalControl::new(0, Some(token.clone()));
        let mut ticker = ctl.ticker();
        token.cancel();
        let mut tripped = false;
        for _ in 0..CHECK_INTERVAL + 1 {
            if ticker.tick().is_err() {
                tripped = true;
                break;
            }
        }
        assert!(tripped);
    }

    #[test]
    fn hook_fires_at_poll_boundary_and_can_cancel() {
        use std::sync::atomic::AtomicU64;

        struct Hook {
            fires: AtomicU64,
            fail_from: u64,
        }
        impl CheckpointHook for Hook {
            fn checkpoint(&self, _site: &'static str) -> Result<(), Cancelled> {
                let n = self.fires.fetch_add(1, Ordering::Relaxed) + 1;
                if n >= self.fail_from {
                    Err(Cancelled(CancelReason::Cancelled))
                } else {
                    Ok(())
                }
            }
        }

        let hook = Arc::new(Hook { fires: AtomicU64::new(0), fail_from: 2 });
        let ctl = EvalControl::with_hook(0, None, Some(Arc::clone(&hook) as _));
        assert!(!ctl.is_unlimited(), "a hook disables the unlimited fast path");
        // Direct checkpoint: first fire ok, second fire cancels.
        assert!(ctl.checkpoint("test/site").is_ok());
        assert_eq!(ctl.checkpoint("test/site"), Err(Cancelled(CancelReason::Cancelled)));
        // Ticker path: the third fire happens at the first poll boundary.
        let mut ticker = ctl.ticker();
        let mut tripped = false;
        for _ in 0..CHECK_INTERVAL + 1 {
            if ticker.tick().is_err() {
                tripped = true;
                break;
            }
        }
        assert!(tripped, "hook cancellation must surface through the ticker");
        assert_eq!(hook.fires.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn memory_gauge_refusal_surfaces_through_charge() {
        use std::sync::atomic::AtomicU64;

        struct Gauge {
            limit: u64,
            used: AtomicU64,
        }
        impl MemoryGauge for Gauge {
            fn try_reserve(&self, bytes: u64) -> Result<(), Cancelled> {
                let used = self.used.fetch_add(bytes, Ordering::Relaxed) + bytes;
                if used > self.limit {
                    Err(Cancelled(CancelReason::MemoryBudgetExceeded))
                } else {
                    Ok(())
                }
            }
        }

        let ctl = EvalControl::unlimited();
        assert!(ctl.charge(u64::MAX).is_ok(), "no gauge: charging is free");
        let gauged = EvalControl::unlimited()
            .with_memory_gauge(Arc::new(Gauge { limit: 100, used: AtomicU64::new(0) }));
        assert!(!gauged.is_unlimited(), "a gauge disables the unlimited fast path");
        assert!(gauged.charge(60).is_ok());
        assert_eq!(gauged.charge(60), Err(Cancelled(CancelReason::MemoryBudgetExceeded)));
    }

    #[test]
    fn unlimited_never_trips() {
        let ctl = EvalControl::unlimited();
        assert!(ctl.is_unlimited());
        let mut ticker = ctl.ticker();
        for _ in 0..10_000 {
            assert!(ticker.tick().is_ok());
        }
    }
}
