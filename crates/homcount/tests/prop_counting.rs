//! Property tests for the counting backends: differential agreement of
//! every registered backend against the `Nat` reference path (including
//! adversarial inputs straddling the `u64`/`u128` overflow boundaries),
//! and the paper's algebraic counting laws (Lemma 1, Definition 2,
//! Lemma 22).

use bagcq_arith::{acc_promotions, Nat};
use bagcq_homcount::{registered_backends, BackendChoice, CountRequest};
use bagcq_query::{path_query, Query, QueryGen};
use bagcq_structure::{Schema, SchemaBuilder, Structure, StructureGen, Vertex};
use proptest::prelude::*;
use std::sync::Arc;

fn schema() -> Arc<Schema> {
    let mut b = SchemaBuilder::default();
    b.relation("E", 2);
    b.relation("R", 3);
    b.constant("a");
    b.build()
}

fn small_query(seed: u64, vars: u32, atoms: usize, ineqs: usize) -> Query {
    let qg = QueryGen { variables: vars, atoms, constant_prob: 0.1, inequalities: ineqs };
    qg.sample(&schema(), seed)
}

fn small_structure(seed: u64, extra: u32, density: f64) -> Structure {
    let sg = StructureGen {
        extra_vertices: extra,
        density,
        max_tuples_per_relation: 300,
        diagonal_density: 0.4,
    };
    sg.sample(&schema(), seed)
}

/// The arbitrary-precision reference result every backend is judged
/// against.
fn nat_count(q: &Query, d: &Structure) -> Nat {
    CountRequest::new(q, d).backend(BackendChoice::Naive).count()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Differential test: every registered backend — the two independent
    /// algorithms and their machine-word fast paths — returns the exact
    /// `Nat` the reference path returns, on arbitrary queries (with
    /// inequalities and constants) and databases.
    #[test]
    fn all_backends_bit_identical(
        qseed in 0u64..10_000,
        dseed in 0u64..10_000,
        vars in 2u32..6,
        atoms in 1usize..7,
        ineqs in 0usize..3,
        extra in 1u32..5,
    ) {
        let q = small_query(qseed, vars, atoms, ineqs);
        let d = small_structure(dseed, extra, 0.35);
        let reference = nat_count(&q, &d);
        for (kernel, choice) in registered_backends() {
            let got = CountRequest::new(&q, &d).backend(choice).count();
            prop_assert_eq!(&got, &reference, "backend {} on query {}", kernel.name(), q);
        }
        // Auto must agree too, whatever it resolves to.
        prop_assert_eq!(CountRequest::new(&q, &d).count(), reference);
    }

    /// Lemma 1: (ρ ∧̄ ρ')(D) = ρ(D) · ρ'(D).
    #[test]
    fn lemma1_disjoint_conjunction_multiplies(
        s1 in 0u64..10_000,
        s2 in 0u64..10_000,
        dseed in 0u64..10_000,
    ) {
        let q1 = small_query(s1, 3, 3, 0);
        let q2 = small_query(s2, 3, 3, 0);
        let d = small_structure(dseed, 3, 0.4);
        let lhs = nat_count(&q1.disjoint_conj(&q2), &d);
        let rhs = nat_count(&q1, &d).mul_ref(&nat_count(&q2, &d));
        prop_assert_eq!(lhs, rhs);
    }

    /// Definition 2: (θ↑k)(D) = θ(D)^k — holds with inequalities too.
    #[test]
    fn definition2_power(
        qseed in 0u64..10_000,
        dseed in 0u64..10_000,
        k in 0u32..4,
        ineqs in 0usize..2,
    ) {
        let q = small_query(qseed, 3, 3, ineqs);
        let d = small_structure(dseed, 3, 0.4);
        let single = nat_count(&q, &d);
        prop_assert_eq!(nat_count(&q.power(k), &d), single.pow_u64(k as u64));
    }

    /// Lemma 22 (i): φ(blowup(D,k)) = k^j · φ(D) for pure CQs without
    /// constants, where j = number of variables.
    #[test]
    fn lemma22_blowup(
        qseed in 0u64..10_000,
        dseed in 0u64..10_000,
        k in 1u32..4,
    ) {
        let qg = QueryGen { variables: 3, atoms: 3, constant_prob: 0.0, inequalities: 0 };
        let q = qg.sample(&schema(), qseed);
        let d = small_structure(dseed, 3, 0.35);
        let base = nat_count(&q, &d);
        let blown = nat_count(&q, &d.blowup(k));
        let factor = Nat::from_u64(k as u64).pow_u64(q.var_count() as u64);
        prop_assert_eq!(blown, factor.mul_ref(&base));
    }

    /// Lemma 22 (ii): φ(D^×k) = φ(D)^k for pure CQs without constants.
    #[test]
    fn lemma22_product_power(
        qseed in 0u64..10_000,
        dseed in 0u64..10_000,
        k in 1u32..4,
    ) {
        let qg = QueryGen { variables: 3, atoms: 3, constant_prob: 0.0, inequalities: 0 };
        let q = qg.sample(&schema(), qseed);
        let d = small_structure(dseed, 2, 0.4);
        let base = nat_count(&q, &d);
        let powered = nat_count(&q, &d.power(k));
        prop_assert_eq!(powered, base.pow_u64(k as u64));
    }

    /// Counts are monotone under adding atoms to the database
    /// (for pure queries: more facts, at least as many homs).
    #[test]
    fn monotone_in_database(
        qseed in 0u64..10_000,
        dseed in 0u64..10_000,
    ) {
        let qg = QueryGen { variables: 3, atoms: 3, constant_prob: 0.0, inequalities: 0 };
        let q = qg.sample(&schema(), qseed);
        let d1 = small_structure(dseed, 3, 0.25);
        // d2 = d1 plus extra random atoms (union with another sample is
        // awkward because vertices differ; instead resample denser over the
        // same seed base and union explicitly).
        let mut d2 = d1.clone();
        let extra = small_structure(dseed.wrapping_add(1), 3, 0.25);
        d2 = d2.union(&extra);
        let c1 = nat_count(&q, &d1);
        let c2 = nat_count(&q, &d2);
        prop_assert!(c1 <= c2, "{c1} > {c2}");
    }

    /// The legacy `Engine` selector routes through `CountRequest` to the
    /// same answers as the default `Auto` choice on every family.
    #[test]
    fn engine_selector_agrees_with_requests(qseed in 0u64..10_000, dseed in 0u64..10_000) {
        let q = small_query(qseed, 3, 4, 1);
        let d = small_structure(dseed, 3, 0.35);
        let via_engines = (
            CountRequest::new(&q, &d).backend(bagcq_homcount::Engine::Naive).count(),
            CountRequest::new(&q, &d).backend(bagcq_homcount::Engine::Treewidth).count(),
        );
        let want = CountRequest::new(&q, &d).count();
        prop_assert_eq!(&via_engines.0, &want);
        prop_assert_eq!(&via_engines.1, &want);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Counts are isomorphism-invariant: permuting the database's vertex
    /// ids never changes any count, on any backend.
    #[test]
    fn counts_invariant_under_vertex_permutation(
        qseed in 0u64..10_000,
        dseed in 0u64..10_000,
        pseed in 0u64..10_000,
    ) {
        let q = small_query(qseed, 3, 4, 1);
        let d = small_structure(dseed, 4, 0.35);
        // Build a deterministic permutation of the vertex ids.
        let n = d.vertex_count();
        let mut perm: Vec<u32> = (0..n).collect();
        let mut state = pseed | 1;
        for i in (1..n as usize).rev() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let j = (state % (i as u64 + 1)) as usize;
            perm.swap(i, j);
        }
        let permuted = d.quotient(&perm, n);
        prop_assert!(bagcq_structure::isomorphic(&d, &permuted));
        for (kernel, choice) in registered_backends() {
            prop_assert_eq!(
                CountRequest::new(&q, &d).backend(choice).count(),
                CountRequest::new(&q, &permuted).backend(choice).count(),
                "backend {}",
                kernel.name()
            );
        }
    }

    /// The enumerative ablation counter agrees with the optimized one on
    /// random inputs (slow path, fewer cases).
    #[test]
    fn enumerative_ablation_agrees(qseed in 0u64..3000, dseed in 0u64..3000) {
        let q = small_query(qseed, 3, 3, 1);
        let d = small_structure(dseed, 2, 0.3);
        prop_assert_eq!(
            bagcq_homcount::NaiveCounter.count_enumerative(&q, &d),
            nat_count(&q, &d)
        );
    }
}

/// Adversarial overflow-boundary cases for the machine-word fast path.
///
/// `E(x,y)` into the complete 16-vertex digraph (loops included) has
/// exactly 16² = 2⁸ homomorphisms, so `E(x,y)↑k` has exactly `2^(8k)`:
/// picking `k` dials the true count to either side of the `u64` and
/// `u128` boundaries. Lemma 1's component factorization keeps every run
/// cheap (k components × 256 steps) — all the work is in the cross-
/// component multiplications, exactly where the widening fires.
mod overflow_boundaries {
    use super::*;

    fn edge_schema() -> Arc<Schema> {
        let mut b = SchemaBuilder::default();
        b.relation("E", 2);
        b.build()
    }

    fn complete_digraph(n: u32) -> Structure {
        let schema = edge_schema();
        let e = schema.relation_by_name("E").unwrap();
        let mut d = Structure::new(Arc::clone(&schema));
        d.add_vertices(n);
        for a in 0..n {
            for b in 0..n {
                d.add_atom(e, &[Vertex(a), Vertex(b)]);
            }
        }
        d
    }

    /// Runs `E(x,y)↑k` on every fast backend against the `Nat` reference
    /// and returns how many promotions the whole workload performed.
    fn check_power(k: u32) -> (Nat, u64) {
        let schema = edge_schema();
        let q = path_query(&schema, "E", 1).power(k);
        let d = complete_digraph(16);
        let reference = nat_count(&q, &d);
        assert_eq!(reference, Nat::pow2(8 * k as u64), "ground truth is 2^(8k)");
        let before = acc_promotions();
        for choice in [BackendChoice::FastNaive, BackendChoice::FastTreewidth] {
            let got = CountRequest::new(&q, &d).backend(choice).count();
            assert_eq!(got, reference, "{choice} wrong at k = {k}");
        }
        (reference, acc_promotions() - before)
    }

    /// 2⁵⁶ — comfortably inside `u64`: fast paths agree bit-for-bit.
    #[test]
    fn just_below_u64_boundary() {
        let (n, _) = check_power(7);
        assert_eq!(n.bits(), 57);
    }

    /// 2⁶⁴ — one past `u64::MAX`: the forced promotion fires and the
    /// result is still exact. (The counter is process-global and other
    /// tests run concurrently, so only a lower bound is asserted.)
    #[test]
    fn just_above_u64_boundary_promotes_and_stays_exact() {
        let (n, promoted) = check_power(8);
        assert_eq!(n.bits(), 65);
        assert!(promoted >= 1, "crossing u64 must promote at least once");
    }

    /// 2¹²⁰ — inside `u128` after one widening.
    #[test]
    fn just_below_u128_boundary() {
        let (n, _) = check_power(15);
        assert_eq!(n.bits(), 121);
    }

    /// 2¹²⁸ — one past `u128::MAX`: both widenings fire (u64 → u128 →
    /// `Nat`) on each fast backend, and the result is still exact.
    #[test]
    fn just_above_u128_boundary_promotes_twice_and_stays_exact() {
        let (n, promoted) = check_power(16);
        assert_eq!(n.bits(), 129);
        assert!(promoted >= 2, "crossing u128 widens twice per backend, saw {promoted}");
    }

    /// Saturating a `u64` by pure increments (no multiplication): a star
    /// of loops query whose count is near-boundary via repeated add_one.
    /// Cheap variant: the increment path is exercised by counting 2⁸ homs
    /// per component with the accumulator pre-seeded by earlier factors —
    /// here we instead check a single huge component product chain:
    /// (2⁸)¹⁷ = 2¹³⁶ forces Small → Wide → Big inside one chain.
    #[test]
    fn one_chain_through_all_three_tiers() {
        let (n, promoted) = check_power(17);
        assert_eq!(n.bits(), 137);
        assert!(promoted >= 2, "chain must pass through u128 into Nat, saw {promoted}");
    }
}
