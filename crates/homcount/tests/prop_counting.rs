//! Property tests for the counting engines: cross-engine agreement and the
//! paper's algebraic counting laws (Lemma 1, Definition 2, Lemma 22).

use bagcq_arith::Nat;
use bagcq_homcount::{count_with, Engine, NaiveCounter, TreewidthCounter};
use bagcq_query::{Query, QueryGen};
use bagcq_structure::{Schema, SchemaBuilder, StructureGen};
use proptest::prelude::*;
use std::sync::Arc;

fn schema() -> Arc<Schema> {
    let mut b = SchemaBuilder::default();
    b.relation("E", 2);
    b.relation("R", 3);
    b.constant("a");
    b.build()
}

fn small_query(seed: u64, vars: u32, atoms: usize, ineqs: usize) -> Query {
    let qg = QueryGen { variables: vars, atoms, constant_prob: 0.1, inequalities: ineqs };
    qg.sample(&schema(), seed)
}

fn small_structure(seed: u64, extra: u32, density: f64) -> bagcq_structure::Structure {
    let sg = StructureGen {
        extra_vertices: extra,
        density,
        max_tuples_per_relation: 300,
        diagonal_density: 0.4,
    };
    sg.sample(&schema(), seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The two engines are independent implementations; they must agree on
    /// arbitrary queries (with inequalities and constants) and databases.
    #[test]
    fn engines_agree(
        qseed in 0u64..10_000,
        dseed in 0u64..10_000,
        vars in 2u32..6,
        atoms in 1usize..7,
        ineqs in 0usize..3,
        extra in 1u32..5,
    ) {
        let q = small_query(qseed, vars, atoms, ineqs);
        let d = small_structure(dseed, extra, 0.35);
        let naive = NaiveCounter.count(&q, &d);
        let tw = TreewidthCounter.count(&q, &d);
        prop_assert_eq!(naive, tw, "query {}", q);
    }

    /// Lemma 1: (ρ ∧̄ ρ')(D) = ρ(D) · ρ'(D).
    #[test]
    fn lemma1_disjoint_conjunction_multiplies(
        s1 in 0u64..10_000,
        s2 in 0u64..10_000,
        dseed in 0u64..10_000,
    ) {
        let q1 = small_query(s1, 3, 3, 0);
        let q2 = small_query(s2, 3, 3, 0);
        let d = small_structure(dseed, 3, 0.4);
        let lhs = NaiveCounter.count(&q1.disjoint_conj(&q2), &d);
        let rhs = NaiveCounter.count(&q1, &d).mul_ref(&NaiveCounter.count(&q2, &d));
        prop_assert_eq!(lhs, rhs);
    }

    /// Definition 2: (θ↑k)(D) = θ(D)^k — holds with inequalities too.
    #[test]
    fn definition2_power(
        qseed in 0u64..10_000,
        dseed in 0u64..10_000,
        k in 0u32..4,
        ineqs in 0usize..2,
    ) {
        let q = small_query(qseed, 3, 3, ineqs);
        let d = small_structure(dseed, 3, 0.4);
        let single = NaiveCounter.count(&q, &d);
        prop_assert_eq!(
            NaiveCounter.count(&q.power(k), &d),
            single.pow_u64(k as u64)
        );
    }

    /// Lemma 22 (i): φ(blowup(D,k)) = k^j · φ(D) for pure CQs without
    /// constants, where j = number of variables.
    #[test]
    fn lemma22_blowup(
        qseed in 0u64..10_000,
        dseed in 0u64..10_000,
        k in 1u32..4,
    ) {
        let qg = QueryGen { variables: 3, atoms: 3, constant_prob: 0.0, inequalities: 0 };
        let q = qg.sample(&schema(), qseed);
        let d = small_structure(dseed, 3, 0.35);
        let base = NaiveCounter.count(&q, &d);
        let blown = NaiveCounter.count(&q, &d.blowup(k));
        let factor = Nat::from_u64(k as u64).pow_u64(q.var_count() as u64);
        prop_assert_eq!(blown, factor.mul_ref(&base));
    }

    /// Lemma 22 (ii): φ(D^×k) = φ(D)^k for pure CQs without constants.
    #[test]
    fn lemma22_product_power(
        qseed in 0u64..10_000,
        dseed in 0u64..10_000,
        k in 1u32..4,
    ) {
        let qg = QueryGen { variables: 3, atoms: 3, constant_prob: 0.0, inequalities: 0 };
        let q = qg.sample(&schema(), qseed);
        let d = small_structure(dseed, 2, 0.4);
        let base = NaiveCounter.count(&q, &d);
        let powered = NaiveCounter.count(&q, &d.power(k));
        prop_assert_eq!(powered, base.pow_u64(k as u64));
    }

    /// Counts are monotone under adding atoms to the database
    /// (for pure queries: more facts, at least as many homs).
    #[test]
    fn monotone_in_database(
        qseed in 0u64..10_000,
        dseed in 0u64..10_000,
    ) {
        let qg = QueryGen { variables: 3, atoms: 3, constant_prob: 0.0, inequalities: 0 };
        let q = qg.sample(&schema(), qseed);
        let d1 = small_structure(dseed, 3, 0.25);
        // d2 = d1 plus extra random atoms (union with another sample is
        // awkward because vertices differ; instead resample denser over the
        // same seed base and union explicitly).
        let mut d2 = d1.clone();
        let extra = small_structure(dseed.wrapping_add(1), 3, 0.25);
        d2 = d2.union(&extra);
        let c1 = NaiveCounter.count(&q, &d1);
        let c2 = NaiveCounter.count(&q, &d2);
        prop_assert!(c1 <= c2, "{c1} > {c2}");
    }

    /// The default-engine helper agrees with both engines.
    #[test]
    fn count_with_helper(qseed in 0u64..10_000, dseed in 0u64..10_000) {
        let q = small_query(qseed, 3, 4, 1);
        let d = small_structure(dseed, 3, 0.35);
        prop_assert_eq!(
            count_with(Engine::Naive, &q, &d),
            count_with(Engine::Treewidth, &q, &d)
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Counts are isomorphism-invariant: permuting the database's vertex
    /// ids never changes any count.
    #[test]
    fn counts_invariant_under_vertex_permutation(
        qseed in 0u64..10_000,
        dseed in 0u64..10_000,
        pseed in 0u64..10_000,
    ) {
        let q = small_query(qseed, 3, 4, 1);
        let d = small_structure(dseed, 4, 0.35);
        // Build a deterministic permutation of the vertex ids.
        let n = d.vertex_count();
        let mut perm: Vec<u32> = (0..n).collect();
        let mut state = pseed | 1;
        for i in (1..n as usize).rev() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let j = (state % (i as u64 + 1)) as usize;
            perm.swap(i, j);
        }
        let permuted = d.quotient(&perm, n);
        prop_assert!(bagcq_structure::isomorphic(&d, &permuted));
        prop_assert_eq!(
            NaiveCounter.count(&q, &d),
            NaiveCounter.count(&q, &permuted)
        );
        prop_assert_eq!(
            TreewidthCounter.count(&q, &d),
            TreewidthCounter.count(&q, &permuted)
        );
    }

    /// The enumerative ablation counter agrees with the optimized one on
    /// random inputs (slow path, fewer cases).
    #[test]
    fn enumerative_ablation_agrees(qseed in 0u64..3000, dseed in 0u64..3000) {
        let q = small_query(qseed, 3, 3, 1);
        let d = small_structure(dseed, 2, 0.3);
        prop_assert_eq!(
            NaiveCounter.count_enumerative(&q, &d),
            NaiveCounter.count(&q, &d)
        );
    }
}
