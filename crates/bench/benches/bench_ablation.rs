//! Ablation: what the engine optimizations buy.
//!
//! * component factorization (Lemma 1) vs raw enumeration on `θ↑k` —
//!   expected shape: factored is linear in `k`, enumerative is
//!   `θ(D)^k`-exponential;
//! * index-based candidate selection vs full scans is implicit in the
//!   naive-vs-naive comparison across densities.

use bagcq_bench::{digraph_schema, random_digraph};
use bagcq_core::prelude::*;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_factorization_ablation(c: &mut Criterion) {
    let schema = digraph_schema();
    let d = random_digraph(&schema, 8, 0.25, 5);
    let q = path_query(&schema, "E", 1);
    let mut group = c.benchmark_group("ablation_factorization");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(800));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for k in [1u32, 2, 3] {
        let powered = q.power(k);
        group.bench_with_input(BenchmarkId::new("factored", k), &powered, |b, pq| {
            b.iter(|| CountRequest::new(pq, &d).backend(BackendChoice::Naive).count())
        });
        group.bench_with_input(BenchmarkId::new("enumerative", k), &powered, |b, pq| {
            b.iter(|| NaiveCounter.count_enumerative(pq, &d))
        });
    }
    group.finish();
}

fn bench_connected_queries_overhead(c: &mut Criterion) {
    // On connected queries factorization cannot help; measure its
    // overhead (should be negligible).
    let schema = digraph_schema();
    let d = random_digraph(&schema, 12, 0.2, 9);
    let q = path_query(&schema, "E", 4);
    let mut group = c.benchmark_group("ablation_connected_overhead");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(800));
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.bench_function("factored", |b| {
        b.iter(|| CountRequest::new(&q, &d).backend(BackendChoice::Naive).count())
    });
    group.bench_function("enumerative", |b| b.iter(|| NaiveCounter.count_enumerative(&q, &d)));
    group.finish();
}

criterion_group!(benches, bench_factorization_ablation, bench_connected_queries_overhead);
criterion_main!(benches);
