//! E-PERF3 — the arbitrary-precision substrate: Nat multiplication
//! (schoolbook→Karatsuba crossover), division, pow, and certified
//! Magnitude operations at the sizes the reduction actually produces
//! (hundreds to tens of thousands of bits).

use bagcq_core::prelude::*;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn nat_of_bits(bits: u64, seed: u64) -> Nat {
    // Deterministic pseudo-random limbs.
    let mut state = seed | 1;
    let mut limbs = Vec::with_capacity((bits / 64 + 1) as usize);
    for _ in 0..bits.div_ceil(64) {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        limbs.push(state);
    }
    let n = Nat::from_limbs(limbs);
    // Trim to the requested bit length.
    let extra = n.bits().saturating_sub(bits) as usize;
    n >> extra
}

fn bench_mul(c: &mut Criterion) {
    let mut group = c.benchmark_group("nat_mul");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(800));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for bits in [256u64, 1024, 4096, 16384] {
        let a = nat_of_bits(bits, 0xA);
        let b = nat_of_bits(bits, 0xB);
        group.bench_with_input(BenchmarkId::from_parameter(bits), &(a, b), |bch, (a, b)| {
            bch.iter(|| a.mul_ref(b))
        });
    }
    group.finish();
}

fn bench_div_rem(c: &mut Criterion) {
    let mut group = c.benchmark_group("nat_div_rem");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(800));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for bits in [512u64, 2048, 8192] {
        let a = nat_of_bits(bits, 0xC);
        let b = nat_of_bits(bits / 2, 0xD);
        group.bench_with_input(BenchmarkId::from_parameter(bits), &(a, b), |bch, (a, b)| {
            bch.iter(|| a.div_rem(b))
        });
    }
    group.finish();
}

fn bench_pow(c: &mut Criterion) {
    let mut group = c.benchmark_group("nat_pow");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(800));
    group.warm_up_time(std::time::Duration::from_millis(300));
    let base = Nat::from_u64(12345);
    for exp in [64u64, 512, 4096] {
        group.bench_with_input(BenchmarkId::from_parameter(exp), &exp, |bch, &e| {
            bch.iter(|| base.pow_u64(e))
        });
    }
    group.finish();
}

fn bench_magnitude(c: &mut Criterion) {
    let mut group = c.benchmark_group("magnitude");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(800));
    group.warm_up_time(std::time::Duration::from_millis(300));
    let big_exp = Nat::from_u64(50_000_000);
    group.bench_function("pow_interval_huge_exp", |b| {
        let base = Magnitude::from_u64(7);
        b.iter(|| base.pow(&big_exp))
    });
    group.bench_function("cmp_cert_interval", |b| {
        let x = Magnitude::from_u64(3).pow(&Nat::from_u64(10_000_000));
        let y = Magnitude::from_u64(3).pow(&Nat::from_u64(10_000_001));
        b.iter(|| x.cmp_cert(&y))
    });
    group.bench_function("exact_pow_within_budget", |b| {
        let base = Magnitude::from_u64(3);
        let e = Nat::from_u64(2000);
        b.iter(|| base.pow(&e))
    });
    group.finish();
}

criterion_group!(benches, bench_mul, bench_div_rem, bench_pow, bench_magnitude);
criterion_main!(benches);
