//! E-T1 / E-B — reduction pipeline costs: the Appendix B chain, the
//! Theorem 1 query construction, correct-database generation, and the
//! certified φ-comparison, across the Hilbert corpus. The shape to
//! expect: construction is polynomial in the instance (milliseconds),
//! while comparisons on correct databases are dominated by the `π_b`
//! count.

use bagcq_core::prelude::*;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_appendix_b(c: &mut Criterion) {
    let mut group = c.benchmark_group("appendix_b");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(800));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for inst in hilbert_library().into_iter().take(5) {
        group.bench_with_input(BenchmarkId::from_parameter(inst.name), &inst, |b, inst| {
            b.iter(|| reduce(&inst.poly))
        });
    }
    group.finish();
}

fn bench_theorem1_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("theorem1_construct");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(800));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for name in ["pell", "parity", "linear-solvable"] {
        let inst = hilbert_instance(name).unwrap();
        let chain = reduce(&inst.poly);
        group.bench_with_input(BenchmarkId::from_parameter(name), &chain.instance, |b, i| {
            b.iter(|| Theorem1Reduction::new(i.clone()))
        });
    }
    group.finish();
}

fn bench_phi_comparison(c: &mut Criterion) {
    let mut group = c.benchmark_group("phi_compare");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(800));
    group.warm_up_time(std::time::Duration::from_millis(300));
    let red = Theorem1Reduction::new(toy_instance(2, vec![1, 2], vec![2, 3]));
    let opts = EvalOptions::default();
    for val in [[1u64, 1], [2, 2], [3, 3]] {
        let d = red.correct_database(&val);
        group.bench_with_input(BenchmarkId::from_parameter(format!("{val:?}")), &d, |b, d| {
            b.iter(|| red.holds_on(d, &opts))
        });
    }
    // Seriously incorrect databases exercise the interval path.
    let d = red.correct_database(&[1, 1]);
    let serious = d.identify(d.constant_vertex(red.a_m[0]), d.constant_vertex(red.a_m[1]));
    group.bench_function("seriously_incorrect", |b| b.iter(|| red.holds_on(&serious, &opts)));
    group.finish();
}

fn bench_correct_database(c: &mut Criterion) {
    let red = Theorem1Reduction::new(toy_instance(2, vec![1, 2], vec![2, 3]));
    let mut group = c.benchmark_group("correct_database");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(800));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for v in [2u64, 8, 32] {
        group.bench_with_input(BenchmarkId::from_parameter(v), &v, |b, &v| {
            b.iter(|| red.correct_database(&[v, v]))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_appendix_b,
    bench_theorem1_construction,
    bench_phi_comparison,
    bench_correct_database
);
criterion_main!(benches);
