//! E-PERF2 — containment-harness throughput: certificate hits (fast),
//! Chandra–Merlin refutations (fast), Theorem 5 eliminations (medium),
//! and Unknown-by-budget sweeps (slow, proportional to the budget).

use bagcq_core::prelude::*;
use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;

fn digraph() -> Arc<Schema> {
    let mut b = Schema::builder();
    b.relation("E", 2);
    b.build()
}

fn bench_verdict_paths(c: &mut Criterion) {
    let s = digraph();
    let mut group = c.benchmark_group("containment");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(800));
    group.warm_up_time(std::time::Duration::from_millis(300));

    // Certificate path: loops ⊑ edges (Lemma 12 onto-hom).
    let mut qb = Query::builder(Arc::clone(&s));
    let x = qb.var("x");
    qb.atom_named("E", &[x, x]);
    let loops = qb.build();
    let edges = path_query(&s, "E", 1);
    group.bench_function("proved_onto_hom", |b| {
        let req = CheckRequest::new(&loops, &edges);
        b.iter(|| req.check())
    });

    // Chandra–Merlin refutation path.
    let p2 = path_query(&s, "E", 2);
    let c3 = cycle_query(&s, "E", 3);
    group.bench_function("refuted_canonical", |b| {
        let req = CheckRequest::new(&p2, &c3);
        b.iter(|| req.check())
    });

    // Bag-strict refutation (structured candidates).
    group.bench_function("refuted_bag_strict", |b| {
        let req = CheckRequest::new(&edges, &p2);
        b.iter(|| req.check())
    });

    // Theorem 5 elimination path.
    let mut qb = Query::builder(Arc::clone(&s));
    let x = qb.var("x");
    let y = qb.var("y");
    qb.atom_named("E", &[x, y]).neq(x, y);
    let edges_neq = qb.build();
    group.bench_function("refuted_via_theorem5", |b| {
        let req = CheckRequest::new(&edges_neq, &p2);
        b.iter(|| req.check())
    });

    // Unknown path with a tiny budget (measures the full sweep cost).
    let c4 = cycle_query(&s, "E", 4);
    let c4c4 = c4.disjoint_conj(&c4);
    group.bench_function("sweep_small_budget", |b| {
        let req = CheckRequest::new(&c4c4, &c4)
            .budget(SearchBudget { random_rounds: 5, ..SearchBudget::default() });
        b.iter(|| req.check())
    });

    group.finish();
}

fn bench_set_semantics_baseline(c: &mut Criterion) {
    let s = digraph();
    let mut group = c.benchmark_group("chandra_merlin");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(800));
    group.warm_up_time(std::time::Duration::from_millis(300));
    let p6 = path_query(&s, "E", 6);
    let p3 = path_query(&s, "E", 3);
    group.bench_function("paths_6_vs_3", |b| b.iter(|| set_contained(&p6, &p3)));
    let c4 = cycle_query(&s, "E", 4);
    group.bench_function("cycle_vs_path", |b| b.iter(|| set_contained(&c4, &p6)));
    group.finish();
}

criterion_group!(benches, bench_verdict_paths, bench_set_semantics_baseline);
criterion_main!(benches);
