//! E-L22 — the Section 5.1 structure operations: blow-up and categorical
//! product scaling. Expected shape: product is quadratic in atom count
//! per relation, blow-up multiplies atoms by `k^arity`.

use bagcq_bench::{digraph_schema, random_digraph};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_product(c: &mut Criterion) {
    let schema = digraph_schema();
    let mut group = c.benchmark_group("structure_product");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(800));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for n in [8u32, 16, 32] {
        let d = random_digraph(&schema, n, 0.2, 3);
        group.bench_with_input(BenchmarkId::from_parameter(n), &d, |b, d| b.iter(|| d.product(d)));
    }
    group.finish();
}

fn bench_blowup(c: &mut Criterion) {
    let schema = digraph_schema();
    let d = random_digraph(&schema, 16, 0.2, 3);
    let mut group = c.benchmark_group("structure_blowup");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(800));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for k in [2u32, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| b.iter(|| d.blowup(k)));
    }
    group.finish();
}

fn bench_union_and_quotient(c: &mut Criterion) {
    let schema = digraph_schema();
    let d = random_digraph(&schema, 24, 0.2, 5);
    let mut group = c.benchmark_group("structure_misc");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(800));
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.bench_function("union_self", |b| b.iter(|| d.union(&d)));
    group.bench_function("identify_pair", |b| {
        b.iter(|| d.identify(bagcq_core::prelude::Vertex(0), bagcq_core::prelude::Vertex(1)))
    });
    group.finish();
}

criterion_group!(benches, bench_product, bench_blowup, bench_union_and_quotient);
criterion_main!(benches);
