//! E-L5 / E-L10 / E-C — the Section 3 multiplication gadgets: cost of
//! evaluating `β`, `γ`, `α` on their witnesses and on random structures,
//! as the arity parameters grow. The interesting shape: cost grows with
//! the cyclique arity `p` (the queries have `2p` variables), and the
//! witness evaluation stays trivial because witnesses have 2–`m+2`
//! vertices.

use bagcq_core::prelude::*;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_beta(c: &mut Criterion) {
    let mut group = c.benchmark_group("beta_gadget");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(800));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for p in [3usize, 5, 7] {
        let g = beta_gadget(p, "Bn");
        group.bench_with_input(BenchmarkId::new("witness_eval", p), &g, |b, g| {
            b.iter(|| {
                let s = CountRequest::new(&g.q_s, &g.witness).backend(BackendChoice::Naive).count();
                let bb =
                    CountRequest::new(&g.q_b, &g.witness).backend(BackendChoice::Naive).count();
                (s, bb)
            })
        });
        group.bench_with_input(BenchmarkId::new("construct", p), &p, |b, &p| {
            b.iter(|| beta_gadget(p, "Bn"))
        });
    }
    group.finish();
}

fn bench_gamma(c: &mut Criterion) {
    let mut group = c.benchmark_group("gamma_gadget");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(800));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for m in [2usize, 4, 6] {
        let g = gamma_gadget(m, "Gn");
        group.bench_with_input(BenchmarkId::new("witness_eval", m), &g, |b, g| {
            b.iter(|| {
                let s = CountRequest::new(&g.q_s, &g.witness).backend(BackendChoice::Naive).count();
                let bb =
                    CountRequest::new(&g.q_b, &g.witness).backend(BackendChoice::Naive).count();
                (s, bb)
            })
        });
    }
    group.finish();
}

fn bench_alpha_and_falsify(c: &mut Criterion) {
    let mut group = c.benchmark_group("alpha_gadget");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(800));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for cc in [2u64, 3] {
        group.bench_with_input(BenchmarkId::new("compose", cc), &cc, |b, &cc| {
            b.iter(|| alpha_gadget(cc, "An"))
        });
        let g = alpha_gadget(cc, "An");
        let gen = StructureGen {
            extra_vertices: 2,
            density: 0.5,
            max_tuples_per_relation: 30,
            diagonal_density: 0.6,
        };
        group.bench_with_input(BenchmarkId::new("falsify_round", cc), &g, |b, g| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                g.falsify(&gen, 1, seed)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_beta, bench_gamma, bench_alpha_and_falsify);
criterion_main!(benches);
