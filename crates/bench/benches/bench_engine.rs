//! E-PERF3 — batch throughput of the `bagcq-engine` evaluation service
//! at 1/2/4/8 workers. Expected shape: near-linear scaling while jobs are
//! independent and CPU-bound, flattening once workers exceed cores or the
//! single-flight cache collapses duplicated work; the cached round should
//! be dramatically faster than the cold round at any worker count.

use bagcq_bench::{digraph_schema, random_digraph};
use bagcq_core::prelude::*;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::sync::Arc;

/// A cold mixed batch: counts on both engines over several databases —
/// every job distinct, so the cache cannot help inside one round.
fn cold_batch(schema: &Arc<Schema>, dbs: &[Arc<Structure>]) -> Vec<Job> {
    let queries = [
        path_query(schema, "E", 3),
        path_query(schema, "E", 5),
        cycle_query(schema, "E", 4),
        star_query(schema, "E", 4),
    ];
    dbs.iter()
        .flat_map(|d| {
            queries.iter().flat_map(|q| {
                [
                    Job::count_with(Engine::Naive, q.clone(), Arc::clone(d)),
                    Job::count_with(Engine::Treewidth, q.clone(), Arc::clone(d)),
                ]
            })
        })
        .collect()
}

fn bench_batch_throughput(c: &mut Criterion) {
    let schema = digraph_schema();
    let dbs: Vec<Arc<Structure>> =
        (0..6).map(|i| Arc::new(random_digraph(&schema, 12, 0.25, 100 + i))).collect();
    let batch = cold_batch(&schema, &dbs);

    let mut group = c.benchmark_group("engine_batch");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(900));
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.throughput(Throughput::Elements(batch.len() as u64));
    for workers in [1usize, 2, 4, 8] {
        // Fresh engine per iteration: measures a *cold* batch (pool
        // startup included — that is the realistic unit of work).
        group.bench_with_input(BenchmarkId::new("cold", workers), &workers, |b, &workers| {
            b.iter(|| {
                let engine = EvalEngine::with_workers(workers);
                for h in engine.submit_batch(batch.clone()) {
                    criterion::black_box(h.wait());
                }
            })
        });
        // Warm cache: the same batch against a pre-warmed engine — pure
        // cache-lookup throughput.
        group.bench_with_input(BenchmarkId::new("warm", workers), &workers, |b, &workers| {
            let engine = EvalEngine::with_workers(workers);
            for h in engine.submit_batch(batch.clone()) {
                h.wait();
            }
            b.iter(|| {
                for h in engine.submit_batch(batch.clone()) {
                    criterion::black_box(h.wait());
                }
            })
        });
    }
    group.finish();
}

fn bench_cross_validation_overhead(c: &mut Criterion) {
    let schema = digraph_schema();
    let q = path_query(&schema, "E", 4);
    let mut group = c.benchmark_group("engine_cross_validate");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(600));
    for (label, cross) in [("off", false), ("on", true)] {
        group.bench_function(label, |b| {
            let engine = EvalEngine::new(EngineConfig {
                workers: 2,
                cross_validate: cross,
                ..EngineConfig::default()
            });
            let mut seed = 0u64;
            b.iter(|| {
                // A fresh database each iteration keeps the cache cold.
                seed += 1;
                let fresh = Arc::new(random_digraph(&schema, 10, 0.3, seed));
                criterion::black_box(engine.submit(Job::count(q.clone(), fresh)).wait())
            })
        });
    }
    group.finish();
}

/// E-KERNEL companion: the same cold batch executed through the engine
/// with every job pinned to one [`BackendChoice`] — the fast machine-word
/// paths against their `Nat`-reference algorithms, plus `Auto`'s
/// heuristic pick. Expected shape: `fast-*` beats its reference family on
/// this count-heavy workload; `auto` tracks the best of the four.
fn bench_backend_comparison(c: &mut Criterion) {
    let schema = digraph_schema();
    let dbs: Vec<Arc<Structure>> =
        (0..4).map(|i| Arc::new(random_digraph(&schema, 13, 0.4, 300 + i))).collect();
    let queries = [
        path_query(&schema, "E", 4),
        path_query(&schema, "E", 2).power(12),
        cycle_query(&schema, "E", 4),
        star_query(&schema, "E", 5),
    ];

    let mut group = c.benchmark_group("engine_backend_comparison");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(900));
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.throughput(Throughput::Elements((dbs.len() * queries.len()) as u64));
    for choice in BackendChoice::ALL {
        let batch: Vec<Job> = dbs
            .iter()
            .flat_map(|d| queries.iter().map(|q| Job::count_with(choice, q.clone(), Arc::clone(d))))
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(choice), &batch, |b, batch| {
            b.iter(|| {
                // Fresh engine per iteration: a cold cache, so every job
                // actually runs its pinned kernel.
                let engine = EvalEngine::with_workers(2);
                for h in engine.submit_batch(batch.clone()) {
                    criterion::black_box(h.wait());
                }
            })
        });
    }
    group.finish();
}

/// E-OVERLOAD companion: the serving layer's cost under burst load. An
/// unbounded queue absorbs the whole burst (baseline); a bounded queue
/// under RejectNewest sheds most of it at admission. Shedding should be
/// *much* cheaper per job than serving — constant-time refusal vs a full
/// evaluation — so the bounded round's wall clock is dominated by the few
/// admitted jobs.
fn bench_overload_admission(c: &mut Criterion) {
    let schema = digraph_schema();
    let d = Arc::new(random_digraph(&schema, 12, 0.3, 11));
    let q = path_query(&schema, "E", 3);
    const BURST: usize = 64;

    let mut group = c.benchmark_group("engine_overload");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(900));
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.throughput(Throughput::Elements(BURST as u64));
    for (label, capacity) in [("unbounded", 0usize), ("bounded_8", 8)] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let engine = EvalEngine::new(EngineConfig {
                    workers: 2,
                    admission: AdmissionConfig { capacity, policy: AdmissionPolicy::RejectNewest },
                    ..EngineConfig::default()
                });
                let handles: Vec<_> = (0..BURST)
                    .map(|_| engine.submit(Job::count(q.clone(), Arc::clone(&d))))
                    .collect();
                for h in handles {
                    criterion::black_box(h.wait());
                }
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_batch_throughput,
    bench_cross_validation_overhead,
    bench_backend_comparison,
    bench_overload_admission
);
criterion_main!(benches);
