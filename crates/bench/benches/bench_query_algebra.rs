//! E-L1 / E-D2 — the query algebra: cost of building disjoint
//! conjunctions and powers, and of evaluating them versus multiplying the
//! factor counts (the two must agree by Lemma 1; the factored evaluation
//! must be asymptotically cheaper).

use bagcq_bench::{digraph_schema, random_digraph};
use bagcq_core::prelude::*;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_construction(c: &mut Criterion) {
    let schema = digraph_schema();
    let q = path_query(&schema, "E", 3);
    let mut group = c.benchmark_group("query_power_build");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(800));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for k in [4u32, 16, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| b.iter(|| q.power(k)));
    }
    group.finish();
}

fn bench_eval_factored_vs_flat(c: &mut Criterion) {
    let schema = digraph_schema();
    let d = random_digraph(&schema, 10, 0.25, 11);
    let q = path_query(&schema, "E", 2);
    let mut group = c.benchmark_group("power_eval");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(800));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for k in [2u32, 6, 12] {
        // Flat: count the expanded k-fold query (component factorization
        // inside the engine still helps; this measures its overhead).
        let flat = q.power(k);
        group.bench_with_input(BenchmarkId::new("flat", k), &flat, |b, flat| {
            b.iter(|| CountRequest::new(flat, &d).count())
        });
        // Factored: count once, pow.
        group.bench_with_input(BenchmarkId::new("factored", k), &k, |b, &k| {
            b.iter(|| CountRequest::new(&q, &d).count().pow_u64(k as u64))
        });
        // Symbolic PowerQuery evaluation.
        let pq = PowerQuery::power(q.clone(), Nat::from_u64(k as u64));
        group.bench_with_input(BenchmarkId::new("symbolic", k), &pq, |b, pq| {
            b.iter(|| eval_power_query(pq, &d, &EvalOptions::default()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_construction, bench_eval_factored_vs_flat);
criterion_main!(benches);
