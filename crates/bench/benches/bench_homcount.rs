//! E-PERF1 — engine comparison: naive backtracking vs tree-decomposition
//! DP, across the classic query families and growing databases. The
//! expected *shape*: treewidth wins on low-width/many-variable queries
//! (long paths, grids) as the database grows; naive wins on tiny queries
//! where decomposition overhead dominates.

use bagcq_bench::{digraph_schema, query_families, random_digraph};
use bagcq_core::prelude::*;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_engines(c: &mut Criterion) {
    let schema = digraph_schema();
    let mut group = c.benchmark_group("homcount");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(800));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for n in [8u32, 16, 24] {
        let d = random_digraph(&schema, n, 0.15, 42);
        for (name, q) in query_families(&schema) {
            group.bench_with_input(
                BenchmarkId::new(format!("naive/{name}"), n),
                &(&q, &d),
                |b, (q, d)| {
                    b.iter(|| CountRequest::new(q, d).backend(BackendChoice::Naive).count())
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("treewidth/{name}"), n),
                &(&q, &d),
                |b, (q, d)| {
                    b.iter(|| CountRequest::new(q, d).backend(BackendChoice::Treewidth).count())
                },
            );
        }
    }
    group.finish();
}

fn bench_power_factorization(c: &mut Criterion) {
    // Component factorization: counting θ↑k must scale linearly in k.
    let schema = digraph_schema();
    let d = random_digraph(&schema, 12, 0.2, 7);
    let q = path_query(&schema, "E", 2);
    let mut group = c.benchmark_group("power_factorization");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(800));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for k in [1u32, 8, 32] {
        let powered = q.power(k);
        group.bench_with_input(BenchmarkId::from_parameter(k), &powered, |b, pq| {
            b.iter(|| CountRequest::new(pq, &d).backend(BackendChoice::Treewidth).count())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engines, bench_power_factorization);
criterion_main!(benches);
