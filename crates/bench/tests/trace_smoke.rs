//! Trace smoke tests: run the experiment binaries with `--trace` and
//! validate the emitted artifacts — the JSONL stream parses, every span
//! nests correctly (exit ≥ enter, parents exist, intervals contain their
//! children), and the Chrome-trace export is a well-formed JSON array a
//! Perfetto load would accept.

use bagcq_core::obs::{self, Event, EventKind};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::process::Command;

/// Runs `bin --trace <dir>/trace.json` and returns (stdout, trace.json
/// path, trace.jsonl path).
fn run_traced(bin: &str, dir: &Path, extra_env: &[(&str, &str)]) -> (String, PathBuf, PathBuf) {
    std::fs::create_dir_all(dir).expect("trace dir");
    let chrome = dir.join("trace.json");
    let mut cmd = Command::new(bin);
    cmd.arg("--trace").arg(&chrome);
    for (k, v) in extra_env {
        cmd.env(k, v);
    }
    let out = cmd.output().expect("experiment binary runs");
    assert!(
        out.status.success(),
        "{bin} --trace failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    (String::from_utf8(out.stdout).expect("utf8 stdout"), chrome, dir.join("trace.jsonl"))
}

/// Full artifact validation shared by both binaries.
fn validate_artifacts(stdout: &str, chrome: &Path, jsonl: &Path, want_stages: &[&str]) {
    // The E-TRACE section and the commit line made it to stdout.
    assert!(stdout.contains("## E-TRACE"), "missing E-TRACE section");
    assert!(stdout.contains("trace committed:"), "missing trace commit line");

    // JSONL: parses line-by-line, spans nest, expected stages present.
    let text = std::fs::read_to_string(jsonl).expect("jsonl exists");
    let events: Vec<Event> = obs::parse_jsonl(&text).expect("jsonl parses");
    assert!(!events.is_empty(), "trace must contain events");
    let roots = obs::validate_nesting(&events).expect("spans must nest");
    assert!(roots > 0, "at least one root span");
    let stages: BTreeSet<&str> = events.iter().map(|e| e.stage.as_str()).collect();
    for want in want_stages {
        assert!(stages.contains(want), "stage {want:?} missing from trace; got {stages:?}");
    }
    // Exit ≥ enter, stated directly: a span's end never precedes its
    // start (dur_us is unsigned, so overflow is the only way to lie).
    for e in &events {
        match e.kind {
            EventKind::Span => {
                assert!(e.ts_us.checked_add(e.dur_us).is_some(), "span interval overflows")
            }
            EventKind::Instant => assert_eq!(e.dur_us, 0, "instants are zero-width"),
        }
    }

    // Chrome trace: a non-empty JSON array of objects with the Trace
    // Event Format's required keys.
    let chrome_text = std::fs::read_to_string(chrome).expect("chrome trace exists");
    let parsed = obs::json::parse(&chrome_text).expect("chrome trace parses as JSON");
    let arr = parsed.as_array().expect("chrome trace is a JSON array");
    assert_eq!(arr.len(), events.len(), "one trace event per tracer event");
    for ev in arr {
        for key in ["name", "cat", "ph", "ts", "pid", "tid"] {
            assert!(ev.get(key).is_some(), "chrome event missing {key:?}");
        }
        let ph = ev.get("ph").and_then(|p| p.as_str()).expect("ph is a string");
        assert!(ph == "X" || ph == "i", "unexpected phase {ph:?}");
    }
}

#[test]
fn exp_engines_trace_parses_and_nests() {
    let dir = std::env::temp_dir().join(format!("bagcq-trace-engines-{}", std::process::id()));
    let (stdout, chrome, jsonl) = run_traced(env!("CARGO_BIN_EXE_exp_engines"), &dir, &[]);
    validate_artifacts(
        &stdout,
        &chrome,
        &jsonl,
        &[
            "engine.enqueue",
            "engine.process",
            "engine.count",
            "engine.publish",
            "homcount.naive",
            "homcount.treedec",
            "homcount.bagsweep",
            "containment.check",
        ],
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn exp_theorem1_trace_parses_and_nests() {
    let dir = std::env::temp_dir().join(format!("bagcq-trace-t1-{}", std::process::id()));
    let journal_dir = dir.join("journals");
    let (stdout, chrome, jsonl) = run_traced(
        env!("CARGO_BIN_EXE_exp_theorem1"),
        &dir,
        &[("BAGCQ_JOURNAL_DIR", journal_dir.to_str().expect("utf8 temp path"))],
    );
    validate_artifacts(
        &stdout,
        &chrome,
        &jsonl,
        &["reduction.build", "reduction.sweep_point", "homcount.power", "engine.process"],
    );
    let _ = std::fs::remove_dir_all(&dir);
}
