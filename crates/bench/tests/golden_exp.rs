//! Golden snapshot tests for the experiment binaries.
//!
//! Each test runs a binary, normalizes the few environment-dependent
//! lines out of its stdout, and compares against a checked-in snapshot
//! under `tests/golden/`. Regenerate after an intentional output change
//! with:
//!
//! ```text
//! BAGCQ_BLESS=1 cargo test -p bagcq-bench --test golden_exp
//! ```
//!
//! (`exp_engines` is deliberately absent: its tables quote wall-clock
//! timings, which no normalization short of deleting the tables would
//! stabilize. Those paths are covered by `trace_smoke.rs` instead.)

use std::path::{Path, PathBuf};
use std::process::Command;

fn golden_path(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden").join(name)
}

/// Runs a binary and returns its stdout; stderr is surfaced on failure.
fn run(bin: &str, envs: &[(&str, &str)]) -> String {
    let mut cmd = Command::new(bin);
    for (k, v) in envs {
        cmd.env(k, v);
    }
    let out = cmd.output().expect("experiment binary runs");
    assert!(out.status.success(), "{bin} failed:\n{}", String::from_utf8_lossy(&out.stderr));
    String::from_utf8(out.stdout).expect("utf8 stdout")
}

/// Compares `actual` against the snapshot, or rewrites the snapshot when
/// `BAGCQ_BLESS=1`. The diff shows the first divergent line to keep
/// failures readable.
fn assert_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("BAGCQ_BLESS").is_some_and(|v| v == "1") {
        std::fs::create_dir_all(path.parent().unwrap()).expect("golden dir");
        std::fs::write(&path, actual).expect("bless golden");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing snapshot {path:?} ({e}); run with BAGCQ_BLESS=1 to create it")
    });
    if actual == expected {
        return;
    }
    for (i, (a, e)) in actual.lines().zip(expected.lines()).enumerate() {
        assert_eq!(a, e, "{name} diverges at line {}", i + 1);
    }
    panic!(
        "{name}: line counts differ ({} actual vs {} expected)",
        actual.lines().count(),
        expected.lines().count()
    );
}

#[test]
fn exp_gadgets_output_is_stable() {
    // Fully deterministic: seeded falsification sweeps, exact counts.
    assert_golden("exp_gadgets.txt", &run(env!("CARGO_BIN_EXE_exp_gadgets"), &[]));
}

#[test]
fn exp_theorem1_output_is_stable() {
    let dir = std::env::temp_dir().join(format!("bagcq-golden-t1-{}", std::process::id()));
    let out = run(
        env!("CARGO_BIN_EXE_exp_theorem1"),
        &[("BAGCQ_JOURNAL_DIR", dir.to_str().expect("utf8 temp path"))],
    );
    let _ = std::fs::remove_dir_all(&dir);
    assert_golden("exp_theorem1.txt", &normalize_theorem1(&out));
}

/// Rewrites the two environment-dependent spots in `exp_theorem1` output:
/// the journal directory (a temp path here, `target/sweep-journals` for a
/// user run) and the cache-hits column of the engine-routed table (the
/// single-flight dedup vs. plain cache-hit split depends on worker
/// scheduling even though the total work never changes).
fn normalize_theorem1(out: &str) -> String {
    out.lines()
        .map(|line| {
            if let Some(rest) = line.strip_prefix("(crash-safe: each point is journaled under ") {
                let tail = rest.split_once(';').map(|(_, t)| t).unwrap_or("");
                format!("(crash-safe: each point is journaled under <journal-dir>;{tail}")
            } else if line.ends_with("| ok |") {
                // `| instance | decisions | cache hits | deadline demo |`
                let cells: Vec<&str> = line.split('|').collect();
                assert_eq!(cells.len(), 6, "unexpected engine-table row: {line}");
                format!("|{}|{}| <cache-hits> |{}|", cells[1], cells[2], cells[4])
            } else {
                line.to_string()
            }
        })
        .collect::<Vec<_>>()
        .join("\n")
        + "\n"
}
