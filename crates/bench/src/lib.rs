//! Shared workloads for the benchmark suite and the experiment binaries.
//!
//! The paper has no tables or figures (it is a theory paper); the
//! "evaluation" this crate regenerates is the set of quantitative claims
//! in its lemmas and theorems — see `DESIGN.md` §5 for the experiment
//! index and `EXPERIMENTS.md` for the recorded outputs.

#![forbid(unsafe_code)]

use bagcq_core::prelude::*;
use std::sync::Arc;

/// A digraph schema with a single binary relation `E`.
pub fn digraph_schema() -> Arc<Schema> {
    let mut b = Schema::builder();
    b.relation("E", 2);
    b.build()
}

/// A random digraph with `n` vertices and ~`density·n²` edges.
pub fn random_digraph(schema: &Arc<Schema>, n: u32, density: f64, seed: u64) -> Structure {
    StructureGen {
        extra_vertices: n,
        density,
        max_tuples_per_relation: ((n as f64 * n as f64 * density) as usize).max(1),
        diagonal_density: 0.1,
    }
    .sample(schema, seed)
}

/// The query families of experiment E-PERF1, labeled.
pub fn query_families(schema: &Arc<Schema>) -> Vec<(&'static str, Query)> {
    vec![
        ("path-4", path_query(schema, "E", 4)),
        ("path-8", path_query(schema, "E", 8)),
        ("cycle-4", cycle_query(schema, "E", 4)),
        ("cycle-6", cycle_query(schema, "E", 6)),
        ("star-6", star_query(schema, "E", 6)),
        ("grid-3x2", grid_query(schema, "E", 3, 2)),
        ("grid-3x3", grid_query(schema, "E", 3, 3)),
    ]
}

/// Summary of one journaled backward sweep.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SweepStats {
    /// Total sweep points (valuations) in the box.
    pub points_total: usize,
    /// Points answered from the journal (completed by an earlier run).
    pub points_resumed: usize,
    /// Points computed (and committed) by this run.
    pub points_computed: usize,
    /// Databases checked across all points, including resumed ones.
    pub databases_checked: usize,
}

/// The crash-safe variant of
/// [`Theorem1Reduction::sweep_databases`]: every completed sweep point
/// (valuation) is committed to `journal` with an atomic
/// write-temp-then-rename, and points already committed by a previous
/// (killed) run are skipped instead of recomputed.
///
/// `on_point` fires immediately *before* each computed point — the resume
/// integration test uses it to kill the sweep partway; experiment
/// binaries pass a no-op.
///
/// The caller decides the journal's fate: [`SweepJournal::finish`] after
/// a fully clean sweep, or keep it on disk to resume after a failure.
pub fn journaled_backward_sweep(
    red: &Theorem1Reduction,
    bound: u64,
    opts: &EvalOptions,
    journal: &mut SweepJournal,
    mut on_point: impl FnMut(&[u64]),
) -> Result<SweepStats, String> {
    let n = red.instance.n_vars as usize;
    let mut stats =
        SweepStats { points_total: 0, points_resumed: 0, points_computed: 0, databases_checked: 0 };
    let mut val = vec![0u64; n];
    loop {
        stats.points_total += 1;
        let key: String = val.iter().map(u64::to_string).collect::<Vec<_>>().join(",");
        match journal.get(&key) {
            Some(recorded) => {
                // Committed by an earlier run; trust the journal.
                let checked: usize = recorded
                    .strip_prefix("ok:")
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| format!("journal entry {key:?} is corrupt: {recorded:?}"))?;
                stats.points_resumed += 1;
                stats.databases_checked += checked;
            }
            None => {
                on_point(&val);
                let checked = red.sweep_point(&val, opts)?;
                journal.record(&key, &format!("ok:{checked}"))?;
                stats.points_computed += 1;
                stats.databases_checked += checked;
            }
        }

        // Odometer.
        let mut i = 0;
        loop {
            if i == n {
                return Ok(stats);
            }
            val[i] += 1;
            if val[i] <= bound {
                break;
            }
            val[i] = 0;
            i += 1;
        }
    }
}

/// Parses a `--trace <path>` (or `--trace=<path>`) flag from the command
/// line and starts a [`TraceSession`] at that path. Returns `None` — and
/// leaves the tracer disabled, its cost one relaxed load per
/// instrumentation site — when the flag is absent.
pub fn start_trace_from_args() -> Option<TraceSession> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--trace" {
            let path = args.next().expect("--trace requires a path argument");
            return Some(TraceSession::start(path));
        }
        if let Some(p) = a.strip_prefix("--trace=") {
            return Some(TraceSession::start(p.to_string()));
        }
    }
    None
}

/// Prints the `E-TRACE` summary section (per-stage latency histograms)
/// and commits the session's trace files. No-op when `session` is `None`
/// (the binary ran without `--trace`), so golden output stays stable.
pub fn emit_trace_section(session: Option<TraceSession>) {
    let Some(session) = session else { return };
    println!();
    println!("## E-TRACE — per-stage span latencies (process-wide tracer)");
    println!();
    let stats = bagcq_core::obs::stage_snapshot();
    print!("{}", bagcq_core::obs::render_stage_report(&stats));
    match session.finish() {
        Ok(report) => {
            println!();
            println!(
                "trace committed: {} spans + {} instants -> {} (Perfetto) and {} (JSONL)",
                report.spans,
                report.instants,
                report.chrome_path.display(),
                report.jsonl_path.display()
            );
        }
        Err(e) => eprintln!("trace export failed: {e}"),
    }
}

/// Formats a potentially huge count compactly.
pub fn fmt_count(n: &Nat) -> String {
    let s = n.to_string();
    if s.len() <= 24 {
        s
    } else {
        format!("≈2^{:.1} ({} digits)", n.log2(), s.len())
    }
}

/// Markdown-style table row printer.
pub fn row(cells: &[String]) {
    println!("| {} |", cells.join(" | "));
}

/// Markdown separator row with `n` columns.
pub fn sep(n: usize) {
    println!("|{}", " --- |".repeat(n));
}
