//! Shared workloads for the benchmark suite and the experiment binaries.
//!
//! The paper has no tables or figures (it is a theory paper); the
//! "evaluation" this crate regenerates is the set of quantitative claims
//! in its lemmas and theorems — see `DESIGN.md` §5 for the experiment
//! index and `EXPERIMENTS.md` for the recorded outputs.

#![forbid(unsafe_code)]

use bagcq_core::prelude::*;
use std::sync::Arc;

/// A digraph schema with a single binary relation `E`.
pub fn digraph_schema() -> Arc<Schema> {
    let mut b = Schema::builder();
    b.relation("E", 2);
    b.build()
}

/// A random digraph with `n` vertices and ~`density·n²` edges.
pub fn random_digraph(schema: &Arc<Schema>, n: u32, density: f64, seed: u64) -> Structure {
    StructureGen {
        extra_vertices: n,
        density,
        max_tuples_per_relation: ((n as f64 * n as f64 * density) as usize).max(1),
        diagonal_density: 0.1,
    }
    .sample(schema, seed)
}

/// The query families of experiment E-PERF1, labeled.
pub fn query_families(schema: &Arc<Schema>) -> Vec<(&'static str, Query)> {
    vec![
        ("path-4", path_query(schema, "E", 4)),
        ("path-8", path_query(schema, "E", 8)),
        ("cycle-4", cycle_query(schema, "E", 4)),
        ("cycle-6", cycle_query(schema, "E", 6)),
        ("star-6", star_query(schema, "E", 6)),
        ("grid-3x2", grid_query(schema, "E", 3, 2)),
        ("grid-3x3", grid_query(schema, "E", 3, 3)),
    ]
}

/// Formats a potentially huge count compactly.
pub fn fmt_count(n: &Nat) -> String {
    let s = n.to_string();
    if s.len() <= 24 {
        s
    } else {
        format!("≈2^{:.1} ({} digits)", n.log2(), s.len())
    }
}

/// Markdown-style table row printer.
pub fn row(cells: &[String]) {
    println!("| {} |", cells.join(" | "));
}

/// Markdown separator row with `n` columns.
pub fn sep(n: usize) {
    println!("|{}", " --- |".repeat(n));
}
