//! Experiments E-L12, E-L15, E-L17/18, E-L19/20/21 — the Section 4
//! machinery of the Theorem 1 reduction, claim by claim.

use bagcq_bench::{fmt_count, journaled_backward_sweep, row, sep};
use bagcq_core::prelude::*;
use std::path::PathBuf;

/// Where sweep journals live: `BAGCQ_JOURNAL_DIR`, defaulting to
/// `target/sweep-journals` (same convention as `exp_theorem1`).
fn journal_dir() -> PathBuf {
    std::env::var_os("BAGCQ_JOURNAL_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target/sweep-journals"))
}

fn main() {
    let red = Theorem1Reduction::new(toy_instance(2, vec![1, 2], vec![2, 3]));
    let opts = EvalOptions::default();
    println!(
        "Instance: c = {}, P_s = {}, P_b = {}",
        red.instance.c,
        red.instance.p_s(),
        red.instance.p_b()
    );
    println!(
        "Reduction constants: k = {}, ℂ₁ = {}, ℂ = {} ({} bits)",
        red.k,
        red.c1,
        red.big_c,
        red.big_c.bits()
    );
    println!();

    println!("## E-L15 — Lemma 15: π-counts equal polynomial values on correct D");
    row(&[
        "Ξ".into(),
        "π_s(D)".into(),
        "P_s(Ξ)".into(),
        "π_b(D)".into(),
        "Ξ(x₁)^d·P_b(Ξ)".into(),
        "match".into(),
    ]);
    sep(6);
    for val in [[0u64, 0], [1, 0], [1, 1], [2, 1], [2, 3], [4, 2]] {
        let d = red.correct_database(&val);
        let nv: Vec<Nat> = val.iter().map(|&v| Nat::from_u64(v)).collect();
        let pi_s = CountRequest::new(&red.pi_s, &d).count();
        let ps = red.instance.p_s().eval_nat(&nv);
        let pi_b = CountRequest::new(&red.pi_b, &d).count();
        let pb =
            nv[0].pow_u64(red.instance.degree as u64).mul_ref(&red.instance.p_b().eval_nat(&nv));
        let ok = pi_s == ps && pi_b == pb;
        row(&[
            format!("{val:?}"),
            pi_s.to_string(),
            ps.to_string(),
            pi_b.to_string(),
            pb.to_string(),
            ok.to_string(),
        ]);
        assert!(ok);
    }

    println!();
    println!("## E-L12 — Lemma 12: π_s(D) ≤ π_b(D) for arbitrary D (onto-hom certificate)");
    let h = red.lemma12_onto_hom();
    println!("explicit onto hom verified: {}", verify_onto_hom(&red.pi_b, &red.pi_s, &h));
    let gen = StructureGen {
        extra_vertices: 4,
        density: 0.4,
        max_tuples_per_relation: 120,
        diagonal_density: 0.5,
    };
    let mut worst: Option<(Nat, Nat)> = None;
    for seed in 0..60u64 {
        let d = gen.sample(&red.schema, seed);
        let s = CountRequest::new(&red.pi_s, &d).count();
        let b = CountRequest::new(&red.pi_b, &d).count();
        assert!(s <= b, "Lemma 12 violated at seed {seed}");
        if !s.is_zero() {
            worst = Some((s.clone(), b.clone()));
        }
    }
    println!("60 random structures: no violation; a nonzero sample: {:?}", worst);

    println!();
    println!("## E-L17/18 — ζ_b: correct = ℂ₁; slightly incorrect ≥ c·ℂ₁");
    row(&["database".into(), "ζ_b(D)".into(), "claim".into(), "holds".into()]);
    sep(4);
    let d = red.correct_database(&[1, 2]);
    let zeta = eval_power_query(&red.zeta_b, &d, &opts);
    let ok = zeta.as_exact() == Some(&red.c1);
    row(&["correct".into(), format!("{zeta}"), format!("= ℂ₁ = {}", red.c1), ok.to_string()]);
    assert!(ok);
    for extra in 1..=3u64 {
        let mut slight = d.clone();
        let a1 = slight.constant_vertex(red.a_m[0]);
        let b1 = slight.constant_vertex(red.b_n[0]);
        slight.add_atom(red.s_rels[0], &[a1, b1]);
        if extra >= 2 {
            let a2 = slight.constant_vertex(red.a_m[1]);
            slight.add_atom(red.s_rels[0], &[b1, a2]);
        }
        if extra >= 3 {
            let av = slight.constant_vertex(red.a_const);
            slight.add_atom(red.r_rels[0], &[b1, av]);
        }
        let z = eval_power_query(&red.zeta_b, &slight, &opts);
        let threshold = Magnitude::exact(red.instance.c.mul_ref(&red.c1));
        let holds = matches!(z.cmp_cert(&threshold), CertOrd::Greater | CertOrd::Equal);
        row(&[
            format!("slightly incorrect (+{extra} atoms)"),
            format!("{z}"),
            "≥ c·ℂ₁".into(),
            holds.to_string(),
        ]);
        assert!(holds);
    }

    println!();
    println!("## E-L19/20/21 — δ_b: Arena ⇒ ≥1; correct ⇒ =1; seriously incorrect ⇒ ≥2^ℂ");
    row(&["database".into(), "δ_b(D)".into(), "claim".into(), "holds".into()]);
    sep(4);
    let delta_correct = eval_power_query(&red.delta_b, &d, &opts);
    let ok = delta_correct.as_exact() == Some(&Nat::one());
    row(&["correct".into(), format!("{delta_correct}"), "= 1".into(), ok.to_string()]);
    assert!(ok);

    // Case 1 of Lemma 21: identify ♀ with another constant.
    let venus_v = d.constant_vertex(red.venus);
    let a_v = d.constant_vertex(red.a_const);
    let serious1 = d.identify(venus_v, a_v);
    let delta1 = eval_power_query(&red.delta_b, &serious1, &opts);
    let thr = Magnitude::exact(red.big_c.clone());
    let ok1 = delta1.cmp_cert(&thr) == CertOrd::Greater;
    row(&[
        "seriously incorrect (♀ = a)".into(),
        format!("{delta1}"),
        "≥ 2^ℂ > ℂ".into(),
        ok1.to_string(),
    ]);
    assert!(ok1);

    // Case 2: identify two non-♀ constants.
    let a1v = d.constant_vertex(red.a_m[0]);
    let a2v = d.constant_vertex(red.a_m[1]);
    let serious2 = d.identify(a1v, a2v);
    let delta2 = eval_power_query(&red.delta_b, &serious2, &opts);
    let ok2 = delta2.cmp_cert(&thr) == CertOrd::Greater;
    row(&[
        "seriously incorrect (a₁ = a₂)".into(),
        format!("{delta2}"),
        "≥ 2^ℂ > ℂ".into(),
        ok2.to_string(),
    ]);
    assert!(ok2);

    println!();
    println!("## Putting it together — ℂ·φ_s vs φ_b per Definition 13 class");
    row(&["database".into(), "class".into(), "ℂ·φ_s ≤ φ_b".into()]);
    sep(3);
    // Note: this instance is genuinely violating at Ξ = (1,1) — that is
    // the ℜ ⇒ ☀ direction. The rows below use valuations/perturbations
    // where the inequality must hold.
    for (label, dd) in [
        ("correct (safe val (2,1))", red.correct_database(&[2, 1])),
        ("slightly incorrect", {
            let mut x = red.correct_database(&[1, 1]);
            let a1 = x.constant_vertex(red.a_m[0]);
            let b1 = x.constant_vertex(red.b_n[0]);
            x.add_atom(red.s_rels[0], &[a1, b1]);
            x
        }),
        ("seriously incorrect", serious2.clone()),
    ] {
        let class = red.classify(&dd);
        let holds = red.holds_on(&dd, &opts);
        row(&[label.into(), format!("{class:?}"), format!("{holds:?}")]);
        assert_eq!(holds, Some(true));
    }
    println!();
    println!("## Crash-safe class sweep (journaled)");
    println!("Every valuation in 0..=1² re-checked across all three Definition 13");
    println!("classes, one journal commit per point: kill this binary mid-sweep and");
    println!("the next run resumes at the first unrecorded valuation.");
    let sweep_name = "reduction-classes-bound1";
    let path = journal_dir().join(format!("{sweep_name}.journal"));
    let mut journal = SweepJournal::open(&path, sweep_name)
        .unwrap_or_else(|e| panic!("cannot open sweep journal: {e}"));
    match journaled_backward_sweep(&red, 1, &opts, &mut journal, |_| {}) {
        Ok(stats) => {
            println!(
                "points: {} ({} resumed from {:?}, {} computed); databases checked: {}",
                stats.points_total,
                stats.points_resumed,
                path,
                stats.points_computed,
                stats.databases_checked,
            );
            journal.finish().unwrap_or_else(|e| panic!("cannot remove journal: {e}"));
        }
        Err(e) => panic!("journaled class sweep failed: {e}"),
    }

    println!();
    println!("counts shown compactly where huge, e.g. ℂ = {}", fmt_count(&red.big_c));
    println!("All Section 4 claims verified.");
}
