//! Experiment E-HDE — sampling estimates of the Kopparty–Rossman
//! homomorphism domination exponent (the paper's Section 1.1 context:
//! `QCP^bag_CQ` is the question `hde(ϱ_b, ϱ_s) ≥ 1`).
//!
//! Algebraically exact rows (the estimator matches the closed form on
//! every sample): `hde(F, F) = 1`, `hde(θ, θ↑k) = 1/k`.

use bagcq_bench::{digraph_schema, row, sep};
use bagcq_core::containment::estimate_domination_exponent;
use bagcq_core::prelude::*;

fn main() {
    let schema = digraph_schema();
    let gen = StructureGen {
        extra_vertices: 5,
        density: 0.45,
        max_tuples_per_relation: 200,
        diagonal_density: 0.5,
    };

    println!("## E-HDE — homomorphism domination exponent estimates");
    row(&["F".into(), "G".into(), "estimate (40 samples)".into(), "exact value".into()]);
    sep(4);

    let edge = path_query(&schema, "E", 1);
    let p2 = path_query(&schema, "E", 2);
    let c3 = cycle_query(&schema, "E", 3);
    let mut qb = Query::builder(std::sync::Arc::clone(&schema));
    let x = qb.var("x");
    qb.atom_named("E", &[x, x]);
    let loops = qb.build();

    let cases: Vec<(&str, &Query, &str, Query, Option<f64>)> = vec![
        ("edge", &edge, "edge", edge.clone(), Some(1.0)),
        ("edge", &edge, "edge↑2", edge.power(2), Some(0.5)),
        ("edge", &edge, "edge↑3", edge.power(3), Some(1.0 / 3.0)),
        ("2-walk", &p2, "2-walk↑2", p2.power(2), Some(0.5)),
        ("edge", &edge, "loops", loops.clone(), None),
        ("2-walk", &p2, "edge", edge.clone(), None),
        ("3-cycle", &c3, "edge", edge.clone(), None),
    ];
    for (fname, f, gname, g, exact) in cases {
        let est = estimate_domination_exponent(f, &g, &gen, 40, 77);
        row(&[
            fname.into(),
            gname.into(),
            est.map_or("uninformative".into(), |e| format!("{e:.4}")),
            exact.map_or("-".into(), |e| format!("{e:.4}")),
        ]);
        if let (Some(est), Some(exact)) = (est, exact) {
            assert!((est - exact).abs() < 1e-9, "{fname}/{gname}: {est} vs {exact}");
        }
    }
    println!();
    println!("hde(F,G) ≥ 1 ⇔ G ⊑bag F; estimates are upper bounds (inf over");
    println!("sampled databases). The exact rows pin the estimator's correctness;");
    println!("the open problem is deciding the ≥ 1 threshold in general.");
}
