//! Experiments E-T1 and E-B — the end-to-end Theorem 1 equivalence over
//! the Hilbert corpus: root existence ⇔ database witness existence, with
//! the Appendix B chain in between.

use bagcq_bench::{emit_trace_section, journaled_backward_sweep, row, sep, start_trace_from_args};
use bagcq_core::prelude::*;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// Where sweep journals live: `BAGCQ_JOURNAL_DIR`, defaulting to
/// `target/sweep-journals`. A sweep killed mid-run leaves its journal
/// here and resumes from it on the next invocation.
fn journal_dir() -> PathBuf {
    std::env::var_os("BAGCQ_JOURNAL_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target/sweep-journals"))
}

/// Value of `--flag v` / `--flag=v` from the command line, if present.
fn flag_value(flag: &str) -> Option<String> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == flag {
            return args.next();
        }
        if let Some(v) = a.strip_prefix(&format!("{flag}=")) {
            return Some(v.to_string());
        }
    }
    None
}

/// Opt-in (`--store DIR [--workers N]`): route the backward sweeps
/// through the persistent memo store and the sharded coordinator, then
/// run them again to show the warm restart recomputes nothing. Strictly
/// additive — without `--store` the output is byte-identical to before
/// (the golden snapshot runs without it).
fn store_backed_sweeps(store_root: &str, workers: usize) {
    use bagcq_coord::{run_coordinator, CoordConfig, InstanceSpec, SweepSpec};
    println!();
    println!("## Store-backed sharded sweeps (opt-in: --store {store_root} --workers {workers})");
    row(&[
        "instance".into(),
        "points".into(),
        "this run resumed/computed".into(),
        "warm rerun resumed/computed".into(),
    ]);
    sep(4);
    for name in ["parity", "shifted-positive"] {
        let spec = SweepSpec { instance: InstanceSpec::Hilbert(name.to_string()), bound: 1 };
        let dir = PathBuf::from(store_root).join(name);
        let mut config = CoordConfig::new(spec.clone(), &dir);
        config.workers = workers;
        config.report_path = dir.join("report.txt");
        let first = run_coordinator(&config).unwrap_or_else(|e| panic!("{name}: {e}"));
        let warm = run_coordinator(&config).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(
            warm.points_computed, 0,
            "{name}: a warm restart over the store must recompute nothing"
        );
        assert_eq!(warm.points_resumed, warm.points_total);
        row(&[
            name.into(),
            first.points_total.to_string(),
            format!("{}/{}", first.points_resumed, first.points_computed),
            format!("{}/{}", warm.points_resumed, warm.points_computed),
        ]);
    }
}

/// Re-verifies `ℂ·φ_s(D) ≤ φ_b(D)` decisions through the `bagcq-engine`
/// service: all φ-evaluations for a box of correct databases go in as one
/// batch (each submitted twice, so the single-flight cache proves itself),
/// with dual-engine cross-validation on every underlying count.
fn engine_sweep(red: &Theorem1Reduction, bound: u64, opts: &EvalOptions) -> (usize, usize) {
    let engine = EvalEngine::new(EngineConfig { cross_validate: true, ..EngineConfig::default() });
    let n = red.instance.n_vars as usize;
    let mut databases = Vec::new();
    let mut val = vec![0u64; n];
    'odometer: loop {
        databases.push((val.clone(), Arc::new(red.correct_database(&val))));
        let mut i = 0;
        loop {
            if i == n {
                break 'odometer;
            }
            val[i] += 1;
            if val[i] <= bound {
                break;
            }
            val[i] = 0;
            i += 1;
        }
    }

    // Two jobs per database (φ_s, φ_b). The whole batch runs twice; the
    // second round, submitted after the first completes, must be answered
    // entirely by the memo cache.
    let make_jobs = || {
        databases
            .iter()
            .flat_map(|(_, d)| {
                [
                    Job::eval_power(red.phi_s.clone(), Arc::clone(d)),
                    Job::eval_power(red.phi_b.clone(), Arc::clone(d)),
                ]
            })
            .collect::<Vec<_>>()
    };
    let mut agreements = 0;
    for _round in 0..2 {
        let handles = engine.submit_batch(make_jobs());
        for (i, (val, d)) in databases.iter().enumerate() {
            let s = handles[2 * i].wait();
            let b = handles[2 * i + 1].wait();
            let (Some(s), Some(b)) = (s.as_power(), b.as_power()) else {
                panic!("engine failed φ-evaluation at {val:?}");
            };
            let lhs = Magnitude::exact_with_budget(red.big_c.clone(), opts.exact_bits).mul(s);
            let holds = match lhs.cmp_cert(b) {
                CertOrd::Less | CertOrd::Equal => Some(true),
                CertOrd::Greater => Some(false),
                CertOrd::Unknown => None,
            };
            assert_eq!(
                holds,
                red.holds_on(d, opts),
                "engine-routed φ-comparison diverges from direct evaluation at {val:?}"
            );
            agreements += 1;
        }
    }

    let m = engine.metrics();
    assert!(m.cache_hits > 0, "repeated batch must hit the memo cache");
    assert!(m.cross_validations > 0, "cross-validation must have run");
    assert_eq!(m.jobs_panicked, 0);
    (agreements, m.cache_hits as usize)
}

fn main() {
    // Hidden re-exec mode: the sharded coordinator spawns workers as
    // `<current_exe> sweep-worker ...`, so this binary doubles as its
    // own worker when the opt-in `--store` sweep runs.
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().map(String::as_str) == Some("sweep-worker") {
        if let Err(e) = bagcq_coord::worker_main(&argv[1..]) {
            eprintln!("sweep-worker: {e}");
            std::process::exit(1);
        }
        return;
    }

    let trace = start_trace_from_args();
    println!("## E-B / E-T1 — Hilbert corpus through Appendix B + Theorem 1");
    row(&[
        "instance".into(),
        "root (≤5)".into(),
        "Lemma 11: c, d, 𝕞".into(),
        "ℂ bits".into(),
        "φ-witness found".into(),
        "agrees".into(),
    ]);
    sep(6);

    let opts = EvalOptions::default();
    for inst in hilbert_library() {
        // Larger instances exist in the corpus; the witness-search box is
        // kept small so the whole sweep stays interactive.
        if inst.n_vars > 2 {
            continue;
        }
        let chain = reduce(&inst.poly);
        let red = Theorem1Reduction::new(chain.instance.clone());
        let root = inst.find_root(5);
        let witness = red.find_phi_witness(3, &opts);
        let agrees = root.is_some() == witness.is_some();
        row(&[
            inst.name.into(),
            format!("{root:?}"),
            format!(
                "{}, {}, {}",
                chain.instance.c,
                chain.instance.degree,
                chain.instance.monomials.len()
            ),
            red.big_c.bits().to_string(),
            match &witness {
                Some(w) => format!("yes at Ξ = {:?}", w.valuation),
                None => "no (box ≤3)".into(),
            },
            agrees.to_string(),
        ]);
        assert!(agrees, "{}: equivalence broken", inst.name);
    }

    println!();
    println!("## Backward sweeps on rootless instances (correct + perturbed databases)");
    println!("(crash-safe: each point is journaled under {:?}; a killed", journal_dir());
    println!(" sweep resumes from its journal instead of recomputing)");
    row(&[
        "instance".into(),
        "databases checked".into(),
        "points resumed".into(),
        "all satisfy ℂ·φ_s ≤ φ_b".into(),
    ]);
    sep(4);
    for name in ["parity", "shifted-positive", "square-plus-one"] {
        let inst = hilbert_instance(name).unwrap();
        let chain = reduce(&inst.poly);
        let red = Theorem1Reduction::new(chain.instance.clone());
        let sweep_name = format!("theorem1-backward-{name}-bound1");
        let path = journal_dir().join(format!("{sweep_name}.journal"));
        let mut journal = SweepJournal::open(&path, &sweep_name).unwrap_or_else(|e| {
            panic!("cannot open sweep journal: {e}");
        });
        match journaled_backward_sweep(&red, 1, &opts, &mut journal, |_| {}) {
            Ok(stats) => {
                row(&[
                    name.into(),
                    stats.databases_checked.to_string(),
                    stats.points_resumed.to_string(),
                    "yes".into(),
                ]);
                // Clean completion: drop the journal so the next run
                // re-verifies instead of replaying.
                journal.finish().unwrap_or_else(|e| panic!("cannot remove journal: {e}"));
            }
            Err(e) => {
                row(&[name.into(), "-".into(), "-".into(), format!("NO: {e}")]);
                panic!("{e}");
            }
        }
    }
    println!();
    println!("## Engine-routed re-verification (batched, cached, cross-validated)");
    row(&[
        "instance".into(),
        "φ-decisions re-verified".into(),
        "cache hits".into(),
        "deadline demo".into(),
    ]);
    sep(4);
    for name in ["parity", "shifted-positive"] {
        let inst = hilbert_instance(name).unwrap();
        let chain = reduce(&inst.poly);
        let red = Theorem1Reduction::new(chain.instance.clone());
        let (agreements, hits) = engine_sweep(&red, 1, &opts);

        // A job with an impossible deadline times out; an identical job
        // without one still completes — isolation, not contagion.
        let engine = EvalEngine::with_workers(2);
        let d = Arc::new(red.correct_database(&vec![0; red.instance.n_vars as usize]));
        let doomed = engine.submit(
            Job::eval_power(red.phi_b.clone(), Arc::clone(&d))
                .with_timeout(Duration::from_nanos(1)),
        );
        let fine = engine.submit(Job::eval_power(red.phi_b.clone(), d));
        let demo = matches!(doomed.wait(), Outcome::TimedOut) && fine.wait().as_power().is_some();
        assert!(demo, "deadline must isolate the doomed job only");
        row(&[name.into(), agreements.to_string(), hits.to_string(), "ok".into()]);
    }

    if let Some(store_root) = flag_value("--store") {
        let workers = flag_value("--workers").and_then(|v| v.parse().ok()).unwrap_or(1);
        store_backed_sweeps(&store_root, workers);
    }

    println!();
    println!("Theorem 1 equivalence verified across the corpus.");

    emit_trace_section(trace);
}
