//! Experiments E-T1 and E-B — the end-to-end Theorem 1 equivalence over
//! the Hilbert corpus: root existence ⇔ database witness existence, with
//! the Appendix B chain in between.

use bagcq_bench::{row, sep};
use bagcq_core::prelude::*;

fn main() {
    println!("## E-B / E-T1 — Hilbert corpus through Appendix B + Theorem 1");
    row(&[
        "instance".into(),
        "root (≤5)".into(),
        "Lemma 11: c, d, 𝕞".into(),
        "ℂ bits".into(),
        "φ-witness found".into(),
        "agrees".into(),
    ]);
    sep(6);

    let opts = EvalOptions::default();
    for inst in hilbert_library() {
        // Larger instances exist in the corpus; the witness-search box is
        // kept small so the whole sweep stays interactive.
        if inst.n_vars > 2 {
            continue;
        }
        let chain = reduce(&inst.poly);
        let red = Theorem1Reduction::new(chain.instance.clone());
        let root = inst.find_root(5);
        let witness = red.find_phi_witness(3, &opts);
        let agrees = root.is_some() == witness.is_some();
        row(&[
            inst.name.into(),
            format!("{root:?}"),
            format!(
                "{}, {}, {}",
                chain.instance.c,
                chain.instance.degree,
                chain.instance.monomials.len()
            ),
            red.big_c.bits().to_string(),
            match &witness {
                Some(w) => format!("yes at Ξ = {:?}", w.valuation),
                None => "no (box ≤3)".into(),
            },
            agrees.to_string(),
        ]);
        assert!(agrees, "{}: equivalence broken", inst.name);
    }

    println!();
    println!("## Backward sweeps on rootless instances (correct + perturbed databases)");
    row(&["instance".into(), "databases checked".into(), "all satisfy ℂ·φ_s ≤ φ_b".into()]);
    sep(3);
    for name in ["parity", "shifted-positive", "square-plus-one"] {
        let inst = hilbert_instance(name).unwrap();
        let chain = reduce(&inst.poly);
        let red = Theorem1Reduction::new(chain.instance.clone());
        match red.sweep_databases(1, &opts) {
            Ok(n) => row(&[name.into(), n.to_string(), "yes".into()]),
            Err(e) => {
                row(&[name.into(), "-".into(), format!("NO: {e}")]);
                panic!("{e}");
            }
        }
    }
    println!();
    println!("Theorem 1 equivalence verified across the corpus.");
}
