//! Experiments E-L5, E-L8, E-L10, E-C — the Section 3 gadgets.
//!
//! Regenerates, for each parameter value: the exact (=) witness counts,
//! the claimed ratios, and the outcome of (≤)-falsification sweeps.
//! Paper claims: Lemma 5 (`β` multiplies by `(p+1)²/2p`), Lemma 8
//! (degenerate cyclass ≤ p/2), Lemma 10 (`γ` multiplies by `(m−1)/m`),
//! Section 3.2 (`α` multiplies by exactly `c` with one inequality).

use bagcq_bench::{row, sep};
use bagcq_core::prelude::*;
use bagcq_core::reduction::cyclique;

fn main() {
    println!("## E-L5 — Lemma 5: β multiplies by (p+1)²/2p");
    row(&[
        "p".into(),
        "ratio".into(),
        "β_s(W)".into(),
        "β_b(W)".into(),
        "(=) exact".into(),
        "(≤) sweep (40 rand)".into(),
    ]);
    sep(6);
    for p in [3usize, 4, 5, 7, 9, 11] {
        let g = beta_gadget(p, "E");
        let (s, b) = g.check_witness().expect("(=) holds");
        let gen = StructureGen {
            extra_vertices: 3,
            density: 0.6,
            max_tuples_per_relation: 60,
            diagonal_density: 0.7,
        };
        let sweep = g.falsify(&gen, 40, 99).is_none();
        row(&[
            p.to_string(),
            g.ratio.to_string(),
            s.to_string(),
            b.to_string(),
            "yes".into(),
            if sweep { "no violation".into() } else { "VIOLATED".into() },
        ]);
        assert!(sweep);
    }

    println!();
    println!("## E-L8 — Lemma 8: degenerate cyclasses have ≤ p/2 elements");
    row(&[
        "p".into(),
        "tuples checked".into(),
        "max degenerate cyclass".into(),
        "bound p/2".into(),
    ]);
    sep(4);
    for p in 2usize..=9 {
        let mut max_deg = 0usize;
        let mut checked = 0usize;
        let mut tuple = vec![0u32; p];
        loop {
            if cyclique::classify(&tuple) == cyclique::CycliqueKind::Degenerate {
                max_deg = max_deg.max(cyclique::cyclass(&tuple).len());
            }
            checked += 1;
            let mut i = 0;
            loop {
                if i == p {
                    break;
                }
                tuple[i] += 1;
                if tuple[i] < 3 {
                    break;
                }
                tuple[i] = 0;
                i += 1;
            }
            if i == p {
                break;
            }
        }
        row(&[p.to_string(), checked.to_string(), max_deg.to_string(), (p / 2).to_string()]);
        assert!(max_deg * 2 <= p || max_deg == 0);
    }

    println!();
    println!("## E-L10 — Lemma 10: γ multiplies by (m−1)/m with zero inequalities");
    row(&[
        "m".into(),
        "ratio".into(),
        "γ_s(W)".into(),
        "γ_b(W)".into(),
        "ineqs s/b".into(),
        "(≤) sweep".into(),
    ]);
    sep(6);
    for m in [2usize, 3, 4, 6, 8] {
        let g = gamma_gadget(m, "E");
        let (s, b) = g.check_witness().expect("(=) holds");
        let gen = StructureGen {
            extra_vertices: 3,
            density: 0.7,
            max_tuples_per_relation: 50,
            diagonal_density: 0.8,
        };
        let sweep = g.falsify(&gen, 40, 123).is_none();
        row(&[
            m.to_string(),
            g.ratio.to_string(),
            s.to_string(),
            b.to_string(),
            format!("{}/{}", g.q_s.stats().inequalities, g.q_b.stats().inequalities),
            if sweep { "no violation".into() } else { "VIOLATED".into() },
        ]);
        assert!(sweep);
    }

    println!();
    println!("## E-C — Section 3.2: α multiplies by exactly c, one inequality");
    row(&[
        "c".into(),
        "p=2c−1".into(),
        "m=p+1".into(),
        "ratio".into(),
        "α_s(W)".into(),
        "α_b(W)".into(),
        "ineqs s/b".into(),
    ]);
    sep(7);
    for c in [2u64, 3, 4, 5] {
        let g = alpha_gadget(c, "E");
        let (s, b) = g.check_witness().expect("(=) holds");
        row(&[
            c.to_string(),
            (2 * c - 1).to_string(),
            (2 * c).to_string(),
            g.ratio.to_string(),
            s.to_string(),
            b.to_string(),
            format!("{}/{}", g.q_s.stats().inequalities, g.q_b.stats().inequalities),
        ]);
        assert_eq!(g.ratio, Rat::from_u64s(c, 1));
        assert_eq!(g.q_s.stats().inequalities, 0);
        assert_eq!(g.q_b.stats().inequalities, 1);
    }
    println!();
    println!("All gadget claims verified.");
}
