//! Experiment E-SHARD — persistent memo store + sharded sweep coordinator
//! benchmark. Emits a machine-readable `BENCH_store.json`:
//!
//! * warm vs cold wall-clock through the store (a restarted sweep resumes
//!   every point from disk and recomputes nothing);
//! * store hit rates for the warm leg;
//! * worker-scaling wall-clock for N = 1/2/4/8.
//!
//! The box this repo grows on has a single core, so raw compute cannot
//! scale; the scaling leg therefore runs **delay-bound** points
//! (`--point-delay-ms`, default 150) — each point sleeps in its worker,
//! modelling the I/O- or compute-heavy points of a real sweep, and N
//! workers overlap those delays. The cold/warm leg runs undelayed.
//!
//! Flags: `--out PATH` (default `BENCH_store.json`), `--point-delay-ms MS`,
//! `--bound B` (default 3 → 16 points on the 2-variable toy instance).

use bagcq_coord::{run_coordinator, CoordConfig, CoordReport, InstanceSpec, SweepSpec};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// The toy instance: compute per point is trivial, so the cold/warm gap
/// measures store + process machinery and the scaling leg measures
/// scheduling, not arithmetic.
const TOY: &str = "toy:2:1,1:2,2";

fn flag_value(flag: &str) -> Option<String> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == flag {
            return args.next();
        }
        if let Some(v) = a.strip_prefix(&format!("{flag}=")) {
            return Some(v.to_string());
        }
    }
    None
}

fn flag_u64(flag: &str, default: u64) -> u64 {
    flag_value(flag).and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn spec(bound: u64) -> SweepSpec {
    SweepSpec { instance: InstanceSpec::parse(TOY).expect("toy spec"), bound }
}

fn run(dir: &Path, bound: u64, workers: usize, delay_ms: u64) -> (CoordReport, f64) {
    let mut config = CoordConfig::new(spec(bound), dir);
    config.workers = workers;
    config.report_path = dir.join("report.txt");
    config.point_delay_ms = delay_ms;
    let started = Instant::now();
    let report = run_coordinator(&config).unwrap_or_else(|e| panic!("coordinator: {e}"));
    (report, started.elapsed().as_secs_f64() * 1e3)
}

fn main() {
    // Hidden re-exec mode: the coordinator spawns `<current_exe>
    // sweep-worker ...` as its worker processes.
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().map(String::as_str) == Some("sweep-worker") {
        if let Err(e) = bagcq_coord::worker_main(&argv[1..]) {
            eprintln!("sweep-worker: {e}");
            std::process::exit(1);
        }
        return;
    }

    let out = PathBuf::from(flag_value("--out").unwrap_or_else(|| "BENCH_store.json".into()));
    let delay_ms = flag_u64("--point-delay-ms", 150);
    let bound = flag_u64("--bound", 3);
    let scratch = std::env::temp_dir().join(format!("bagcq-exp-shard-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);

    println!("## E-SHARD — persistent store + sharded coordinator ({TOY}, bound {bound})");

    // --- Leg 1: cold vs warm (undelayed, one worker) --------------------
    let dir = scratch.join("warmcold");
    let (cold, cold_ms) = run(&dir, bound, 1, 0);
    let (warm, warm_ms) = run(&dir, bound, 1, 0);
    assert_eq!(cold.points_computed, cold.points_total, "first run is cold");
    assert_eq!(warm.points_computed, 0, "warm restart must recompute nothing");
    assert_eq!(warm.points_resumed, warm.points_total);
    let points = cold.points_total;
    println!(
        "cold: {points} points computed in {cold_ms:.1} ms; \
         warm: {} resumed in {warm_ms:.1} ms ({:.1}x)",
        warm.points_resumed,
        cold_ms / warm_ms.max(0.001),
    );

    // --- Leg 2: worker scaling (delay-bound points) ---------------------
    let mut scaling: Vec<(usize, f64, CoordReport)> = Vec::new();
    for n in [1usize, 2, 4, 8] {
        let dir = scratch.join(format!("scale-{n}"));
        let (report, ms) = run(&dir, bound, n, delay_ms);
        assert_eq!(report.points_computed, points, "each scaling run starts cold");
        println!("workers={n}: {ms:.1} ms (deaths={})", report.worker_deaths);
        scaling.push((n, ms, report));
    }
    let base_ms = scaling[0].1;
    let n8_speedup = base_ms / scaling.last().unwrap().1.max(0.001);
    println!("N=8 speedup over N=1: {n8_speedup:.2}x (delay-bound points, {delay_ms} ms each)");

    // --- Emit machine-readable JSON -------------------------------------
    let scaling_json: Vec<String> = scaling
        .iter()
        .map(|(n, ms, r)| {
            format!(
                "    {{\"workers\": {n}, \"wall_ms\": {ms:.2}, \"speedup_vs_1\": {:.3}, \
                 \"leases_issued\": {}, \"worker_deaths\": {}}}",
                base_ms / ms.max(0.001),
                r.leases_issued,
                r.worker_deaths
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"store\",\n  \"instance\": \"{TOY}\",\n  \"bound\": {bound},\n  \
         \"points\": {points},\n  \"warm_vs_cold\": {{\n    \"cold_ms\": {cold_ms:.2},\n    \
         \"warm_ms\": {warm_ms:.2},\n    \"cold_computed\": {},\n    \"warm_resumed\": {},\n    \
         \"warm_computed\": {},\n    \"warm_hit_rate\": {:.3}\n  }},\n  \
         \"point_delay_ms\": {delay_ms},\n  \"scaling\": [\n{}\n  ],\n  \
         \"n8_speedup_vs_n1\": {n8_speedup:.3},\n  \
         \"note\": \"scaling leg is delay-bound (single-core box): each point sleeps \
         point_delay_ms in its worker, so N workers overlap delays; cold/warm leg is undelayed\"\n}}\n",
        cold.points_computed,
        warm.points_resumed,
        warm.points_computed,
        warm.points_resumed as f64 / points.max(1) as f64,
        scaling_json.join(",\n"),
    );
    std::fs::write(&out, json).unwrap_or_else(|e| panic!("{}: {e}", out.display()));
    println!("wrote {}", out.display());
    let _ = std::fs::remove_dir_all(&scratch);
}
