//! Experiment E-L23/24 — Theorem 5's inequality-elimination construction
//! across seeds: how the power `k` and the blow-up `κ` scale with the
//! number of inequalities and the seed counts.

use bagcq_bench::{fmt_count, row, sep};
use bagcq_core::prelude::*;
use std::sync::Arc;

fn main() {
    let mut sb = Schema::builder();
    let e = sb.relation("E", 2);
    let schema = sb.build();

    println!("## E-L23/24 — Theorem 5 constructions");
    row(&[
        "ψ_s (p ineqs)".into(),
        "ψ_b".into(),
        "seed ψ′_s/ψ_b".into(),
        "k".into(),
        "κ=2p".into(),
        "|D| vertices".into(),
        "ψ_s(D)".into(),
        "ψ_b(D)".into(),
    ]);
    sep(8);

    // Family 1: edges-with-distinct-endpoints vs loops, p = 1.
    let mut qb = Query::builder(Arc::clone(&schema));
    let x = qb.var("x");
    let y = qb.var("y");
    qb.atom_named("E", &[x, y]).neq(x, y);
    let psi_s1 = qb.build();
    let mut qb = Query::builder(Arc::clone(&schema));
    let u = qb.var("u");
    qb.atom_named("E", &[u, u]);
    let psi_b1 = qb.build();
    let mut d0 = Structure::new(Arc::clone(&schema));
    d0.add_vertices(4);
    for (a, b) in [(0u32, 0u32), (0, 1), (1, 2), (2, 3)] {
        d0.add_atom(e, &[Vertex(a), Vertex(b)]);
    }
    run_case("E(x,y)∧x≠y (1)", "E(u,u)", &psi_s1, &psi_b1, &d0);

    // Family 2: 2-walks with two inequalities vs loops, p = 2.
    let mut qb = Query::builder(Arc::clone(&schema));
    let x = qb.var("x");
    let y = qb.var("y");
    let z = qb.var("z");
    qb.atom_named("E", &[x, y]).atom_named("E", &[y, z]);
    qb.neq(x, y).neq(y, z);
    let psi_s2 = qb.build();
    let mut d02 = Structure::new(Arc::clone(&schema));
    d02.add_vertices(4);
    for (a, b) in [(0u32, 1u32), (1, 2), (3, 3)] {
        d02.add_atom(e, &[Vertex(a), Vertex(b)]);
    }
    run_case("2-walk, x≠y, y≠z (2)", "E(u,u)", &psi_s2, &psi_b1, &d02);

    // Family 3: triangle with all-distinct vertices vs 2-walks, p = 3.
    let mut qb = Query::builder(Arc::clone(&schema));
    let x = qb.var("x");
    let y = qb.var("y");
    let z = qb.var("z");
    qb.atom_named("E", &[x, y]).atom_named("E", &[y, z]).atom_named("E", &[z, x]);
    qb.neq(x, y).neq(y, z).neq(x, z);
    let psi_s3 = qb.build();
    let mut qb = Query::builder(Arc::clone(&schema));
    let u = qb.var("u");
    let v = qb.var("v");
    let w = qb.var("w");
    qb.atom_named("E", &[u, v]).atom_named("E", &[v, w]);
    let psi_b3 = qb.build();
    // Seed: a 3-cycle (triangles: 3 homs of C3; 2-walks: 3... need
    // ψ′_s > ψ_b: C3 has 3 cycle-homs and 3 2-walk homs — tie. Add a
    // second disjoint 3-cycle: 6 vs 6 — scaling won't help a tie; add a
    // pendant-free... use K4 minus loops? Triangles in the complete
    // digraph on 3 vertices *with* all 9 edges: C3 homs = 27? Let's just
    // use the directed 3-cycle plus one chord-free extra 3-cycle sharing
    // nothing and drop walks by splitting... Simplest seed that works:
    // two disjoint 3-cycles have walks 6 and triangles 6 (tie). Take the
    // canonical structure of the triangle query *with a loop removed*…
    // Use the complete digraph K3 (9 edges incl. loops): triangles = 27,
    // 2-walks = 27 (tie again). The tie is structural: both have 3 vars!
    // So compare triangles against *loops* instead (1 var): C3 has 0
    // loops, 3 triangles: strict.
    let mut d03 = Structure::new(Arc::clone(&schema));
    d03.add_vertices(3);
    for (a, b) in [(0u32, 1u32), (1, 2), (2, 0)] {
        d03.add_atom(e, &[Vertex(a), Vertex(b)]);
    }
    let _ = psi_b3;
    run_case("triangle, all ≠ (3)", "E(u,u)", &psi_s3, &psi_b1, &d03);

    println!();
    println!("Shape: κ = 2p as Lemma 24 prescribes; k grows when the seed ratio");
    println!("ψ′_s/ψ_b is close to 1 and stays at 1 when ψ_b(D₀) = 0.");
}

fn run_case(label_s: &str, label_b: &str, psi_s: &Query, psi_b: &Query, d0: &Structure) {
    let s0 = CountRequest::new(&psi_s.strip_inequalities(), d0).count();
    let b0 = CountRequest::new(psi_b, d0).count();
    match eliminate_inequalities(psi_s, psi_b, d0, 10) {
        Ok(elim) => {
            row(&[
                label_s.into(),
                label_b.into(),
                format!("{s0}/{b0}"),
                elim.k.to_string(),
                elim.kappa.to_string(),
                elim.witness.vertex_count().to_string(),
                fmt_count(&elim.count_s),
                fmt_count(&elim.count_b),
            ]);
            assert!(elim.count_s > elim.count_b);
        }
        Err(err) => {
            row(&[
                label_s.into(),
                label_b.into(),
                format!("{s0}/{b0}"),
                "-".into(),
                "-".into(),
                "-".into(),
                format!("{err:?}"),
                "-".into(),
            ]);
            panic!("elimination failed: {err:?}");
        }
    }
}
