//! Experiment E-IR — "step zero": the Ioannidis–Ramakrishnan encoding of
//! Hilbert's 10th problem into `QCP^bag_UCQ` (the paper's reference [14],
//! which its four steps then strengthen from UCQs to single CQs).

use bagcq_bench::{row, sep};
use bagcq_core::prelude::*;

fn main() {
    println!("## E-IR — UCQ encodings of the Hilbert corpus (P₁ = Q'₋+1 vs P₂ = Q'₊)");
    row(&[
        "instance".into(),
        "U₁ disjuncts".into(),
        "U₂ disjuncts".into(),
        "root".into(),
        "U₁ ⊑ U₂ violated on D(Ξ_root·ext)".into(),
    ]);
    sep(5);
    for inst in hilbert_library() {
        if inst.n_vars > 3 {
            continue;
        }
        // Reuse the Appendix B split: Q = 0 ⇔ P₁ > P₂ with natural
        // coefficients (Lemma 25), so U₁ ⊑bag U₂ iff Q has no root.
        let chain = reduce(&inst.poly);
        let n_vars = chain.p1.max_var().max(chain.p2.max_var()).map(|v| v + 1).unwrap_or(1);
        let enc = ioannidis_encode(&chain.p1, &chain.p2, n_vars);
        let violated = inst.known_root.as_ref().map(|root| {
            // P₁/P₂ use shifted variables (ξ₁ unused): valuation = [0, root…].
            let mut val = vec![0u64];
            val.extend_from_slice(root);
            val.resize(n_vars as usize, 0);
            let d = enc.valuation_database(&val);
            eval_union(&enc.u1, &d) > eval_union(&enc.u2, &d)
        });
        row(&[
            inst.name.into(),
            enc.u1.len().to_string(),
            enc.u2.len().to_string(),
            format!("{:?}", inst.known_root),
            match violated {
                Some(v) => v.to_string(),
                None => "(rootless: containment expected)".into(),
            },
        ]);
        if let Some(v) = violated {
            assert!(v, "{}: root must violate the UCQ containment", inst.name);
        } else {
            // Rootless: spot-check containment on a box.
            let mut ok = true;
            let mut val = vec![0u64; n_vars as usize];
            'outer: loop {
                let d = enc.valuation_database(&val);
                if eval_union(&enc.u1, &d) > eval_union(&enc.u2, &d) {
                    ok = false;
                    break;
                }
                let mut i = 0;
                loop {
                    if i == val.len() {
                        break 'outer;
                    }
                    val[i] += 1;
                    if val[i] <= 2 {
                        break;
                    }
                    val[i] = 0;
                    i += 1;
                }
            }
            assert!(ok, "{}: rootless but UCQ containment violated", inst.name);
        }
    }
    println!();
    println!("The encoding needs NO anti-cheating layer (U(D) = P(Ξ_D) for ALL D),");
    println!("which is why [14] is 'quite easy' — and why shrinking UCQs down to");
    println!("single CQs (the paper's four steps) is the hard part.");
}
