//! Experiment E-T3 — query-size accounting for the Theorem 3 output: the
//! headline comparison against Jayram–Kolaitis–Vee [15], whose
//! construction needs 59¹⁰ ≈ 5.1·10¹⁷ inequalities. Ours needs exactly
//! one, and the (symbolically represented) queries stay polynomial in the
//! input instance.

use bagcq_bench::{row, sep};
use bagcq_core::prelude::*;

fn main() {
    println!("## E-T3 — Theorem 3 query sizes across the corpus");
    row(&[
        "instance".into(),
        "ψ_s vars/atoms (symbolic)".into(),
        "ψ_b vars/atoms (symbolic)".into(),
        "ineqs ψ_s".into(),
        "ineqs ψ_b".into(),
        "[15] would need".into(),
    ]);
    sep(6);
    for inst in hilbert_library() {
        if inst.n_vars > 3 {
            continue;
        }
        let chain = reduce(&inst.poly);
        let red = Theorem1Reduction::new(chain.instance.clone());
        // Gadget with a small stand-in multiplier: the σ-sizes of the α
        // part scale linearly in c (arity p = 2c−1); report with c = 2 and
        // note the true-ℂ scaling separately.
        let alpha = alpha_gadget(2, "SZ");
        let t3 = compose_theorem3(&alpha, &red.schema, &red.phi_s, &red.phi_b);
        let sizes = theorem3_sizes(&t3);
        row(&[
            inst.name.into(),
            format!("{}/{}", sizes.psi_s_symbolic.variables, sizes.psi_s_symbolic.atoms),
            format!("{}/{}", sizes.psi_b_symbolic.variables, sizes.psi_b_symbolic.atoms),
            sizes.psi_s_inequalities.to_string(),
            sizes.psi_b_inequalities.to_string(),
            "59^10 ≈ 5.1e17".into(),
        ]);
        assert_eq!(sizes.psi_s_inequalities, Nat::zero());
        assert_eq!(sizes.psi_b_inequalities, Nat::one());
    }

    println!();
    println!("## Scaling of the α gadget alone in the multiplier c");
    row(&[
        "c".into(),
        "arity p".into(),
        "α_s vars".into(),
        "α_s atoms".into(),
        "α_b atoms".into(),
        "ineqs α_b".into(),
    ]);
    sep(6);
    for c in [2u64, 3, 5, 8, 12] {
        let g = alpha_gadget(c, "SZ");
        let ss = g.q_s.stats();
        let sb = g.q_b.stats();
        row(&[
            c.to_string(),
            (2 * c - 1).to_string(),
            ss.variables.to_string(),
            ss.atoms.to_string(),
            sb.atoms.to_string(),
            sb.inequalities.to_string(),
        ]);
        assert_eq!(sb.inequalities, 1);
    }
    println!();
    println!("The gadget grows linearly in c (quadratic in atom length via arity);");
    println!("the true ℂ is astronomic, but the *inequality count stays 1* at every scale —");
    println!("which is the theorem's entire point.");
}
