//! Experiments E-L1, E-D2, E-L22 — the counting laws the paper's algebra
//! rests on, measured over random query/database pairs.

use bagcq_bench::{digraph_schema, fmt_count, random_digraph, row, sep};
use bagcq_core::prelude::*;

fn main() {
    let schema = digraph_schema();

    println!("## E-L1 — Lemma 1: (ρ ∧̄ ρ')(D) = ρ(D)·ρ'(D)");
    row(&[
        "seed".into(),
        "ρ(D)".into(),
        "ρ'(D)".into(),
        "(ρ∧̄ρ')(D)".into(),
        "product".into(),
        "equal".into(),
    ]);
    sep(6);
    let qg = QueryGen { variables: 3, atoms: 3, constant_prob: 0.0, inequalities: 0 };
    for seed in 0..6u64 {
        let q1 = qg.sample(&schema, seed);
        let q2 = qg.sample(&schema, seed + 100);
        let d = random_digraph(&schema, 6, 0.3, seed);
        let c1 = CountRequest::new(&q1, &d).count();
        let c2 = CountRequest::new(&q2, &d).count();
        let cc = CountRequest::new(&q1.disjoint_conj(&q2), &d).count();
        let prod = c1.mul_ref(&c2);
        let ok = cc == prod;
        row(&[
            seed.to_string(),
            c1.to_string(),
            c2.to_string(),
            cc.to_string(),
            prod.to_string(),
            ok.to_string(),
        ]);
        assert!(ok);
    }

    println!();
    println!("## E-D2 — Definition 2: (θ↑k)(D) = θ(D)^k");
    row(&["k".into(), "θ(D)".into(), "(θ↑k)(D)".into(), "θ(D)^k".into(), "equal".into()]);
    sep(5);
    let q = path_query(&schema, "E", 2);
    let d = random_digraph(&schema, 7, 0.3, 17);
    let base = CountRequest::new(&q, &d).count();
    for k in [0u32, 1, 2, 4, 8] {
        let powered = CountRequest::new(&q.power(k), &d).count();
        let expect = base.pow_u64(k as u64);
        let ok = powered == expect;
        row(&[
            k.to_string(),
            base.to_string(),
            fmt_count(&powered),
            fmt_count(&expect),
            ok.to_string(),
        ]);
        assert!(ok);
    }

    println!();
    println!("## E-L22 — Lemma 22: blow-up and product laws");
    row(&[
        "k".into(),
        "φ(D)".into(),
        "φ(blowup(D,k))".into(),
        "k^j·φ(D)".into(),
        "φ(D^×k)".into(),
        "φ(D)^k".into(),
        "both equal".into(),
    ]);
    sep(7);
    let q = cycle_query(&schema, "E", 3);
    let d = random_digraph(&schema, 6, 0.4, 23);
    let j = q.var_count() as u64;
    let base = CountRequest::new(&q, &d).count();
    for k in [1u32, 2, 3] {
        let blown = CountRequest::new(&q, &d.blowup(k)).count();
        let expect_blow = Nat::from_u64(k as u64).pow_u64(j).mul_ref(&base);
        let powered = CountRequest::new(&q, &d.power(k)).count();
        let expect_pow = base.pow_u64(k as u64);
        let ok = blown == expect_blow && powered == expect_pow;
        row(&[
            k.to_string(),
            base.to_string(),
            fmt_count(&blown),
            fmt_count(&expect_blow),
            fmt_count(&powered),
            fmt_count(&expect_pow),
            ok.to_string(),
        ]);
        assert!(ok);
    }
    println!();
    println!("The Lemma 22(ii) corollary: pure CQ pairs cannot multiply by q > 1,");
    println!("because φ_s(D^×k)/φ_b(D^×k) = (φ_s(D)/φ_b(D))^k would diverge.");
}
