//! Experiments for the deferred Theorems 2 and 4: the well of positivity
//! and the statement-level behaviour of the additive-constant and
//! `max{1,·}` variants (the paper proves these undecidable but defers the
//! constructions; see DESIGN.md §4 for the substitution policy).

use bagcq_bench::{row, sep};
use bagcq_core::prelude::*;
use std::sync::Arc;

fn main() {
    println!("## The well of positivity — why Theorem 1 needs non-triviality");
    let red = Theorem1Reduction::new(toy_instance(2, vec![1, 1], vec![2, 2]));
    let well = Structure::well_of_positivity(Arc::clone(&red.schema));
    let opts = EvalOptions::default();
    row(&["query".into(), "count on the well".into()]);
    sep(2);
    for (name, q) in [("Arena", &red.arena), ("π_s", &red.pi_s), ("π_b", &red.pi_b)] {
        row(&[name.into(), CountRequest::new(q, &well).count().to_string()]);
    }
    println!();
    println!(
        "ℂ·φ_s(well) ≤ φ_b(well)?  {:?}   (ℂ = {} — the inequality MUST fail on the well)",
        red.holds_on(&well, &opts),
        red.big_c
    );
    assert_eq!(red.holds_on(&well, &opts), Some(false));

    println!();
    println!("## Theorem 2 statement — the additive constant absorbs the well");
    row(&["ℂ′".into(), "holds on well".into(), "holds on correct D (safe inst.)".into()]);
    sep(3);
    let minimal = Theorem2Statement::minimal_well_constant(&red.big_c);
    for (label, c_prime) in [
        ("ℂ−1 (minimal)", minimal.clone()),
        ("ℂ", red.big_c.clone()),
        ("ℂ−2 (too small)", minimal.clone().checked_sub(&Nat::one()).unwrap()),
    ] {
        let stmt = Theorem2Statement {
            c: red.big_c.clone(),
            c_prime,
            phi_s: red.phi_s.clone(),
            phi_b: red.phi_b.clone(),
        };
        let on_well = stmt.holds_on(&well, &opts);
        let d = red.correct_database(&[1, 1]);
        let on_correct = stmt.holds_on(&d, &opts);
        row(&[label.into(), format!("{on_well:?}"), format!("{on_correct:?}")]);
    }

    println!();
    println!("## Theorem 4 statement — max{{1, ρ_b}} vs trivial databases");
    let g = alpha_gadget(2, "CJ");
    let stmt = Theorem4Statement {
        rho_s: PowerQuery::from_query(g.q_s.clone()),
        rho_b: PowerQuery::from_query(g.q_b.clone()),
    };
    let gadget_well = Structure::well_of_positivity(Arc::clone(g.q_s.schema()));
    row(&["database".into(), "ρ_s".into(), "ρ_b".into(), "ρ_s ≤ max{1,ρ_b}".into()]);
    sep(4);
    for (name, d) in [("well of positivity", &gadget_well), ("gadget witness", &g.witness)] {
        row(&[
            name.into(),
            CountRequest::new(&g.q_s, d).count().to_string(),
            CountRequest::new(&g.q_b, d).count().to_string(),
            format!("{:?}", stmt.holds_on(d, &opts)),
        ]);
    }
    println!();
    println!("On the well the b-query's inequality kills ρ_b (0 homs) while the");
    println!("pure ρ_s keeps 1 — exactly the case max{{1,·}} neutralizes. On the");
    println!("gadget witness ρ_s = c·ρ_b > max{{1, ρ_b}}: a genuine violation, as");
    println!("the gadget is built to produce.");
}
