//! Experiment E-PERF1 (quick table form) — engine comparison with
//! wall-clock timings; the criterion bench `bench_homcount` produces the
//! statistically rigorous version.

use bagcq_bench::{digraph_schema, fmt_count, query_families, random_digraph, row, sep};
use bagcq_core::prelude::*;
use std::time::Instant;

fn main() {
    let schema = digraph_schema();
    println!("## E-PERF1 — naive vs tree-decomposition #Hom");
    println!();
    println!("The engines trade places with density: backtracking costs ~one step");
    println!("per homomorphism, so it wins while counts are small and loses badly");
    println!("once counts explode; the DP costs ~#bags·n^(w+1) regardless of the");
    println!("count. Sparse databases below, then the dense crossover regime.");
    for (n, density) in [(10u32, 0.15), (20, 0.15), (12, 0.5), (14, 0.45)] {
        let d = random_digraph(&schema, n, density, 42);
        println!();
        println!(
            "database: {} vertices, {} edges",
            d.vertex_count(),
            d.atom_count(schema.relation_by_name("E").unwrap())
        );
        row(&["query".into(), "vars".into(), "width".into(), "count".into(), "naive".into(), "treewidth".into(), "speedup".into()]);
        sep(7);
        for (name, q) in query_families(&schema) {
            let width = TreewidthCounter.decomposition_width(&q);
            let t0 = Instant::now();
            let c_naive = NaiveCounter.count(&q, &d);
            let t_naive = t0.elapsed();
            let t0 = Instant::now();
            let c_tw = TreewidthCounter.count(&q, &d);
            let t_tw = t0.elapsed();
            assert_eq!(c_naive, c_tw);
            let speedup = t_naive.as_secs_f64() / t_tw.as_secs_f64().max(1e-9);
            row(&[
                name.into(),
                q.var_count().to_string(),
                width.to_string(),
                fmt_count(&c_naive),
                format!("{t_naive:.2?}"),
                format!("{t_tw:.2?}"),
                format!("{speedup:.2}x"),
            ]);
        }
    }
    println!();
    println!("Shape: naive wins on sparse data (counts are tiny, enumeration is");
    println!("cheap, DP table setup dominates); treewidth wins on dense data where");
    println!("counts grow to millions+ — enumeration pays per homomorphism, the DP");
    println!("does not. This is the classic #Hom output-sensitivity trade-off.");
}
