//! Experiment E-PERF1 (quick table form) — engine comparison with
//! wall-clock timings; the criterion bench `bench_homcount` produces the
//! statistically rigorous version.

use bagcq_bench::{
    digraph_schema, emit_trace_section, fmt_count, query_families, random_digraph, row, sep,
    start_trace_from_args,
};
use bagcq_core::prelude::*;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let trace = start_trace_from_args();
    let schema = digraph_schema();
    println!("## E-PERF1 — naive vs tree-decomposition #Hom");
    println!();
    println!("The engines trade places with density: backtracking costs ~one step");
    println!("per homomorphism, so it wins while counts are small and loses badly");
    println!("once counts explode; the DP costs ~#bags·n^(w+1) regardless of the");
    println!("count. Sparse databases below, then the dense crossover regime.");
    for (n, density) in [(10u32, 0.15), (20, 0.15), (12, 0.5), (14, 0.45)] {
        let d = random_digraph(&schema, n, density, 42);
        println!();
        println!(
            "database: {} vertices, {} edges",
            d.vertex_count(),
            d.atom_count(schema.relation_by_name("E").unwrap())
        );
        row(&[
            "query".into(),
            "vars".into(),
            "width".into(),
            "count".into(),
            "naive".into(),
            "treewidth".into(),
            "speedup".into(),
        ]);
        sep(7);
        for (name, q) in query_families(&schema) {
            let width = TreewidthCounter.decomposition_width(&q);
            let t0 = Instant::now();
            let c_naive = CountRequest::new(&q, &d).backend(BackendChoice::Naive).count();
            let t_naive = t0.elapsed();
            let t0 = Instant::now();
            let c_tw = CountRequest::new(&q, &d).backend(BackendChoice::Treewidth).count();
            let t_tw = t0.elapsed();
            assert_eq!(c_naive, c_tw);
            let speedup = t_naive.as_secs_f64() / t_tw.as_secs_f64().max(1e-9);
            row(&[
                name.into(),
                q.var_count().to_string(),
                width.to_string(),
                fmt_count(&c_naive),
                format!("{t_naive:.2?}"),
                format!("{t_tw:.2?}"),
                format!("{speedup:.2}x"),
            ]);
        }
    }
    println!();
    println!("Shape: naive wins on sparse data (counts are tiny, enumeration is");
    println!("cheap, DP table setup dominates); treewidth wins on dense data where");
    println!("counts grow to millions+ — enumeration pays per homomorphism, the DP");
    println!("does not. This is the classic #Hom output-sensitivity trade-off.");

    println!();
    println!("## E-KERNEL — machine-word fast path vs Nat reference");
    println!();
    println!("Every registered backend runs the same workload: the query families");
    println!("over a dense 14-vertex digraph, plus (2-walks)↑k power queries whose");
    println!("counts cross the u64 and u128 boundaries — so the fast paths must");
    println!("widen mid-run. Results are asserted bit-identical; the table reports");
    println!("per-backend wall-clock, throughput, promotion count, and speedup of");
    println!("each fast path over its own Nat-reference algorithm.");
    println!();
    let d_kernel = random_digraph(&schema, 14, 0.45, 42);
    let kernel_workload = || {
        let mut qs: Vec<(String, Query)> =
            query_families(&schema).into_iter().map(|(n, q)| (n.to_string(), q)).collect();
        let walks = path_query(&schema, "E", 2);
        for k in [4u32, 8, 16, 24] {
            qs.push((format!("(2-walks)↑{k}"), walks.power(k)));
        }
        qs
    };
    // Reference results once, so every backend is checked against them.
    let reference: Vec<Nat> = kernel_workload()
        .iter()
        .map(|(_, q)| CountRequest::new(q, &d_kernel).backend(BackendChoice::Naive).count())
        .collect();
    const ROUNDS: u32 = 5;
    row(&[
        "backend".into(),
        "per round".into(),
        "queries/s".into(),
        "promotions".into(),
        "vs Nat ref".into(),
    ]);
    sep(5);
    let mut family_baseline: [f64; 2] = [0.0; 2];
    for (kernel, choice) in registered_backends() {
        let workload = kernel_workload();
        let promos_before = acc_promotions();
        let t0 = Instant::now();
        for _ in 0..ROUNDS {
            for ((name, q), want) in workload.iter().zip(&reference) {
                let got = CountRequest::new(q, &d_kernel).backend(choice).count();
                assert_eq!(&got, want, "{}: backend diverges on {name}", kernel.name());
            }
        }
        let per_round = t0.elapsed() / ROUNDS;
        let promos = (acc_promotions() - promos_before) / u64::from(ROUNDS);
        let secs = per_round.as_secs_f64().max(1e-9);
        // The first two registered backends are the Nat references; the
        // fast paths that follow are compared against their own family.
        let fam = match choice.family() {
            Engine::Naive => 0,
            Engine::Treewidth => 1,
        };
        let vs_ref = if family_baseline[fam] == 0.0 {
            family_baseline[fam] = secs;
            "1.00x (ref)".to_string()
        } else {
            format!("{:.2}x", family_baseline[fam] / secs)
        };
        row(&[
            kernel.name().into(),
            format!("{per_round:.2?}"),
            format!("{:.0}", workload.len() as f64 / secs),
            promos.to_string(),
            vs_ref,
        ]);
    }
    println!();
    println!("The shared workload must stay naive-enumerable, so counts are small");
    println!("and both families sit near their reference speed (the naive loop's");
    println!("arithmetic is one add per homomorphism either way; promotions fire");
    println!("only on the boundary-crossing powers, u64 → u128 → Nat per widening).");
    println!();
    println!("The DP family is where the machine word pays: its tables hold one");
    println!("count per partial assignment, and with `Nat` every one of those is a");
    println!("heap value. Same check, arithmetic-heavy workload the backtracker");
    println!("could never enumerate (counts up to ~10⁴⁰ on a 20-vertex digraph):");
    println!();
    let d_dp = random_digraph(&schema, 20, 0.4, 42);
    row(&["query".into(), "treewidth".into(), "fast-treewidth".into(), "speedup".into()]);
    sep(4);
    for (name, q) in [
        ("star-16", star_query(&schema, "E", 16)),
        ("path-12", path_query(&schema, "E", 12)),
        ("(2-walks)↑64", path_query(&schema, "E", 2).power(64)),
    ] {
        let mut secs = [0.0f64; 2];
        let mut counts: Vec<Nat> = Vec::new();
        for (i, choice) in
            [BackendChoice::Treewidth, BackendChoice::FastTreewidth].into_iter().enumerate()
        {
            let t0 = Instant::now();
            for _ in 0..ROUNDS {
                counts.push(CountRequest::new(&q, &d_dp).backend(choice).count());
            }
            secs[i] = t0.elapsed().as_secs_f64() / f64::from(ROUNDS);
        }
        assert!(counts.windows(2).all(|w| w[0] == w[1]), "DP fast path diverges on {name}");
        row(&[
            name.into(),
            format!("{:.2?}", std::time::Duration::from_secs_f64(secs[0])),
            format!("{:.2?}", std::time::Duration::from_secs_f64(secs[1])),
            format!("{:.2}x", secs[0] / secs[1].max(1e-9)),
        ]);
    }

    println!();
    println!("## E-PERF2 — batched evaluation service (bagcq-engine)");
    println!();
    println!("The same counts, submitted as one batch to the concurrent engine with");
    println!("cross-validation on (every count computed by BOTH engines and compared),");
    println!("then resubmitted to show the single-flight memo cache at work.");
    let d = Arc::new(random_digraph(&schema, 12, 0.3, 7));
    let engine = EvalEngine::new(EngineConfig { cross_validate: true, ..EngineConfig::default() });
    let make_batch = || {
        query_families(&schema)
            .into_iter()
            .map(|(_, q)| Job::count(q, Arc::clone(&d)))
            .collect::<Vec<_>>()
    };
    for round in 0..2 {
        for (handle, (name, q)) in
            engine.submit_batch(make_batch()).iter().zip(query_families(&schema))
        {
            let got = handle.wait();
            let want = CountRequest::new(&q, &d).count();
            assert_eq!(got.as_count(), Some(&want), "{name}: engine diverges from direct count");
            if round == 0 {
                println!("  {name}: {}", fmt_count(&want));
            }
        }
    }

    // The containment harness plugged into the engine's cached counter
    // through the *fallible* path: every count the refutation phase makes
    // is cached + cross-validated, and a failing counter aborts the check
    // with a typed error instead of panicking.
    let counter = engine.cached_counter();
    let edges = path_query(&schema, "E", 1);
    let walks = path_query(&schema, "E", 2);
    let verdict = CheckRequest::new(&edges, &walks)
        .try_check_with_counter(&|q, db| counter.try_count(q, db))
        .expect("no faults configured, counts cannot fail");
    assert!(verdict.is_refuted(), "edges ≤ 2-walks must be refuted");
    println!();
    println!("containment `edges ≤ 2-walks` through the engine: refuted (correct).");

    let m = engine.metrics();
    assert!(m.cache_hits > 0, "resubmitted batch must hit the cache");
    assert!(m.cross_validations > 0);
    assert_eq!(m.jobs_panicked, 0);
    println!();
    print!("{}", m.render());

    println!();
    println!("## E-RESIL — the same workload under deterministic fault injection");
    println!();
    println!("Seeded chaos plan (panics, stalls, spurious cancels, transient count");
    println!("errors) threaded through every evaluation checkpoint. Completed");
    println!("outcomes stay bit-identical to the clean run above; failures are");
    println!("retried/fallen back, and nothing faulty ever enters the memo cache.");
    let injector = FaultInjector::new(FaultPlan::seeded(42).with_rate_per_mille(100));
    let chaos = EvalEngine::new(EngineConfig {
        fault: Some(Arc::clone(&injector)),
        ..EngineConfig::default()
    });
    // Injected panics are caught by the engine; keep their backtraces out
    // of the experiment output.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let mut recovered = 0u32;
    for (handle, (name, q)) in chaos.submit_batch(make_batch()).iter().zip(query_families(&schema))
    {
        let want = CountRequest::new(&q, &d).count();
        let mut out = handle.wait();
        while out.is_failure() {
            // Never cached, so a resubmission recomputes; the plan's
            // fault cap guarantees this loop terminates.
            recovered += 1;
            out = chaos.submit(Job::count(q.clone(), Arc::clone(&d))).wait();
        }
        assert_eq!(out.as_count(), Some(&want), "{name}: fault injection corrupted a count");
    }
    std::panic::set_hook(prev_hook);
    println!();
    println!(
        "faults injected: {} (of {} checkpoints); jobs resubmitted to recovery: {recovered}",
        injector.injected(),
        injector.checkpoints()
    );

    // Surface a sweep-journal resume through the same metrics pipe the
    // experiment drivers use (see exp_theorem1 for the real sweeps).
    let journal_path =
        std::env::temp_dir().join(format!("bagcq-demo-{}.journal", std::process::id()));
    let _ = std::fs::remove_file(&journal_path);
    let mut j = SweepJournal::open(&journal_path, "demo").expect("fresh journal");
    for p in ["0,0", "1,0", "0,1"] {
        j.record(p, "ok:3").expect("journal commit");
    }
    drop(j);
    let j = SweepJournal::open(&journal_path, "demo").expect("reopen");
    chaos.record_journal_resumes(j.resumed_entries() as u64);
    j.finish().expect("journal cleanup");

    let m = chaos.metrics();
    assert!(m.retries + m.fallbacks_taken + m.jobs_panicked > 0 || injector.injected() == 0);
    assert_eq!(m.journal_resumes, 3);
    println!();
    print!("{}", m.render());

    println!();
    println!("## E-OVERLOAD — the serving layer under a 10x-capacity burst");
    println!();
    println!("One worker, a bounded queue of 4 under RejectNewest, and a burst of 40");
    println!("jobs while the worker is stalled: the excess is shed with typed");
    println!("outcomes (never hangs, never grows the queue), every admitted job's");
    println!("count matches the direct evaluation, and a graceful drain resolves");
    println!("everything by its deadline.");
    const CAPACITY: usize = 4;
    // A plan whose only fault is one 60ms stall at the first checkpoint:
    // it pins the worker so the burst actually overloads the queue.
    let stall = FaultInjector::new(FaultPlan {
        latency: std::time::Duration::from_millis(60),
        ..FaultPlan::seeded(0)
            .with_kinds(&[FaultKind::Latency])
            .with_rate_per_mille(1000)
            .with_max_faults(1)
    });
    let serving = EvalEngine::new(EngineConfig {
        workers: 1,
        admission: AdmissionConfig { capacity: CAPACITY, policy: AdmissionPolicy::RejectNewest },
        memory_budget_bytes: 1 << 20,
        fault: Some(stall),
        ..EngineConfig::default()
    });
    let q = path_query(&schema, "E", 2);
    let want = CountRequest::new(&q, &d).count();
    let burst: Vec<_> =
        (0..10 * CAPACITY).map(|_| serving.submit(Job::count(q.clone(), Arc::clone(&d)))).collect();
    let (mut served, mut shed) = (0u64, 0u64);
    for handle in &burst {
        match handle.wait() {
            Outcome::Count(n) => {
                assert_eq!(n, want, "overload corrupted an admitted count");
                served += 1;
            }
            Outcome::Shed(reason) => {
                assert_eq!(reason, ShedReason::QueueFull);
                shed += 1;
            }
            other => panic!("unexpected outcome under burst: {other:?}"),
        }
    }
    println!();
    println!("burst of {}: served={served} shed={shed} (typed, accounted)", 10 * CAPACITY);
    let report = serving.drain(std::time::Duration::from_secs(5));
    assert!(report.met_deadline && report.stragglers == 0, "drain must not lose jobs: {report:?}");
    println!(
        "drain: completed={} shed={} stragglers={} met_deadline={} in {:.2?}",
        report.completed, report.shed, report.stragglers, report.met_deadline, report.elapsed
    );
    let m = serving.metrics();
    assert_eq!(m.jobs_completed, m.jobs_submitted, "every job resolves exactly once");
    assert_eq!(m.jobs_shed, shed);
    assert_eq!(m.health, EngineHealth::Draining);
    println!();
    print!("{}", m.render());

    // The engine-wide byte budget fails Nat-heavy evaluations typed — a
    // starved account refuses the very first component count.
    let starved = EvalEngine::new(EngineConfig {
        workers: 1,
        memory_budget_bytes: 1,
        ..EngineConfig::default()
    });
    let err = starved.cached_counter().try_count(&q, &d).expect_err("1-byte budget must refuse");
    println!();
    println!("1-byte memory budget refuses the count with a typed error: {err}");

    emit_trace_section(trace);
}
