//! Experiment E-PERF1 (quick table form) — engine comparison with
//! wall-clock timings; the criterion bench `bench_homcount` produces the
//! statistically rigorous version.

use bagcq_bench::{digraph_schema, fmt_count, query_families, random_digraph, row, sep};
use bagcq_core::prelude::*;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let schema = digraph_schema();
    println!("## E-PERF1 — naive vs tree-decomposition #Hom");
    println!();
    println!("The engines trade places with density: backtracking costs ~one step");
    println!("per homomorphism, so it wins while counts are small and loses badly");
    println!("once counts explode; the DP costs ~#bags·n^(w+1) regardless of the");
    println!("count. Sparse databases below, then the dense crossover regime.");
    for (n, density) in [(10u32, 0.15), (20, 0.15), (12, 0.5), (14, 0.45)] {
        let d = random_digraph(&schema, n, density, 42);
        println!();
        println!(
            "database: {} vertices, {} edges",
            d.vertex_count(),
            d.atom_count(schema.relation_by_name("E").unwrap())
        );
        row(&[
            "query".into(),
            "vars".into(),
            "width".into(),
            "count".into(),
            "naive".into(),
            "treewidth".into(),
            "speedup".into(),
        ]);
        sep(7);
        for (name, q) in query_families(&schema) {
            let width = TreewidthCounter.decomposition_width(&q);
            let t0 = Instant::now();
            let c_naive = NaiveCounter.count(&q, &d);
            let t_naive = t0.elapsed();
            let t0 = Instant::now();
            let c_tw = TreewidthCounter.count(&q, &d);
            let t_tw = t0.elapsed();
            assert_eq!(c_naive, c_tw);
            let speedup = t_naive.as_secs_f64() / t_tw.as_secs_f64().max(1e-9);
            row(&[
                name.into(),
                q.var_count().to_string(),
                width.to_string(),
                fmt_count(&c_naive),
                format!("{t_naive:.2?}"),
                format!("{t_tw:.2?}"),
                format!("{speedup:.2}x"),
            ]);
        }
    }
    println!();
    println!("Shape: naive wins on sparse data (counts are tiny, enumeration is");
    println!("cheap, DP table setup dominates); treewidth wins on dense data where");
    println!("counts grow to millions+ — enumeration pays per homomorphism, the DP");
    println!("does not. This is the classic #Hom output-sensitivity trade-off.");

    println!();
    println!("## E-PERF2 — batched evaluation service (bagcq-engine)");
    println!();
    println!("The same counts, submitted as one batch to the concurrent engine with");
    println!("cross-validation on (every count computed by BOTH engines and compared),");
    println!("then resubmitted to show the single-flight memo cache at work.");
    let d = Arc::new(random_digraph(&schema, 12, 0.3, 7));
    let engine = EvalEngine::new(EngineConfig { cross_validate: true, ..EngineConfig::default() });
    let make_batch = || {
        query_families(&schema)
            .into_iter()
            .map(|(_, q)| Job::count(q, Arc::clone(&d)))
            .collect::<Vec<_>>()
    };
    for round in 0..2 {
        for (handle, (name, q)) in
            engine.submit_batch(make_batch()).iter().zip(query_families(&schema))
        {
            let got = handle.wait();
            let want = count(&q, &d);
            assert_eq!(got.as_count(), Some(&want), "{name}: engine diverges from direct count");
            if round == 0 {
                println!("  {name}: {}", fmt_count(&want));
            }
        }
    }

    // The containment harness plugged into the engine's cached counter:
    // every count the refutation phase makes is cached + cross-validated.
    let counter = engine.cached_counter();
    let edges = path_query(&schema, "E", 1);
    let walks = path_query(&schema, "E", 2);
    let verdict =
        ContainmentChecker::new().check_with_counter(&edges, &walks, &|q, db| counter.count(q, db));
    assert!(verdict.is_refuted(), "edges ≤ 2-walks must be refuted");
    println!();
    println!("containment `edges ≤ 2-walks` through the engine: refuted (correct).");

    let m = engine.metrics();
    assert!(m.cache_hits > 0, "resubmitted batch must hit the cache");
    assert!(m.cross_validations > 0);
    assert_eq!(m.jobs_panicked, 0);
    println!();
    print!("{}", m.render());
}
