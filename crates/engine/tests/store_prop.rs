//! Corruption fuzz suite for the persistent memo store.
//!
//! The properties, under a seeded corruption schedule (`BAGCQ_STORE_SEED`
//! pins the seed; the CI crash-recovery job runs a matrix of them):
//!
//! * recovery NEVER panics, whatever bytes are on disk;
//! * recovery NEVER returns a wrong count — every fingerprint resolves to
//!   `None` (quarantined/lost, recomputed on demand) or to the exact
//!   value originally written (differential against an in-memory map);
//! * corruption is always *accounted*: if any record was lost, the
//!   [`RecoveryReport`] quarantine/truncation counters say so;
//! * a warm engine restart over a store answers previously computed
//!   counts from disk, bit-identically, with zero recomputation.

use bagcq_arith::Nat;
use bagcq_engine::{
    EngineConfig, EvalEngine, Job, MemoStore, Outcome, RecoveryReport, StoreOptions,
};
use bagcq_query::{cycle_query, path_query, star_query, Query};
use bagcq_structure::{Fingerprint, Schema, Structure, StructureGen};
use std::collections::HashMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Deterministic splitmix64 stream, seeded from `BAGCQ_STORE_SEED`.
struct Rng(u64);

impl Rng {
    fn from_env(salt: u64) -> Rng {
        let seed =
            std::env::var("BAGCQ_STORE_SEED").ok().and_then(|v| v.parse().ok()).unwrap_or(42u64);
        Rng(seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bagcq-storeprop-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn key(n: u64) -> Fingerprint {
    Fingerprint { hi: n.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xABCD, lo: n }
}

/// A value whose limb count varies with `n`, so records have mixed sizes.
fn value(n: u64) -> Nat {
    if n % 3 == 0 {
        Nat::from_limbs(vec![n, n.wrapping_mul(7), 1])
    } else {
        Nat::from_u64(n * 1_000_003)
    }
}

/// Writes `n` records (several segments, no compaction) and returns the
/// ground-truth map.
fn populate(dir: &Path, n: u64) -> HashMap<Fingerprint, Nat> {
    let store = MemoStore::open_opts(
        dir,
        StoreOptions {
            max_segment_bytes: 512,
            flush_every: 3,
            compact_on_open: false,
            ..Default::default()
        },
    )
    .unwrap();
    let mut truth = HashMap::new();
    for i in 0..n {
        let v = value(i);
        store.put(key(i), &Outcome::Count(v.clone())).unwrap();
        truth.insert(key(i), v);
    }
    drop(store); // flushes
    truth
}

fn segment_files(dir: &Path) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "seg"))
        .collect();
    files.sort();
    files
}

/// Offsets at which truncating a segment leaves a *well-formed* shorter
/// file: 0 (empty torn prefix), the magic, and every record boundary.
/// Truncation at such an offset is indistinguishable from "fewer records
/// were ever written" — the one loss an append-only log cannot flag.
fn silent_truncation_points(path: &Path) -> Vec<u64> {
    let bytes = fs::read(path).unwrap();
    let mut points = vec![0, 16];
    let mut offset = 16usize;
    while offset + 8 <= bytes.len() {
        let len = u32::from_le_bytes(bytes[offset..offset + 4].try_into().unwrap()) as usize;
        if offset + 8 + len > bytes.len() {
            break;
        }
        offset += 8 + len;
        points.push(offset as u64);
    }
    points
}

/// The core differential check: every key yields either `None` or the
/// exact original value, and any loss is visible in the recovery report —
/// except when `silent_loss_possible` (the corruption schedule truncated a
/// segment exactly at a record boundary, which no append-only log can
/// distinguish from a shorter history).
fn check_recovery(
    dir: &Path,
    truth: &HashMap<Fingerprint, Nat>,
    label: &str,
    silent_loss_possible: bool,
) {
    let store =
        MemoStore::open_opts(dir, StoreOptions { compact_on_open: false, ..Default::default() })
            .unwrap_or_else(|e| panic!("{label}: recovery must not fail hard: {e}"));
    let report = store.recovery();
    let mut lost = 0usize;
    for (k, want) in truth {
        match store.get(k) {
            None => lost += 1,
            Some(outcome) => {
                let got = outcome
                    .as_count()
                    .unwrap_or_else(|| panic!("{label}: stored outcome for {k} is not a count"));
                assert_eq!(got, want, "{label}: WRONG COUNT recovered for {k}");
            }
        }
    }
    assert_eq!(
        truth.len() - lost,
        report.records_live,
        "{label}: live-count accounting ({report})"
    );
    if lost > 0 && !silent_loss_possible {
        assert!(
            !report.is_clean(),
            "{label}: {lost} records lost but recovery reported clean ({report})"
        );
    }
}

#[test]
fn bit_flip_fuzz_never_panics_never_lies() {
    let mut rng = Rng::from_env(1);
    for round in 0..12u64 {
        let dir = temp_dir(&format!("bitflip-{round}"));
        let truth = populate(&dir, 40);
        let files = segment_files(&dir);
        // Flip 1..=6 random bits across random segments.
        for _ in 0..=rng.below(6) {
            let path = &files[rng.below(files.len() as u64) as usize];
            let mut bytes = fs::read(path).unwrap();
            if bytes.is_empty() {
                continue;
            }
            let at = rng.below(bytes.len() as u64) as usize;
            bytes[at] ^= 1 << rng.below(8);
            fs::write(path, &bytes).unwrap();
        }
        check_recovery(&dir, &truth, &format!("bitflip round {round}"), false);
        let _ = fs::remove_dir_all(&dir);
    }
}

#[test]
fn truncation_fuzz_never_panics_never_lies() {
    let mut rng = Rng::from_env(2);
    for round in 0..12u64 {
        let dir = temp_dir(&format!("trunc-{round}"));
        let truth = populate(&dir, 40);
        let files = segment_files(&dir);
        // Truncate a random segment to a random length (including 0),
        // simulating a crash mid-append or a torn sector at the tail.
        let path = &files[rng.below(files.len() as u64) as usize];
        let len = fs::metadata(path).unwrap().len();
        let new_len = rng.below(len + 1);
        let silent = silent_truncation_points(path).contains(&new_len);
        fs::OpenOptions::new().write(true).open(path).unwrap().set_len(new_len).unwrap();
        check_recovery(&dir, &truth, &format!("trunc round {round} to {new_len}"), silent);
        let _ = fs::remove_dir_all(&dir);
    }
}

#[test]
fn combined_corruption_fuzz() {
    let mut rng = Rng::from_env(3);
    for round in 0..8u64 {
        let dir = temp_dir(&format!("combo-{round}"));
        let truth = populate(&dir, 60);
        let files = segment_files(&dir);
        let mut silent = false;
        for path in &files {
            match rng.below(4) {
                0 => {
                    // Bit flips.
                    let mut bytes = fs::read(path).unwrap();
                    for _ in 0..rng.below(4) {
                        let at = rng.below(bytes.len() as u64) as usize;
                        bytes[at] ^= 0xFF;
                    }
                    fs::write(path, &bytes).unwrap();
                }
                1 => {
                    // Truncation.
                    let len = fs::metadata(path).unwrap().len();
                    let new_len = rng.below(len + 1);
                    silent |= silent_truncation_points(path).contains(&new_len);
                    let f = fs::OpenOptions::new().write(true).open(path).unwrap();
                    f.set_len(new_len).unwrap();
                }
                2 => {
                    // Garbage appended past the last record (framing junk).
                    let mut bytes = fs::read(path).unwrap();
                    for _ in 0..rng.below(24) + 1 {
                        bytes.push(rng.next() as u8);
                    }
                    fs::write(path, &bytes).unwrap();
                }
                _ => {} // untouched
            }
        }
        check_recovery(&dir, &truth, &format!("combo round {round}"), silent);
        let _ = fs::remove_dir_all(&dir);
    }
}

#[test]
fn exclusive_recovery_then_verify_is_clean() {
    // Whatever mess recovery walked into, after an exclusive open (torn
    // tails truncated) + compaction the store verifies clean.
    let mut rng = Rng::from_env(4);
    let dir = temp_dir("heal");
    let truth = populate(&dir, 30);
    for path in &segment_files(&dir) {
        let len = fs::metadata(path).unwrap().len();
        if rng.below(2) == 0 && len > 4 {
            let f = fs::OpenOptions::new().write(true).open(path).unwrap();
            f.set_len(len - rng.below(4) - 1).unwrap();
        }
    }
    let store = MemoStore::open(&dir).unwrap(); // exclusive: truncates + may compact
    store.compact().unwrap();
    let survivors = store.len();
    drop(store);
    let report = MemoStore::verify(&dir).unwrap();
    assert!(report.is_clean(), "post-heal verify must be clean: {report}");
    assert_eq!(report.records_live, survivors);
    assert!(survivors <= truth.len());
    let _ = fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Engine integration: warm restart over a store
// ---------------------------------------------------------------------------

fn workload() -> (Vec<Query>, Arc<Structure>) {
    let mut sb = Schema::builder();
    sb.relation("E", 2);
    let schema = sb.build();
    let db = Arc::new(
        StructureGen { extra_vertices: 5, density: 0.4, ..StructureGen::default() }
            .sample(&schema, 7),
    );
    let queries = vec![
        path_query(&schema, "E", 2),
        path_query(&schema, "E", 3),
        cycle_query(&schema, "E", 3),
        star_query(&schema, "E", 3),
    ];
    (queries, db)
}

#[test]
fn warm_engine_restart_skips_recomputation_bit_identically() {
    let dir = temp_dir("warm-engine");
    let (queries, db) = workload();

    // Cold run: compute everything, persist through the write-behind tier.
    let cold: Vec<Nat> = {
        let store = Arc::new(MemoStore::open(&dir).unwrap());
        let engine = EvalEngine::new(EngineConfig {
            workers: 2,
            store: Some(Arc::clone(&store)),
            ..EngineConfig::default()
        });
        let outcomes: Vec<Nat> = queries
            .iter()
            .map(|q| {
                let h = engine.submit(Job::count(q.clone(), Arc::clone(&db)));
                h.wait().as_count().expect("count completes").clone()
            })
            .collect();
        let snap = engine.metrics();
        assert_eq!(snap.cache_misses, queries.len() as u64, "cold run computes everything");
        assert_eq!(snap.store_hits, 0);
        let drained = engine.drain(std::time::Duration::from_secs(5));
        assert_eq!(drained.stragglers, 0);
        outcomes
    };

    // Warm run: a NEW engine + NEW store handle over the same directory
    // answers every count from disk — zero cache misses, bit-identical.
    {
        let store = Arc::new(MemoStore::open(&dir).unwrap());
        assert_eq!(store.len(), queries.len(), "every count was persisted");
        assert!(store.recovery().is_clean());
        let engine = EvalEngine::new(EngineConfig {
            workers: 2,
            store: Some(Arc::clone(&store)),
            ..EngineConfig::default()
        });
        for (q, want) in queries.iter().zip(&cold) {
            let h = engine.submit(Job::count(q.clone(), Arc::clone(&db)));
            let got = h.wait();
            assert_eq!(got.as_count(), Some(want), "warm count must be bit-identical");
        }
        let snap = engine.metrics();
        assert_eq!(snap.cache_misses, 0, "warm run must not recompute: {}", snap.render());
        assert_eq!(snap.store_hits, queries.len() as u64);
        let stats = snap.store.clone().expect("store stats surface in the snapshot");
        assert_eq!(stats.lookups_hit, queries.len() as u64);
        let rendered = snap.render();
        assert!(rendered.contains("store_hits=4"), "{rendered}");
        assert!(rendered.contains("  store    records=4"), "{rendered}");
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn store_survives_corruption_under_a_live_engine() {
    // An engine over a store whose directory was corrupted still serves
    // correct (recomputed) counts: quarantine costs time, never truth.
    let dir = temp_dir("corrupt-engine");
    let (queries, db) = workload();
    let cold: Vec<Nat> = {
        let store = Arc::new(MemoStore::open(&dir).unwrap());
        let engine = EvalEngine::new(EngineConfig {
            workers: 1,
            store: Some(store),
            ..EngineConfig::default()
        });
        let got = queries
            .iter()
            .map(|q| {
                engine
                    .submit(Job::count(q.clone(), Arc::clone(&db)))
                    .wait()
                    .as_count()
                    .unwrap()
                    .clone()
            })
            .collect();
        engine.drain(std::time::Duration::from_secs(5));
        got
    };
    // Trash every segment byte-by-byte.
    let mut rng = Rng::from_env(5);
    for path in &segment_files(&dir) {
        let mut bytes = fs::read(path).unwrap();
        for _ in 0..8 {
            let at = rng.below(bytes.len() as u64) as usize;
            bytes[at] = rng.next() as u8;
        }
        fs::write(path, &bytes).unwrap();
    }
    let store = Arc::new(MemoStore::open(&dir).unwrap());
    let report: RecoveryReport = store.recovery();
    let engine =
        EvalEngine::new(EngineConfig { workers: 1, store: Some(store), ..EngineConfig::default() });
    for (q, want) in queries.iter().zip(&cold) {
        let got = engine.submit(Job::count(q.clone(), Arc::clone(&db))).wait();
        assert_eq!(
            got.as_count(),
            Some(want),
            "post-corruption counts must match the cold run (recovery: {report})"
        );
    }
    let _ = fs::remove_dir_all(&dir);
}
