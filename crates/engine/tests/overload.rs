//! Overload suite: the serving layer under burst load.
//!
//! The properties, per the E-OVERLOAD experiment:
//!
//! 1. submitting far more work than the bounded queue holds neither hangs
//!    nor grows memory without bound — the excess is shed with a typed
//!    [`Outcome::Shed`], and every shed is accounted in the metrics;
//! 2. every job the engine *does* admit produces a count bit-identical to
//!    a sequential evaluation — load shedding never corrupts answers;
//! 3. the byte budget fails `Nat`-heavy evaluations with a typed error
//!    (never an allocator abort), and releases its reservations;
//! 4. `drain(deadline)` resolves every submitted job to exactly one
//!    outcome and returns by its deadline, under fault injection too.

use bagcq_engine::{
    AdmissionConfig, AdmissionPolicy, BreakerConfig, CountError, EngineConfig, EngineHealth,
    EvalEngine, FaultInjector, FaultKind, FaultPlan, Job, Outcome, ShedReason, SupervisorConfig,
};
use bagcq_homcount::{CancelReason, Cancelled, Engine};
use bagcq_query::{cycle_query, path_query, Query};
use bagcq_structure::{Schema, Structure, StructureGen};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn digraph(extra_vertices: u32, seed: u64) -> (Arc<Schema>, Arc<Structure>) {
    let mut sb = Schema::builder();
    sb.relation("E", 2);
    let schema = sb.build();
    let gen = StructureGen { extra_vertices, density: 0.4, ..StructureGen::default() };
    let d = Arc::new(gen.sample(&schema, seed));
    (schema, d)
}

/// A fault plan whose only effect is to stall the first worker checkpoint
/// for `stall` — a deterministic way to keep the (single) worker busy
/// while the test floods the queue.
fn stall_plan(stall: Duration) -> Arc<FaultInjector> {
    FaultInjector::new(FaultPlan {
        latency: stall,
        ..FaultPlan::seeded(0)
            .with_kinds(&[FaultKind::Latency])
            .with_rate_per_mille(1000)
            .with_max_faults(1)
    })
}

/// Fast supervision timings so tests never wait on default polling.
fn quick_supervisor() -> SupervisorConfig {
    SupervisorConfig {
        poll_interval: Duration::from_millis(2),
        restart_backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(10),
        ..SupervisorConfig::default()
    }
}

/// Property 1 + 2: a 10×-capacity burst of deadline-carrying jobs
/// terminates, sheds the excess with typed outcomes, accounts every shed,
/// and the admitted jobs' counts are bit-identical to a sequential run.
#[test]
fn burst_of_ten_times_capacity_sheds_and_stays_correct() {
    const CAPACITY: usize = 8;
    let (schema, d) = digraph(5, 42);
    let q = path_query(&schema, "E", 2);
    let want = bagcq_homcount::CountRequest::new(&q, &d).count();

    let engine = EvalEngine::new(EngineConfig {
        workers: 1,
        admission: AdmissionConfig { capacity: CAPACITY, policy: AdmissionPolicy::RejectNewest },
        supervisor: quick_supervisor(),
        breaker: BreakerConfig::disabled(),
        fault: Some(stall_plan(Duration::from_millis(80))),
        ..EngineConfig::default()
    });

    // The plug job occupies the worker for the stall; everything after it
    // competes for the CAPACITY queue slots.
    let plug = engine.submit(Job::count_with(Engine::Naive, q.clone(), Arc::clone(&d)));
    let burst: Vec<_> = (0..10 * CAPACITY)
        .map(|_| {
            engine.submit(
                Job::count_with(Engine::Naive, q.clone(), Arc::clone(&d))
                    .with_timeout(Duration::from_secs(30)),
            )
        })
        .collect();

    assert_eq!(plug.wait().as_count(), Some(&want));
    let mut shed = 0u64;
    for handle in &burst {
        match handle.wait() {
            Outcome::Count(n) => assert_eq!(n, want, "admitted job corrupted under overload"),
            Outcome::Shed(ShedReason::QueueFull) => shed += 1,
            other => panic!("unexpected outcome under RejectNewest burst: {other:?}"),
        }
    }
    assert!(
        shed >= (9 * CAPACITY) as u64,
        "a single stalled worker cannot have served the burst: shed={shed}"
    );

    let m = engine.metrics();
    assert_eq!(m.jobs_submitted, 1 + 10 * CAPACITY as u64);
    assert_eq!(m.jobs_completed, m.jobs_submitted, "every job must resolve");
    assert_eq!(m.jobs_shed, shed, "metrics must account every shed");
    assert!(
        m.queue_high_water <= CAPACITY as u64,
        "bounded queue exceeded its capacity: {}",
        m.queue_high_water
    );
}

/// [`AdmissionPolicy::Block`] pushes back on the submitter and resolves a
/// hopeless wait as a typed [`ShedReason::AdmissionTimeout`].
#[test]
fn block_policy_backpressures_then_times_out() {
    let (schema, d) = digraph(5, 7);
    let q = path_query(&schema, "E", 2);
    let engine = EvalEngine::new(EngineConfig {
        workers: 1,
        admission: AdmissionConfig {
            capacity: 1,
            policy: AdmissionPolicy::Block { max_wait: Duration::from_millis(40) },
        },
        supervisor: quick_supervisor(),
        breaker: BreakerConfig::disabled(),
        fault: Some(stall_plan(Duration::from_millis(300))),
        ..EngineConfig::default()
    });

    // Worker stalls on the plug; the queue holds one more; the third
    // submission blocks for its max_wait and gets the typed timeout.
    let plug = engine.submit(Job::count_with(Engine::Naive, q.clone(), Arc::clone(&d)));
    let queued = engine.submit(Job::count_with(Engine::Naive, q.clone(), Arc::clone(&d)));
    let started = Instant::now();
    let refused = engine.submit(Job::count_with(Engine::Naive, q.clone(), Arc::clone(&d)));
    let waited = started.elapsed();
    assert_eq!(
        refused.wait().as_shed(),
        Some(ShedReason::AdmissionTimeout),
        "a full queue under Block must shed with the typed timeout"
    );
    assert!(waited >= Duration::from_millis(30), "Block must actually wait: {waited:?}");

    // Once the stall clears, a blocking submission waits and succeeds —
    // counted as backpressure, not a shed.
    assert!(!plug.wait().is_failure());
    assert!(!queued.wait().is_failure());
    let m = engine.metrics();
    assert_eq!(m.jobs_shed, 1);
}

/// [`AdmissionPolicy::ShedExpired`] drops jobs whose deadline passed
/// while they sat queued, at dequeue, without burning the worker on them.
#[test]
fn shed_expired_drops_stale_queued_jobs() {
    let (schema, d) = digraph(5, 11);
    let q = path_query(&schema, "E", 2);
    let want = bagcq_homcount::CountRequest::new(&q, &d).count();
    let engine = EvalEngine::new(EngineConfig {
        workers: 1,
        admission: AdmissionConfig { capacity: 0, policy: AdmissionPolicy::ShedExpired },
        supervisor: quick_supervisor(),
        breaker: BreakerConfig::disabled(),
        fault: Some(stall_plan(Duration::from_millis(120))),
        ..EngineConfig::default()
    });

    let plug = engine.submit(Job::count_with(Engine::Naive, q.clone(), Arc::clone(&d)));
    // These expire long before the stall clears.
    let stale: Vec<_> = (0..4)
        .map(|_| {
            engine.submit(
                Job::count_with(Engine::Naive, q.clone(), Arc::clone(&d))
                    .with_timeout(Duration::from_millis(5)),
            )
        })
        .collect();
    // A fresh job behind them still gets served.
    let fresh = engine.submit(Job::count_with(Engine::Naive, q.clone(), Arc::clone(&d)));

    assert_eq!(plug.wait().as_count(), Some(&want));
    for handle in &stale {
        assert_eq!(
            handle.wait().as_shed(),
            Some(ShedReason::ExpiredAtDequeue),
            "a queued job past its deadline must be shed at dequeue"
        );
    }
    assert_eq!(fresh.wait().as_count(), Some(&want));
    assert_eq!(engine.metrics().jobs_shed, 4);
}

/// Property 3: a starved byte budget fails the evaluation with the typed
/// `MemoryBudgetExceeded` cancellation — through the synchronous
/// [`bagcq_engine::CachedCounter`] as a [`CountError`], and through the
/// pool as [`Outcome::Panicked`] after the fallback hop — and the denial
/// shows up in the metrics.
#[test]
fn starved_memory_budget_fails_typed() {
    let (schema, d) = digraph(5, 3);
    let q = path_query(&schema, "E", 2);

    let engine = EvalEngine::new(EngineConfig {
        workers: 1,
        memory_budget_bytes: 1, // any component count (≥ 8 bytes) is refused
        supervisor: quick_supervisor(),
        breaker: BreakerConfig::disabled(),
        ..EngineConfig::default()
    });
    let counter = engine.cached_counter();
    assert_eq!(
        counter.try_count(&q, &d),
        Err(CountError::Cancelled(Cancelled(CancelReason::MemoryBudgetExceeded))),
        "the counter must surface the typed budget refusal"
    );

    let out = engine.submit(Job::count(q.clone(), Arc::clone(&d))).wait();
    match out {
        Outcome::Panicked(msg) => {
            assert!(msg.contains("memory budget"), "untyped failure message: {msg}")
        }
        other => panic!("expected a typed budget failure, got {other:?}"),
    }
    let m = engine.metrics();
    assert!(m.mem_denials > 0, "denials must be accounted: {m}");
    assert_eq!(m.fallbacks_taken, 1, "the budget failure takes the naive fallback hop once");
}

/// A generous byte budget changes nothing about the answers, and every
/// reservation is released once the work is done.
#[test]
fn generous_memory_budget_is_transparent_and_released() {
    let (schema, d) = digraph(5, 3);
    let engine = EvalEngine::new(EngineConfig {
        workers: 2,
        memory_budget_bytes: 1 << 20,
        supervisor: quick_supervisor(),
        ..EngineConfig::default()
    });
    for k in 1..=3 {
        let q = path_query(&schema, "E", k);
        let want = bagcq_homcount::CountRequest::new(&q, &d).count();
        assert_eq!(engine.submit(Job::count(q, Arc::clone(&d))).wait().as_count(), Some(&want));
    }
    let m = engine.metrics();
    assert!(m.mem_high_water_bytes > 0, "the budget was never charged: {m}");
    assert_eq!(m.mem_used_bytes, 0, "scopes must release what they charged: {m}");
    assert_eq!(m.mem_denials, 0);
}

/// Property 4, clean half: drain resolves everything, runs flush hooks,
/// meets its deadline, and leaves the engine terminally draining.
#[test]
fn drain_resolves_every_job_and_runs_flush_hooks() {
    let (schema, d) = digraph(5, 42);
    let engine = EvalEngine::new(EngineConfig {
        workers: 2,
        admission: AdmissionConfig { capacity: 4, policy: AdmissionPolicy::RejectNewest },
        supervisor: quick_supervisor(),
        breaker: BreakerConfig::disabled(),
        ..EngineConfig::default()
    });
    let flushed = Arc::new(AtomicBool::new(false));
    engine.register_drain_flush({
        let flushed = Arc::clone(&flushed);
        move || flushed.store(true, Ordering::Relaxed)
    });

    let handles: Vec<_> = (0..40)
        .map(|i| {
            let q = path_query(&schema, "E", 1 + (i % 3));
            engine.submit(Job::count(q, Arc::clone(&d)))
        })
        .collect();
    let timeout = Duration::from_secs(5);
    let report = engine.drain(timeout);

    assert!(report.met_deadline, "drain blew its deadline: {report:?}");
    assert!(report.elapsed <= timeout);
    assert_eq!(report.stragglers, 0, "drain lost jobs: {report:?}");
    assert!(flushed.load(Ordering::Relaxed), "flush hook never ran");
    assert_eq!(engine.health(), EngineHealth::Draining);

    // Exactly-one-outcome: every handle is resolved (shed or completed).
    for handle in &handles {
        assert!(handle.try_wait().is_some(), "drain left a job unresolved");
    }
    let m = engine.metrics();
    assert_eq!(m.jobs_completed, m.jobs_submitted);

    // Terminal: post-drain submissions shed immediately with Draining.
    let late = engine.submit(Job::count(path_query(&schema, "E", 1), Arc::clone(&d)));
    assert_eq!(late.wait().as_shed(), Some(ShedReason::Draining));
}

/// Property 4, chaos half: under deterministic fault injection (the CI
/// matrix pins seeds 1/7/42 via `BAGCQ_CHAOS_SEED`), a drain mid-burst
/// still resolves every job to exactly one outcome and returns by its
/// deadline.
#[test]
fn drain_never_loses_jobs_under_chaos() {
    let seed: u64 =
        std::env::var("BAGCQ_CHAOS_SEED").ok().and_then(|v| v.parse().ok()).unwrap_or(42);
    for round_seed in [seed, seed.wrapping_add(1)] {
        let (schema, d) = digraph(5, round_seed);
        let injector = FaultInjector::new(FaultPlan::seeded(round_seed).with_rate_per_mille(120));
        let engine = EvalEngine::new(EngineConfig {
            workers: 3,
            admission: AdmissionConfig { capacity: 6, policy: AdmissionPolicy::ShedExpired },
            supervisor: quick_supervisor(),
            breaker: BreakerConfig::disabled(),
            fault: Some(injector),
            ..EngineConfig::default()
        });
        let mut handles = Vec::new();
        for i in 0..30 {
            let q: Query = if i % 4 == 3 {
                cycle_query(&schema, "E", 3)
            } else {
                path_query(&schema, "E", 1 + (i % 3))
            };
            handles.push(
                engine.submit(Job::count(q, Arc::clone(&d)).with_timeout(Duration::from_secs(10))),
            );
        }
        let timeout = Duration::from_secs(10);
        let report = engine.drain(timeout);
        assert!(report.met_deadline, "seed {round_seed}: drain blew its deadline: {report:?}");
        assert_eq!(report.stragglers, 0, "seed {round_seed}: drain lost jobs: {report:?}");
        for (i, handle) in handles.iter().enumerate() {
            let outcome = handle
                .try_wait()
                .unwrap_or_else(|| panic!("seed {round_seed}: job {i} left unresolved by drain"));
            // Exactly one of the typed terminal states; the content of
            // completed outcomes is covered by the chaos suite.
            match outcome {
                Outcome::Count(_)
                | Outcome::Power(_)
                | Outcome::Verdict(_)
                | Outcome::TimedOut
                | Outcome::Panicked(_)
                | Outcome::FailedFast(_)
                | Outcome::Shed(_) => {}
            }
        }
        let m = engine.metrics();
        assert_eq!(
            m.jobs_completed, m.jobs_submitted,
            "seed {round_seed}: accounting imbalance: {m}"
        );
    }
}
