//! Integration tests for the evaluation service: a large mixed batch is
//! bit-identical to the sequential baseline, repeated workloads hit the
//! memo cache, deadlines isolate only the doomed job, and a panicking
//! evaluation never poisons the pool.

use bagcq_arith::Nat;
use bagcq_containment::{CheckRequest, Semantics, Verdict};
use bagcq_engine::{EngineConfig, EvalEngine, Job, JobSpec, Outcome};
use bagcq_homcount::{eval_power_query, CountRequest, Engine, EvalOptions};
use bagcq_query::{cycle_query, path_query, star_query, PowerQuery, Query, UnionQuery};
use bagcq_structure::{Schema, Structure, StructureGen, Vertex};
use std::sync::Arc;
use std::time::Duration;

fn digraph_schema() -> Arc<Schema> {
    let mut sb = Schema::builder();
    sb.relation("E", 2);
    sb.build()
}

fn databases(schema: &Arc<Schema>, n: usize) -> Vec<Arc<Structure>> {
    (0..n)
        .map(|i| {
            let gen = StructureGen {
                extra_vertices: 4 + (i as u32 % 3),
                density: 0.35,
                ..StructureGen::default()
            };
            Arc::new(gen.sample(schema, 1000 + i as u64))
        })
        .collect()
}

fn queries(schema: &Arc<Schema>) -> Vec<Query> {
    vec![
        path_query(schema, "E", 1),
        path_query(schema, "E", 2),
        path_query(schema, "E", 3),
        cycle_query(schema, "E", 3),
        star_query(schema, "E", 3),
    ]
}

/// The sequential reference result for a spec.
fn sequential(spec: &JobSpec) -> Outcome {
    match spec {
        JobSpec::Count { query, database, backend } => {
            Outcome::Count(CountRequest::new(query, database).backend(*backend).count())
        }
        JobSpec::EvalPower { query, database, exact_bits } => {
            let opts = EvalOptions { exact_bits: *exact_bits, ..EvalOptions::default() };
            Outcome::Power(eval_power_query(query, database, &opts))
        }
        JobSpec::Check { spec } => {
            let v = CheckRequest::union(spec.q_s.clone(), spec.q_b.clone())
                .semantics(spec.semantics)
                .containment(spec.choice)
                .multiplier(spec.multiplier.clone())
                .budget(spec.budget.clone())
                .check()
                .expect("workload specs are supported");
            Outcome::Verdict(Arc::new(v))
        }
    }
}

/// Structural equality for verdicts (they carry non-`Eq` certificates).
fn verdict_shape(v: &Verdict) -> String {
    match v {
        Verdict::Proved(c) => format!("proved:{c:?}"),
        Verdict::Refuted(c) => format!("refuted@{}", c.database.vertex_count()),
        Verdict::Unknown { candidates_checked } => format!("unknown:{candidates_checked}"),
    }
}

fn assert_same(got: &Outcome, want: &Outcome, label: &str) {
    match (got, want) {
        (Outcome::Count(a), Outcome::Count(b)) => assert_eq!(a, b, "{label}: count mismatch"),
        (Outcome::Power(a), Outcome::Power(b)) => {
            assert_eq!(a.as_exact(), b.as_exact(), "{label}: power mismatch");
            assert_eq!(a.log2_approx(), b.log2_approx(), "{label}: power enclosure mismatch");
        }
        (Outcome::Verdict(a), Outcome::Verdict(b)) => {
            assert_eq!(verdict_shape(a), verdict_shape(b), "{label}: verdict mismatch")
        }
        other => panic!("{label}: outcome kind mismatch: {other:?}"),
    }
}

/// A mixed workload of well over 100 jobs: counts on both engines, power
/// queries, and containment checks.
fn mixed_jobs(schema: &Arc<Schema>) -> Vec<Job> {
    let dbs = databases(schema, 6);
    let qs = queries(schema);
    let mut jobs = Vec::new();
    for d in &dbs {
        for q in &qs {
            jobs.push(Job::count_with(Engine::Naive, q.clone(), Arc::clone(d)));
            jobs.push(Job::count_with(Engine::Treewidth, q.clone(), Arc::clone(d)));
            jobs.push(Job::eval_power(
                PowerQuery::power(q.clone(), Nat::from_u64(3)),
                Arc::clone(d),
            ));
        }
    }
    for (i, q_s) in qs.iter().enumerate() {
        for q_b in qs.iter().skip(i) {
            jobs.push(Job::check(CheckRequest::new(q_s, q_b).into_spec()));
            jobs.push(Job::check(
                CheckRequest::new(q_s, q_b).semantics(Semantics::Set).into_spec(),
            ));
        }
    }
    // Real unions exercise the UCQ backends through the same job path.
    let u1 = UnionQuery::new(vec![qs[0].clone(), qs[1].clone()]);
    let u2 = UnionQuery::new(vec![qs[0].clone(), qs[1].clone(), qs[3].clone()]);
    jobs.push(Job::check(CheckRequest::union(u1.clone(), u2.clone()).into_spec()));
    jobs.push(Job::check(CheckRequest::union(u1, u2).semantics(Semantics::Set).into_spec()));
    jobs
}

#[test]
fn mixed_batch_matches_sequential_baseline() {
    let schema = digraph_schema();
    let jobs = mixed_jobs(&schema);
    assert!(jobs.len() >= 100, "workload has only {} jobs", jobs.len());

    let engine = EvalEngine::with_workers(4);
    let handles = engine.submit_batch(jobs.clone());
    for (job, handle) in jobs.iter().zip(&handles) {
        let got = handle.wait();
        let want = sequential(&job.spec);
        assert_same(&got, &want, job.spec.kind());
    }
    let m = engine.metrics();
    assert_eq!(m.jobs_submitted, jobs.len() as u64);
    assert_eq!(m.jobs_completed, jobs.len() as u64);
    assert_eq!(m.jobs_panicked, 0);
    assert_eq!(m.jobs_timed_out, 0);
    assert_eq!(m.latency_count(), jobs.len() as u64);
}

#[test]
fn repeated_submissions_hit_cache_with_equal_results() {
    let schema = digraph_schema();
    let d = databases(&schema, 1).remove(0);
    let q = path_query(&schema, "E", 2);
    let engine = EvalEngine::with_workers(2);

    let jobs = vec![
        Job::count(q.clone(), Arc::clone(&d)),
        Job::check(CheckRequest::new(&q, &path_query(&schema, "E", 3)).into_spec()),
    ];
    let first: Vec<Outcome> = engine.submit_batch(jobs.clone()).iter().map(|h| h.wait()).collect();
    let second: Vec<Outcome> = engine.submit_batch(jobs.clone()).iter().map(|h| h.wait()).collect();

    for ((a, b), job) in first.iter().zip(&second).zip(&jobs) {
        assert_same(a, b, job.spec.kind());
    }
    let m = engine.metrics();
    assert!(m.cache_hits >= 2, "expected cached answers, metrics: {m}");
    assert!(engine.cache_entries() > 0);
}

#[test]
fn deadline_times_out_doomed_job_while_others_complete() {
    let schema = digraph_schema();
    // Dense 9-vertex digraph + 12-step path: ~9^13 naive enumeration steps,
    // effectively unbounded without cancellation.
    let gen = StructureGen { extra_vertices: 9, density: 0.9, ..StructureGen::default() };
    let dense = Arc::new(gen.sample(&schema, 7));
    let doomed_q = path_query(&schema, "E", 12);

    let engine = EvalEngine::with_workers(2);
    let doomed = engine.submit(
        Job::count_with(Engine::Naive, doomed_q, Arc::clone(&dense))
            .with_timeout(Duration::from_millis(30)),
    );
    let fine: Vec<_> = (1..=3)
        .map(|k| engine.submit(Job::count(path_query(&schema, "E", k), Arc::clone(&dense))))
        .collect();

    assert!(matches!(doomed.wait(), Outcome::TimedOut), "doomed job must time out");
    for h in fine {
        assert!(h.wait().as_count().is_some(), "unrelated jobs must complete");
    }
    let m = engine.metrics();
    assert_eq!(m.jobs_timed_out, 1);
    assert_eq!(m.jobs_completed, 4);
}

#[test]
fn step_budget_times_out_without_wall_clock() {
    let schema = digraph_schema();
    let gen = StructureGen { extra_vertices: 8, density: 0.8, ..StructureGen::default() };
    let dense = Arc::new(gen.sample(&schema, 11));
    let engine = EvalEngine::with_workers(1);
    let out = engine
        .submit(
            Job::count_with(Engine::Naive, path_query(&schema, "E", 10), dense)
                .with_step_budget(2_000),
        )
        .wait();
    assert!(matches!(out, Outcome::TimedOut), "budget exhaustion must surface as TimedOut");
}

#[test]
fn panicking_job_is_isolated_and_pool_survives() {
    // A query over a *different* (larger) schema than the database: the
    // counting engines index relations positionally, so evaluating it
    // panics — the canonical "pathological evaluation".
    let small = digraph_schema();
    let mut sb = Schema::builder();
    sb.relation("E", 2);
    sb.relation("F", 2);
    let big = sb.build();
    let mut qb = Query::builder(Arc::clone(&big));
    let x = qb.var("x");
    let y = qb.var("y");
    qb.atom_named("F", &[x, y]);
    let bad_query = qb.build();

    let mut d = Structure::new(Arc::clone(&small));
    d.add_vertices(2);
    d.add_atom(small.relation_by_name("E").unwrap(), &[Vertex(0), Vertex(1)]);
    let d = Arc::new(d);

    let engine = EvalEngine::with_workers(1);
    let bad = engine.submit(Job::count(bad_query, Arc::clone(&d))).wait();
    assert!(matches!(bad, Outcome::Panicked(_)), "got {bad:?}");

    // Same single worker thread must still be alive and serving.
    let ok = engine.submit(Job::count(path_query(&small, "E", 1), d)).wait();
    assert_eq!(ok.as_count(), Some(&Nat::one()));
    let m = engine.metrics();
    assert_eq!(m.jobs_panicked, 1);
    assert_eq!(m.jobs_completed, 2);
}

#[test]
fn cross_validation_runs_and_agrees() {
    let schema = digraph_schema();
    let d = databases(&schema, 1).remove(0);
    let engine =
        EvalEngine::new(EngineConfig { cross_validate: true, workers: 2, ..Default::default() });
    for q in queries(&schema) {
        let out = engine.submit(Job::count(q.clone(), Arc::clone(&d))).wait();
        assert_eq!(out.as_count(), Some(&CountRequest::new(&q, &d).count()));
    }
    let m = engine.metrics();
    assert!(m.cross_validations >= 5);
    assert_eq!(m.jobs_panicked, 0);
}
