//! Chaos suite: the engine under deterministic fault injection.
//!
//! The core property, asserted across seeded fault schedules (and by CI
//! under a matrix of fixed seeds via `BAGCQ_CHAOS_SEED`):
//!
//! 1. every outcome that **completes** under faults is bit-identical to
//!    the same job's outcome on a clean engine — faults may delay or fail
//!    a job, never corrupt it;
//! 2. the memo cache **never stores a faulty result**: resubmitting a job
//!    that failed recomputes it (and succeeds once the plan's fault cap
//!    is spent), and a full resubmission of the workload after the faults
//!    are exhausted reproduces the clean run exactly;
//! 3. circuit breakers trip on persistent failure, fail fast while open,
//!    and recover through a half-open probe.

use bagcq_arith::Nat;
use bagcq_containment::{CheckRequest, Verdict};
use bagcq_engine::{
    BreakerConfig, EngineConfig, EvalEngine, FaultInjector, FaultKind, FaultPlan, Job, Outcome,
    RetryPolicy,
};
use bagcq_homcount::Engine;
use bagcq_query::{cycle_query, path_query, PowerQuery};
use bagcq_structure::{Schema, Structure, StructureGen};
use proptest::prelude::*;
use std::sync::Arc;

fn digraph(extra_vertices: u32, seed: u64) -> (Arc<Schema>, Arc<Structure>) {
    let mut sb = Schema::builder();
    sb.relation("E", 2);
    let schema = sb.build();
    let gen = StructureGen { extra_vertices, density: 0.4, ..StructureGen::default() };
    let d = Arc::new(gen.sample(&schema, seed));
    (schema, d)
}

/// A mixed workload exercising every job kind (and both count engines).
fn workload(schema: &Arc<Schema>, d: &Arc<Structure>) -> Vec<Job> {
    let p2 = path_query(schema, "E", 2);
    let p3 = path_query(schema, "E", 3);
    let mut jobs: Vec<Job> =
        [path_query(schema, "E", 1), p2.clone(), p3.clone(), cycle_query(schema, "E", 3)]
            .into_iter()
            .flat_map(|q| {
                [
                    Job::count_with(Engine::Naive, q.clone(), Arc::clone(d)),
                    Job::count_with(Engine::Treewidth, q, Arc::clone(d)),
                ]
            })
            .collect();
    jobs.push(Job::eval_power(PowerQuery::power(p2.clone(), Nat::from_u64(3)), Arc::clone(d)));
    jobs.push(Job::check(CheckRequest::new(&p2, &p3).into_spec()));
    jobs
}

/// A canonical, comparable rendering of an outcome. Counts and powers
/// compare bit-identically; verdicts compare by shape and counterexample
/// counts (the checker is deterministic, so equal inputs give equal
/// shapes).
fn outcome_key(o: &Outcome) -> String {
    match o {
        Outcome::Count(n) => format!("count:{n:?}"),
        Outcome::Power(m) => format!("power:{m:?}"),
        Outcome::Verdict(v) => match v.as_ref() {
            Verdict::Proved(c) => format!("proved:{c:?}"),
            Verdict::Refuted(c) => format!("refuted:{:?}:{:?}", c.count_s, c.count_b),
            Verdict::Unknown { candidates_checked } => format!("unknown:{candidates_checked}"),
        },
        fail => format!("fail:{fail:?}"),
    }
}

fn clean_outcomes(jobs: &[Job]) -> Vec<String> {
    let engine = EvalEngine::with_workers(2);
    engine.submit_batch(jobs.to_vec()).iter().map(|h| outcome_key(&h.wait())).collect()
}

fn chaos_engine(plan: FaultPlan) -> (EvalEngine, Arc<FaultInjector>) {
    let injector = FaultInjector::new(plan);
    let engine = EvalEngine::new(EngineConfig {
        workers: 3,
        // Breakers are tested separately; here they would only add
        // cooldown stalls between resubmissions.
        breaker: BreakerConfig::disabled(),
        fault: Some(Arc::clone(&injector)),
        ..EngineConfig::default()
    });
    (engine, injector)
}

/// Runs the workload under `plan` and checks properties (1) and (2)
/// against the clean baseline.
fn assert_chaos_invariants(seed: u64, plan: FaultPlan) {
    let (schema, d) = digraph(5, seed);
    let jobs = workload(&schema, &d);
    let clean = clean_outcomes(&jobs);

    let (engine, injector) = chaos_engine(plan);
    let handles = engine.submit_batch(jobs.clone());
    for ((job, handle), want) in jobs.iter().zip(&handles).zip(&clean) {
        let first = handle.wait();
        if !first.is_failure() {
            // Property 1: a completed outcome is bit-identical to clean.
            assert_eq!(&outcome_key(&first), want, "faulted run corrupted a completed outcome");
            continue;
        }
        // Property 2: failures are not cached — resubmission recomputes,
        // and succeeds once the fault cap is spent.
        let mut resubmissions = 0;
        loop {
            resubmissions += 1;
            assert!(
                resubmissions <= 200,
                "job did not recover after {resubmissions} resubmissions \
                 ({} faults injected, cap {})",
                injector.injected(),
                injector.plan().max_faults,
            );
            let retry = engine.submit(job.clone()).wait();
            if !retry.is_failure() {
                assert_eq!(&outcome_key(&retry), want, "recovered outcome differs from clean run");
                break;
            }
        }
    }

    // With the cap spent, a full resubmission must reproduce the clean
    // run exactly — anything else means a faulty result was cached.
    let replay: Vec<String> =
        engine.submit_batch(jobs).iter().map(|h| outcome_key(&h.wait())).collect();
    assert_eq!(replay, clean, "post-fault replay diverged from the clean run");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Properties 1 and 2 hold under arbitrary seeds for the full fault
    /// mix (panics, latency, spurious cancels, transient errors).
    #[test]
    fn completed_outcomes_bit_identical_under_any_fault_schedule(seed in 0u64..100_000) {
        assert_chaos_invariants(seed, FaultPlan::seeded(seed));
    }

    /// Same properties under a panic-heavy plan — the worst case for the
    /// cache (leaders dying mid-flight) and the retry/fallback ladder.
    #[test]
    fn panic_storms_never_poison_cache_or_pool(seed in 0u64..100_000) {
        let plan = FaultPlan::seeded(seed)
            .with_kinds(&[FaultKind::Panic])
            .with_rate_per_mille(150)
            .with_max_faults(24);
        assert_chaos_invariants(seed, plan);
    }
}

/// The CI chaos job pins `BAGCQ_CHAOS_SEED` across a matrix of seeds; one
/// run of the full invariant suite per pinned seed, with enough fault
/// pressure that the injector demonstrably fires.
#[test]
fn fixed_seed_chaos_run() {
    let seed: u64 =
        std::env::var("BAGCQ_CHAOS_SEED").ok().and_then(|v| v.parse().ok()).unwrap_or(42);
    let plan = FaultPlan::seeded(seed).with_rate_per_mille(120);
    let (_, d) = digraph(5, seed);
    drop(d);
    assert_chaos_invariants(seed, plan.clone());

    // The plan must actually have injected something at this rate; a
    // silent no-op injector would make the suite vacuous.
    let (engine, injector) = chaos_engine(plan);
    let (schema, d) = digraph(5, seed);
    for h in engine.submit_batch(workload(&schema, &d)) {
        let _ = h.wait();
    }
    assert!(injector.injected() > 0, "fault plan at 12% never fired");
    assert!(injector.checkpoints() > 0);
}

/// Transient-only faults are absorbed by the retry layer: the workload
/// completes identically to a clean run and the retry counter moves.
#[test]
fn transient_faults_are_retried_to_success() {
    let seed = 7;
    let (schema, d) = digraph(5, seed);
    let jobs = workload(&schema, &d);
    let clean = clean_outcomes(&jobs);
    let plan = FaultPlan::seeded(seed)
        .with_kinds(&[FaultKind::SpuriousCancel, FaultKind::TransientError])
        .with_rate_per_mille(100)
        .with_max_faults(8);
    let (engine, injector) = chaos_engine(plan);
    let got: Vec<String> =
        engine.submit_batch(jobs).iter().map(|h| outcome_key(&h.wait())).collect();
    // Default retries (2) + one fallback hop absorb a per-job fault
    // budget of 8 spread over 10 jobs with overwhelming probability for
    // this seed; the assertion below locks that in.
    assert_eq!(got, clean);
    assert!(injector.injected() > 0, "plan never fired");
    assert!(engine.metrics().retries > 0, "retry path never exercised");
}

/// The fallible cached counter surfaces transient faults through retries
/// and stays bit-identical to the direct count.
#[test]
fn cached_counter_try_count_retries_transients() {
    let seed = 11;
    let (schema, d) = digraph(5, seed);
    let q = path_query(&schema, "E", 2);
    let want = bagcq_homcount::CountRequest::new(&q, &d).count();

    let plan = FaultPlan::seeded(seed)
        .with_kinds(&[FaultKind::TransientError])
        .with_rate_per_mille(400)
        .with_max_faults(2);
    let (engine, _injector) = chaos_engine(plan);
    let counter = engine.cached_counter();
    let got = counter.try_count(&q, &d).expect("retries absorb two transient faults");
    assert_eq!(got, want);
    assert!(engine.metrics().retries > 0);
}

/// Breakers: persistent panics trip the breaker after the configured
/// threshold, jobs then fail fast without evaluating, and once the fault
/// budget is spent the half-open probe closes the breaker again.
#[test]
fn breaker_trips_fails_fast_and_recovers() {
    let seed = 3;
    let (schema, d) = digraph(5, seed);
    // Panic on every engine count until the cap (4 faults) is spent; no
    // retries or fallback, so each faulted job fails immediately.
    let injector = FaultInjector::new(
        FaultPlan::seeded(seed)
            .with_kinds(&[FaultKind::Panic])
            .with_rate_per_mille(1000)
            .with_max_faults(4),
    );
    let engine = EvalEngine::new(EngineConfig {
        workers: 1,
        retry: RetryPolicy::none(),
        fallback_enabled: false,
        breaker: BreakerConfig {
            failure_threshold: 2,
            cooldown: std::time::Duration::from_millis(0),
        },
        fault: Some(Arc::clone(&injector)),
        ..EngineConfig::default()
    });

    let mut outcomes = Vec::new();
    for k in 1..=8 {
        // Distinct queries so the cache never answers for the breaker.
        let q = path_query(&schema, "E", 1 + (k % 3));
        let job = Job::count_with(Engine::Naive, q, Arc::clone(&d));
        outcomes.push(engine.submit(job).wait());
    }
    let panicked = outcomes.iter().filter(|o| matches!(o, Outcome::Panicked(_))).count();
    let succeeded = outcomes.iter().filter(|o| !o.is_failure()).count();
    assert!(panicked >= 2, "the first faulted jobs must fail: {outcomes:?}");
    assert!(succeeded > 0, "the breaker must recover once faults are spent: {outcomes:?}");

    let m = engine.metrics();
    assert!(m.breaker_transitions >= 2, "expected open + close transitions: {m}");
    assert_eq!(injector.injected(), 4);
}

/// Step-budget exhaustion takes the fallback chain exactly once
/// (treewidth → naive) and is terminal when the fallback exhausts too.
#[test]
fn budget_exhaustion_takes_fallback_then_times_out() {
    let (schema, d) = digraph(6, 5);
    let engine = EvalEngine::new(EngineConfig { workers: 1, ..EngineConfig::default() });
    let q = path_query(&schema, "E", 3);
    let job = Job::count_with(Engine::Treewidth, q, Arc::clone(&d)).with_step_budget(1);
    let out = engine.submit(job).wait();
    assert!(matches!(out, Outcome::TimedOut), "a 1-step budget must exhaust: {out:?}");
    let m = engine.metrics();
    assert_eq!(m.fallbacks_taken, 1, "exactly one fallback hop: {m}");
    assert_eq!(m.jobs_timed_out, 1);
}
