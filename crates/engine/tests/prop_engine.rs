//! Property tests: the concurrent, memoized engine is extensionally
//! identical to the sequential evaluation functions — bit-identical
//! `Nat`s, identical verdict shapes — across random databases, and
//! repeated submissions are answered by the cache with equal results.

use bagcq_containment::{CheckRequest, Verdict};
use bagcq_engine::{EvalEngine, Job, Outcome};
use bagcq_homcount::{CountRequest, Engine};
use bagcq_query::{cycle_query, path_query, Query};
use bagcq_structure::{Schema, Structure, StructureGen};
use proptest::prelude::*;
use std::sync::Arc;

fn digraph(extra_vertices: u32, density_pct: u8, seed: u64) -> (Arc<Schema>, Arc<Structure>) {
    let mut sb = Schema::builder();
    sb.relation("E", 2);
    let schema = sb.build();
    let gen = StructureGen {
        extra_vertices,
        density: f64::from(density_pct) / 100.0,
        ..StructureGen::default()
    };
    let d = Arc::new(gen.sample(&schema, seed));
    (schema, d)
}

fn small_queries(schema: &Arc<Schema>) -> Vec<Query> {
    vec![
        path_query(schema, "E", 1),
        path_query(schema, "E", 2),
        path_query(schema, "E", 3),
        cycle_query(schema, "E", 3),
    ]
}

fn verdict_shape(v: &Verdict) -> String {
    match v {
        Verdict::Proved(c) => format!("proved:{c:?}"),
        Verdict::Refuted(c) => format!("refuted:{}:{}", c.count_s, c.count_b),
        Verdict::Unknown { candidates_checked } => format!("unknown:{candidates_checked}"),
    }
}

proptest! {
    /// Concurrent batched counts are bit-identical to direct calls, on
    /// both engines, over random databases.
    #[test]
    fn batched_counts_bit_identical(
        seed in 0u64..1_000_000,
        extra in 3u32..7,
        density in 20u8..70,
    ) {
        let (schema, d) = digraph(extra, density, seed);
        let engine = EvalEngine::with_workers(4);
        let jobs: Vec<Job> = small_queries(&schema)
            .into_iter()
            .flat_map(|q| {
                [
                    Job::count_with(Engine::Naive, q.clone(), Arc::clone(&d)),
                    Job::count_with(Engine::Treewidth, q, Arc::clone(&d)),
                ]
            })
            .collect();
        let handles = engine.submit_batch(jobs.clone());
        for (job, h) in jobs.iter().zip(&handles) {
            let (query, backend) = match &job.spec {
                bagcq_engine::JobSpec::Count { query, backend, .. } => (query, *backend),
                _ => unreachable!(),
            };
            let want = CountRequest::new(query, &d).backend(backend).count();
            prop_assert_eq!(h.wait().as_count(), Some(&want));
        }
    }

    /// Resubmitting the same workload is answered from the cache with
    /// equal `Nat`s and equal verdict shapes, and the hit counter moves.
    #[test]
    fn cache_returns_equal_results(seed in 0u64..1_000_000, extra in 3u32..6) {
        let (schema, d) = digraph(extra, 40, seed);
        let engine = EvalEngine::with_workers(2);
        let q2 = path_query(&schema, "E", 2);
        let q3 = path_query(&schema, "E", 3);
        let jobs = vec![
            Job::count(q2.clone(), Arc::clone(&d)),
            Job::check(CheckRequest::new(&q2, &q3).into_spec()),
        ];
        let first: Vec<Outcome> =
            engine.submit_batch(jobs.clone()).iter().map(|h| h.wait()).collect();
        let second: Vec<Outcome> =
            engine.submit_batch(jobs).iter().map(|h| h.wait()).collect();
        match (&first[0], &second[0]) {
            (Outcome::Count(a), Outcome::Count(b)) => prop_assert_eq!(a, b),
            other => prop_assert!(false, "unexpected outcomes: {:?}", other),
        }
        match (&first[1], &second[1]) {
            (Outcome::Verdict(a), Outcome::Verdict(b)) => {
                prop_assert_eq!(verdict_shape(a), verdict_shape(b))
            }
            other => prop_assert!(false, "unexpected outcomes: {:?}", other),
        }
        prop_assert!(engine.metrics().cache_hits > 0);
    }
}
