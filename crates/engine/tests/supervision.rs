//! Supervision suite: worker threads die mid-job and the engine recovers.
//!
//! [`FaultKind::WorkerKill`] is the opt-in chaos kind whose marker panic
//! the engine deliberately re-raises past its `catch_unwind`, so the
//! worker *thread* dies while holding a job. The properties:
//!
//! 1. the supervisor notices the death, restarts the worker within its
//!    budget, and the pool returns to full strength and `Healthy`;
//! 2. the job the dead worker held is requeued and re-run — its count is
//!    bit-identical to a sequential evaluation (a kill never corrupts or
//!    loses an answer);
//! 3. with requeueing disabled, the job fails *typed* (`Panicked`) instead
//!    of hanging its waiter;
//! 4. with a zero restart budget, the pool degrades but keeps serving on
//!    the surviving workers.

use bagcq_engine::{
    BreakerConfig, EngineConfig, EngineHealth, EvalEngine, FaultInjector, FaultKind, FaultPlan,
    Job, Outcome, SupervisorConfig,
};
use bagcq_homcount::Engine;
use bagcq_query::{path_query, Query};
use bagcq_structure::{Schema, Structure, StructureGen};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn digraph(extra_vertices: u32, seed: u64) -> (Arc<Schema>, Arc<Structure>) {
    let mut sb = Schema::builder();
    sb.relation("E", 2);
    let schema = sb.build();
    let gen = StructureGen { extra_vertices, density: 0.4, ..StructureGen::default() };
    let d = Arc::new(gen.sample(&schema, seed));
    (schema, d)
}

/// A plan that kills worker threads and nothing else. The cap bounds how
/// many workers can die, so capped plans always let the workload finish.
fn kill_plan(seed: u64, max_kills: u64) -> Arc<FaultInjector> {
    FaultInjector::new(
        FaultPlan::seeded(seed)
            .with_kinds(&[FaultKind::WorkerKill])
            .with_rate_per_mille(1000)
            .with_max_faults(max_kills),
    )
}

fn supervisor(restart_budget: u32, requeue_on_death: bool) -> SupervisorConfig {
    SupervisorConfig {
        restart_budget,
        requeue_on_death,
        restart_backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(10),
        poll_interval: Duration::from_millis(2),
    }
}

/// Polls until `pred` holds or the deadline passes; supervision acts on
/// its own thread, so tests observe it rather than drive it.
fn eventually(what: &str, deadline: Duration, mut pred: impl FnMut() -> bool) {
    let started = Instant::now();
    while !pred() {
        assert!(started.elapsed() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Properties 1 + 2: a kill storm is survived — every job still resolves
/// to the sequential count, the deaths/restarts/requeues are accounted,
/// and the pool heals. The storm is capped at the engine's per-job death
/// budget (2): under an adversarial interleaving every kill can land on
/// re-runs of the *same* job, and a job that dies more often than that
/// deliberately fails typed instead of requeueing forever.
#[test]
fn worker_kills_are_survived_bit_identically() {
    let seed: u64 =
        std::env::var("BAGCQ_CHAOS_SEED").ok().and_then(|v| v.parse().ok()).unwrap_or(42);
    let (schema, d) = digraph(5, seed);
    let queries: Vec<Query> = (1..=3).map(|k| path_query(&schema, "E", k)).collect();
    let want: Vec<_> =
        queries.iter().map(|q| bagcq_homcount::CountRequest::new(q, &d).count()).collect();

    let injector = kill_plan(seed, 2);
    let engine = EvalEngine::new(EngineConfig {
        workers: 3,
        supervisor: supervisor(8, true),
        breaker: BreakerConfig::disabled(),
        fault: Some(Arc::clone(&injector)),
        ..EngineConfig::default()
    });

    // Distinct fingerprints per submission (engine alternates) so kills
    // cannot hide behind cache hits.
    let handles: Vec<_> = (0..12)
        .map(|i| {
            let eng = if i % 2 == 0 { Engine::Naive } else { Engine::Treewidth };
            engine.submit(Job::count_with(eng, queries[i % 3].clone(), Arc::clone(&d)))
        })
        .collect();
    for (i, handle) in handles.iter().enumerate() {
        assert_eq!(
            handle.wait().as_count(),
            Some(&want[i % 3]),
            "job {i} not bit-identical after worker kills"
        );
    }
    assert_eq!(injector.injected_of(FaultKind::WorkerKill), 2, "the kill storm never fired");

    let m = engine.metrics();
    assert_eq!(m.jobs_completed, m.jobs_submitted, "a kill lost a job: {m}");
    assert!(m.jobs_requeued >= 1, "a killed job must be requeued: {m}");
    eventually("the pool to heal", Duration::from_secs(10), || {
        engine.live_workers() == engine.worker_count() && engine.health() == EngineHealth::Healthy
    });
    let m = engine.metrics();
    assert!(m.worker_deaths >= 2, "deaths unaccounted: {m}");
    assert!(m.worker_restarts >= 2, "restarts unaccounted: {m}");
}

/// Property 3: with requeueing disabled the killed job's waiter is not
/// hung and not silently dropped — it gets a typed `Panicked` outcome.
#[test]
fn requeue_disabled_fails_the_killed_job_typed() {
    let (schema, d) = digraph(5, 7);
    let q = path_query(&schema, "E", 2);
    let want = bagcq_homcount::CountRequest::new(&q, &d).count();

    let engine = EvalEngine::new(EngineConfig {
        workers: 2,
        supervisor: supervisor(8, false),
        breaker: BreakerConfig::disabled(),
        fault: Some(kill_plan(7, 1)),
        ..EngineConfig::default()
    });

    let handles: Vec<_> = (0..8)
        .map(|i| {
            let eng = if i % 2 == 0 { Engine::Naive } else { Engine::Treewidth };
            engine.submit(Job::count_with(eng, q.clone(), Arc::clone(&d)))
        })
        .collect();
    let mut died = 0u64;
    for handle in &handles {
        match handle.wait() {
            Outcome::Count(n) => assert_eq!(n, want),
            Outcome::Panicked(msg) => {
                assert!(msg.contains("worker died"), "untyped death message: {msg}");
                died += 1;
            }
            other => panic!("unexpected outcome: {other:?}"),
        }
    }
    assert_eq!(died, 1, "exactly the killed job must fail");
    let m = engine.metrics();
    assert_eq!(m.jobs_requeued, 0, "requeueing was disabled: {m}");
    assert_eq!(m.jobs_completed, m.jobs_submitted);
    eventually("the replacement worker", Duration::from_secs(10), || {
        engine.live_workers() == engine.worker_count()
    });
}

/// Property 4: a zero restart budget means a death permanently shrinks
/// the pool — the engine degrades (and says so) but keeps serving.
#[test]
fn exhausted_restart_budget_degrades_but_keeps_serving() {
    let (schema, d) = digraph(5, 11);
    let q = path_query(&schema, "E", 2);
    let want = bagcq_homcount::CountRequest::new(&q, &d).count();

    let engine = EvalEngine::new(EngineConfig {
        workers: 2,
        supervisor: supervisor(0, true),
        breaker: BreakerConfig::disabled(),
        fault: Some(kill_plan(11, 1)),
        ..EngineConfig::default()
    });

    // The first processed job draws the kill; it is requeued and re-run
    // by the surviving worker.
    let first = engine.submit(Job::count_with(Engine::Naive, q.clone(), Arc::clone(&d)));
    assert_eq!(first.wait().as_count(), Some(&want));

    eventually("the death to be reaped", Duration::from_secs(10), || {
        let m = engine.metrics();
        m.worker_deaths >= 1 && m.health == EngineHealth::Degraded
    });
    let m = engine.metrics();
    assert_eq!(m.worker_restarts, 0, "restart budget was zero: {m}");
    assert_eq!(engine.live_workers(), 1);

    // Still serving, still correct, on the surviving worker.
    for k in 1..=3 {
        let q = path_query(&schema, "E", k);
        let want = bagcq_homcount::CountRequest::new(&q, &d).count();
        assert_eq!(
            engine.submit(Job::count_with(Engine::Naive, q, Arc::clone(&d))).wait().as_count(),
            Some(&want)
        );
    }
}

/// Kills mixed into the full chaos cocktail: the chaos suite's core
/// property (completed outcomes bit-identical to a clean run) holds when
/// worker threads are dying too. Runs under the CI seed matrix via
/// `BAGCQ_CHAOS_SEED`.
#[test]
fn kills_mixed_with_chaos_keep_outcomes_clean() {
    let seed: u64 =
        std::env::var("BAGCQ_CHAOS_SEED").ok().and_then(|v| v.parse().ok()).unwrap_or(42);
    let (schema, d) = digraph(5, seed);
    let queries: Vec<Query> = (1..=3).map(|k| path_query(&schema, "E", k)).collect();
    let want: Vec<_> =
        queries.iter().map(|q| bagcq_homcount::CountRequest::new(q, &d).count()).collect();

    let plan = FaultPlan::seeded(seed)
        .with_kinds(&[
            FaultKind::Panic,
            FaultKind::Latency,
            FaultKind::SpuriousCancel,
            FaultKind::TransientError,
            FaultKind::WorkerKill,
        ])
        .with_rate_per_mille(100)
        .with_max_faults(24);
    let engine = EvalEngine::new(EngineConfig {
        workers: 3,
        supervisor: supervisor(16, true),
        breaker: BreakerConfig::disabled(),
        fault: Some(FaultInjector::new(plan)),
        ..EngineConfig::default()
    });

    let handles: Vec<_> = (0..18)
        .map(|i| {
            let eng = if i % 2 == 0 { Engine::Naive } else { Engine::Treewidth };
            engine.submit(Job::count_with(eng, queries[i % 3].clone(), Arc::clone(&d)))
        })
        .collect();
    for (i, handle) in handles.iter().enumerate() {
        match handle.wait() {
            Outcome::Count(n) => assert_eq!(
                n,
                want[i % 3],
                "seed {seed}: completed outcome {i} not bit-identical under chaos"
            ),
            // Retries absorb most faults; what they cannot absorb must
            // still resolve typed, never hang or vanish.
            Outcome::TimedOut | Outcome::Panicked(_) => {}
            other => panic!("seed {seed}: unexpected outcome: {other:?}"),
        }
    }
    let m = engine.metrics();
    assert_eq!(m.jobs_completed, m.jobs_submitted, "seed {seed}: lost a job: {m}");
}
