//! Bounded retries with exponential backoff and deterministic jitter.
//!
//! [`RetryPolicy`] governs how the worker pool reacts to **transient**
//! failures (injected faults, spurious cancellations, transient counter
//! errors, panics that a fallback engine might dodge). It is consulted
//! only for transient failures — deadline cancellations and step-budget
//! exhaustion are terminal for the attempt that hit them (retrying a
//! deterministic computation against the same limit reproduces the same
//! exhaustion; the fallback chain, not the retry loop, handles those).
//!
//! Jitter is *deterministic*: the delay for attempt `k` of a job is a pure
//! function of the policy seed, the job's content fingerprint, and `k`, so
//! two runs of the same workload back off identically — a requirement for
//! the chaos suite's reproducibility and for debugging sweep logs.

use std::time::Duration;

/// SplitMix64 — the tiny deterministic mixer used for jitter and for the
/// fault plan. Public within the crate so `fault` shares the exact
/// sequence semantics.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Retry policy for transient evaluation failures.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum retries *per engine* in the fallback chain (`0` disables
    /// retrying; the first failure is final for that engine).
    pub max_retries: u32,
    /// Backoff before the first retry; doubles per attempt.
    pub base_backoff: Duration,
    /// Cap on the (pre-jitter) backoff.
    pub max_backoff: Duration,
    /// Seed mixed into the deterministic jitter.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 2,
            base_backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(50),
            jitter_seed: 0x5EED_BA6C,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries.
    pub fn none() -> Self {
        RetryPolicy { max_retries: 0, ..RetryPolicy::default() }
    }

    /// The backoff before retry number `attempt` (0-based) of a job whose
    /// identity is mixed in via `salt` (the engine uses the job's content
    /// fingerprint). Exponential with full determinism: the result lies in
    /// `[exp/2, exp)` where `exp = min(base·2^attempt, max)`.
    pub fn backoff(&self, attempt: u32, salt: u64) -> Duration {
        let exp = self
            .base_backoff
            .saturating_mul(1u32 << attempt.min(16))
            .min(self.max_backoff)
            .max(Duration::from_micros(1));
        let half = exp / 2;
        let span = exp.as_micros().max(2) as u64 / 2;
        let jitter_us =
            splitmix64(self.jitter_seed ^ salt.rotate_left(attempt.wrapping_add(1))) % span;
        half + Duration::from_micros(jitter_us)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_and_bounded() {
        let p = RetryPolicy::default();
        for attempt in 0..5 {
            for salt in [0u64, 1, 0xDEAD_BEEF] {
                let a = p.backoff(attempt, salt);
                let b = p.backoff(attempt, salt);
                assert_eq!(a, b, "same (attempt, salt) must back off identically");
                assert!(a < p.max_backoff * 2, "backoff {a:?} exceeds cap");
            }
        }
    }

    #[test]
    fn backoff_grows_then_caps() {
        let p = RetryPolicy {
            base_backoff: Duration::from_millis(4),
            max_backoff: Duration::from_millis(16),
            ..RetryPolicy::default()
        };
        // Pre-jitter envelope: 4, 8, 16, 16, ... — the jittered value
        // stays within [exp/2, exp).
        for (attempt, cap_ms) in [(0u32, 4u64), (1, 8), (2, 16), (3, 16), (8, 16)] {
            let d = p.backoff(attempt, 7);
            assert!(d >= Duration::from_millis(cap_ms) / 2, "attempt {attempt}: {d:?} too small");
            assert!(d < Duration::from_millis(cap_ms), "attempt {attempt}: {d:?} too large");
        }
    }

    #[test]
    fn salts_decorrelate_jitter() {
        let p = RetryPolicy::default();
        let delays: Vec<_> = (0..16u64).map(|salt| p.backoff(1, salt)).collect();
        let distinct: std::collections::BTreeSet<_> = delays.iter().collect();
        assert!(distinct.len() > 8, "jitter should spread across salts: {delays:?}");
    }
}
