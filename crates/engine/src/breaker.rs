//! Per-job-kind circuit breakers.
//!
//! A breaker guards one job kind (`count`, `eval_power`, `containment`)
//! through the classic three-state machine:
//!
//! * **Closed** — evaluations run normally; consecutive evaluation
//!   failures (panics, cross-validation mismatches) are counted, and
//!   reaching [`BreakerConfig::failure_threshold`] trips the breaker;
//! * **Open** — jobs of that kind fail fast with a typed
//!   [`crate::Outcome::FailedFast`] instead of burning a worker on a kind
//!   that is currently hopeless; after [`BreakerConfig::cooldown`] the
//!   next arrival is admitted as a probe;
//! * **Half-open** — exactly one probe is in flight; its success closes
//!   the breaker, its failure re-opens it for another cooldown.
//!
//! Deadline/budget cancellations are *neutral*: they are expected under
//! tight limits and say nothing about the health of the evaluation path,
//! so they neither trip nor close a breaker (a timed-out probe re-opens,
//! since the probe slot must be released either way).

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Configuration for the engine's circuit breakers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive evaluation failures that trip a closed breaker. `0`
    /// disables breaking entirely.
    pub failure_threshold: u32,
    /// How long an open breaker rejects before admitting a probe.
    pub cooldown: Duration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig { failure_threshold: 5, cooldown: Duration::from_millis(250) }
    }
}

impl BreakerConfig {
    /// A configuration with breaking disabled.
    pub fn disabled() -> Self {
        BreakerConfig { failure_threshold: 0, ..BreakerConfig::default() }
    }
}

/// Payload of a fail-fast rejection: which breaker tripped and how many
/// consecutive failures opened it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FailFast {
    /// The job kind whose breaker is open (see `JobSpec::kind`).
    pub job_kind: &'static str,
    /// Consecutive failures observed when the breaker opened.
    pub consecutive_failures: u32,
}

/// How an admitted evaluation ended, as the breaker sees it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Signal {
    /// A value outcome: closes the breaker.
    Success,
    /// An evaluation failure (panic / mismatch): counts toward tripping.
    Failure,
    /// A deadline or budget cancellation: health-neutral.
    Neutral,
}

#[derive(Clone, Copy, Debug)]
enum State {
    Closed { failures: u32 },
    Open { until: Instant, failures: u32 },
    HalfOpen { failures: u32 },
}

/// What `admit` decided.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum Admit {
    /// Run the evaluation (breaker closed, or this is the half-open
    /// probe). Every admitted evaluation must `record` a [`Signal`].
    Allowed,
    /// Fail fast; do not evaluate, do not `record`.
    Rejected(FailFast),
}

/// One breaker; the engine keeps one per job kind.
#[derive(Debug)]
pub(crate) struct Breaker {
    config: BreakerConfig,
    state: Mutex<State>,
}

impl Breaker {
    pub(crate) fn new(config: BreakerConfig) -> Self {
        Breaker { config, state: Mutex::new(State::Closed { failures: 0 }) }
    }

    /// Admission decision for one job of this kind. Returns the number of
    /// state transitions performed (for metrics) alongside the decision.
    pub(crate) fn admit(&self, kind: &'static str, now: Instant) -> (Admit, u64) {
        if self.config.failure_threshold == 0 {
            return (Admit::Allowed, 0);
        }
        let mut state = self.state.lock().unwrap();
        match *state {
            State::Closed { .. } => (Admit::Allowed, 0),
            State::Open { until, failures } if now >= until => {
                *state = State::HalfOpen { failures };
                (Admit::Allowed, 1)
            }
            State::Open { failures, .. } | State::HalfOpen { failures } => {
                (Admit::Rejected(FailFast { job_kind: kind, consecutive_failures: failures }), 0)
            }
        }
    }

    /// Records how an admitted evaluation ended; returns the number of
    /// state transitions performed.
    pub(crate) fn record(&self, signal: Signal, now: Instant) -> u64 {
        if self.config.failure_threshold == 0 {
            return 0;
        }
        let mut state = self.state.lock().unwrap();
        match (*state, signal) {
            (State::Closed { failures: 0 }, Signal::Success) => 0,
            (_, Signal::Success) => {
                let was_closed = matches!(*state, State::Closed { .. });
                *state = State::Closed { failures: 0 };
                u64::from(!was_closed)
            }
            (State::Closed { failures }, Signal::Failure) => {
                let failures = failures + 1;
                if failures >= self.config.failure_threshold {
                    *state = State::Open { until: now + self.config.cooldown, failures };
                    1
                } else {
                    *state = State::Closed { failures };
                    0
                }
            }
            (State::HalfOpen { failures }, Signal::Failure | Signal::Neutral) => {
                // Probe failed (or never finished): back to Open. A fresh
                // cooldown starts now either way.
                *state = State::Open { until: now + self.config.cooldown, failures };
                1
            }
            (_, Signal::Neutral) => 0,
            (State::Open { .. }, Signal::Failure) => 0, // stale report; already open
        }
    }

    /// `true` while the breaker would reject.
    #[cfg(test)]
    pub(crate) fn is_open(&self, now: Instant) -> bool {
        match *self.state.lock().unwrap() {
            State::Open { until, .. } => now < until,
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(threshold: u32, cooldown_ms: u64) -> BreakerConfig {
        BreakerConfig { failure_threshold: threshold, cooldown: Duration::from_millis(cooldown_ms) }
    }

    #[test]
    fn trips_after_k_consecutive_failures() {
        let b = Breaker::new(cfg(3, 1000));
        let t0 = Instant::now();
        for _ in 0..2 {
            assert_eq!(b.admit("count", t0).0, Admit::Allowed);
            b.record(Signal::Failure, t0);
        }
        assert!(!b.is_open(t0), "two failures stay closed at threshold 3");
        assert_eq!(b.admit("count", t0).0, Admit::Allowed);
        assert_eq!(b.record(Signal::Failure, t0), 1, "third failure transitions to open");
        assert!(b.is_open(t0));
        match b.admit("count", t0).0 {
            Admit::Rejected(ff) => {
                assert_eq!(ff.job_kind, "count");
                assert_eq!(ff.consecutive_failures, 3);
            }
            other => panic!("expected rejection, got {other:?}"),
        }
    }

    #[test]
    fn success_resets_the_failure_streak() {
        let b = Breaker::new(cfg(2, 1000));
        let t0 = Instant::now();
        b.record(Signal::Failure, t0);
        b.record(Signal::Success, t0);
        b.record(Signal::Failure, t0);
        assert!(!b.is_open(t0), "non-consecutive failures must not trip");
    }

    #[test]
    fn half_open_probe_closes_or_reopens() {
        let b = Breaker::new(cfg(1, 0)); // zero cooldown: immediate probe
        let t0 = Instant::now();
        b.record(Signal::Failure, t0);
        // Cooldown elapsed (zero): next admit is the probe.
        let (admit, transitions) = b.admit("eval_power", t0);
        assert_eq!(admit, Admit::Allowed);
        assert_eq!(transitions, 1, "open → half-open");
        // While the probe is out, everyone else is rejected.
        assert!(matches!(b.admit("eval_power", t0).0, Admit::Rejected(_)));
        // Probe fails → open again; probe succeeds next round → closed.
        assert_eq!(b.record(Signal::Failure, t0), 1);
        let (admit, _) = b.admit("eval_power", t0);
        assert_eq!(admit, Admit::Allowed);
        assert_eq!(b.record(Signal::Success, t0), 1, "half-open → closed");
        assert_eq!(b.admit("eval_power", t0).0, Admit::Allowed);
    }

    #[test]
    fn neutral_signals_do_not_trip() {
        let b = Breaker::new(cfg(1, 1000));
        let t0 = Instant::now();
        for _ in 0..5 {
            b.record(Signal::Neutral, t0);
        }
        assert!(!b.is_open(t0), "timeouts are health-neutral");
    }

    #[test]
    fn timed_out_probe_reopens() {
        let b = Breaker::new(cfg(1, 0));
        let t0 = Instant::now();
        b.record(Signal::Failure, t0);
        assert_eq!(b.admit("containment", t0).0, Admit::Allowed); // probe
        b.record(Signal::Neutral, t0); // probe timed out
                                       // Zero cooldown: the next admit is a fresh probe, not a free pass.
        let (admit, transitions) = b.admit("containment", t0);
        assert_eq!(admit, Admit::Allowed);
        assert_eq!(transitions, 1, "the neutral probe re-opened the breaker");
    }

    #[test]
    fn disabled_breaker_never_rejects() {
        let b = Breaker::new(BreakerConfig::disabled());
        let t0 = Instant::now();
        for _ in 0..50 {
            b.record(Signal::Failure, t0);
            assert_eq!(b.admit("count", t0).0, Admit::Allowed);
        }
    }
}
