//! Worker supervision policy and the engine health state machine.
//!
//! PR 2 gave each *job* a drop-safety net ([`PublishGuard`] publishes a
//! poison outcome when a worker dies mid-job, [`LeadToken`] evicts its
//! in-flight cache slot); this module adds the *pool*-level half: a
//! supervisor thread (see `engine.rs`) polls the worker handles, reaps
//! dead ones, and — within a capped, backoff-governed restart budget —
//! spawns replacements, so one `WorkerKill` chaos fault (or a real bug
//! that escapes `catch_unwind`) degrades throughput instead of slowly
//! bleeding the pool to zero.
//!
//! The pool's state is summarized by [`EngineHealth`]:
//!
//! ```text
//!           worker death detected
//!   Healthy ─────────────────────▶ Degraded
//!      ▲                              │
//!      └──────────────────────────────┘
//!        full worker complement restored
//!
//!   (any state) ──▶ Draining        terminal: drain() was called
//! ```
//!
//! Transitions are exposed through [`crate::MetricsSnapshot`] and as
//! `engine.health` trace instants.
//!
//! [`PublishGuard`]: crate::EvalEngine
//! [`LeadToken`]: crate::EvalEngine

use std::sync::atomic::{AtomicU8, Ordering};
use std::time::Duration;

/// The engine-level health state machine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EngineHealth {
    /// Full worker complement, accepting work.
    Healthy,
    /// At least one worker died; the pool is running short (or exhausted
    /// its restart budget) but still serving.
    Degraded,
    /// `drain()` was called: admission is closed and the engine is
    /// winding down. Terminal.
    Draining,
}

impl EngineHealth {
    /// Stable lowercase label (metrics rendering, trace instants).
    pub fn label(self) -> &'static str {
        match self {
            EngineHealth::Healthy => "healthy",
            EngineHealth::Degraded => "degraded",
            EngineHealth::Draining => "draining",
        }
    }

    fn as_u8(self) -> u8 {
        match self {
            EngineHealth::Healthy => 0,
            EngineHealth::Degraded => 1,
            EngineHealth::Draining => 2,
        }
    }

    fn from_u8(v: u8) -> Self {
        match v {
            0 => EngineHealth::Healthy,
            1 => EngineHealth::Degraded,
            _ => EngineHealth::Draining,
        }
    }
}

/// Lock-free holder of the current [`EngineHealth`], enforcing that
/// [`EngineHealth::Draining`] is terminal and emitting an `engine.health`
/// trace instant on every transition.
#[derive(Debug, Default)]
pub(crate) struct HealthCell(AtomicU8);

impl HealthCell {
    pub fn get(&self) -> EngineHealth {
        EngineHealth::from_u8(self.0.load(Ordering::Relaxed))
    }

    /// Transitions to `next`; returns whether the state changed.
    /// Transitions out of `Draining` are refused.
    pub fn set(&self, next: EngineHealth) -> bool {
        let mut current = self.0.load(Ordering::Relaxed);
        loop {
            let cur = EngineHealth::from_u8(current);
            if cur == next || cur == EngineHealth::Draining {
                return false;
            }
            match self.0.compare_exchange_weak(
                current,
                next.as_u8(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    bagcq_obs::instant("engine.health", next.label());
                    return true;
                }
                Err(actual) => current = actual,
            }
        }
    }
}

/// Supervision policy for an engine's worker pool.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SupervisorConfig {
    /// Total worker restarts the supervisor may perform over the engine's
    /// lifetime. Once exhausted, further deaths leave the pool permanently
    /// [`EngineHealth::Degraded`] (a crash loop must not become a spawn
    /// storm).
    pub restart_budget: u32,
    /// Base delay before a restart; doubles per *consecutive* death
    /// (resetting after a quiet poll) up to [`SupervisorConfig::max_backoff`].
    pub restart_backoff: Duration,
    /// Cap on the restart backoff.
    pub max_backoff: Duration,
    /// How often the supervisor polls worker liveness.
    pub poll_interval: Duration,
    /// When `true`, a job recovered from a dying worker is requeued (once)
    /// and re-run; when `false`, it fails fast with the poison
    /// [`crate::Outcome::Panicked`] outcome.
    pub requeue_on_death: bool,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            restart_budget: 8,
            restart_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_secs(1),
            poll_interval: Duration::from_millis(5),
            requeue_on_death: true,
        }
    }
}

impl SupervisorConfig {
    /// The backoff before restart number `consecutive` in a death streak.
    pub(crate) fn backoff(&self, consecutive: u32) -> Duration {
        let factor = 1u32 << consecutive.min(16);
        self.restart_backoff.saturating_mul(factor).min(self.max_backoff)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn draining_is_terminal() {
        let cell = HealthCell::default();
        assert_eq!(cell.get(), EngineHealth::Healthy);
        assert!(cell.set(EngineHealth::Degraded));
        assert!(!cell.set(EngineHealth::Degraded), "no-op transition reports unchanged");
        assert!(cell.set(EngineHealth::Healthy), "recovery is allowed");
        assert!(cell.set(EngineHealth::Draining));
        assert!(!cell.set(EngineHealth::Healthy), "draining is terminal");
        assert!(!cell.set(EngineHealth::Degraded));
        assert_eq!(cell.get(), EngineHealth::Draining);
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let cfg = SupervisorConfig {
            restart_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(50),
            ..SupervisorConfig::default()
        };
        assert_eq!(cfg.backoff(0), Duration::from_millis(10));
        assert_eq!(cfg.backoff(1), Duration::from_millis(20));
        assert_eq!(cfg.backoff(2), Duration::from_millis(40));
        assert_eq!(cfg.backoff(3), Duration::from_millis(50), "capped");
        assert_eq!(cfg.backoff(60), Duration::from_millis(50), "shift is clamped");
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(EngineHealth::Healthy.label(), "healthy");
        assert_eq!(EngineHealth::Degraded.label(), "degraded");
        assert_eq!(EngineHealth::Draining.label(), "draining");
    }
}
