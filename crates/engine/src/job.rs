//! Job descriptions, outcomes, and completion handles.
//!
//! A [`Job`] pairs a [`JobSpec`] (what to evaluate) with execution limits
//! (a wall-clock timeout and a cooperative step budget). Submitting one to
//! an [`crate::EvalEngine`] returns a [`JobHandle`]; `wait()`ing on the
//! handle yields an [`Outcome`].
//!
//! Every spec has a stable 128-bit content [`Fingerprint`] derived from
//! the fingerprints of its query/structure components — that fingerprint
//! is the engine's memo-cache key, so two structurally equal jobs
//! submitted from different threads share one computation.

use crate::breaker::FailFast;
use bagcq_arith::{Magnitude, Nat};
use bagcq_containment::{CheckSpec, ContainmentChecker, ContainmentChoice, Semantics, Verdict};
use bagcq_homcount::BackendChoice;
use bagcq_query::{PowerQuery, Query};
use bagcq_structure::{Fingerprint, FingerprintHasher, Structure};
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// What a job evaluates.
#[derive(Clone)]
pub enum JobSpec {
    /// `|Hom(query, database)|` with the chosen counting backend
    /// (Section 2.1 bag semantics).
    Count {
        /// The boolean conjunctive query `ψ`.
        query: Query,
        /// The database `D`.
        database: Arc<Structure>,
        /// Which counting backend evaluates it.
        backend: BackendChoice,
    },
    /// `Φ(D) = ∏ θᵢ(D)^{eᵢ}` for a symbolic power query, evaluated into a
    /// certified [`Magnitude`].
    EvalPower {
        /// The factored query `Φ`.
        query: PowerQuery,
        /// The database `D`.
        database: Arc<Structure>,
        /// Bit budget below which the magnitude stays exact.
        exact_bits: u64,
    },
    /// A containment check described by a [`CheckSpec`] — unions, set or
    /// bag [`Semantics`](bagcq_containment::Semantics), backend
    /// [`ContainmentChoice`], multiplier, budget. Every count the
    /// resolved backend's refutation phase performs is routed through the
    /// engine's memo cache.
    Check {
        /// The full check description.
        spec: CheckSpec,
    },
}

impl JobSpec {
    /// Short label for display and metrics.
    pub fn kind(&self) -> &'static str {
        match self {
            JobSpec::Count { .. } => "count",
            JobSpec::EvalPower { .. } => "eval_power",
            JobSpec::Check { .. } => "check",
        }
    }

    /// The stable content fingerprint that keys the memo cache.
    ///
    /// Two specs collide iff their variant, parameters, and component
    /// fingerprints all agree; structure fingerprints are insertion-order
    /// independent, so semantically equal databases built in different
    /// orders still share cache entries.
    pub fn fingerprint(&self) -> Fingerprint {
        match self {
            JobSpec::Count { query, database, backend } => {
                count_fingerprint(query, database, *backend)
            }
            JobSpec::EvalPower { query, database, exact_bits } => {
                let mut h = FingerprintHasher::new(b"bagcq/job/eval-power");
                let fp = power_query_fingerprint(query);
                h.write_u64(fp.hi);
                h.write_u64(fp.lo);
                let db = database.fingerprint();
                h.write_u64(db.hi);
                h.write_u64(db.lo);
                h.write_u64(*exact_bits);
                h.finish()
            }
            JobSpec::Check { spec } => {
                let mut h = FingerprintHasher::new(b"bagcq/job/check");
                for u in [&spec.q_s, &spec.q_b] {
                    h.write_usize(u.len());
                    for q in u.disjuncts() {
                        let fp = q.fingerprint();
                        h.write_u64(fp.hi);
                        h.write_u64(fp.lo);
                    }
                }
                h.write_u32(match spec.semantics {
                    Semantics::Bag => 0,
                    Semantics::Set => 1,
                });
                // The *submitted* choice is the key: `Auto` resolution
                // consults a process-fixed env override and the spec
                // itself, so it is deterministic per process and safe to
                // cache under the pre-resolution tag.
                h.write_u32(match spec.choice {
                    ContainmentChoice::Auto => 0,
                    ContainmentChoice::BagSearch => 1,
                    ContainmentChoice::SetChandraMerlin => 2,
                    ContainmentChoice::SetUcq => 3,
                    ContainmentChoice::BagUcq => 4,
                });
                write_nat(&mut h, spec.multiplier.numerator());
                write_nat(&mut h, spec.multiplier.denominator());
                let b = &spec.budget;
                h.write_u64(b.random_rounds);
                h.write_u32(b.max_blowup);
                h.write_u32(b.max_power);
                h.write_u64(b.seed);
                h.write_u32(b.random_vertices);
                h.finish()
            }
        }
    }
}

/// The memo-cache key of a raw count — shared between [`JobSpec::Count`]
/// jobs and the counts performed inside containment checks, so a
/// containment job warms the cache for later direct counts (and vice
/// versa).
pub(crate) fn count_fingerprint(
    query: &Query,
    database: &Structure,
    backend: BackendChoice,
) -> Fingerprint {
    let mut h = FingerprintHasher::new(b"bagcq/job/count");
    let q = query.fingerprint();
    h.write_u64(q.hi);
    h.write_u64(q.lo);
    let d = database.fingerprint();
    h.write_u64(d.hi);
    h.write_u64(d.lo);
    // Stable tags: the reference kernels keep the pre-BackendChoice
    // values 0/1 so their cache keys survive the API migration.
    h.write_u32(match backend {
        BackendChoice::Naive => 0,
        BackendChoice::Treewidth => 1,
        BackendChoice::FastNaive => 2,
        BackendChoice::FastTreewidth => 3,
        BackendChoice::Auto => 4,
    });
    h.finish()
}

fn power_query_fingerprint(pq: &PowerQuery) -> Fingerprint {
    let mut h = FingerprintHasher::new(b"bagcq/power-query");
    h.write_usize(pq.factors().len());
    for f in pq.factors() {
        let fp = f.base.fingerprint();
        h.write_u64(fp.hi);
        h.write_u64(fp.lo);
        write_nat(&mut h, &f.exponent);
    }
    h.finish()
}

fn write_nat(h: &mut FingerprintHasher, n: &Nat) {
    let limbs = n.limbs();
    h.write_usize(limbs.len());
    for &l in limbs {
        h.write_u64(l);
    }
}

/// A spec plus execution limits, ready to submit.
#[derive(Clone)]
pub struct Job {
    /// What to evaluate.
    pub spec: JobSpec,
    /// Wall-clock deadline, measured from submission. `None` = no limit.
    pub timeout: Option<Duration>,
    /// Cooperative step budget for the counting loops (`0` = unlimited).
    pub step_budget: u64,
}

impl Job {
    /// A job with no limits.
    pub fn new(spec: JobSpec) -> Self {
        Job { spec, timeout: None, step_budget: 0 }
    }

    /// A count job with the default backend ([`BackendChoice::Auto`]).
    pub fn count(query: Query, database: Arc<Structure>) -> Self {
        Job::new(JobSpec::Count { query, database, backend: BackendChoice::default() })
    }

    /// A count job with an explicit backend. Accepts a [`BackendChoice`]
    /// or a legacy [`bagcq_homcount::Engine`] value.
    pub fn count_with(
        backend: impl Into<BackendChoice>,
        query: Query,
        database: Arc<Structure>,
    ) -> Self {
        Job::new(JobSpec::Count { query, database, backend: backend.into() })
    }

    /// A symbolic power-query evaluation job.
    pub fn eval_power(query: PowerQuery, database: Arc<Structure>) -> Self {
        Job::new(JobSpec::EvalPower {
            query,
            database,
            exact_bits: bagcq_arith::DEFAULT_EXACT_BITS,
        })
    }

    /// A containment-check job from a full [`CheckSpec`] (build one with
    /// [`bagcq_containment::CheckRequest::into_spec`]).
    pub fn check(spec: CheckSpec) -> Self {
        Job::new(JobSpec::Check { spec })
    }

    /// A bag-semantics CQ-pair containment job pinned to the legacy
    /// search pipeline.
    #[deprecated(
        since = "0.1.0",
        note = "build a CheckSpec (CheckRequest::into_spec) and call Job::check"
    )]
    pub fn containment(checker: ContainmentChecker, q_s: Query, q_b: Query) -> Self {
        let mut spec = CheckSpec::pair(q_s, q_b);
        spec.multiplier = checker.multiplier;
        spec.budget = checker.budget;
        // Pin the pre-redesign pipeline so shimmed callers keep byte-for-
        // byte behavior even under a BAGCQ_CONTAINMENT override.
        spec.choice = ContainmentChoice::BagSearch;
        Job::new(JobSpec::Check { spec })
    }

    /// Sets a wall-clock deadline (measured from submission).
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = Some(timeout);
        self
    }

    /// Sets a cooperative step budget (`0` = unlimited).
    pub fn with_step_budget(mut self, steps: u64) -> Self {
        self.step_budget = steps;
        self
    }
}

/// The result of a job.
///
/// `Clone` so one cached computation can be handed to many waiters;
/// verdicts travel behind an [`Arc`] because [`Verdict`] owns its
/// certificate/counterexample and is deliberately not `Clone`.
#[derive(Clone, Debug)]
pub enum Outcome {
    /// `|Hom(ψ, D)|`.
    Count(Nat),
    /// `Φ(D)` as a certified magnitude.
    Power(Magnitude),
    /// A containment verdict.
    Verdict(Arc<Verdict>),
    /// The job hit its wall-clock deadline or exhausted its step budget
    /// before finishing. Never cached.
    TimedOut,
    /// The evaluation panicked (or a cross-validation mismatch was
    /// detected, or a transient failure persisted past the retry budget);
    /// the payload is the panic message. Never cached.
    Panicked(String),
    /// The job kind's circuit breaker was open: the job was rejected
    /// without evaluating, to stop a failing kind from burning workers.
    /// Never cached.
    FailedFast(FailFast),
    /// The job was shed by the serving layer without evaluating: refused
    /// at admission (queue full, admission wait timed out, or the engine
    /// was draining) or dropped at dequeue because its deadline had
    /// already passed. Never cached.
    Shed(ShedReason),
}

/// Why the serving layer shed a job (see [`Outcome::Shed`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShedReason {
    /// The bounded queue was full under a rejecting admission policy.
    QueueFull,
    /// [`crate::AdmissionPolicy::Block`] waited `max_wait` without a slot
    /// freeing up.
    AdmissionTimeout,
    /// The job's deadline passed while it sat queued; a
    /// [`crate::AdmissionPolicy::ShedExpired`] worker dropped it at
    /// dequeue instead of evaluating work nobody can use.
    ExpiredAtDequeue,
    /// Admission was closed: the engine is draining (or already drained)
    /// and this job was either refused at submit or flushed out of the
    /// queue by the drain deadline.
    Draining,
    /// The tenant's token-bucket quota was exhausted
    /// ([`crate::TenantGate`]); the serving layer maps this to HTTP 429.
    QuotaExceeded,
    /// The tenant hit its max-in-flight concurrency limit
    /// ([`crate::TenantGate`]); the serving layer maps this to HTTP 429.
    InFlightLimit,
    /// The tenant hit its per-tenant open-connection cap
    /// ([`crate::TenantGate::acquire_connection`]); the serving layer
    /// maps this to HTTP 429 and closes the connection.
    ConnectionLimit,
}

impl ShedReason {
    /// Stable lowercase label (metrics rendering, trace instants).
    pub fn label(self) -> &'static str {
        match self {
            ShedReason::QueueFull => "queue_full",
            ShedReason::AdmissionTimeout => "admission_timeout",
            ShedReason::ExpiredAtDequeue => "expired_at_dequeue",
            ShedReason::Draining => "draining",
            ShedReason::QuotaExceeded => "quota_exceeded",
            ShedReason::InFlightLimit => "in_flight_limit",
            ShedReason::ConnectionLimit => "connection_limit",
        }
    }
}

impl fmt::Display for ShedReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl Outcome {
    /// The count, if this is a [`Outcome::Count`].
    pub fn as_count(&self) -> Option<&Nat> {
        match self {
            Outcome::Count(n) => Some(n),
            _ => None,
        }
    }

    /// The magnitude, if this is a [`Outcome::Power`].
    pub fn as_power(&self) -> Option<&Magnitude> {
        match self {
            Outcome::Power(m) => Some(m),
            _ => None,
        }
    }

    /// The verdict, if this is a [`Outcome::Verdict`].
    pub fn as_verdict(&self) -> Option<&Verdict> {
        match self {
            Outcome::Verdict(v) => Some(v),
            _ => None,
        }
    }

    /// The fail-fast payload, if this is a [`Outcome::FailedFast`].
    pub fn as_failed_fast(&self) -> Option<&FailFast> {
        match self {
            Outcome::FailedFast(ff) => Some(ff),
            _ => None,
        }
    }

    /// The shed reason, if this is a [`Outcome::Shed`].
    pub fn as_shed(&self) -> Option<ShedReason> {
        match self {
            Outcome::Shed(reason) => Some(*reason),
            _ => None,
        }
    }

    /// `true` for [`Outcome::TimedOut`], [`Outcome::Panicked`],
    /// [`Outcome::FailedFast`], and [`Outcome::Shed`] — the outcomes that
    /// are published to waiters but never cached.
    pub fn is_failure(&self) -> bool {
        matches!(
            self,
            Outcome::TimedOut | Outcome::Panicked(_) | Outcome::FailedFast(_) | Outcome::Shed(_)
        )
    }
}

/// Shared completion state between a [`JobHandle`] and the worker that
/// eventually publishes the outcome.
#[derive(Debug, Default)]
pub(crate) struct JobState {
    slot: Mutex<Option<Outcome>>,
    cond: Condvar,
}

impl JobState {
    pub(crate) fn publish(&self, outcome: Outcome) {
        let mut slot = self.slot.lock().unwrap();
        *slot = Some(outcome);
        self.cond.notify_all();
    }

    /// Publishes only if nothing was published yet (so a dying worker
    /// never overwrites a real outcome — and never leaves waiters hung);
    /// returns whether this call published. `accounting` runs while still
    /// holding the outcome slot's lock: metric updates that belong to the
    /// publication (shed/completed counters) go there, because a waiter
    /// woken by the publish cannot re-acquire the lock — and therefore
    /// cannot observe the outcome — before the accounting has landed, so
    /// a `metrics()` read after `wait()` never sees a resolved job as
    /// still outstanding.
    pub(crate) fn publish_if_pending_with(
        &self,
        outcome: Outcome,
        accounting: impl FnOnce(),
    ) -> bool {
        let mut slot = self.slot.lock().unwrap();
        if slot.is_some() {
            return false;
        }
        *slot = Some(outcome);
        accounting();
        self.cond.notify_all();
        true
    }
}

/// A handle to a submitted job.
#[derive(Clone, Debug)]
pub struct JobHandle {
    pub(crate) state: Arc<JobState>,
}

impl JobHandle {
    /// Blocks until the job's outcome is published, then returns it.
    pub fn wait(&self) -> Outcome {
        let mut slot = self.state.slot.lock().unwrap();
        loop {
            if let Some(outcome) = slot.as_ref() {
                return outcome.clone();
            }
            slot = self.state.cond.wait(slot).unwrap();
        }
    }

    /// Returns the outcome if it is already available.
    pub fn try_wait(&self) -> Option<Outcome> {
        self.state.slot.lock().unwrap().clone()
    }

    /// Blocks until the outcome is published or `timeout` elapses.
    /// Returns `None` on timeout — the job may still complete later, and
    /// a later `wait`/`wait_timeout` will observe it.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Outcome> {
        let deadline = std::time::Instant::now() + timeout;
        let mut slot = self.state.slot.lock().unwrap();
        loop {
            if let Some(outcome) = slot.as_ref() {
                return Some(outcome.clone());
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, _) = self.state.cond.wait_timeout(slot, deadline - now).unwrap();
            slot = guard;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bagcq_structure::{Schema, Vertex};

    fn setup() -> (Query, Arc<Structure>) {
        let mut sb = Schema::builder();
        let e = sb.relation("E", 2);
        let schema = sb.build();
        let mut d = Structure::new(Arc::clone(&schema));
        d.add_vertices(2);
        d.add_atom(e, &[Vertex(0), Vertex(1)]);
        let mut qb = Query::builder(schema);
        let x = qb.var("x");
        let y = qb.var("y");
        qb.atom_named("E", &[x, y]);
        (qb.build(), Arc::new(d))
    }

    #[test]
    fn count_fingerprint_separates_backends() {
        let (q, d) = setup();
        let specs: Vec<JobSpec> = BackendChoice::ALL
            .iter()
            .map(|&b| JobSpec::Count { query: q.clone(), database: Arc::clone(&d), backend: b })
            .collect();
        for (i, a) in specs.iter().enumerate() {
            assert_eq!(a.fingerprint(), a.fingerprint());
            for b in specs.iter().skip(i + 1) {
                assert_ne!(a.fingerprint(), b.fingerprint());
            }
        }
    }

    #[test]
    fn spec_variants_never_collide() {
        let (q, d) = setup();
        let count = JobSpec::Count {
            query: q.clone(),
            database: Arc::clone(&d),
            backend: BackendChoice::Treewidth,
        };
        let power = JobSpec::EvalPower {
            query: PowerQuery::from_query(q.clone()),
            database: Arc::clone(&d),
            exact_bits: bagcq_arith::DEFAULT_EXACT_BITS,
        };
        let cont = JobSpec::Check { spec: CheckSpec::pair(q.clone(), q) };
        let fps = [count.fingerprint(), power.fingerprint(), cont.fingerprint()];
        assert_ne!(fps[0], fps[1]);
        assert_ne!(fps[0], fps[2]);
        assert_ne!(fps[1], fps[2]);
    }

    #[test]
    fn check_fingerprint_separates_semantics_and_choice() {
        let (q, _) = setup();
        let base = CheckSpec::pair(q.clone(), q.clone());
        let mut set = base.clone();
        set.semantics = Semantics::Set;
        let mut pinned = base.clone();
        pinned.choice = ContainmentChoice::BagUcq;
        let fps = [
            JobSpec::Check { spec: base }.fingerprint(),
            JobSpec::Check { spec: set }.fingerprint(),
            JobSpec::Check { spec: pinned }.fingerprint(),
        ];
        assert_ne!(fps[0], fps[1]);
        assert_ne!(fps[0], fps[2]);
        assert_ne!(fps[1], fps[2]);
    }

    #[test]
    #[allow(deprecated)]
    fn containment_shim_pins_bag_search() {
        let (q, _) = setup();
        let job = Job::containment(ContainmentChecker::new(), q.clone(), q);
        match &job.spec {
            JobSpec::Check { spec } => {
                assert_eq!(spec.choice, ContainmentChoice::BagSearch);
                assert_eq!(spec.semantics, Semantics::Bag);
                assert!(spec.is_cq_pair());
            }
            _ => panic!("shim must build a Check spec"),
        }
    }

    #[test]
    fn power_fingerprint_tracks_exponent() {
        let (q, d) = setup();
        let p1 = JobSpec::EvalPower {
            query: PowerQuery::power(q.clone(), Nat::from_u64(2)),
            database: Arc::clone(&d),
            exact_bits: 256,
        };
        let p2 = JobSpec::EvalPower {
            query: PowerQuery::power(q, Nat::from_u64(3)),
            database: d,
            exact_bits: 256,
        };
        assert_ne!(p1.fingerprint(), p2.fingerprint());
    }

    #[test]
    fn wait_timeout_returns_none_then_sees_late_outcome() {
        let state = Arc::new(JobState::default());
        let handle = JobHandle { state: Arc::clone(&state) };
        assert!(handle.wait_timeout(Duration::from_millis(10)).is_none());
        state.publish(Outcome::TimedOut);
        let out = handle.wait_timeout(Duration::from_millis(10)).expect("published");
        assert!(out.is_failure());
    }

    #[test]
    fn publish_if_pending_never_overwrites() {
        let state = Arc::new(JobState::default());
        let mut accounted = 0;
        assert!(state.publish_if_pending_with(Outcome::Count(Nat::one()), || accounted += 1));
        assert!(!state.publish_if_pending_with(Outcome::Panicked("late".into()), || accounted += 1));
        assert_eq!(accounted, 1, "accounting runs only when the publish lands");
        let handle = JobHandle { state };
        assert_eq!(handle.wait().as_count(), Some(&Nat::one()));
    }

    #[test]
    fn shed_is_a_failure_with_a_stable_label() {
        let out = Outcome::Shed(ShedReason::QueueFull);
        assert!(out.is_failure());
        assert_eq!(out.as_shed(), Some(ShedReason::QueueFull));
        assert_eq!(out.as_count(), None);
        assert_eq!(ShedReason::QueueFull.to_string(), "queue_full");
        assert_eq!(ShedReason::AdmissionTimeout.label(), "admission_timeout");
        assert_eq!(ShedReason::ExpiredAtDequeue.label(), "expired_at_dequeue");
        assert_eq!(ShedReason::Draining.label(), "draining");
        assert_eq!(ShedReason::QuotaExceeded.label(), "quota_exceeded");
        assert_eq!(ShedReason::InFlightLimit.label(), "in_flight_limit");
    }

    #[test]
    fn handle_publish_wakes_waiter() {
        let state = Arc::new(JobState::default());
        let handle = JobHandle { state: Arc::clone(&state) };
        assert!(handle.try_wait().is_none());
        let t = std::thread::spawn({
            let handle = handle.clone();
            move || handle.wait()
        });
        state.publish(Outcome::Count(Nat::from_u64(7)));
        let out = t.join().unwrap();
        assert_eq!(out.as_count(), Some(&Nat::from_u64(7)));
        assert!(!out.is_failure());
    }
}
