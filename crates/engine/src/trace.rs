//! Engine-level tracing integration over [`bagcq_obs`].
//!
//! The core tracer (spans, per-thread buffers, exports, stage
//! histograms) lives in the dependency-free `bagcq-obs` crate so the
//! evaluation crates below this one (`homcount`, `reduction`,
//! `containment`) can emit spans too. This module adds the pieces that
//! only make sense at the engine/driver level:
//!
//! * [`TraceSession`] — the `--trace <path>` lifecycle used by the
//!   `exp_*` binaries: enable → run → [`TraceSession::finish`], which
//!   commits both the Chrome-trace JSON (Perfetto /
//!   `chrome://tracing`) and the JSONL event log with the sweep-journal
//!   write-temp-rename discipline;
//! * [`outcome_label`] — stable names for publish instants;
//! * the fingerprint bridge from [`bagcq_structure::Fingerprint`] to
//!   the tracer's 128-bit span fingerprints.

use crate::job::Outcome;
use bagcq_structure::Fingerprint;
use std::io;
use std::path::{Path, PathBuf};

/// Packs a content fingerprint into the tracer's 128-bit form.
pub fn fp_bits(fp: &Fingerprint) -> u128 {
    (u128::from(fp.hi) << 64) | u128::from(fp.lo)
}

/// The stable stage-agnostic label of an outcome, used for
/// `engine.publish` instants.
pub fn outcome_label(outcome: &Outcome) -> &'static str {
    match outcome {
        Outcome::Count(_) => "count",
        Outcome::Power(_) => "power",
        Outcome::Verdict(_) => "verdict",
        Outcome::TimedOut => "timed_out",
        Outcome::Panicked(_) => "panicked",
        Outcome::FailedFast(_) => "failed_fast",
        Outcome::Shed(_) => "shed",
    }
}

/// An active `--trace` recording: created at driver startup, finished
/// after the workload to commit the trace files.
///
/// Starting a session resets the process-global tracer (events from
/// before the session are dropped) and enables recording; finishing
/// disables recording and writes two files derived from the configured
/// path:
///
/// * the path as given — Chrome trace event format (a JSON array), for
///   Perfetto / `chrome://tracing`;
/// * the same path with a `jsonl` extension — one JSON object per
///   event, for machine consumption ([`bagcq_obs::parse_jsonl`]).
#[derive(Debug)]
pub struct TraceSession {
    chrome_path: PathBuf,
    jsonl_path: PathBuf,
}

/// What a finished [`TraceSession`] wrote.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceReport {
    /// The Chrome-trace (Perfetto) file.
    pub chrome_path: PathBuf,
    /// The JSONL event log.
    pub jsonl_path: PathBuf,
    /// Span events recorded.
    pub spans: usize,
    /// Instant events recorded.
    pub instants: usize,
}

impl TraceSession {
    /// Resets the tracer, enables recording, and remembers where
    /// [`TraceSession::finish`] will commit the files.
    pub fn start(path: impl Into<PathBuf>) -> Self {
        let chrome_path: PathBuf = path.into();
        let mut jsonl_path = chrome_path.with_extension("jsonl");
        if jsonl_path == chrome_path {
            jsonl_path = chrome_path.with_extension("spans.jsonl");
        }
        bagcq_obs::reset();
        bagcq_obs::enable();
        TraceSession { chrome_path, jsonl_path }
    }

    /// The Chrome-trace output path.
    pub fn chrome_path(&self) -> &Path {
        &self.chrome_path
    }

    /// The JSONL output path.
    pub fn jsonl_path(&self) -> &Path {
        &self.jsonl_path
    }

    /// Disables recording and atomically commits both trace files.
    pub fn finish(self) -> io::Result<TraceReport> {
        bagcq_obs::disable();
        let events = bagcq_obs::snapshot_events();
        let spans = events.iter().filter(|e| e.kind == bagcq_obs::EventKind::Span).count();
        let instants = events.len() - spans;
        bagcq_obs::write_chrome_trace(&self.chrome_path)?;
        bagcq_obs::write_jsonl(&self.jsonl_path)?;
        Ok(TraceReport {
            chrome_path: self.chrome_path,
            jsonl_path: self.jsonl_path,
            spans,
            instants,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::Outcome;

    // Sessions own the process-global tracer; keep the tests that start
    // one from interleaving.
    static GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn fp_bits_packs_hi_lo() {
        let fp = Fingerprint { hi: 0x1234, lo: 0x5678 };
        assert_eq!(fp_bits(&fp), (0x1234u128 << 64) | 0x5678);
    }

    #[test]
    fn outcome_labels_are_stable() {
        assert_eq!(outcome_label(&Outcome::TimedOut), "timed_out");
        assert_eq!(outcome_label(&Outcome::Panicked("x".into())), "panicked");
        assert_eq!(outcome_label(&Outcome::Shed(crate::job::ShedReason::QueueFull)), "shed");
    }

    #[test]
    fn session_writes_both_files() {
        let _gate = GATE.lock().unwrap_or_else(|p| p.into_inner());
        let dir = std::env::temp_dir().join(format!("bagcq-trace-{}", std::process::id()));
        let session = TraceSession::start(dir.join("out.json"));
        assert_eq!(session.jsonl_path(), dir.join("out.jsonl"));
        {
            let _g = bagcq_obs::span("trace.test", "session");
        }
        let report = session.finish().expect("trace files written");
        assert!(report.spans >= 1);
        let chrome = std::fs::read_to_string(&report.chrome_path).unwrap();
        assert!(bagcq_obs::json::parse(&chrome).is_ok(), "chrome trace must be valid JSON");
        let jsonl = std::fs::read_to_string(&report.jsonl_path).unwrap();
        let events = bagcq_obs::parse_jsonl(&jsonl).expect("jsonl parses");
        bagcq_obs::validate_nesting(&events).expect("well nested");
        bagcq_obs::reset();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn jsonl_extension_collision_is_avoided() {
        let _gate = GATE.lock().unwrap_or_else(|p| p.into_inner());
        let s = TraceSession::start("/tmp/t.jsonl");
        assert_ne!(s.jsonl_path(), s.chrome_path());
        bagcq_obs::disable();
        bagcq_obs::reset();
    }
}
