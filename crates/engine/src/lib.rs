//! # bagcq-engine
//!
//! A concurrent, batched evaluation service for the bag-semantics CQ
//! toolkit. The rest of the workspace exposes *synchronous* primitives —
//! `count`, `eval_power_query`, `ContainmentChecker::check` — whose costs
//! range from microseconds to "effectively forever" (bag containment is a
//! 30-year-open problem; the counting loops are exponential in the worst
//! case). This crate wraps them in an [`EvalEngine`]:
//!
//! * **Fixed worker pool** (`std::thread` + channels, no external
//!   dependencies): submit a [`Job`] or a batch, get [`JobHandle`]s,
//!   `wait()` for [`Outcome`]s.
//! * **Single-flight memo cache**, sharded and keyed by stable 128-bit
//!   content fingerprints of queries and structures
//!   ([`bagcq_structure::Fingerprint`]): structurally equal jobs are
//!   computed once; concurrent duplicates join the in-flight computation
//!   instead of repeating it.
//! * **Deadlines and step budgets** via the cooperative
//!   [`bagcq_homcount::CancelToken`] machinery: a pathological count
//!   returns [`Outcome::TimedOut`] while unrelated jobs in the same batch
//!   complete normally.
//! * **Panic isolation**: evaluations run under `catch_unwind`, so a
//!   panicking job yields [`Outcome::Panicked`] without poisoning the
//!   pool.
//! * **Dual-engine cross-validation** ([`EngineConfig::cross_validate`]):
//!   every count is computed by both the naive backtracking engine and
//!   the treewidth DP and compared — the workspace-wide soundness story
//!   (two independent implementations of Section 2.1's `|Hom(ψ, D)|`)
//!   applied continuously instead of only in tests. A disagreement is a
//!   typed [`CountError::Mismatch`], never a silently wrong number.
//! * **Resilience**: transient failures (spurious cancellations, typed
//!   transient errors, panics) are retried under a [`RetryPolicy`] with
//!   exponential backoff and deterministic jitter; a treewidth evaluation
//!   that keeps failing or exhausts its step budget falls back to the
//!   naive engine once; per-job-kind circuit breakers ([`BreakerConfig`])
//!   fail fast ([`Outcome::FailedFast`]) when a kind keeps failing.
//! * **Deterministic fault injection** ([`FaultPlan`], [`FaultInjector`]):
//!   a seeded chaos harness threaded through every evaluation checkpoint,
//!   driving the chaos test suite's core property — under any fault
//!   schedule, completed outcomes are bit-identical to a clean run and
//!   the cache never stores a faulty result.
//! * **Overload-safe serving** ([`AdmissionConfig`]): submission passes
//!   through a bounded queue with a pluggable [`AdmissionPolicy`]
//!   (blocking backpressure, reject-newest, shed-expired-at-dequeue); a
//!   refused job resolves to a typed [`Outcome::Shed`] instead of
//!   hanging, vanishing, or growing the queue without bound.
//! * **Worker supervision** ([`SupervisorConfig`]): a supervisor thread
//!   reaps dead worker threads and restarts them within a capped,
//!   backoff-governed budget, requeueing the job a dead worker was
//!   holding; pool state is exposed as an [`EngineHealth`] machine
//!   (`Healthy → Degraded → Draining`).
//! * **Memory budgeting** ([`EngineConfig::memory_budget_bytes`]): the
//!   `Nat`-heavy counting loops debit an engine-wide byte account through
//!   `homcount`'s [`bagcq_homcount::MemoryGauge`] hook; an evaluation
//!   that would dwarf memory fails with a typed error instead of taking
//!   the process down.
//! * **Graceful drain** ([`EvalEngine::drain`]): stops admission,
//!   finishes or sheds in-flight work, runs registered flush hooks, and
//!   returns by a caller-supplied deadline with a [`DrainReport`] —
//!   every job resolves to exactly one outcome.
//! * **Crash-safe sweeps** ([`SweepJournal`]): experiment drivers commit
//!   each completed sweep point with an atomic write-temp-then-rename, so
//!   a killed sweep resumes where it stopped.
//! * **Persistent memo store** ([`MemoStore`],
//!   [`EngineConfig::store`]): completed counts are appended to
//!   disk-backed, CRC-framed segment files keyed by the same 128-bit
//!   fingerprints, and the memo cache reads through to them — a warm
//!   restart (or a sibling worker process sharing the directory) skips
//!   recomputation entirely. Recovery truncates torn tails, quarantines
//!   corrupt records ([`RecoveryReport`]), and compacts dead bytes.
//! * **Metrics**: atomic job/cache/resilience counters plus a log₂
//!   latency histogram, snapshot-able as text
//!   ([`MetricsSnapshot::render`]).
//!
//! [`CachedCounter`] exposes the cache/cross-validation layer as a plain
//! synchronous counter: [`CachedCounter::try_count`] returns a typed
//! [`CountError`], which plugs into
//! [`bagcq_containment::ContainmentChecker::try_check_with_counter`] —
//! that is how the `exp_*` binaries route their containment verdicts
//! through the engine.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod admission;
mod breaker;
mod budget;
mod cache;
mod engine;
mod fault;
mod job;
mod journal;
mod metrics;
mod retry;
mod store;
mod supervisor;
pub mod trace;

/// The process-global tracer this engine is instrumented with
/// (re-exported so drivers can enable/inspect it without a separate
/// dependency edge).
pub use bagcq_obs as obs;

pub use admission::{
    AdmissionConfig, AdmissionPolicy, TenantConnection, TenantCounters, TenantGate, TenantPermit,
    TenantQuota, TenantRefusal, TenantSpec,
};
/// The unified counting surface, re-exported from `bagcq-homcount` so
/// engine users name backends and counting errors without a separate
/// dependency edge: [`BackendChoice`] selects a kernel,
/// [`CountRequest`]/[`CountBackend`] are the direct (engine-less) API,
/// and [`CountError`] is the one error hierarchy the engine, the
/// containment checker, and the kernels all speak.
pub use bagcq_containment::{CheckRequest, CheckSpec, ContainmentChoice, Semantics, Verdict};
pub use bagcq_homcount::{BackendChoice, CountBackend, CountError, CountRequest};
pub use breaker::{BreakerConfig, FailFast};
pub use engine::{CachedCounter, DrainReport, EngineConfig, EvalEngine};
pub use fault::{FaultInjector, FaultKind, FaultPlan};
pub use job::{Job, JobHandle, JobSpec, Outcome, ShedReason};
pub use journal::SweepJournal;
pub use metrics::{Metrics, MetricsSnapshot, LATENCY_BUCKETS};
pub use retry::RetryPolicy;
pub use store::{MemoStore, RecoveryReport, StoreError, StoreOptions, StoreStats};
pub use supervisor::{EngineHealth, SupervisorConfig};
pub use trace::{TraceReport, TraceSession};
