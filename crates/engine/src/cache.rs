//! Sharded single-flight memo cache.
//!
//! Outcomes are keyed by the job's content [`Fingerprint`]. Each shard is
//! a plain `Mutex<HashMap>`; a slot is either `Ready` (a completed
//! outcome, cloned out to every later lookup) or `InFlight` (a
//! [`Flight`] rendezvous that later lookups join instead of duplicating
//! the computation — "single-flight" deduplication).
//!
//! The protocol:
//!
//! 1. [`MemoCache::begin`] classifies a lookup as [`Lookup::Hit`],
//!    [`Lookup::Join`], or [`Lookup::Lead`] and records the
//!    hit/miss/join counters.
//! 2. A **leader** computes the outcome and must call
//!    [`MemoCache::complete`] exactly once — even when the computation
//!    timed out or panicked — so joined waiters always wake up.
//!    Successful outcomes are cached as `Ready`; failures
//!    ([`Outcome::is_failure`]) are published to current waiters but the
//!    slot is evicted, so the next submission retries.
//! 3. A **joiner** blocks on [`Flight::wait`] bounded by its *own*
//!    deadline: a joiner with a tight deadline can time out while the
//!    leader (and more patient joiners) keep going.
//!
//! When a persistent [`MemoStore`] tier is attached
//! ([`MemoCache::with_store`]), a miss first **reads through** to disk —
//! a persisted outcome is promoted to a `Ready` slot and returned as a
//! hit — and a successful completion is **written behind** to the store
//! after the shard lock is released (store latency and store errors
//! never sit inside the shard critical section, and a store failure
//! never fails the job that produced the outcome).

use crate::job::Outcome;
use crate::metrics::Metrics;
use crate::store::MemoStore;
use bagcq_structure::Fingerprint;
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// Rendezvous for one in-flight computation.
#[derive(Debug, Default)]
pub(crate) struct Flight {
    done: Mutex<Option<Outcome>>,
    cond: Condvar,
}

impl Flight {
    /// Blocks until the leader publishes, or until `deadline`. Returns
    /// `None` iff the caller's deadline expired first.
    pub(crate) fn wait(&self, deadline: Option<Instant>) -> Option<Outcome> {
        let mut done = self.done.lock().unwrap();
        loop {
            if let Some(outcome) = done.as_ref() {
                return Some(outcome.clone());
            }
            match deadline {
                None => done = self.cond.wait(done).unwrap(),
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        return None;
                    }
                    let (guard, _timeout) = self.cond.wait_timeout(done, d - now).unwrap();
                    done = guard;
                }
            }
        }
    }

    fn publish(&self, outcome: Outcome) {
        let mut done = self.done.lock().unwrap();
        *done = Some(outcome);
        self.cond.notify_all();
    }
}

enum Slot {
    InFlight(Arc<Flight>),
    Ready(Outcome),
}

type Shard = Mutex<HashMap<Fingerprint, Slot>>;

/// What a [`MemoCache::begin`] lookup found.
pub(crate) enum Lookup {
    /// Cached outcome; use it directly.
    Hit(Outcome),
    /// Someone else is computing this key; wait on the flight.
    Join(Arc<Flight>),
    /// The caller is the leader: compute, then [`MemoCache::complete`]
    /// with this token.
    Lead(LeadToken),
}

/// Proof that the holder is the leader for `key`; must be redeemed with
/// [`MemoCache::complete`].
///
/// If the leader dies without redeeming (a panic unwinding through the
/// lead path — fault injection makes that routine), the token's `Drop`
/// evicts the in-flight slot and publishes [`Outcome::Panicked`] to every
/// joined waiter, so nobody waits forever on a flight with no leader.
pub(crate) struct LeadToken {
    key: Fingerprint,
    flight: Arc<Flight>,
    shard: Arc<Shard>,
    redeemed: bool,
}

/// The poison outcome a dropped (unredeemed) [`LeadToken`] publishes to
/// its joiners. Joiners match on this exact message and retry the lookup
/// instead of surfacing it: the slot was evicted, so one of them becomes
/// the new leader — a dead worker must not fail the jobs that merely
/// shared its flight.
pub(crate) const LEAD_DIED: &str = "cache leader died before completing";

impl Drop for LeadToken {
    fn drop(&mut self) {
        if self.redeemed {
            return;
        }
        {
            let mut shard = self.shard.lock().unwrap();
            // Only evict our own flight: a new leader may already hold the
            // key if this drop races a retry.
            if let Some(Slot::InFlight(f)) = shard.get(&self.key) {
                if Arc::ptr_eq(f, &self.flight) {
                    shard.remove(&self.key);
                }
            }
        }
        self.flight.publish(Outcome::Panicked(LEAD_DIED.to_string()));
    }
}

/// The sharded memo cache.
pub(crate) struct MemoCache {
    shards: Vec<Arc<Shard>>,
    metrics: Arc<Metrics>,
    store: Option<Arc<MemoStore>>,
}

impl MemoCache {
    pub(crate) fn new(shards: usize, metrics: Arc<Metrics>) -> Self {
        let shards = shards.max(1);
        MemoCache {
            shards: (0..shards).map(|_| Arc::new(Mutex::new(HashMap::new()))).collect(),
            metrics,
            store: None,
        }
    }

    /// Attaches a persistent read-through/write-behind tier.
    pub(crate) fn with_store(mut self, store: Option<Arc<MemoStore>>) -> Self {
        self.store = store;
        self
    }

    fn shard(&self, key: &Fingerprint) -> &Arc<Shard> {
        &self.shards[(key.lo as usize) % self.shards.len()]
    }

    /// Classifies a lookup and records hit/miss/join metrics.
    pub(crate) fn begin(&self, key: Fingerprint) -> Lookup {
        let mut shard = self.shard(&key).lock().unwrap();
        match shard.get(&key) {
            Some(Slot::Ready(outcome)) => {
                self.metrics.cache_hit();
                Lookup::Hit(outcome.clone())
            }
            Some(Slot::InFlight(flight)) => {
                self.metrics.single_flight_join();
                Lookup::Join(Arc::clone(flight))
            }
            None => {
                // Read through to the persistent tier before taking the
                // lead: a warm restart answers from disk and promotes the
                // outcome to a Ready slot.
                if let Some(outcome) = self.store.as_ref().and_then(|s| s.get(&key)) {
                    self.metrics.store_hit();
                    shard.insert(key, Slot::Ready(outcome.clone()));
                    return Lookup::Hit(outcome);
                }
                self.metrics.cache_miss();
                let flight = Arc::new(Flight::default());
                shard.insert(key, Slot::InFlight(Arc::clone(&flight)));
                Lookup::Lead(LeadToken {
                    key,
                    flight,
                    shard: Arc::clone(self.shard(&key)),
                    redeemed: false,
                })
            }
        }
    }

    /// Publishes the leader's outcome to every joined waiter and either
    /// caches it (`Ready`) or evicts the slot (failures are never
    /// cached).
    pub(crate) fn complete(&self, mut token: LeadToken, outcome: Outcome) {
        token.redeemed = true;
        {
            let mut shard = token.shard.lock().unwrap();
            if outcome.is_failure() {
                shard.remove(&token.key);
            } else {
                shard.insert(token.key, Slot::Ready(outcome.clone()));
            }
        }
        // Write behind outside the shard lock. A store error must not
        // fail the job — the outcome is correct, only its persistence is
        // lost — so it is logged as an instant and otherwise swallowed.
        if !outcome.is_failure() {
            if let Some(store) = &self.store {
                if store.put(token.key, &outcome).is_err() {
                    bagcq_obs::instant("engine.store", "put_error");
                }
            }
        }
        token.flight.publish(outcome);
    }

    /// Number of `Ready` entries across all shards (in-flight slots are
    /// not counted).
    pub(crate) fn ready_len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.lock().unwrap().values().filter(|slot| matches!(slot, Slot::Ready(_))).count()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bagcq_arith::Nat;
    use std::time::Duration;

    fn key(n: u64) -> Fingerprint {
        Fingerprint { hi: n.wrapping_mul(0x9E37_79B9_7F4A_7C15), lo: n }
    }

    fn cache() -> MemoCache {
        MemoCache::new(4, Arc::new(Metrics::new()))
    }

    #[test]
    fn lead_then_hit() {
        let c = cache();
        let token = match c.begin(key(1)) {
            Lookup::Lead(t) => t,
            _ => panic!("first lookup must lead"),
        };
        c.complete(token, Outcome::Count(Nat::from_u64(5)));
        match c.begin(key(1)) {
            Lookup::Hit(Outcome::Count(n)) => assert_eq!(n, Nat::from_u64(5)),
            _ => panic!("second lookup must hit"),
        }
        assert_eq!(c.ready_len(), 1);
    }

    #[test]
    fn joiner_woken_by_leader() {
        let c = Arc::new(cache());
        let token = match c.begin(key(2)) {
            Lookup::Lead(t) => t,
            _ => panic!("must lead"),
        };
        let flight = match c.begin(key(2)) {
            Lookup::Join(f) => f,
            _ => panic!("must join"),
        };
        let waiter = std::thread::spawn(move || flight.wait(None));
        c.complete(token, Outcome::Count(Nat::one()));
        let got = waiter.join().unwrap().expect("leader published");
        assert_eq!(got.as_count(), Some(&Nat::one()));
    }

    #[test]
    fn joiner_deadline_expires_independently() {
        let c = cache();
        let _token = match c.begin(key(3)) {
            Lookup::Lead(t) => t,
            _ => panic!("must lead"),
        };
        let flight = match c.begin(key(3)) {
            Lookup::Join(f) => f,
            _ => panic!("must join"),
        };
        // Leader never completes within our 20ms deadline.
        let got = flight.wait(Some(Instant::now() + Duration::from_millis(20)));
        assert!(got.is_none(), "joiner must observe its own deadline");
    }

    #[test]
    fn dropped_lead_token_wakes_joiners_and_evicts() {
        let c = cache();
        let token = match c.begin(key(9)) {
            Lookup::Lead(t) => t,
            _ => panic!("must lead"),
        };
        let flight = match c.begin(key(9)) {
            Lookup::Join(f) => f,
            _ => panic!("must join"),
        };
        // Leader "dies" (panic unwound past the lead path) without
        // completing: the joiner must wake with a failure, not hang.
        drop(token);
        match flight.wait(None) {
            Some(Outcome::Panicked(msg)) => assert!(msg.contains("leader died"), "{msg}"),
            other => panic!("expected Panicked, got {other:?}"),
        }
        assert_eq!(c.ready_len(), 0);
        // And the key is free for a retry to lead.
        assert!(matches!(c.begin(key(9)), Lookup::Lead(_)));
    }

    #[test]
    fn store_tier_reads_through_and_writes_behind() {
        let dir = std::env::temp_dir().join(format!("bagcq-cache-store-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = Arc::new(MemoStore::open(&dir).unwrap());
        let metrics = Arc::new(Metrics::new());
        {
            let c = MemoCache::new(4, Arc::clone(&metrics)).with_store(Some(Arc::clone(&store)));
            let token = match c.begin(key(7)) {
                Lookup::Lead(t) => t,
                _ => panic!("must lead"),
            };
            // Write-behind: completion lands in the store...
            c.complete(token, Outcome::Count(Nat::from_u64(77)));
            assert_eq!(store.get(&key(7)).unwrap().as_count(), Some(&Nat::from_u64(77)));
            // ...but failures never do.
            let token = match c.begin(key(8)) {
                Lookup::Lead(t) => t,
                _ => panic!("must lead"),
            };
            c.complete(token, Outcome::TimedOut);
            assert!(store.get(&key(8)).is_none());
        }
        // A fresh cache over the same store: the miss reads through.
        let c = MemoCache::new(4, Arc::clone(&metrics)).with_store(Some(store));
        match c.begin(key(7)) {
            Lookup::Hit(Outcome::Count(n)) => assert_eq!(n, Nat::from_u64(77)),
            _ => panic!("store-backed lookup must hit"),
        }
        assert_eq!(metrics.snapshot().store_hits, 1);
        // The read-through promoted the entry to a Ready slot.
        assert_eq!(c.ready_len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failures_are_published_but_not_cached() {
        let c = cache();
        let token = match c.begin(key(4)) {
            Lookup::Lead(t) => t,
            _ => panic!("must lead"),
        };
        let flight = match c.begin(key(4)) {
            Lookup::Join(f) => f,
            _ => panic!("must join"),
        };
        c.complete(token, Outcome::TimedOut);
        assert!(matches!(flight.wait(None), Some(Outcome::TimedOut)));
        assert_eq!(c.ready_len(), 0);
        // Next lookup retries from scratch.
        assert!(matches!(c.begin(key(4)), Lookup::Lead(_)));
    }
}
