//! Crash-safe checkpoint journals for long experiment sweeps.
//!
//! A [`SweepJournal`] persists the per-point results of a sweep so that a
//! killed run (crash, OOM, ctrl-C, batch-queue preemption) resumes where
//! it stopped instead of recomputing days of work. The format is an
//! append-only list of `key<TAB>value` records under a header naming the
//! sweep; a record is *committed* by rewriting the whole state to a
//! sibling `*.tmp` file and atomically renaming it over the journal, so a
//! crash at any instant leaves either the old state or the new state on
//! disk — never a torn file.
//!
//! Whole-file rewrite keeps the commit path trivially crash-safe without
//! `fsync` bookkeeping or a framing format; sweeps here are thousands of
//! points, not millions, and each point costs orders of magnitude more
//! than the rewrite.
//!
//! Keys and values are sweep-defined opaque strings (no tabs/newlines);
//! [`SweepJournal::finish`] deletes the journal after a fully completed
//! sweep so the next run starts fresh rather than trusting stale results.

use std::collections::BTreeMap;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

const HEADER_PREFIX: &str = "# bagcq-sweep-journal v1 ";

/// An on-disk, atomically updated map from sweep-point keys to results.
#[derive(Debug)]
pub struct SweepJournal {
    path: PathBuf,
    name: String,
    entries: BTreeMap<String, String>,
    /// Entries recovered from disk at open time (i.e. completed by a
    /// previous run of this sweep).
    resumed: usize,
}

impl SweepJournal {
    /// Opens (or creates) the journal for sweep `name` at `path`,
    /// recovering any previously committed entries.
    ///
    /// Fails if the file exists but belongs to a different sweep or is
    /// not a journal — resuming against the wrong state silently corrupts
    /// a sweep, so that is a hard error, not a fresh start.
    ///
    /// A sibling `*.tmp` left by a crash between write and rename is
    /// removed here: its contents are by definition uncommitted (the
    /// rename is the commit point), and leaving it around would make the
    /// next commit's `File::create` clobber an unexplained file.
    pub fn open(path: impl Into<PathBuf>, name: &str) -> Result<Self, String> {
        assert!(
            !name.contains('\n') && !name.contains('\t'),
            "journal names must not contain tabs or newlines"
        );
        let path = path.into();
        let orphan = path.with_extension("tmp");
        match fs::remove_file(&orphan) {
            Ok(()) => bagcq_obs::instant("journal.open", "removed_orphan_tmp"),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(format!("{}: removing orphaned tmp: {e}", orphan.display())),
        }
        let mut entries = BTreeMap::new();
        let mut resumed = 0;
        match fs::read_to_string(&path) {
            Ok(text) => {
                let mut lines = text.lines();
                let header = lines.next().unwrap_or("");
                let found = header.strip_prefix(HEADER_PREFIX).ok_or_else(|| {
                    format!("{}: not a bagcq sweep journal (header {header:?})", path.display())
                })?;
                if found != name {
                    return Err(format!(
                        "{}: journal belongs to sweep {found:?}, not {name:?}",
                        path.display()
                    ));
                }
                for line in lines {
                    if line.is_empty() {
                        continue;
                    }
                    let (k, v) = line.split_once('\t').ok_or_else(|| {
                        format!("{}: malformed journal line {line:?}", path.display())
                    })?;
                    entries.insert(k.to_string(), v.to_string());
                }
                resumed = entries.len();
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(format!("{}: {e}", path.display())),
        }
        Ok(SweepJournal { path, name: name.to_string(), entries, resumed })
    }

    /// Whether `key` was already committed (by this run or a previous one).
    pub fn contains(&self, key: &str) -> bool {
        self.entries.contains_key(key)
    }

    /// The committed value for `key`, if any.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.entries.get(key).map(String::as_str)
    }

    /// Commits `key = value` durably: the entry is on disk (or the whole
    /// commit never happened) once this returns `Ok`.
    pub fn record(&mut self, key: &str, value: &str) -> Result<(), String> {
        assert!(
            !key.contains('\n') && !key.contains('\t'),
            "journal keys must not contain tabs or newlines"
        );
        assert!(!value.contains('\n'), "journal values must not contain newlines");
        self.entries.insert(key.to_string(), value.to_string());
        self.flush()
    }

    fn flush(&self) -> Result<(), String> {
        if let Some(dir) = self.path.parent() {
            if !dir.as_os_str().is_empty() {
                fs::create_dir_all(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
            }
        }
        let tmp = self.path.with_extension("tmp");
        let mut buf = String::with_capacity(64 + self.entries.len() * 32);
        buf.push_str(HEADER_PREFIX);
        buf.push_str(&self.name);
        buf.push('\n');
        for (k, v) in &self.entries {
            buf.push_str(k);
            buf.push('\t');
            buf.push_str(v);
            buf.push('\n');
        }
        let write = || -> std::io::Result<()> {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(buf.as_bytes())?;
            f.sync_all()?;
            fs::rename(&tmp, &self.path)
        };
        write().map_err(|e| format!("{}: {e}", self.path.display()))
    }

    /// Entries recovered from a previous run at open time.
    pub fn resumed_entries(&self) -> usize {
        self.resumed
    }

    /// Total committed entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the journal has no committed entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The journal's on-disk path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Removes the journal file after a fully completed sweep, so reruns
    /// recompute (and re-verify) rather than replaying stale results.
    pub fn finish(self) -> Result<(), String> {
        match fs::remove_file(&self.path) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(format!("{}: {e}", self.path.display())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("bagcq-journal-{tag}-{}.journal", std::process::id()));
        let _ = fs::remove_file(&p);
        p
    }

    #[test]
    fn records_survive_reopen() {
        let path = temp_path("reopen");
        {
            let mut j = SweepJournal::open(&path, "sweep-a").unwrap();
            assert_eq!(j.resumed_entries(), 0);
            j.record("point-1", "ok:3").unwrap();
            j.record("point-2", "ok:5").unwrap();
        }
        let j = SweepJournal::open(&path, "sweep-a").unwrap();
        assert_eq!(j.resumed_entries(), 2);
        assert_eq!(j.get("point-1"), Some("ok:3"));
        assert_eq!(j.get("point-2"), Some("ok:5"));
        assert!(!j.contains("point-3"));
        j.finish().unwrap();
        assert!(!path.exists());
    }

    #[test]
    fn rewriting_a_key_keeps_latest_value() {
        let path = temp_path("rewrite");
        let mut j = SweepJournal::open(&path, "s").unwrap();
        j.record("k", "v1").unwrap();
        j.record("k", "v2").unwrap();
        assert_eq!(j.len(), 1);
        drop(j);
        let j = SweepJournal::open(&path, "s").unwrap();
        assert_eq!(j.get("k"), Some("v2"));
        j.finish().unwrap();
    }

    #[test]
    fn wrong_sweep_name_is_rejected() {
        let path = temp_path("wrong-name");
        SweepJournal::open(&path, "alpha").unwrap().record("k", "v").unwrap();
        let err = SweepJournal::open(&path, "beta").unwrap_err();
        assert!(err.contains("alpha"), "error should name the conflicting sweep: {err}");
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn non_journal_file_is_rejected() {
        let path = temp_path("garbage");
        fs::write(&path, "this is not a journal\n").unwrap();
        assert!(SweepJournal::open(&path, "s").is_err());
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn torn_tmp_file_does_not_corrupt_state() {
        let path = temp_path("torn");
        let mut j = SweepJournal::open(&path, "s").unwrap();
        j.record("committed", "yes").unwrap();
        drop(j);
        // Simulate a crash mid-write: a half-written tmp file next to the
        // journal must not affect recovery, and open() must clean it up
        // (uncommitted by definition — the rename is the commit point).
        fs::write(path.with_extension("tmp"), "# bagcq-sweep-journal v1 s\ncommitted\tno").unwrap();
        let j = SweepJournal::open(&path, "s").unwrap();
        assert_eq!(j.get("committed"), Some("yes"));
        assert!(
            !path.with_extension("tmp").exists(),
            "open() must remove the orphaned tmp sibling"
        );
        j.finish().unwrap();
    }

    #[test]
    fn orphan_tmp_without_journal_is_removed_and_sweep_starts_fresh() {
        let path = temp_path("orphan-only");
        // Crash before the *first* commit's rename: only the tmp exists.
        fs::write(path.with_extension("tmp"), "# bagcq-sweep-journal v1 s\np\tok:1\n").unwrap();
        let j = SweepJournal::open(&path, "s").unwrap();
        assert!(j.is_empty(), "uncommitted tmp state must not be resumed");
        assert!(!path.with_extension("tmp").exists());
        j.finish().unwrap();
    }
}
