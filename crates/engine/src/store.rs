//! Crash-safe persistent memo store.
//!
//! A [`MemoStore`] is the disk tier under the in-memory
//! [`MemoCache`](crate::cache): completed [`Outcome::Count`]s are appended
//! to fingerprint-keyed, checksummed, append-only **segment files**, so a
//! warm restart answers previously computed counts from disk instead of
//! recomputing them. Raw counts are the expensive primitive of the whole
//! workspace — power evaluations and containment refutations are
//! compositions of cached counts — so persisting counts alone makes every
//! job kind warm-restartable without serializing enclosure state
//! (`Magnitude`) or certificates (`Verdict`).
//!
//! # On-disk format (see `DESIGN.md` §9)
//!
//! A store is a directory of segment files named `{writer}-{seq:010}.seg`:
//!
//! ```text
//! segment   := magic record*
//! magic     := "bagcq-store-v1\n\0"                       (16 bytes)
//! record    := len:u32le crc:u32le payload                (len = |payload|)
//! payload   := key_hi:u64le key_lo:u64le tag:u8 value
//! value     := n_limbs:u32le limb:u64le*                  (tag 0 = Count)
//! ```
//!
//! `crc` is CRC-32 (IEEE) over the payload. The format is append-only:
//! a key is rewritten by appending a newer record; recovery keeps the
//! last record read for a key (segments are replayed in sequence order).
//!
//! # Recovery discipline
//!
//! Opening a store replays every segment with three typed degradation
//! levels — never a panic, and never a wrong count:
//!
//! * **Torn tail** — the file ends mid-record (a writer died mid-append,
//!   e.g. `kill -9`). The tail is unreadable by construction; an
//!   exclusive open *truncates* it so the file is byte-clean again, a
//!   shared/read-only open just stops there. Counted in
//!   [`RecoveryReport::truncated_bytes`].
//! * **Quarantined record** — framing is intact but the CRC does not
//!   match (bit rot, torn sector). The record is skipped and counted in
//!   [`RecoveryReport::quarantined_records`]; the key is simply absent
//!   and will be recomputed.
//! * **Quarantined bytes** — framing itself is implausible (corrupted
//!   length, foreign file contents). Everything from the bad offset to
//!   the end of that segment is skipped and counted in
//!   [`RecoveryReport::quarantined_bytes`]; re-synchronizing inside a
//!   corrupted region risks mistaking garbage for a record, and a wrong
//!   count is strictly worse than a recomputation.
//!
//! # Write-behind and durability
//!
//! [`MemoStore::put`] appends into a buffered writer; the buffer is
//! flushed to the OS every [`StoreOptions::flush_every`] records, on
//! [`MemoStore::flush`] (the engine drain calls it), and on drop. A crash
//! can therefore lose at most the last unflushed handful of records —
//! each of which is merely a memo and is recomputed on demand. Records
//! never reach the file partially interleaved (single `write_all` per
//! flush into one file owned by one writer), so the only partial state a
//! crash can leave is the torn tail the recovery path truncates.
//!
//! # Sharing
//!
//! Concurrent *processes* share a store directory by each appending to
//! segments under their own writer tag ([`MemoStore::open_shared`]);
//! sequence numbers are allocated above every existing segment, so a
//! restarted writer never collides with its own dead files. Shared
//! opens never truncate or compact (another live writer may own the
//! file); the single-writer coordinator opens the store exclusively
//! ([`MemoStore::open`]) and performs hygiene — torn-tail truncation and
//! dead-record compaction — at open time.

use crate::job::Outcome;
use bagcq_arith::Nat;
use bagcq_obs as obs;
use bagcq_structure::Fingerprint;
use std::collections::HashMap;
use std::fmt;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// First bytes of every segment file.
const SEGMENT_MAGIC: &[u8; 16] = b"bagcq-store-v1\n\0";

/// Sanity cap on one record's payload; anything larger is treated as a
/// corrupted length. Counts in this workspace are at most a few thousand
/// limbs — 4 MiB is orders of magnitude of headroom.
const MAX_RECORD_BYTES: u32 = 4 << 20;

/// Record tag for [`Outcome::Count`] values.
const TAG_COUNT: u8 = 0;

/// CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`).
const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

fn crc32(bytes: &[u8]) -> u32 {
    !bytes.iter().fold(!0u32, |c, &b| (c >> 8) ^ CRC_TABLE[((c ^ b as u32) & 0xFF) as usize])
}

/// A typed store failure. Per-record corruption is *not* an error — it is
/// absorbed into the [`RecoveryReport`] quarantine counters — so this
/// only surfaces for problems the store cannot degrade around.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StoreError {
    /// An I/O operation failed; the payload names the path and the OS
    /// error.
    Io(String),
    /// The target path exists but is not a directory.
    NotADirectory(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(msg) => write!(f, "store I/O error: {msg}"),
            StoreError::NotADirectory(path) => {
                write!(f, "store path {path} exists but is not a directory")
            }
        }
    }
}

impl std::error::Error for StoreError {}

/// What recovery found (and did) while replaying a store's segments.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Segment files replayed.
    pub segments: usize,
    /// Records whose key survived into the live index.
    pub records_live: usize,
    /// Valid records superseded by a later record for the same key.
    pub records_superseded: usize,
    /// Records skipped because their CRC did not match (bit rot); the
    /// keys are recomputed on demand.
    pub quarantined_records: usize,
    /// Bytes skipped because framing was implausible (corrupted length
    /// field, non-segment file contents).
    pub quarantined_bytes: u64,
    /// Torn-tail bytes found mid-record at end of segment (truncated on
    /// an exclusive open, skipped on a shared one).
    pub truncated_bytes: u64,
    /// Whether open-time compaction rewrote the store.
    pub compacted: bool,
}

impl RecoveryReport {
    /// `true` when recovery saw no corruption of any kind.
    pub fn is_clean(&self) -> bool {
        self.quarantined_records == 0 && self.quarantined_bytes == 0 && self.truncated_bytes == 0
    }
}

impl fmt::Display for RecoveryReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "segments={} live={} superseded={} quarantined_records={} quarantined_bytes={} \
             truncated_bytes={} compacted={}",
            self.segments,
            self.records_live,
            self.records_superseded,
            self.quarantined_records,
            self.quarantined_bytes,
            self.truncated_bytes,
            self.compacted
        )
    }
}

/// Point-in-time store counters (surfaced through
/// [`MetricsSnapshot::store`](crate::MetricsSnapshot)).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Live records in the index.
    pub records: u64,
    /// Segment files on disk (including the open one).
    pub segments: u64,
    /// Records appended by this handle since open.
    pub appends: u64,
    /// Lookups answered from the index since open (the cache tier counts
    /// its own read-through hits separately).
    pub lookups_hit: u64,
    /// Compactions performed (open-time and explicit).
    pub compactions: u64,
    /// Records quarantined at open time.
    pub quarantined_records: u64,
    /// Bytes quarantined or truncated at open time.
    pub quarantined_bytes: u64,
}

/// Tuning knobs for a [`MemoStore`].
#[derive(Clone, Debug)]
pub struct StoreOptions {
    /// Appended records buffered before an automatic flush to the OS
    /// (`0` = flush every append). A crash loses at most this many memos.
    pub flush_every: u32,
    /// Bytes after which the current segment is sealed and a new one is
    /// started.
    pub max_segment_bytes: u64,
    /// On an exclusive open: compact when superseded + quarantined bytes
    /// exceed this fraction of total bytes.
    pub compact_dead_ratio: f64,
    /// Whether an exclusive open may compact at all.
    pub compact_on_open: bool,
}

impl Default for StoreOptions {
    fn default() -> Self {
        StoreOptions {
            flush_every: 32,
            max_segment_bytes: 8 << 20,
            compact_dead_ratio: 0.3,
            compact_on_open: true,
        }
    }
}

/// The deserialized value of a live record.
#[derive(Clone, Debug, PartialEq, Eq)]
enum StoredValue {
    Count(Nat),
}

impl StoredValue {
    fn to_outcome(&self) -> Outcome {
        match self {
            StoredValue::Count(n) => Outcome::Count(n.clone()),
        }
    }

    fn from_outcome(outcome: &Outcome) -> Option<StoredValue> {
        match outcome {
            Outcome::Count(n) => Some(StoredValue::Count(n.clone())),
            _ => None,
        }
    }
}

/// An open segment being appended to.
struct SegmentWriter {
    file: fs::File,
    path: PathBuf,
    bytes: u64,
    buffer: Vec<u8>,
}

struct Inner {
    index: HashMap<Fingerprint, StoredValue>,
    writer: Option<SegmentWriter>,
    next_seq: u64,
    pending: u32,
    recovery: RecoveryReport,
    /// Approximate bytes of superseded/quarantined data on disk, for the
    /// compaction trigger.
    dead_bytes: u64,
    live_bytes: u64,
    segments_on_disk: u64,
}

/// A disk-backed, fingerprint-keyed outcome store. See the module docs
/// for the format and recovery discipline.
pub struct MemoStore {
    dir: PathBuf,
    writer_tag: String,
    exclusive: bool,
    options: StoreOptions,
    inner: Mutex<Inner>,
    appends: AtomicU64,
    lookups_hit: AtomicU64,
    compactions: AtomicU64,
}

impl fmt::Debug for MemoStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MemoStore")
            .field("dir", &self.dir)
            .field("writer_tag", &self.writer_tag)
            .field("exclusive", &self.exclusive)
            .finish_non_exhaustive()
    }
}

fn io_err(path: &Path, e: std::io::Error) -> StoreError {
    StoreError::Io(format!("{}: {e}", path.display()))
}

/// One segment's replay result.
struct SegmentScan {
    records: Vec<(Fingerprint, StoredValue)>,
    live_bytes: u64,
    quarantined_records: usize,
    quarantined_bytes: u64,
    /// Offset of the torn tail, if the file ends mid-record.
    torn_at: Option<u64>,
}

/// Replays one segment file's bytes. Pure: no filesystem effects.
fn scan_segment(bytes: &[u8]) -> SegmentScan {
    let mut scan = SegmentScan {
        records: Vec::new(),
        live_bytes: 0,
        quarantined_records: 0,
        quarantined_bytes: 0,
        torn_at: None,
    };
    if bytes.len() < SEGMENT_MAGIC.len() || &bytes[..SEGMENT_MAGIC.len()] != SEGMENT_MAGIC {
        // Not a segment at all (or a file created and killed before the
        // magic landed): quarantine everything.
        if bytes.is_empty() {
            scan.torn_at = Some(0);
        } else {
            scan.quarantined_bytes = bytes.len() as u64;
        }
        return scan;
    }
    let mut offset = SEGMENT_MAGIC.len();
    loop {
        let remaining = bytes.len() - offset;
        if remaining == 0 {
            return scan;
        }
        if remaining < 8 {
            // Torn mid-header.
            scan.torn_at = Some(offset as u64);
            return scan;
        }
        let len = u32::from_le_bytes(bytes[offset..offset + 4].try_into().unwrap());
        let crc = u32::from_le_bytes(bytes[offset + 4..offset + 8].try_into().unwrap());
        if len > MAX_RECORD_BYTES {
            // A corrupted length: no way to find the next frame safely.
            scan.quarantined_bytes += remaining as u64;
            return scan;
        }
        if (len as usize) > remaining - 8 {
            // The payload runs past EOF: a torn tail.
            scan.torn_at = Some(offset as u64);
            return scan;
        }
        let payload = &bytes[offset + 8..offset + 8 + len as usize];
        let record_bytes = 8 + len as u64;
        offset += record_bytes as usize;
        if crc32(payload) != crc {
            scan.quarantined_records += 1;
            scan.quarantined_bytes += record_bytes;
            continue;
        }
        match decode_payload(payload) {
            Some((key, value)) => {
                scan.live_bytes += record_bytes;
                scan.records.push((key, value));
            }
            None => {
                // CRC-valid but undecodable (unknown tag / malformed
                // value): quarantine rather than guess.
                scan.quarantined_records += 1;
                scan.quarantined_bytes += record_bytes;
            }
        }
    }
}

fn decode_payload(payload: &[u8]) -> Option<(Fingerprint, StoredValue)> {
    if payload.len() < 17 {
        return None;
    }
    let hi = u64::from_le_bytes(payload[0..8].try_into().unwrap());
    let lo = u64::from_le_bytes(payload[8..16].try_into().unwrap());
    let key = Fingerprint { hi, lo };
    let tag = payload[16];
    let value = &payload[17..];
    match tag {
        TAG_COUNT => {
            if value.len() < 4 {
                return None;
            }
            let n_limbs = u32::from_le_bytes(value[0..4].try_into().unwrap()) as usize;
            if value.len() != 4 + n_limbs * 8 {
                return None;
            }
            let limbs = (0..n_limbs)
                .map(|i| u64::from_le_bytes(value[4 + i * 8..12 + i * 8].try_into().unwrap()))
                .collect();
            Some((key, StoredValue::Count(Nat::from_limbs(limbs))))
        }
        _ => None,
    }
}

fn encode_record(key: &Fingerprint, value: &StoredValue) -> Vec<u8> {
    let StoredValue::Count(n) = value;
    let limbs = n.limbs();
    let mut payload = Vec::with_capacity(21 + limbs.len() * 8);
    payload.extend_from_slice(&key.hi.to_le_bytes());
    payload.extend_from_slice(&key.lo.to_le_bytes());
    payload.push(TAG_COUNT);
    payload.extend_from_slice(&(limbs.len() as u32).to_le_bytes());
    for &l in limbs {
        payload.extend_from_slice(&l.to_le_bytes());
    }
    let mut record = Vec::with_capacity(8 + payload.len());
    record.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    record.extend_from_slice(&crc32(&payload).to_le_bytes());
    record.extend_from_slice(&payload);
    record
}

/// Segment files in replay order (ascending sequence number; ties broken
/// by name so the order is total and stable).
fn list_segments(dir: &Path) -> Result<Vec<(u64, PathBuf)>, StoreError> {
    let mut segments = Vec::new();
    let entries = match fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(segments),
        Err(e) => return Err(io_err(dir, e)),
    };
    for entry in entries {
        let entry = entry.map_err(|e| io_err(dir, e))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if !name.ends_with(".seg") {
            continue;
        }
        // `{writer}-{seq:010}.seg`; unparseable names sort as seq 0.
        let seq = name
            .strip_suffix(".seg")
            .and_then(|stem| stem.rsplit_once('-'))
            .and_then(|(_, seq)| seq.parse::<u64>().ok())
            .unwrap_or(0);
        segments.push((seq, path));
    }
    segments.sort();
    Ok(segments)
}

impl MemoStore {
    /// Opens (or creates) the store at `dir` as its **exclusive** writer:
    /// torn tails are truncated, and the store is compacted when enough
    /// dead bytes accumulated ([`StoreOptions::compact_dead_ratio`]).
    ///
    /// Exclusivity is a caller discipline, not a lock — a lock file would
    /// survive `kill -9` and block exactly the restart this store exists
    /// to serve.
    pub fn open(dir: impl Into<PathBuf>) -> Result<MemoStore, StoreError> {
        MemoStore::open_with(dir, "main", true, StoreOptions::default())
    }

    /// Opens the store at `dir` with explicit options (exclusive).
    pub fn open_opts(
        dir: impl Into<PathBuf>,
        options: StoreOptions,
    ) -> Result<MemoStore, StoreError> {
        MemoStore::open_with(dir, "main", true, options)
    }

    /// Opens the store as one of several concurrent writer processes.
    /// `writer_tag` names this writer's segment files and must be unique
    /// among *live* writers (a restarted writer may reuse its tag).
    /// Shared opens never truncate or compact another writer's files.
    pub fn open_shared(dir: impl Into<PathBuf>, writer_tag: &str) -> Result<MemoStore, StoreError> {
        MemoStore::open_with(dir, writer_tag, false, StoreOptions::default())
    }

    fn open_with(
        dir: impl Into<PathBuf>,
        writer_tag: &str,
        exclusive: bool,
        options: StoreOptions,
    ) -> Result<MemoStore, StoreError> {
        assert!(
            !writer_tag.is_empty()
                && writer_tag.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.'),
            "writer tags must be non-empty and [A-Za-z0-9_.] (got {writer_tag:?})"
        );
        let dir = dir.into();
        let _span = obs::span("store.open", if exclusive { "exclusive" } else { "shared" });
        if dir.exists() && !dir.is_dir() {
            return Err(StoreError::NotADirectory(dir.display().to_string()));
        }
        fs::create_dir_all(&dir).map_err(|e| io_err(&dir, e))?;
        let (inner, needs_compaction) = MemoStore::recover(&dir, exclusive, &options)?;
        let store = MemoStore {
            dir,
            writer_tag: writer_tag.to_string(),
            exclusive,
            options,
            inner: Mutex::new(inner),
            appends: AtomicU64::new(0),
            lookups_hit: AtomicU64::new(0),
            compactions: AtomicU64::new(0),
        };
        if needs_compaction {
            store.compact()?;
            store.lock().recovery.compacted = true;
        }
        Ok(store)
    }

    /// Read-only integrity scan of the store at `dir`: replays every
    /// segment and reports what recovery *would* find, without
    /// truncating, compacting, or writing anything.
    pub fn verify(dir: impl AsRef<Path>) -> Result<RecoveryReport, StoreError> {
        let dir = dir.as_ref();
        if !dir.exists() {
            return Err(StoreError::Io(format!("{}: no such directory", dir.display())));
        }
        if !dir.is_dir() {
            return Err(StoreError::NotADirectory(dir.display().to_string()));
        }
        let (inner, _) = MemoStore::recover(
            dir,
            false,
            &StoreOptions { compact_on_open: false, ..Default::default() },
        )?;
        Ok(inner.recovery)
    }

    fn recover(
        dir: &Path,
        exclusive: bool,
        options: &StoreOptions,
    ) -> Result<(Inner, bool), StoreError> {
        let mut report = RecoveryReport::default();
        let mut index: HashMap<Fingerprint, StoredValue> = HashMap::new();
        let mut dead_bytes = 0u64;
        let mut live_bytes = 0u64;
        let mut next_seq = 0u64;
        let segments = list_segments(dir)?;
        report.segments = segments.len();
        for (seq, path) in &segments {
            next_seq = next_seq.max(seq + 1);
            let bytes = fs::read(path).map_err(|e| io_err(path, e))?;
            let scan = scan_segment(&bytes);
            report.quarantined_records += scan.quarantined_records;
            report.quarantined_bytes += scan.quarantined_bytes;
            dead_bytes += scan.quarantined_bytes;
            live_bytes += scan.live_bytes;
            for (key, value) in scan.records {
                if let Some(old) = index.insert(key, value) {
                    let _ = old;
                    report.records_superseded += 1;
                    // Approximation: superseded records cost about as much
                    // as their replacement; good enough for a trigger.
                    dead_bytes += 32;
                }
            }
            if let Some(torn_at) = scan.torn_at {
                let torn = bytes.len() as u64 - torn_at;
                report.truncated_bytes += torn;
                if exclusive {
                    obs::instant("store.recover", "truncate_torn_tail");
                    // Restore the segment to a byte-clean prefix; an
                    // empty prefix (no magic landed) is just removed.
                    if torn_at < SEGMENT_MAGIC.len() as u64 {
                        fs::remove_file(path).map_err(|e| io_err(path, e))?;
                    } else {
                        let f = fs::OpenOptions::new()
                            .write(true)
                            .open(path)
                            .map_err(|e| io_err(path, e))?;
                        f.set_len(torn_at).map_err(|e| io_err(path, e))?;
                        f.sync_all().map_err(|e| io_err(path, e))?;
                    }
                } else {
                    dead_bytes += torn;
                }
            }
        }
        report.records_live = index.len();
        if report.quarantined_records > 0 || report.quarantined_bytes > 0 {
            obs::instant("store.recover", "quarantine");
        }
        let total = live_bytes + dead_bytes;
        let needs_compaction = exclusive
            && options.compact_on_open
            && total > 0
            && (dead_bytes as f64) / (total as f64) > options.compact_dead_ratio;
        let inner = Inner {
            index,
            writer: None,
            next_seq,
            pending: 0,
            recovery: report,
            dead_bytes,
            live_bytes,
            segments_on_disk: segments.len() as u64,
        };
        Ok((inner, needs_compaction))
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// What recovery found at open time.
    pub fn recovery(&self) -> RecoveryReport {
        self.lock().recovery.clone()
    }

    /// Live records in the index.
    pub fn len(&self) -> usize {
        self.lock().index.len()
    }

    /// Whether the index has no live records.
    pub fn is_empty(&self) -> bool {
        self.lock().index.is_empty()
    }

    /// Whether `key` has a persisted outcome.
    pub fn contains(&self, key: &Fingerprint) -> bool {
        self.lock().index.contains_key(key)
    }

    /// The persisted outcome for `key`, if any.
    pub fn get(&self, key: &Fingerprint) -> Option<Outcome> {
        let outcome = self.lock().index.get(key).map(StoredValue::to_outcome);
        if outcome.is_some() {
            self.lookups_hit.fetch_add(1, Ordering::Relaxed);
        }
        outcome
    }

    /// Persists `outcome` under `key`. Returns `Ok(true)` when a record
    /// was appended, `Ok(false)` when the outcome kind is not persisted
    /// (only counts are) or an identical record already exists.
    pub fn put(&self, key: Fingerprint, outcome: &Outcome) -> Result<bool, StoreError> {
        let Some(value) = StoredValue::from_outcome(outcome) else {
            return Ok(false);
        };
        let mut inner = self.lock();
        if inner.index.get(&key) == Some(&value) {
            return Ok(false);
        }
        let record = encode_record(&key, &value);
        self.append_record(&mut inner, &record)?;
        if inner.index.insert(key, value).is_some() {
            inner.dead_bytes += 32;
        }
        inner.live_bytes += record.len() as u64;
        self.appends.fetch_add(1, Ordering::Relaxed);
        Ok(true)
    }

    fn append_record(&self, inner: &mut Inner, record: &[u8]) -> Result<(), StoreError> {
        if inner
            .writer
            .as_ref()
            .is_some_and(|w| w.bytes + w.buffer.len() as u64 >= self.options.max_segment_bytes)
        {
            self.flush_writer(inner)?;
            inner.writer = None;
            obs::instant("store.segment", "rotate");
        }
        if inner.writer.is_none() {
            let seq = inner.next_seq;
            inner.next_seq += 1;
            let path = self.dir.join(format!("{}-{seq:010}.seg", self.writer_tag));
            let file = fs::OpenOptions::new()
                .create_new(true)
                .write(true)
                .open(&path)
                .map_err(|e| io_err(&path, e))?;
            inner.segments_on_disk += 1;
            inner.writer =
                Some(SegmentWriter { file, path, bytes: 0, buffer: SEGMENT_MAGIC.to_vec() });
        }
        let writer = inner.writer.as_mut().expect("writer just ensured");
        writer.buffer.extend_from_slice(record);
        inner.pending += 1;
        if inner.pending > self.options.flush_every {
            self.flush_writer(inner)?;
        }
        Ok(())
    }

    fn flush_writer(&self, inner: &mut Inner) -> Result<(), StoreError> {
        if let Some(writer) = inner.writer.as_mut() {
            if !writer.buffer.is_empty() {
                writer.file.write_all(&writer.buffer).map_err(|e| io_err(&writer.path, e))?;
                writer.bytes += writer.buffer.len() as u64;
                writer.buffer.clear();
            }
        }
        inner.pending = 0;
        Ok(())
    }

    /// Flushes buffered appends to the OS (write-behind boundary). The
    /// engine's drain and the store's drop both call this.
    pub fn flush(&self) -> Result<(), StoreError> {
        let mut inner = self.lock();
        self.flush_writer(&mut inner)
    }

    /// Flushes and `fsync`s the current segment — full durability, used
    /// by the sweep coordinator after committing a point result.
    pub fn sync(&self) -> Result<(), StoreError> {
        let mut inner = self.lock();
        self.flush_writer(&mut inner)?;
        if let Some(writer) = inner.writer.as_ref() {
            writer.file.sync_all().map_err(|e| io_err(&writer.path, e))?;
        }
        Ok(())
    }

    /// Rewrites every live record into one fresh segment and removes the
    /// old files — the write-temp-rename journal discipline applied to
    /// segments. A crash mid-compaction leaves either the old segments,
    /// or the new one plus not-yet-deleted old ones (whose records are
    /// identical and harmlessly superseded on the next replay).
    ///
    /// Callable only on an exclusive store; a shared writer returns
    /// without touching files it may not own.
    pub fn compact(&self) -> Result<bool, StoreError> {
        if !self.exclusive {
            return Ok(false);
        }
        let _span = obs::span("store.compact", "compact");
        let mut inner = self.lock();
        self.flush_writer(&mut inner)?;
        inner.writer = None;
        let seq = inner.next_seq;
        inner.next_seq += 1;
        let dest = self.dir.join(format!("{}-{seq:010}.seg", self.writer_tag));
        let tmp = dest.with_extension("seg.tmp");
        let mut buffer = SEGMENT_MAGIC.to_vec();
        let mut keys: Vec<&Fingerprint> = inner.index.keys().collect();
        // Deterministic on-disk order, so equal stores compact to equal
        // bytes regardless of hash-map iteration order.
        keys.sort_by_key(|k| (k.hi, k.lo));
        for key in keys {
            let value = &inner.index[key];
            buffer.extend_from_slice(&encode_record(key, value));
        }
        let write = || -> std::io::Result<()> {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(&buffer)?;
            f.sync_all()?;
            fs::rename(&tmp, &dest)
        };
        write().map_err(|e| io_err(&dest, e))?;
        for (_, path) in list_segments(&self.dir)? {
            if path != dest {
                fs::remove_file(&path).map_err(|e| io_err(&path, e))?;
            }
        }
        inner.live_bytes = buffer.len() as u64;
        inner.dead_bytes = 0;
        inner.segments_on_disk = 1;
        self.compactions.fetch_add(1, Ordering::Relaxed);
        obs::instant("store.compact", "done");
        Ok(true)
    }

    /// Point-in-time counters.
    pub fn stats(&self) -> StoreStats {
        let inner = self.lock();
        StoreStats {
            records: inner.index.len() as u64,
            segments: inner.segments_on_disk,
            appends: self.appends.load(Ordering::Relaxed),
            lookups_hit: self.lookups_hit.load(Ordering::Relaxed),
            compactions: self.compactions.load(Ordering::Relaxed),
            quarantined_records: inner.recovery.quarantined_records as u64,
            quarantined_bytes: inner.recovery.quarantined_bytes + inner.recovery.truncated_bytes,
        }
    }
}

impl Drop for MemoStore {
    fn drop(&mut self) {
        let _ = self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("bagcq-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn key(n: u64) -> Fingerprint {
        Fingerprint { hi: n.wrapping_mul(0x9E37_79B9_7F4A_7C15), lo: n }
    }

    fn count(n: u64) -> Outcome {
        Outcome::Count(Nat::from_u64(n))
    }

    fn big_count() -> Outcome {
        Outcome::Count(Nat::from_limbs(vec![u64::MAX, 12345, 1]))
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The canonical IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn roundtrip_survives_reopen() {
        let dir = temp_dir("roundtrip");
        {
            let store = MemoStore::open(&dir).unwrap();
            assert!(store.is_empty());
            assert!(store.put(key(1), &count(7)).unwrap());
            assert!(store.put(key(2), &big_count()).unwrap());
            // Identical re-put is deduplicated.
            assert!(!store.put(key(1), &count(7)).unwrap());
            // Failures are never persisted.
            assert!(!store.put(key(3), &Outcome::TimedOut).unwrap());
            store.flush().unwrap();
        }
        let store = MemoStore::open(&dir).unwrap();
        assert_eq!(store.len(), 2);
        assert!(store.recovery().is_clean());
        assert_eq!(store.get(&key(1)).unwrap().as_count(), Some(&Nat::from_u64(7)));
        assert_eq!(
            store.get(&key(2)).unwrap().as_count(),
            Some(&Nat::from_limbs(vec![u64::MAX, 12345, 1]))
        );
        assert!(store.get(&key(3)).is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn drop_flushes_write_behind_buffer() {
        let dir = temp_dir("dropflush");
        {
            let store = MemoStore::open_opts(
                &dir,
                StoreOptions { flush_every: 1000, ..Default::default() },
            )
            .unwrap();
            for i in 0..10 {
                store.put(key(i), &count(i)).unwrap();
            }
            // No explicit flush: Drop must land the buffer.
        }
        let store = MemoStore::open(&dir).unwrap();
        assert_eq!(store.len(), 10);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_and_prefix_survives() {
        let dir = temp_dir("torntail");
        {
            let store = MemoStore::open(&dir).unwrap();
            store.put(key(1), &count(11)).unwrap();
            store.put(key(2), &count(22)).unwrap();
            store.flush().unwrap();
        }
        // Simulate a kill mid-append: a half-record at the tail.
        let (_, seg) = list_segments(&dir).unwrap().pop().unwrap();
        let clean_len = fs::metadata(&seg).unwrap().len();
        let mut f = fs::OpenOptions::new().append(true).open(&seg).unwrap();
        f.write_all(&[0x55, 0x00, 0x00]).unwrap();
        drop(f);

        let store = MemoStore::open(&dir).unwrap();
        let report = store.recovery();
        assert_eq!(report.truncated_bytes, 3, "{report}");
        assert_eq!(store.len(), 2);
        assert_eq!(store.get(&key(2)).unwrap().as_count(), Some(&Nat::from_u64(22)));
        drop(store);
        assert_eq!(
            fs::metadata(&seg).unwrap().len(),
            clean_len,
            "exclusive recovery must truncate the torn tail"
        );
        // And a verify-after is clean.
        assert!(MemoStore::verify(&dir).unwrap().is_clean());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_middle_record_is_quarantined_not_fatal() {
        let dir = temp_dir("quarantine");
        {
            let store = MemoStore::open(&dir).unwrap();
            for i in 0..5 {
                store.put(key(i), &count(100 + i)).unwrap();
            }
            store.flush().unwrap();
        }
        // Flip one byte inside the *second* record's payload: framing
        // stays intact, the CRC no longer matches.
        let (_, seg) = list_segments(&dir).unwrap().pop().unwrap();
        let mut bytes = fs::read(&seg).unwrap();
        let first_record_len = u32::from_le_bytes(bytes[16..20].try_into().unwrap()) as usize + 8;
        let target = 16 + first_record_len + 8 + 2; // inside record 2's payload
        bytes[target] ^= 0xFF;
        fs::write(&seg, &bytes).unwrap();

        let store = MemoStore::open(&dir).unwrap();
        let report = store.recovery();
        assert_eq!(report.quarantined_records, 1, "{report}");
        assert_eq!(store.len(), 4, "only the flipped record is lost");
        for i in [0u64, 2, 3, 4] {
            assert_eq!(
                store.get(&key(i)).unwrap().as_count(),
                Some(&Nat::from_u64(100 + i)),
                "surviving record {i} must be exact"
            );
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn insane_length_quarantines_rest_of_segment() {
        let dir = temp_dir("badlen");
        {
            let store = MemoStore::open(&dir).unwrap();
            store.put(key(1), &count(1)).unwrap();
            store.put(key(2), &count(2)).unwrap();
            store.flush().unwrap();
        }
        let (_, seg) = list_segments(&dir).unwrap().pop().unwrap();
        let mut bytes = fs::read(&seg).unwrap();
        // Blast the second record's length field.
        let first_record_len = u32::from_le_bytes(bytes[16..20].try_into().unwrap()) as usize + 8;
        let at = 16 + first_record_len;
        bytes[at..at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        fs::write(&seg, &bytes).unwrap();

        let store = MemoStore::open(&dir).unwrap();
        let report = store.recovery();
        assert!(report.quarantined_bytes > 0, "{report}");
        assert_eq!(store.get(&key(1)).unwrap().as_count(), Some(&Nat::from_u64(1)));
        assert!(store.get(&key(2)).is_none(), "no resync inside a corrupt region");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_dedups_and_preserves_latest() {
        let dir = temp_dir("compact");
        let store = MemoStore::open(&dir).unwrap();
        for round in 0..4u64 {
            for i in 0..8 {
                store.put(key(i), &count(round * 100 + i)).unwrap();
            }
        }
        assert!(store.compact().unwrap());
        drop(store);
        let store = MemoStore::open(&dir).unwrap();
        let report = store.recovery();
        assert_eq!(report.segments, 1);
        assert_eq!(report.records_superseded, 0, "compaction leaves one record per key");
        for i in 0..8 {
            assert_eq!(store.get(&key(i)).unwrap().as_count(), Some(&Nat::from_u64(300 + i)));
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_is_deterministic_bytes() {
        let dir_a = temp_dir("det-a");
        let dir_b = temp_dir("det-b");
        for dir in [&dir_a, &dir_b] {
            let store = MemoStore::open(dir).unwrap();
            // Different insertion orders.
            let order: Vec<u64> =
                if dir == &dir_a { (0..16).collect() } else { (0..16).rev().collect() };
            for i in order {
                store.put(key(i), &count(i * 3)).unwrap();
            }
            store.compact().unwrap();
        }
        let seg_a = fs::read(&list_segments(&dir_a).unwrap()[0].1).unwrap();
        let seg_b = fs::read(&list_segments(&dir_b).unwrap()[0].1).unwrap();
        assert_eq!(seg_a, seg_b, "equal stores must compact to identical bytes");
        let _ = fs::remove_dir_all(&dir_a);
        let _ = fs::remove_dir_all(&dir_b);
    }

    #[test]
    fn shared_writers_union_on_reopen() {
        let dir = temp_dir("shared");
        {
            let a = MemoStore::open_shared(&dir, "worker_a").unwrap();
            let b = MemoStore::open_shared(&dir, "worker_b").unwrap();
            a.put(key(1), &count(1)).unwrap();
            b.put(key(2), &count(2)).unwrap();
            a.put(key(3), &count(3)).unwrap();
            a.flush().unwrap();
            b.flush().unwrap();
            // A shared writer never compacts.
            assert!(!a.compact().unwrap());
        }
        let store = MemoStore::open(&dir).unwrap();
        assert_eq!(store.len(), 3);
        assert!(store.recovery().is_clean());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn segment_rotation_allocates_fresh_sequence_numbers() {
        let dir = temp_dir("rotate");
        {
            let store = MemoStore::open_opts(
                &dir,
                StoreOptions { max_segment_bytes: 64, flush_every: 0, ..Default::default() },
            )
            .unwrap();
            for i in 0..6 {
                store.put(key(i), &count(i)).unwrap();
            }
        }
        let segments = list_segments(&dir).unwrap();
        assert!(segments.len() > 1, "tiny cap must rotate segments");
        // Reopen appends above every existing sequence number.
        let store = MemoStore::open_opts(
            &dir,
            StoreOptions { compact_on_open: false, ..Default::default() },
        )
        .unwrap();
        store.put(key(100), &count(100)).unwrap();
        store.flush().unwrap();
        let max_before = segments.iter().map(|(s, _)| *s).max().unwrap();
        let max_after = list_segments(&dir).unwrap().iter().map(|(s, _)| *s).max().unwrap();
        assert!(max_after > max_before);
        assert_eq!(store.len(), 7);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn verify_is_read_only() {
        let dir = temp_dir("verify");
        {
            let store = MemoStore::open(&dir).unwrap();
            store.put(key(1), &count(1)).unwrap();
            store.flush().unwrap();
        }
        let (_, seg) = list_segments(&dir).unwrap().pop().unwrap();
        let mut f = fs::OpenOptions::new().append(true).open(&seg).unwrap();
        f.write_all(&[1, 2, 3]).unwrap();
        drop(f);
        let len_before = fs::metadata(&seg).unwrap().len();
        let report = MemoStore::verify(&dir).unwrap();
        assert_eq!(report.truncated_bytes, 3);
        assert_eq!(fs::metadata(&seg).unwrap().len(), len_before, "verify must not truncate");
        assert!(MemoStore::verify(temp_dir("verify-missing")).is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn foreign_file_is_quarantined_whole() {
        let dir = temp_dir("foreign");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("rogue-0000000000.seg"), b"this is not a segment").unwrap();
        let store = MemoStore::open_opts(
            &dir,
            StoreOptions { compact_on_open: false, ..Default::default() },
        )
        .unwrap();
        let report = store.recovery();
        assert!(report.quarantined_bytes > 0);
        assert_eq!(store.len(), 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_time_compaction_triggers_on_dead_ratio() {
        let dir = temp_dir("autocompact");
        {
            let store = MemoStore::open_opts(
                &dir,
                StoreOptions { compact_on_open: false, flush_every: 0, ..Default::default() },
            )
            .unwrap();
            // One live key overwritten many times: almost all dead bytes.
            for round in 0..50u64 {
                store.put(key(1), &count(round)).unwrap();
            }
        }
        let store = MemoStore::open(&dir).unwrap();
        assert!(store.recovery().compacted, "{}", store.recovery());
        assert_eq!(store.get(&key(1)).unwrap().as_count(), Some(&Nat::from_u64(49)));
        assert_eq!(store.stats().compactions, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stats_track_appends_and_hits() {
        let dir = temp_dir("stats");
        let store = MemoStore::open(&dir).unwrap();
        store.put(key(1), &count(1)).unwrap();
        store.put(key(2), &count(2)).unwrap();
        assert!(store.get(&key(1)).is_some());
        assert!(store.get(&key(9)).is_none());
        let stats = store.stats();
        assert_eq!(stats.records, 2);
        assert_eq!(stats.appends, 2);
        assert_eq!(stats.lookups_hit, 1);
        let _ = fs::remove_dir_all(&dir);
    }
}
