//! Admission control: a bounded job queue with a pluggable overload
//! policy.
//!
//! PR 2's resilience ladder handles *per-job* failure; this module is the
//! engine-level half of the overload story. Submissions pass through a
//! [`BoundedQueue`] whose capacity caps the engine's queued-work memory,
//! and an [`AdmissionPolicy`] decides what happens when the queue is
//! full:
//!
//! * [`AdmissionPolicy::Block`] — the submitting thread waits (bounded by
//!   `max_wait`) for a slot: classic backpressure, pushing the overload
//!   back into the caller.
//! * [`AdmissionPolicy::RejectNewest`] — the new job is refused
//!   immediately with [`ShedReason::QueueFull`]: load shedding with
//!   constant-time submission.
//! * [`AdmissionPolicy::ShedExpired`] — admission behaves like
//!   `RejectNewest`, and *additionally* workers drop jobs whose deadline
//!   already passed while they sat queued
//!   ([`ShedReason::ExpiredAtDequeue`]) instead of burning a worker on
//!   work nobody can use anymore.
//!
//! A refused job is never silently dropped: the engine publishes a typed
//! [`crate::Outcome::Shed`] on its handle, so every submitted job still
//! resolves to exactly one outcome.
//!
//! ## Tenants
//!
//! The serving layer (`bagcq-serve`) composes a second admission stage in
//! *front* of the queue: a [`TenantGate`] maps per-request API keys to
//! [`TenantSpec`]s and enforces each tenant's [`TenantQuota`] — a
//! token-bucket rate limit plus a max-in-flight concurrency cap. An
//! admitted request holds a [`TenantPermit`] (RAII: dropping it releases
//! the in-flight slot); a refused one becomes a typed
//! [`ShedReason::QuotaExceeded`] / [`ShedReason::InFlightLimit`] shed
//! (HTTP 429 on the wire), and an unknown key is an authentication
//! failure ([`TenantRefusal::UnknownKey`], HTTP 401), not a shed.

use crate::job::ShedReason;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// What happens when a job arrives and the bounded queue is full.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// Wait up to `max_wait` for a slot (backpressure); refuse with
    /// [`ShedReason::AdmissionTimeout`] if none frees up in time.
    Block {
        /// Longest a submission may wait for a queue slot.
        max_wait: Duration,
    },
    /// Refuse the new job immediately with [`ShedReason::QueueFull`].
    RejectNewest,
    /// Like [`AdmissionPolicy::RejectNewest`] at admission; additionally,
    /// workers shed queued jobs whose deadline already passed at dequeue
    /// ([`ShedReason::ExpiredAtDequeue`]).
    ShedExpired,
}

/// Admission-control configuration for an engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Queue capacity. `0` means unbounded (the pre-overload-layer
    /// behavior): jobs are always admitted and the policy is moot.
    pub capacity: usize,
    /// Policy applied when the queue is full.
    pub policy: AdmissionPolicy,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig { capacity: 0, policy: AdmissionPolicy::RejectNewest }
    }
}

/// A push the queue refused; carries the item back so the caller can
/// publish a typed outcome on it.
#[derive(Debug)]
pub(crate) struct Refused<T> {
    /// The item that was not admitted.
    pub item: T,
    /// Why.
    pub reason: ShedReason,
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
    high_water: usize,
}

/// A closable MPMC queue with an optional capacity bound and
/// policy-driven admission, built from a `Mutex` + two `Condvar`s.
///
/// Lock poisoning is deliberately ignored (`into_inner` on a poisoned
/// guard): a worker that panics while *holding* the queue lock does not
/// exist by construction (pushes/pops never run user code), and the
/// supervision layer must keep serving through worker deaths.
pub(crate) struct BoundedQueue<T> {
    capacity: usize,
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

impl<T> BoundedQueue<T> {
    /// A queue admitting at most `capacity` items (`0` = unbounded).
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            capacity,
            inner: Mutex::new(Inner { items: VecDeque::new(), closed: false, high_water: 0 }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Inner<T>> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn has_room(&self, inner: &Inner<T>) -> bool {
        self.capacity == 0 || inner.items.len() < self.capacity
    }

    fn enqueue(&self, inner: &mut Inner<T>, item: T) {
        inner.items.push_back(item);
        inner.high_water = inner.high_water.max(inner.items.len());
        self.not_empty.notify_one();
    }

    /// Admits `item` under `policy`. `Ok(waited)` reports whether the
    /// caller blocked for a slot (so the engine can count backpressure
    /// events); `Err` returns the item with the refusal reason.
    pub fn push(&self, item: T, policy: &AdmissionPolicy) -> Result<bool, Refused<T>> {
        let mut inner = self.lock();
        if inner.closed {
            return Err(Refused { item, reason: ShedReason::Draining });
        }
        if self.has_room(&inner) {
            self.enqueue(&mut inner, item);
            return Ok(false);
        }
        match *policy {
            AdmissionPolicy::RejectNewest | AdmissionPolicy::ShedExpired => {
                Err(Refused { item, reason: ShedReason::QueueFull })
            }
            AdmissionPolicy::Block { max_wait } => {
                let deadline = Instant::now() + max_wait;
                loop {
                    let now = Instant::now();
                    if now >= deadline {
                        return Err(Refused { item, reason: ShedReason::AdmissionTimeout });
                    }
                    let (guard, _) = self
                        .not_full
                        .wait_timeout(inner, deadline - now)
                        .unwrap_or_else(|p| p.into_inner());
                    inner = guard;
                    if inner.closed {
                        return Err(Refused { item, reason: ShedReason::Draining });
                    }
                    if self.has_room(&inner) {
                        self.enqueue(&mut inner, item);
                        return Ok(true);
                    }
                }
            }
        }
    }

    /// Enqueues past the capacity bound (but never past `close`). Used to
    /// requeue a job recovered from a dying worker: the job was already
    /// admitted once, so bouncing it on capacity would turn supervision
    /// into job loss.
    pub fn force_push(&self, item: T) -> Result<(), T> {
        let mut inner = self.lock();
        if inner.closed {
            return Err(item);
        }
        self.enqueue(&mut inner, item);
        Ok(())
    }

    /// Blocks for the next item; `None` once the queue is closed *and*
    /// empty (workers drain remaining items before exiting).
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.lock();
        loop {
            if let Some(item) = inner.items.pop_front() {
                self.not_full.notify_one();
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.not_empty.wait(inner).unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Closes admission and wakes every blocked pusher/popper. Idempotent.
    pub fn close(&self) {
        let mut inner = self.lock();
        inner.closed = true;
        drop(inner);
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Removes and returns everything currently queued (the drain
    /// deadline's shed step).
    pub fn drain_now(&self) -> Vec<T> {
        let mut inner = self.lock();
        let items = std::mem::take(&mut inner.items);
        drop(inner);
        self.not_full.notify_all();
        items.into()
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// The deepest the queue has ever been.
    pub fn high_water(&self) -> usize {
        self.lock().high_water
    }
}

// ---------------------------------------------------------------------------
// Tenants
// ---------------------------------------------------------------------------

/// Per-tenant admission limits.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TenantQuota {
    /// Token-bucket refill rate, in requests per second. `0` disables the
    /// rate limit.
    pub rate_per_sec: u64,
    /// Token-bucket capacity: how many requests may burst above the
    /// steady rate. Clamped up to at least 1 when the rate limit is on.
    pub burst: u64,
    /// Maximum concurrently admitted requests (outstanding
    /// [`TenantPermit`]s). `0` disables the concurrency cap.
    pub max_in_flight: u64,
    /// Maximum concurrently *open connections* (outstanding
    /// [`TenantConnection`]s). `0` disables the cap. Distinct from
    /// `max_in_flight`: a keep-alive connection holds a connection slot
    /// for its whole lifetime but an in-flight slot only while a request
    /// is being served, so slow-loris clients are bounded even when they
    /// never complete a request.
    pub max_connections: u64,
}

impl TenantQuota {
    /// No limits at all (useful for trusted internal tenants and tests).
    pub fn unlimited() -> Self {
        TenantQuota { rate_per_sec: 0, burst: 0, max_in_flight: 0, max_connections: 0 }
    }

    /// Replaces the connection cap.
    pub fn with_max_connections(mut self, max_connections: u64) -> Self {
        self.max_connections = max_connections;
        self
    }
}

impl Default for TenantQuota {
    fn default() -> Self {
        TenantQuota { rate_per_sec: 500, burst: 1000, max_in_flight: 256, max_connections: 0 }
    }
}

/// One tenant: a display name, the API key that authenticates it, and
/// its quota.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TenantSpec {
    /// Display name (metrics, logs); unique per gate.
    pub name: String,
    /// The API key presented on the wire (`Authorization` header / `key`
    /// field); unique per gate.
    pub api_key: String,
    /// Admission limits.
    pub quota: TenantQuota,
}

impl TenantSpec {
    /// A tenant with the default quota.
    pub fn new(name: impl Into<String>, api_key: impl Into<String>) -> Self {
        TenantSpec { name: name.into(), api_key: api_key.into(), quota: TenantQuota::default() }
    }

    /// Replaces the quota.
    pub fn with_quota(mut self, quota: TenantQuota) -> Self {
        self.quota = quota;
        self
    }
}

/// Why a [`TenantGate`] refused a request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TenantRefusal {
    /// No tenant owns the presented API key: an authentication failure
    /// (HTTP 401), **not** a shed — it never reaches the engine.
    UnknownKey,
    /// The tenant's token bucket is empty (HTTP 429).
    QuotaExceeded,
    /// The tenant is at its max-in-flight cap (HTTP 429).
    InFlightLimit,
    /// The tenant is at its open-connection cap (HTTP 429; the serving
    /// layer also closes the refused connection).
    ConnectionLimit,
}

impl TenantRefusal {
    /// The [`ShedReason`] this refusal publishes, if it is a shed
    /// (unknown keys are not).
    pub fn shed_reason(self) -> Option<ShedReason> {
        match self {
            TenantRefusal::UnknownKey => None,
            TenantRefusal::QuotaExceeded => Some(ShedReason::QuotaExceeded),
            TenantRefusal::InFlightLimit => Some(ShedReason::InFlightLimit),
            TenantRefusal::ConnectionLimit => Some(ShedReason::ConnectionLimit),
        }
    }
}

/// A point-in-time copy of one tenant's admission counters, surfaced in
/// [`crate::MetricsSnapshot::tenants`] and the `/metrics` endpoint.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TenantCounters {
    /// Tenant display name.
    pub name: String,
    /// Requests admitted (permits issued).
    pub admitted: u64,
    /// Requests refused because the token bucket was empty.
    pub quota_rejections: u64,
    /// Requests refused at the max-in-flight cap.
    pub in_flight_rejections: u64,
    /// Connections refused at the per-tenant connection cap.
    pub connection_rejections: u64,
    /// Permits outstanding at snapshot time.
    pub in_flight: u64,
    /// Connections outstanding at snapshot time.
    pub open_connections: u64,
    /// Requests answered from the idempotency cache *without* charging
    /// admission again. `admitted` counts each idempotency key at most
    /// once; this counter proves retried deliveries were deduplicated
    /// (exactly-once charging: `admitted + idempotent_replays` equals
    /// total answered requests).
    pub idempotent_replays: u64,
}

/// Integer token bucket: tokens are stored ×10⁶ ("micro-tokens") so
/// refill needs no floating point. One request costs 10⁶ micro-tokens.
struct TokenBucket {
    micro: u64,
    last: Instant,
}

const MICRO: u64 = 1_000_000;

impl TokenBucket {
    fn full(burst: u64, now: Instant) -> Self {
        TokenBucket { micro: burst.saturating_mul(MICRO), last: now }
    }

    /// Refills for the elapsed time, then tries to take one token.
    fn try_take(&mut self, rate_per_sec: u64, burst: u64, now: Instant) -> bool {
        let elapsed_us =
            now.saturating_duration_since(self.last).as_micros().min(u128::from(u64::MAX)) as u64;
        self.last = now;
        // rate tokens/s == rate micro-tokens/µs.
        let refill = elapsed_us.saturating_mul(rate_per_sec);
        self.micro = self.micro.saturating_add(refill).min(burst.max(1).saturating_mul(MICRO));
        if self.micro >= MICRO {
            self.micro -= MICRO;
            true
        } else {
            false
        }
    }
}

struct TenantState {
    spec: TenantSpec,
    bucket: Mutex<TokenBucket>,
    in_flight: AtomicU64,
    connections: AtomicU64,
    admitted: AtomicU64,
    quota_rejections: AtomicU64,
    in_flight_rejections: AtomicU64,
    connection_rejections: AtomicU64,
    idempotent_replays: AtomicU64,
}

/// The tenant admission stage: API key → tenant lookup, then quota
/// enforcement. Sits in front of the engine's [`BoundedQueue`], so a
/// request must pass *both* its tenant's limits and the engine-wide
/// admission policy before a worker sees it.
pub struct TenantGate {
    by_key: HashMap<String, Arc<TenantState>>,
    order: Vec<Arc<TenantState>>,
}

impl TenantGate {
    /// Builds a gate from tenant specs. Duplicate names or API keys are a
    /// configuration error and panic.
    pub fn new(specs: impl IntoIterator<Item = TenantSpec>) -> Self {
        let now = Instant::now();
        let mut by_key = HashMap::new();
        let mut order = Vec::new();
        let mut names = std::collections::HashSet::new();
        for spec in specs {
            assert!(names.insert(spec.name.clone()), "duplicate tenant name {:?}", spec.name);
            let state = Arc::new(TenantState {
                bucket: Mutex::new(TokenBucket::full(spec.quota.burst, now)),
                in_flight: AtomicU64::new(0),
                connections: AtomicU64::new(0),
                admitted: AtomicU64::new(0),
                quota_rejections: AtomicU64::new(0),
                in_flight_rejections: AtomicU64::new(0),
                connection_rejections: AtomicU64::new(0),
                idempotent_replays: AtomicU64::new(0),
                spec,
            });
            let prev = by_key.insert(state.spec.api_key.clone(), Arc::clone(&state));
            assert!(prev.is_none(), "duplicate tenant api key");
            order.push(state);
        }
        TenantGate { by_key, order }
    }

    /// Number of configured tenants.
    pub fn tenant_count(&self) -> usize {
        self.order.len()
    }

    /// Whether some tenant owns `api_key`, without charging anything.
    /// The serving layer uses this to authenticate an idempotent replay
    /// before answering it from cache (401s must not become replays).
    pub fn recognizes(&self, api_key: &str) -> bool {
        self.by_key.contains_key(api_key)
    }

    /// Registers one open connection against the tenant owning
    /// `api_key`, enforcing [`TenantQuota::max_connections`]. The
    /// returned guard releases the slot on drop. Distinct from
    /// [`TenantGate::admit`]: a keep-alive connection holds its slot
    /// across many requests (and across idle gaps), so trickling or
    /// parked clients are bounded per tenant.
    pub fn acquire_connection(&self, api_key: &str) -> Result<TenantConnection, TenantRefusal> {
        let Some(state) = self.by_key.get(api_key) else {
            return Err(TenantRefusal::UnknownKey);
        };
        let cap = state.spec.quota.max_connections;
        if cap != 0 {
            let mut cur = state.connections.load(Ordering::Relaxed);
            loop {
                if cur >= cap {
                    state.connection_rejections.fetch_add(1, Ordering::Relaxed);
                    bagcq_obs::instant("engine.admission", ShedReason::ConnectionLimit.label());
                    return Err(TenantRefusal::ConnectionLimit);
                }
                match state.connections.compare_exchange_weak(
                    cur,
                    cur + 1,
                    Ordering::AcqRel,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => break,
                    Err(actual) => cur = actual,
                }
            }
        } else {
            state.connections.fetch_add(1, Ordering::AcqRel);
        }
        Ok(TenantConnection { state: Arc::clone(state) })
    }

    /// Counts one request answered from the idempotency cache without a
    /// fresh admission charge (the key's first delivery already paid).
    /// No-op for unknown keys.
    pub fn record_idempotent_replay(&self, api_key: &str) {
        if let Some(state) = self.by_key.get(api_key) {
            state.idempotent_replays.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Looks up the tenant owning `api_key` and admits one request under
    /// its quota. The returned permit releases the in-flight slot on
    /// drop.
    pub fn admit(&self, api_key: &str) -> Result<TenantPermit, TenantRefusal> {
        self.admit_at(api_key, Instant::now())
    }

    /// [`TenantGate::admit`] with an explicit clock (deterministic tests).
    pub fn admit_at(&self, api_key: &str, now: Instant) -> Result<TenantPermit, TenantRefusal> {
        let Some(state) = self.by_key.get(api_key) else {
            return Err(TenantRefusal::UnknownKey);
        };
        let quota = state.spec.quota;
        // Concurrency cap first (it is the cheaper check and does not
        // consume a token on refusal).
        if quota.max_in_flight != 0 {
            let mut cur = state.in_flight.load(Ordering::Relaxed);
            loop {
                if cur >= quota.max_in_flight {
                    state.in_flight_rejections.fetch_add(1, Ordering::Relaxed);
                    bagcq_obs::instant("engine.admission", ShedReason::InFlightLimit.label());
                    return Err(TenantRefusal::InFlightLimit);
                }
                match state.in_flight.compare_exchange_weak(
                    cur,
                    cur + 1,
                    Ordering::AcqRel,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => break,
                    Err(actual) => cur = actual,
                }
            }
        } else {
            state.in_flight.fetch_add(1, Ordering::AcqRel);
        }
        if quota.rate_per_sec != 0 {
            let took = {
                let mut bucket = state.bucket.lock().unwrap_or_else(|p| p.into_inner());
                bucket.try_take(quota.rate_per_sec, quota.burst, now)
            };
            if !took {
                state.in_flight.fetch_sub(1, Ordering::AcqRel);
                state.quota_rejections.fetch_add(1, Ordering::Relaxed);
                bagcq_obs::instant("engine.admission", ShedReason::QuotaExceeded.label());
                return Err(TenantRefusal::QuotaExceeded);
            }
        }
        state.admitted.fetch_add(1, Ordering::Relaxed);
        Ok(TenantPermit { state: Arc::clone(state) })
    }

    /// Point-in-time counters for every tenant, in configuration order.
    pub fn snapshot(&self) -> Vec<TenantCounters> {
        self.order
            .iter()
            .map(|s| TenantCounters {
                name: s.spec.name.clone(),
                admitted: s.admitted.load(Ordering::Relaxed),
                quota_rejections: s.quota_rejections.load(Ordering::Relaxed),
                in_flight_rejections: s.in_flight_rejections.load(Ordering::Relaxed),
                connection_rejections: s.connection_rejections.load(Ordering::Relaxed),
                in_flight: s.in_flight.load(Ordering::Relaxed),
                open_connections: s.connections.load(Ordering::Relaxed),
                idempotent_replays: s.idempotent_replays.load(Ordering::Relaxed),
            })
            .collect()
    }
}

/// RAII proof that a request passed its tenant's quota; dropping it
/// releases the tenant's in-flight slot. Hold it for the request's whole
/// lifetime (parse → count → respond), not just the engine hop.
pub struct TenantPermit {
    state: Arc<TenantState>,
}

impl std::fmt::Debug for TenantPermit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TenantPermit").field("tenant", &self.state.spec.name).finish()
    }
}

impl TenantPermit {
    /// The owning tenant's display name.
    pub fn tenant_name(&self) -> &str {
        &self.state.spec.name
    }
}

impl Drop for TenantPermit {
    fn drop(&mut self) {
        self.state.in_flight.fetch_sub(1, Ordering::AcqRel);
    }
}

/// RAII proof that a connection passed its tenant's open-connection cap;
/// dropping it releases the slot. The serving layer holds one per
/// keep-alive connection from the first authenticated request until the
/// socket closes.
pub struct TenantConnection {
    state: Arc<TenantState>,
}

impl std::fmt::Debug for TenantConnection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TenantConnection").field("tenant", &self.state.spec.name).finish()
    }
}

impl TenantConnection {
    /// The owning tenant's display name.
    pub fn tenant_name(&self) -> &str {
        &self.state.spec.name
    }

    /// The API key this connection authenticated with.
    pub fn api_key(&self) -> &str {
        &self.state.spec.api_key
    }
}

impl Drop for TenantConnection {
    fn drop(&mut self) {
        self.state.connections.fetch_sub(1, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn unbounded_always_admits() {
        let q = BoundedQueue::new(0);
        for i in 0..1000 {
            assert!(q.push(i, &AdmissionPolicy::RejectNewest).is_ok());
        }
        assert_eq!(q.len(), 1000);
        assert_eq!(q.high_water(), 1000);
    }

    #[test]
    fn reject_newest_refuses_at_capacity() {
        let q = BoundedQueue::new(2);
        assert!(q.push(1, &AdmissionPolicy::RejectNewest).is_ok());
        assert!(q.push(2, &AdmissionPolicy::RejectNewest).is_ok());
        let refused = q.push(3, &AdmissionPolicy::RejectNewest).unwrap_err();
        assert_eq!(refused.item, 3);
        assert_eq!(refused.reason, ShedReason::QueueFull);
        // Popping frees a slot.
        assert_eq!(q.pop(), Some(1));
        assert!(q.push(3, &AdmissionPolicy::RejectNewest).is_ok());
    }

    #[test]
    fn block_times_out_then_succeeds_after_pop() {
        let q = Arc::new(BoundedQueue::new(1));
        assert!(q.push(1, &AdmissionPolicy::RejectNewest).is_ok());
        let policy = AdmissionPolicy::Block { max_wait: Duration::from_millis(20) };
        let refused = q.push(2, &policy).unwrap_err();
        assert_eq!(refused.reason, ShedReason::AdmissionTimeout);

        // A concurrent pop frees the slot while a pusher waits.
        let popper = {
            let q = Arc::clone(&q);
            thread::spawn(move || {
                thread::sleep(Duration::from_millis(10));
                q.pop()
            })
        };
        let waited = q
            .push(2, &AdmissionPolicy::Block { max_wait: Duration::from_secs(5) })
            .expect("slot frees up");
        assert!(waited, "the pusher must have blocked");
        assert_eq!(popper.join().unwrap(), Some(1));
    }

    #[test]
    fn close_refuses_pushes_and_drains_pops() {
        let q = BoundedQueue::new(0);
        assert!(q.push(1, &AdmissionPolicy::RejectNewest).is_ok());
        q.close();
        q.close(); // idempotent
        let refused = q.push(2, &AdmissionPolicy::RejectNewest).unwrap_err();
        assert_eq!(refused.reason, ShedReason::Draining);
        assert!(q.force_push(3).is_err(), "force_push respects close");
        // Queued items still drain before pop reports closure.
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn close_wakes_blocked_popper() {
        let q = Arc::new(BoundedQueue::<u32>::new(0));
        let popper = {
            let q = Arc::clone(&q);
            thread::spawn(move || q.pop())
        };
        thread::sleep(Duration::from_millis(5));
        q.close();
        assert_eq!(popper.join().unwrap(), None);
    }

    #[test]
    fn force_push_ignores_capacity() {
        let q = BoundedQueue::new(1);
        assert!(q.push(1, &AdmissionPolicy::RejectNewest).is_ok());
        assert!(q.force_push(2).is_ok());
        assert_eq!(q.len(), 2);
        assert_eq!(q.high_water(), 2);
    }

    #[test]
    fn drain_now_empties_the_queue() {
        let q = BoundedQueue::new(0);
        for i in 0..5 {
            assert!(q.push(i, &AdmissionPolicy::RejectNewest).is_ok());
        }
        assert_eq!(q.drain_now(), vec![0, 1, 2, 3, 4]);
        assert_eq!(q.len(), 0);
        q.close();
        assert_eq!(q.pop(), None);
    }

    // --- tenants -----------------------------------------------------------

    fn gate(quota: TenantQuota) -> TenantGate {
        TenantGate::new([TenantSpec::new("acme", "k-acme").with_quota(quota)])
    }

    #[test]
    fn unknown_key_is_auth_not_shed() {
        let g = gate(TenantQuota::unlimited());
        let e = g.admit("nope").unwrap_err();
        assert_eq!(e, TenantRefusal::UnknownKey);
        assert_eq!(e.shed_reason(), None);
        // Nothing was counted against the tenant.
        assert_eq!(g.snapshot()[0].admitted, 0);
    }

    #[test]
    fn token_bucket_limits_burst_then_refills() {
        let g =
            gate(TenantQuota { rate_per_sec: 10, burst: 3, max_in_flight: 0, max_connections: 0 });
        let t0 = Instant::now();
        // The bucket starts full: exactly `burst` immediate admissions.
        for _ in 0..3 {
            assert!(g.admit_at("k-acme", t0).is_ok());
        }
        let e = g.admit_at("k-acme", t0).unwrap_err();
        assert_eq!(e, TenantRefusal::QuotaExceeded);
        assert_eq!(e.shed_reason(), Some(ShedReason::QuotaExceeded));
        // 100ms at 10 req/s refills exactly one token.
        let t1 = t0 + Duration::from_millis(100);
        assert!(g.admit_at("k-acme", t1).is_ok());
        assert_eq!(g.admit_at("k-acme", t1).unwrap_err(), TenantRefusal::QuotaExceeded);
        // Refill never exceeds the burst capacity.
        let t2 = t1 + Duration::from_secs(3600);
        for _ in 0..3 {
            assert!(g.admit_at("k-acme", t2).is_ok());
        }
        assert!(g.admit_at("k-acme", t2).is_err());
        let c = &g.snapshot()[0];
        assert_eq!(c.admitted, 7);
        assert_eq!(c.quota_rejections, 3);
    }

    #[test]
    fn in_flight_cap_is_released_by_permit_drop() {
        let g =
            gate(TenantQuota { rate_per_sec: 0, burst: 0, max_in_flight: 2, max_connections: 0 });
        let p1 = g.admit("k-acme").unwrap();
        let p2 = g.admit("k-acme").unwrap();
        assert_eq!(p1.tenant_name(), "acme");
        let e = g.admit("k-acme").unwrap_err();
        assert_eq!(e, TenantRefusal::InFlightLimit);
        assert_eq!(e.shed_reason(), Some(ShedReason::InFlightLimit));
        assert_eq!(g.snapshot()[0].in_flight, 2);
        drop(p1);
        let _p3 = g.admit("k-acme").expect("slot released");
        drop(p2);
        let c = &g.snapshot()[0];
        assert_eq!(c.in_flight, 1);
        assert_eq!(c.admitted, 3);
        assert_eq!(c.in_flight_rejections, 1);
    }

    #[test]
    fn in_flight_refusal_consumes_no_token() {
        let g =
            gate(TenantQuota { rate_per_sec: 1, burst: 2, max_in_flight: 1, max_connections: 0 });
        let t0 = Instant::now();
        let p = g.admit_at("k-acme", t0).unwrap();
        assert_eq!(g.admit_at("k-acme", t0).unwrap_err(), TenantRefusal::InFlightLimit);
        drop(p);
        // The bucket still has its second token.
        assert!(g.admit_at("k-acme", t0).is_ok());
    }

    #[test]
    fn tenants_are_isolated() {
        let g = TenantGate::new([
            TenantSpec::new("a", "ka").with_quota(TenantQuota {
                rate_per_sec: 1,
                burst: 1,
                max_in_flight: 0,
                max_connections: 0,
            }),
            TenantSpec::new("b", "kb").with_quota(TenantQuota {
                rate_per_sec: 1,
                burst: 1,
                max_in_flight: 0,
                max_connections: 0,
            }),
        ]);
        assert_eq!(g.tenant_count(), 2);
        let t0 = Instant::now();
        assert!(g.admit_at("ka", t0).is_ok());
        assert!(g.admit_at("ka", t0).is_err(), "a is exhausted");
        assert!(g.admit_at("kb", t0).is_ok(), "b is unaffected");
        let snap = g.snapshot();
        assert_eq!((snap[0].admitted, snap[0].quota_rejections), (1, 1));
        assert_eq!((snap[1].admitted, snap[1].quota_rejections), (1, 0));
    }

    #[test]
    fn concurrent_admissions_never_exceed_the_cap() {
        let g = Arc::new(gate(TenantQuota {
            rate_per_sec: 0,
            burst: 0,
            max_in_flight: 4,
            max_connections: 0,
        }));
        let peak = Arc::new(AtomicU64::new(0));
        let live = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let (g, peak, live) = (Arc::clone(&g), Arc::clone(&peak), Arc::clone(&live));
                thread::spawn(move || {
                    let mut admitted = 0u64;
                    for _ in 0..200 {
                        if let Ok(permit) = g.admit("k-acme") {
                            let now = live.fetch_add(1, Ordering::AcqRel) + 1;
                            peak.fetch_max(now, Ordering::AcqRel);
                            std::thread::yield_now();
                            live.fetch_sub(1, Ordering::AcqRel);
                            drop(permit);
                            admitted += 1;
                        }
                    }
                    admitted
                })
            })
            .collect();
        let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert!(total > 0);
        assert!(
            peak.load(Ordering::Acquire) <= 4,
            "cap breached: {}",
            peak.load(Ordering::Acquire)
        );
        assert_eq!(g.snapshot()[0].in_flight, 0, "all permits released");
    }

    #[test]
    #[should_panic(expected = "duplicate tenant")]
    fn duplicate_keys_panic() {
        let _ = TenantGate::new([TenantSpec::new("a", "k"), TenantSpec::new("b", "k")]);
    }

    // --- token-bucket boundary cases ---------------------------------------

    /// A refill gap measured in centuries must saturate at the burst
    /// capacity, not overflow the micro-token arithmetic into a bucket
    /// that admits unboundedly.
    #[test]
    fn token_bucket_survives_huge_elapsed_gaps() {
        let g = gate(TenantQuota {
            rate_per_sec: u64::MAX,
            burst: 2,
            max_in_flight: 0,
            max_connections: 0,
        });
        let t0 = Instant::now();
        assert!(g.admit_at("k-acme", t0).is_ok());
        assert!(g.admit_at("k-acme", t0).is_ok());
        assert!(g.admit_at("k-acme", t0).is_err(), "burst exhausted");
        // ~3170 years of elapsed refill at u64::MAX tokens/sec: the
        // refill product saturates, then clamps to burst * MICRO.
        let t1 = t0 + Duration::from_secs(100_000_000_000);
        for _ in 0..2 {
            assert!(g.admit_at("k-acme", t1).is_ok());
        }
        assert_eq!(
            g.admit_at("k-acme", t1).unwrap_err(),
            TenantRefusal::QuotaExceeded,
            "a huge gap must refill exactly `burst` tokens, never more"
        );
    }

    /// `burst: 0` with a live rate limit is a zero-capacity bucket on
    /// paper; the gate clamps capacity up to one token so the tenant
    /// still gets its steady rate instead of being silently bricked.
    #[test]
    fn zero_capacity_bucket_clamps_to_one_token() {
        let g =
            gate(TenantQuota { rate_per_sec: 10, burst: 0, max_in_flight: 0, max_connections: 0 });
        let t0 = Instant::now();
        // TokenBucket::full(0, ..) starts empty: the very first request
        // is refused until the rate refills the clamped 1-token bucket.
        assert_eq!(g.admit_at("k-acme", t0).unwrap_err(), TenantRefusal::QuotaExceeded);
        let t1 = t0 + Duration::from_millis(100); // 1 token at 10/s
        assert!(g.admit_at("k-acme", t1).is_ok());
        assert!(g.admit_at("k-acme", t1).is_err(), "clamped capacity is exactly one");
        // A long gap still refills only the single clamped token.
        let t2 = t1 + Duration::from_secs(3600);
        assert!(g.admit_at("k-acme", t2).is_ok());
        assert_eq!(g.admit_at("k-acme", t2).unwrap_err(), TenantRefusal::QuotaExceeded);
    }

    /// Refill accrues across calls even when each individual gap is less
    /// than one whole token (sub-token refill must not be rounded away).
    #[test]
    fn sub_token_refill_accumulates() {
        let g =
            gate(TenantQuota { rate_per_sec: 10, burst: 1, max_in_flight: 0, max_connections: 0 });
        let t0 = Instant::now();
        assert!(g.admit_at("k-acme", t0).is_ok());
        // Four 25ms gaps = 100ms = exactly one token at 10/s.
        let mut t = t0;
        for _ in 0..3 {
            t += Duration::from_millis(25);
            assert!(g.admit_at("k-acme", t).is_err(), "token not yet whole");
        }
        t += Duration::from_millis(25);
        assert!(g.admit_at("k-acme", t).is_ok(), "fractional refills must accumulate");
    }

    // --- connection caps and idempotent replays ----------------------------

    #[test]
    fn connection_cap_is_released_by_guard_drop() {
        let g =
            gate(TenantQuota { rate_per_sec: 0, burst: 0, max_in_flight: 0, max_connections: 2 });
        let c1 = g.acquire_connection("k-acme").unwrap();
        let _c2 = g.acquire_connection("k-acme").unwrap();
        assert_eq!(c1.tenant_name(), "acme");
        assert_eq!(c1.api_key(), "k-acme");
        let e = g.acquire_connection("k-acme").unwrap_err();
        assert_eq!(e, TenantRefusal::ConnectionLimit);
        assert_eq!(e.shed_reason(), Some(ShedReason::ConnectionLimit));
        let snap = &g.snapshot()[0];
        assert_eq!(snap.open_connections, 2);
        assert_eq!(snap.connection_rejections, 1);
        drop(c1);
        let _c3 = g.acquire_connection("k-acme").expect("slot released on drop");
        assert!(g.acquire_connection("nope").is_err(), "unknown keys never hold slots");
        assert_eq!(g.snapshot()[0].open_connections, 2);
    }

    #[test]
    fn connection_cap_is_independent_of_requests() {
        let g =
            gate(TenantQuota { rate_per_sec: 0, burst: 0, max_in_flight: 1, max_connections: 1 });
        let _conn = g.acquire_connection("k-acme").unwrap();
        // A held connection slot does not consume the in-flight budget.
        let permit = g.admit("k-acme").unwrap();
        assert_eq!(g.admit("k-acme").unwrap_err(), TenantRefusal::InFlightLimit);
        drop(permit);
        assert!(g.admit("k-acme").is_ok(), "requests recycle while the connection persists");
    }

    #[test]
    fn idempotent_replays_are_counted_not_charged() {
        let g =
            gate(TenantQuota { rate_per_sec: 10, burst: 1, max_in_flight: 0, max_connections: 0 });
        let t0 = Instant::now();
        assert!(g.admit_at("k-acme", t0).is_ok());
        // Replays bypass the (now empty) bucket entirely.
        g.record_idempotent_replay("k-acme");
        g.record_idempotent_replay("k-acme");
        g.record_idempotent_replay("unknown-key"); // no-op, must not panic
        let snap = &g.snapshot()[0];
        assert_eq!(snap.admitted, 1, "the key's first delivery is the only charge");
        assert_eq!(snap.idempotent_replays, 2);
        assert_eq!(snap.quota_rejections, 0, "replays never touch the bucket");
        assert!(g.recognizes("k-acme"));
        assert!(!g.recognizes("unknown-key"));
    }
}
