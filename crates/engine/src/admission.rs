//! Admission control: a bounded job queue with a pluggable overload
//! policy.
//!
//! PR 2's resilience ladder handles *per-job* failure; this module is the
//! engine-level half of the overload story. Submissions pass through a
//! [`BoundedQueue`] whose capacity caps the engine's queued-work memory,
//! and an [`AdmissionPolicy`] decides what happens when the queue is
//! full:
//!
//! * [`AdmissionPolicy::Block`] — the submitting thread waits (bounded by
//!   `max_wait`) for a slot: classic backpressure, pushing the overload
//!   back into the caller.
//! * [`AdmissionPolicy::RejectNewest`] — the new job is refused
//!   immediately with [`ShedReason::QueueFull`]: load shedding with
//!   constant-time submission.
//! * [`AdmissionPolicy::ShedExpired`] — admission behaves like
//!   `RejectNewest`, and *additionally* workers drop jobs whose deadline
//!   already passed while they sat queued
//!   ([`ShedReason::ExpiredAtDequeue`]) instead of burning a worker on
//!   work nobody can use anymore.
//!
//! A refused job is never silently dropped: the engine publishes a typed
//! [`crate::Outcome::Shed`] on its handle, so every submitted job still
//! resolves to exactly one outcome.

use crate::job::ShedReason;
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// What happens when a job arrives and the bounded queue is full.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// Wait up to `max_wait` for a slot (backpressure); refuse with
    /// [`ShedReason::AdmissionTimeout`] if none frees up in time.
    Block {
        /// Longest a submission may wait for a queue slot.
        max_wait: Duration,
    },
    /// Refuse the new job immediately with [`ShedReason::QueueFull`].
    RejectNewest,
    /// Like [`AdmissionPolicy::RejectNewest`] at admission; additionally,
    /// workers shed queued jobs whose deadline already passed at dequeue
    /// ([`ShedReason::ExpiredAtDequeue`]).
    ShedExpired,
}

/// Admission-control configuration for an engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Queue capacity. `0` means unbounded (the pre-overload-layer
    /// behavior): jobs are always admitted and the policy is moot.
    pub capacity: usize,
    /// Policy applied when the queue is full.
    pub policy: AdmissionPolicy,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig { capacity: 0, policy: AdmissionPolicy::RejectNewest }
    }
}

/// A push the queue refused; carries the item back so the caller can
/// publish a typed outcome on it.
#[derive(Debug)]
pub(crate) struct Refused<T> {
    /// The item that was not admitted.
    pub item: T,
    /// Why.
    pub reason: ShedReason,
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
    high_water: usize,
}

/// A closable MPMC queue with an optional capacity bound and
/// policy-driven admission, built from a `Mutex` + two `Condvar`s.
///
/// Lock poisoning is deliberately ignored (`into_inner` on a poisoned
/// guard): a worker that panics while *holding* the queue lock does not
/// exist by construction (pushes/pops never run user code), and the
/// supervision layer must keep serving through worker deaths.
pub(crate) struct BoundedQueue<T> {
    capacity: usize,
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

impl<T> BoundedQueue<T> {
    /// A queue admitting at most `capacity` items (`0` = unbounded).
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            capacity,
            inner: Mutex::new(Inner { items: VecDeque::new(), closed: false, high_water: 0 }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Inner<T>> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn has_room(&self, inner: &Inner<T>) -> bool {
        self.capacity == 0 || inner.items.len() < self.capacity
    }

    fn enqueue(&self, inner: &mut Inner<T>, item: T) {
        inner.items.push_back(item);
        inner.high_water = inner.high_water.max(inner.items.len());
        self.not_empty.notify_one();
    }

    /// Admits `item` under `policy`. `Ok(waited)` reports whether the
    /// caller blocked for a slot (so the engine can count backpressure
    /// events); `Err` returns the item with the refusal reason.
    pub fn push(&self, item: T, policy: &AdmissionPolicy) -> Result<bool, Refused<T>> {
        let mut inner = self.lock();
        if inner.closed {
            return Err(Refused { item, reason: ShedReason::Draining });
        }
        if self.has_room(&inner) {
            self.enqueue(&mut inner, item);
            return Ok(false);
        }
        match *policy {
            AdmissionPolicy::RejectNewest | AdmissionPolicy::ShedExpired => {
                Err(Refused { item, reason: ShedReason::QueueFull })
            }
            AdmissionPolicy::Block { max_wait } => {
                let deadline = Instant::now() + max_wait;
                loop {
                    let now = Instant::now();
                    if now >= deadline {
                        return Err(Refused { item, reason: ShedReason::AdmissionTimeout });
                    }
                    let (guard, _) = self
                        .not_full
                        .wait_timeout(inner, deadline - now)
                        .unwrap_or_else(|p| p.into_inner());
                    inner = guard;
                    if inner.closed {
                        return Err(Refused { item, reason: ShedReason::Draining });
                    }
                    if self.has_room(&inner) {
                        self.enqueue(&mut inner, item);
                        return Ok(true);
                    }
                }
            }
        }
    }

    /// Enqueues past the capacity bound (but never past `close`). Used to
    /// requeue a job recovered from a dying worker: the job was already
    /// admitted once, so bouncing it on capacity would turn supervision
    /// into job loss.
    pub fn force_push(&self, item: T) -> Result<(), T> {
        let mut inner = self.lock();
        if inner.closed {
            return Err(item);
        }
        self.enqueue(&mut inner, item);
        Ok(())
    }

    /// Blocks for the next item; `None` once the queue is closed *and*
    /// empty (workers drain remaining items before exiting).
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.lock();
        loop {
            if let Some(item) = inner.items.pop_front() {
                self.not_full.notify_one();
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.not_empty.wait(inner).unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Closes admission and wakes every blocked pusher/popper. Idempotent.
    pub fn close(&self) {
        let mut inner = self.lock();
        inner.closed = true;
        drop(inner);
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Removes and returns everything currently queued (the drain
    /// deadline's shed step).
    pub fn drain_now(&self) -> Vec<T> {
        let mut inner = self.lock();
        let items = std::mem::take(&mut inner.items);
        drop(inner);
        self.not_full.notify_all();
        items.into()
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// The deepest the queue has ever been.
    pub fn high_water(&self) -> usize {
        self.lock().high_water
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn unbounded_always_admits() {
        let q = BoundedQueue::new(0);
        for i in 0..1000 {
            assert!(q.push(i, &AdmissionPolicy::RejectNewest).is_ok());
        }
        assert_eq!(q.len(), 1000);
        assert_eq!(q.high_water(), 1000);
    }

    #[test]
    fn reject_newest_refuses_at_capacity() {
        let q = BoundedQueue::new(2);
        assert!(q.push(1, &AdmissionPolicy::RejectNewest).is_ok());
        assert!(q.push(2, &AdmissionPolicy::RejectNewest).is_ok());
        let refused = q.push(3, &AdmissionPolicy::RejectNewest).unwrap_err();
        assert_eq!(refused.item, 3);
        assert_eq!(refused.reason, ShedReason::QueueFull);
        // Popping frees a slot.
        assert_eq!(q.pop(), Some(1));
        assert!(q.push(3, &AdmissionPolicy::RejectNewest).is_ok());
    }

    #[test]
    fn block_times_out_then_succeeds_after_pop() {
        let q = Arc::new(BoundedQueue::new(1));
        assert!(q.push(1, &AdmissionPolicy::RejectNewest).is_ok());
        let policy = AdmissionPolicy::Block { max_wait: Duration::from_millis(20) };
        let refused = q.push(2, &policy).unwrap_err();
        assert_eq!(refused.reason, ShedReason::AdmissionTimeout);

        // A concurrent pop frees the slot while a pusher waits.
        let popper = {
            let q = Arc::clone(&q);
            thread::spawn(move || {
                thread::sleep(Duration::from_millis(10));
                q.pop()
            })
        };
        let waited = q
            .push(2, &AdmissionPolicy::Block { max_wait: Duration::from_secs(5) })
            .expect("slot frees up");
        assert!(waited, "the pusher must have blocked");
        assert_eq!(popper.join().unwrap(), Some(1));
    }

    #[test]
    fn close_refuses_pushes_and_drains_pops() {
        let q = BoundedQueue::new(0);
        assert!(q.push(1, &AdmissionPolicy::RejectNewest).is_ok());
        q.close();
        q.close(); // idempotent
        let refused = q.push(2, &AdmissionPolicy::RejectNewest).unwrap_err();
        assert_eq!(refused.reason, ShedReason::Draining);
        assert!(q.force_push(3).is_err(), "force_push respects close");
        // Queued items still drain before pop reports closure.
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn close_wakes_blocked_popper() {
        let q = Arc::new(BoundedQueue::<u32>::new(0));
        let popper = {
            let q = Arc::clone(&q);
            thread::spawn(move || q.pop())
        };
        thread::sleep(Duration::from_millis(5));
        q.close();
        assert_eq!(popper.join().unwrap(), None);
    }

    #[test]
    fn force_push_ignores_capacity() {
        let q = BoundedQueue::new(1);
        assert!(q.push(1, &AdmissionPolicy::RejectNewest).is_ok());
        assert!(q.force_push(2).is_ok());
        assert_eq!(q.len(), 2);
        assert_eq!(q.high_water(), 2);
    }

    #[test]
    fn drain_now_empties_the_queue() {
        let q = BoundedQueue::new(0);
        for i in 0..5 {
            assert!(q.push(i, &AdmissionPolicy::RejectNewest).is_ok());
        }
        assert_eq!(q.drain_now(), vec![0, 1, 2, 3, 4]);
        assert_eq!(q.len(), 0);
        q.close();
        assert_eq!(q.pop(), None);
    }
}
